#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace rsm::obs {

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

void JsonValue::push_back(JsonValue v) {
  RSM_CHECK(kind_ == Kind::kArray);
  items_.push_back(std::move(v));
}

void JsonValue::set(const std::string& key, JsonValue v) {
  RSM_CHECK(kind_ == Kind::kObject);
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue* JsonValue::find(const std::string& key) {
  return const_cast<JsonValue*>(
      static_cast<const JsonValue*>(this)->find(key));
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

const std::vector<JsonValue>& JsonValue::items() const { return items_; }

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  return members_;
}

double JsonValue::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  return double_;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void append_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kInt: out += std::to_string(int_); return;
    case Kind::kDouble: append_double(out, double_); return;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      return;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        append_indent(out, indent, depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      if (!items_.empty()) append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        append_indent(out, indent, depth + 1);
        out += '"';
        out += json_escape(members_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        members_[i].second.write(out, indent, depth + 1);
      }
      if (!members_.empty()) append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string JsonValue::dump_pretty() const {
  std::string out;
  write(out, 2, 0);
  return out;
}

}  // namespace rsm::obs
