#include "obs/telemetry.hpp"

#include "obs/json.hpp"

namespace rsm::obs {

namespace detail {
std::atomic<bool> g_telemetry_enabled{false};
}

namespace {

struct SinkSlot {
  Mutex mutex{"obs.telemetry.slot", lock_rank::kTelemetrySlot};
  std::shared_ptr<TelemetrySink> sink RSM_GUARDED_BY(mutex);
};

SinkSlot& sink_slot() {
  static SinkSlot slot;
  return slot;
}

std::shared_ptr<TelemetrySink> current_sink() {
  SinkSlot& slot = sink_slot();
  const MutexLock lock(slot.mutex);
  return slot.sink;
}

}  // namespace

std::shared_ptr<TelemetrySink> set_telemetry_sink(
    std::shared_ptr<TelemetrySink> sink) {
  SinkSlot& slot = sink_slot();
  const MutexLock lock(slot.mutex);
  std::shared_ptr<TelemetrySink> previous = std::move(slot.sink);
  slot.sink = std::move(sink);
  detail::g_telemetry_enabled.store(slot.sink != nullptr,
                                    std::memory_order_relaxed);
  return previous;
}

std::shared_ptr<TelemetrySink> telemetry_sink() { return current_sink(); }

void emit(const SolverIterationEvent& event) {
  if (const std::shared_ptr<TelemetrySink> sink = current_sink())
    sink->on_solver_iteration(event);
}

void emit(const CvFoldEvent& event) {
  if (const std::shared_ptr<TelemetrySink> sink = current_sink())
    sink->on_cv_fold(event);
}

void emit(const CampaignSampleEvent& event) {
  if (const std::shared_ptr<TelemetrySink> sink = current_sink())
    sink->on_campaign_sample(event);
}

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void RingBufferSink::push(TelemetryRecord record) {
  const MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void RingBufferSink::on_solver_iteration(const SolverIterationEvent& event) {
  push(event);
}

void RingBufferSink::on_cv_fold(const CvFoldEvent& event) { push(event); }

void RingBufferSink::on_campaign_sample(const CampaignSampleEvent& event) {
  push(event);
}

std::vector<TelemetryRecord> RingBufferSink::records() const {
  const MutexLock lock(mutex_);
  std::vector<TelemetryRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::uint64_t RingBufferSink::dropped() const {
  const MutexLock lock(mutex_);
  return dropped_;
}

void RingBufferSink::clear() {
  const MutexLock lock(mutex_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

JsonValue telemetry_record_value(const TelemetryRecord& record) {
  JsonValue obj = JsonValue::object();
  if (const auto* it = std::get_if<SolverIterationEvent>(&record)) {
    obj.set("type", "solver_iteration");
    obj.set("solver", it->solver);
    obj.set("step", it->step);
    obj.set("selected", it->selected);
    obj.set("max_correlation", static_cast<double>(it->max_correlation));
    obj.set("residual_norm", static_cast<double>(it->residual_norm));
    obj.set("active_count", it->active_count);
  } else if (const auto* cv = std::get_if<CvFoldEvent>(&record)) {
    obj.set("type", "cv_fold");
    obj.set("solver", cv->solver);
    obj.set("fold", cv->fold);
    obj.set("path_steps", cv->path_steps);
    obj.set("best_lambda", cv->best_lambda);
    obj.set("best_rmse", static_cast<double>(cv->best_rmse));
    obj.set("skipped", cv->skipped);
  } else if (const auto* cs = std::get_if<CampaignSampleEvent>(&record)) {
    obj.set("type", "campaign_sample");
    obj.set("sample", cs->sample);
    obj.set("attempts", cs->attempts);
    obj.set("succeeded", cs->succeeded);
    obj.set("recovered", cs->recovered);
    obj.set("error_code", error_code_name(cs->code));
  }
  return obj;
}

std::string telemetry_record_json(const TelemetryRecord& record) {
  return telemetry_record_value(record).dump();
}

JsonlFileSink::JsonlFileSink(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    throw Error("JsonlFileSink: cannot open '" + path + "' for writing");
  }
}

JsonlFileSink::~JsonlFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlFileSink::write_line(const std::string& line) {
  const MutexLock lock(mutex_);
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void JsonlFileSink::on_solver_iteration(const SolverIterationEvent& event) {
  write_line(telemetry_record_json(event));
}

void JsonlFileSink::on_cv_fold(const CvFoldEvent& event) {
  write_line(telemetry_record_json(event));
}

void JsonlFileSink::on_campaign_sample(const CampaignSampleEvent& event) {
  write_line(telemetry_record_json(event));
}

}  // namespace rsm::obs
