// Solver-iteration and campaign-sample telemetry through a pluggable sink.
//
// Efron et al. frame LAR as a *path* of per-step correlations and residuals;
// the OMP/STAR/CoSaMP/SOMP greedy loops have the same per-iteration shape.
// Each solver emits one SolverIterationEvent per step, cross-validation one
// CvFoldEvent per fold, and the campaign layer one CampaignSampleEvent per
// sample — all through a process-wide TelemetrySink that defaults to null.
//
//   auto ring = std::make_shared<obs::RingBufferSink>();
//   obs::set_telemetry_sink(ring);
//   ... run fits ...
//   for (const obs::TelemetryRecord& rec : ring->records()) ...
//
// Emission sites guard on telemetry_enabled() (one relaxed atomic load), so
// with no sink installed the solvers pay a branch per iteration — nothing
// else. Sinks must be thread-safe; the provided RingBufferSink and
// JsonlFileSink serialize internally with a mutex.
#pragma once

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "obs/json.hpp"
#include "util/common.hpp"
#include "util/errors.hpp"
#include "util/sync.hpp"

namespace rsm::obs {

/// One greedy-solver step (OMP Algorithm 1 steps 3–7 and analogues).
struct SolverIterationEvent {
  const char* solver = "";    // "OMP", "LAR", "STAR", "CoSaMP", "SOMP"
  Index step = 0;             // 0-based iteration index within this fit
  Index selected = -1;        // basis column entering the support (-1: none)
  Real max_correlation = 0;   // |G' r| of the winning column (solver's score)
  Real residual_norm = 0;     // ||r||_2 after the step
  Index active_count = 0;     // support size after the step
};

/// One cross-validation fold (Section IV-C).
struct CvFoldEvent {
  const char* solver = "";
  int fold = 0;
  Index path_steps = 0;   // steps the fold's path fit produced
  Index best_lambda = 0;  // argmin of this fold's error curve (1-based)
  Real best_rmse = 0;     // the curve value at that lambda
  bool skipped = false;   // degenerate fold excluded from the average
};

/// One campaign sample's final outcome (core/campaign.hpp).
struct CampaignSampleEvent {
  Index sample = -1;     // row index in the original sample matrix
  int attempts = 0;      // attempts consumed (1 = clean first try)
  bool succeeded = false;
  bool recovered = false;  // succeeded after at least one failed attempt
  ErrorCode code = ErrorCode::kOk;  // final classification (kOk on success)
};

using TelemetryRecord =
    std::variant<SolverIterationEvent, CvFoldEvent, CampaignSampleEvent>;

/// Receiver interface. Default implementations discard, so a sink overrides
/// only the event kinds it cares about.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void on_solver_iteration(const SolverIterationEvent&) {}
  virtual void on_cv_fold(const CvFoldEvent&) {}
  virtual void on_campaign_sample(const CampaignSampleEvent&) {}
};

/// Installs the process-wide sink; nullptr restores the default (disabled).
/// Returns the previously installed sink so scopes can restore it.
std::shared_ptr<TelemetrySink> set_telemetry_sink(
    std::shared_ptr<TelemetrySink> sink);

/// The currently installed sink (nullptr when disabled).
[[nodiscard]] std::shared_ptr<TelemetrySink> telemetry_sink();

namespace detail {
extern std::atomic<bool> g_telemetry_enabled;
}

/// Fast emission guard: true iff a sink is installed.
[[nodiscard]] inline bool telemetry_enabled() {
  return detail::g_telemetry_enabled.load(std::memory_order_relaxed);
}

/// Routes the event to the installed sink; no-ops when disabled. Callers on
/// hot paths should guard with telemetry_enabled() before building the
/// event.
void emit(const SolverIterationEvent& event);
void emit(const CvFoldEvent& event);
void emit(const CampaignSampleEvent& event);

/// Bounded in-memory sink: keeps the most recent `capacity` records (FIFO
/// eviction), counting what it dropped.
class RingBufferSink : public TelemetrySink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1 << 16);

  void on_solver_iteration(const SolverIterationEvent& event) override;
  void on_cv_fold(const CvFoldEvent& event) override;
  void on_campaign_sample(const CampaignSampleEvent& event) override;

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<TelemetryRecord> records() const;

  /// Records evicted because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const;

  void clear();

 private:
  void push(TelemetryRecord record);

  mutable Mutex mutex_{"obs.telemetry.ring", lock_rank::kTelemetryRing};
  std::size_t capacity_;
  // Index of the oldest record once saturated.
  std::size_t head_ RSM_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ RSM_GUARDED_BY(mutex_) = 0;
  std::vector<TelemetryRecord> ring_ RSM_GUARDED_BY(mutex_);
};

/// Appends one JSON object per event to a file — the JSONL interchange
/// format scripts/check_bench_json.py and notebook tooling consume. Every
/// line carries a "type" discriminator ("solver_iteration", "cv_fold",
/// "campaign_sample") plus the event's fields; flushed per line so a crash
/// loses at most the current event.
class JsonlFileSink : public TelemetrySink {
 public:
  /// Truncates and opens `path`; throws rsm::Error when unwritable.
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  void on_solver_iteration(const SolverIterationEvent& event) override;
  void on_cv_fold(const CvFoldEvent& event) override;
  void on_campaign_sample(const CampaignSampleEvent& event) override;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void write_line(const std::string& line);

  Mutex mutex_{"obs.telemetry.jsonl", lock_rank::kTelemetryJsonl};
  std::string path_;
  std::FILE* file_ RSM_PT_GUARDED_BY(mutex_) = nullptr;
};

/// One record as a JSON object with a "type" discriminator
/// ("solver_iteration", "cv_fold", "campaign_sample") plus the event's
/// fields — the shared shape of JSONL lines and embedded report records.
[[nodiscard]] JsonValue telemetry_record_value(const TelemetryRecord& record);

/// telemetry_record_value() serialized to one compact line.
[[nodiscard]] std::string telemetry_record_json(const TelemetryRecord& record);

}  // namespace rsm::obs
