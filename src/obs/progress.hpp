// Live progress heartbeats: periodic JSONL events from a running campaign.
//
// A million-row campaign is opaque between its start banner and its final
// report; this reporter turns the coordinator's row accounting into a
// machine-tailable stream:
//
//   {"event":"progress","source":"campaign","elapsed_seconds":2.0,
//    "total_rows":100000,"rows_done":3112,"rows_succeeded":3080,
//    "rows_quarantined":32,"rows_per_second":1556.0,
//    "eta_seconds":62.3,"workers":8,"active_workers":8,
//    "worker_utilization":0.93}
//
// The reporter only *formats and rate-limits*; where lines go is the
// caller's business via the LineSink function (obs cannot depend on io —
// io links obs). The campaign layer wires in a durable append sink
// (io/progress_sink.hpp); tests wire in a capturing lambda and an interval
// of zero. maybe_emit is thread-safe and cheap when not due (one mutex
// acquisition), so parallel campaign workers call it after every row.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "util/sync.hpp"

namespace rsm::obs {

/// One point-in-time view of campaign progress, provided by the caller
/// (the reporter never aggregates — it has no idea what a "row" is).
struct ProgressSnapshot {
  std::int64_t total_rows = 0;
  std::int64_t rows_done = 0;  ///< evaluated: succeeded + quarantined
  std::int64_t rows_succeeded = 0;
  std::int64_t rows_quarantined = 0;
  int workers = 0;
  int active_workers = 0;
  double busy_seconds = 0;  ///< summed over workers; both 0 = unknown
  double idle_seconds = 0;
};

/// Rate-limited JSONL heartbeat formatter. Thread-safe.
class ProgressReporter {
 public:
  using LineSink = std::function<void(const std::string& line)>;

  struct Options {
    std::string source = "campaign";  ///< "source" field of every event
    double interval_seconds = 1.0;    ///< min spacing; <= 0 emits every call
  };

  ProgressReporter(Options options, LineSink sink);

  /// Emits a heartbeat when at least interval_seconds have elapsed since
  /// the previous one (the first call always emits). Returns whether a
  /// line was written.
  bool maybe_emit(const ProgressSnapshot& snapshot);

  /// Unconditional final event (event: "summary") — campaigns call this
  /// once after the fold so the stream always ends with the true totals.
  void emit_final(const ProgressSnapshot& snapshot);

  [[nodiscard]] std::int64_t events_emitted() const;

 private:
  void emit_locked(const ProgressSnapshot& snapshot, const char* event,
                   double elapsed_seconds) RSM_REQUIRES(mutex_);

  Options options_;
  LineSink sink_;
  // Nests inside campaign.progress: the campaign fold calls maybe_emit
  // while serializing note_row, so this rank must exceed kCampaignProgress.
  mutable Mutex mutex_{"obs.progress.reporter", lock_rank::kProgressReporter};
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_emit_ RSM_GUARDED_BY(mutex_);
  bool emitted_any_ RSM_GUARDED_BY(mutex_) = false;
  std::int64_t events_ RSM_GUARDED_BY(mutex_) = 0;
};

}  // namespace rsm::obs
