// Process-wide metrics registry: counters, gauges, fixed-bucket histograms.
//
//   static obs::Counter& solves = obs::metrics().counter("dc.solves");
//   solves.increment();
//
// Registration is thread-safe and idempotent (find-or-create by name);
// returned references stay valid for the life of the process, so hot paths
// cache them in a local/static and pay one atomic op per update. Snapshots
// are taken without stopping writers. Metric names follow the same dotted
// lowercase convention as trace spans ("campaign.samples.succeeded") — see
// docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/common.hpp"
#include "util/sync.hpp"

namespace rsm::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::int64_t> value_{0};
};

/// Last-written floating-point metric.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }

  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations with
/// value <= upper_bounds[i] (first matching bucket); observations above the
/// last bound land in the implicit overflow bucket.
class Histogram {
 public:
  void observe(double value);

  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return upper_bounds_;
  }

  /// Per-bucket counts; size() == upper_bounds().size() + 1, the last entry
  /// being the overflow bucket.
  [[nodiscard]] std::vector<std::int64_t> bucket_counts() const;

  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> upper_bounds);

  std::vector<double> upper_bounds_;               // strictly increasing
  std::vector<std::atomic<std::int64_t>> buckets_; // bounds.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0};
};

struct CounterSample {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> upper_bounds;
  std::vector<std::int64_t> bucket_counts;  // incl. trailing overflow bucket
  std::int64_t count = 0;
  double sum = 0;
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  /// Find-or-create. The returned reference is process-lifetime stable.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// Find-or-create; `upper_bounds` must be non-empty and strictly
  /// increasing. A second registration of the same name returns the
  /// existing histogram (its original bounds win).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (registrations are kept, so cached
  /// references stay valid). Used by tests and the bench report scope.
  void reset();

 private:
  friend MetricsRegistry& metrics();
  MetricsRegistry() = default;

  // Guards the name->metric maps, not the metric values (those are atomic;
  // reset() zeroes them under the lock only to keep registration stable).
  mutable Mutex mutex_{"obs.metrics", lock_rank::kMetricsRegistry};
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_
      RSM_GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_
      RSM_GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_
      RSM_GUARDED_BY(mutex_);
};

/// The process-wide registry.
[[nodiscard]] MetricsRegistry& metrics();

}  // namespace rsm::obs
