// Process resource sampler: RSS, page faults, context switches, CPU time.
//
// Wraps getrusage(RUSAGE_SELF) plus /proc/self/statm into a plain value
// type so reports can answer "how much memory did this campaign take" and
// "was the pool preempted" next to the wall-clock numbers:
//
//   const auto start = obs::sample_resource_usage();
//   ... work ...
//   const auto usage = obs::resource_delta(obs::sample_resource_usage(),
//                                          start);
//   report.set("resources", obs::resource_json(usage));
//
// Cumulative kernel counters (faults, context switches, CPU seconds) are
// monotone over a process's life; resource_delta subtracts them so a report
// covers only its own phase. High-water marks (max_rss_kb) and point
// samples (current_rss_kb) are not subtractable — the delta keeps the end
// values. Sampling is a syscall plus one small /proc read (~µs); nothing
// here belongs on a per-row hot path. On platforms without getrusage or
// /proc the unavailable fields stay zero and `valid` is false.
#pragma once

#include <cstdint>

#include "obs/json.hpp"

namespace rsm::obs {

/// One sample of process-wide resource usage. Counter fields are cumulative
/// since process start (until run through resource_delta).
struct ResourceUsage {
  bool valid = false;                     ///< getrusage succeeded
  std::int64_t max_rss_kb = 0;            ///< peak resident set, KiB
  std::int64_t current_rss_kb = 0;        ///< resident set now, KiB (0 if no /proc)
  std::int64_t minor_faults = 0;          ///< page reclaims (no I/O)
  std::int64_t major_faults = 0;          ///< page faults requiring I/O
  std::int64_t voluntary_ctx_switches = 0;
  std::int64_t involuntary_ctx_switches = 0;
  double user_cpu_seconds = 0;
  double system_cpu_seconds = 0;
};

/// Samples the calling process. Never throws; on failure returns a
/// zero-filled sample with valid == false.
[[nodiscard]] ResourceUsage sample_resource_usage();

/// end - start for the cumulative counters; high-water/point fields
/// (max_rss_kb, current_rss_kb) are taken from `end` unchanged.
[[nodiscard]] ResourceUsage resource_delta(const ResourceUsage& end,
                                           const ResourceUsage& start);

/// Publishes the sample as gauges in the process metrics registry
/// (resource.max_rss_kb, resource.minor_faults, ... — see
/// docs/observability.md for the full key list).
void record_resource_metrics(const ResourceUsage& usage);

/// Serializes the sample as an ordered JSON object with the same keys as
/// the registry gauges minus the "resource." prefix.
[[nodiscard]] JsonValue resource_json(const ResourceUsage& usage);

}  // namespace rsm::obs
