// Hierarchical scoped trace spans: where wall-time goes inside the solvers.
//
//   void OmpSolver::fit_path(...) {
//     RSM_TRACE_SPAN("omp.fit");
//     for (...) {
//       RSM_TRACE_SPAN("omp.iteration");
//       ...
//     }
//   }
//
// Every lexical span site accumulates into a node of a per-thread tree keyed
// by the nesting path of span names; a node carries call count, total/min/max
// wall seconds, and total thread-CPU seconds. `trace_snapshot()` merges the
// calling thread's live tree with the trees of already-exited threads and
// returns a plain value-type tree for reporting (obs/report.hpp serializes
// it into BENCH_*.json).
//
// Cost model: a span on the hot path is two clock reads plus a pointer-keyed
// child lookup (~100 ns). Tracing can be disabled two ways:
//   * runtime — set_tracing_enabled(false) (or RSM_OBS_LEVEL=0): each span
//     site is a single relaxed atomic load;
//   * compile time — configure with -DRSM_TRACING=OFF: RSM_TRACE_SPAN
//     expands to nothing and the tracer cannot be re-enabled.
//
// Span names must be string literals (or otherwise outlive the process):
// nodes store the pointer and compare by pointer first, content second.
// Naming convention: lowercase dotted "subsystem.action" ("omp.fit",
// "cv.fold", "dc.solve") — see docs/observability.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace rsm::obs {

/// Compile-time gate. CMake's -DRSM_TRACING=OFF defines
/// RSM_TRACING_ENABLED=0; standalone inclusion defaults to on.
#ifndef RSM_TRACING_ENABLED
#define RSM_TRACING_ENABLED 1
#endif

/// True when span sites were compiled in.
inline constexpr bool kTracingCompiled = RSM_TRACING_ENABLED != 0;

/// Value-type snapshot of one span-tree node.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
  double cpu_seconds = 0;
  std::vector<SpanStats> children;

  /// Depth-first sum of `total_seconds` over this node and all descendants
  /// whose name equals `span_name`.
  [[nodiscard]] double total_named(const std::string& span_name) const;

  /// First direct child with the given name; nullptr when absent.
  [[nodiscard]] const SpanStats* child(const std::string& child_name) const;
};

/// Runtime gate. Defaults to on (when compiled in); the first query applies
/// the RSM_OBS_LEVEL environment override (obs/env.hpp).
[[nodiscard]] bool tracing_enabled();
void set_tracing_enabled(bool enabled);

/// Merged snapshot: the synthetic root ("") aggregates the calling thread's
/// live tree and the retired trees of threads that have exited. Trees of
/// *other still-running* threads are not visible until those threads exit —
/// this keeps span recording lock-free on the hot path.
[[nodiscard]] SpanStats trace_snapshot();

/// One thread's span tree, tagged with a small stable ordinal (1, 2, ...)
/// assigned the first time the thread records a span. Ordinals — not OS
/// thread ids — keep exported traces (obs/trace_export.hpp) deterministic
/// across runs with the same span structure.
struct ThreadSpanStats {
  std::uint64_t thread_ordinal = 0;
  SpanStats tree;  // synthetic root ""
};

/// Per-thread snapshot: the retired trees of exited threads plus the calling
/// thread's live tree (when non-empty), ordered by ordinal. The same
/// visibility caveat as trace_snapshot() applies to still-running threads.
[[nodiscard]] std::vector<ThreadSpanStats> trace_snapshot_threads();

/// Discards all accumulated span statistics (calling thread + retired).
void reset_tracing();

namespace detail {

struct SpanNode;

/// Enters a span: finds or creates the child `name` of the calling thread's
/// current node and makes it current. Returns the entered node.
SpanNode* span_push(const char* name);

/// Leaves `node`, folding the measured durations into its statistics and
/// restoring its parent as current.
void span_pop(SpanNode* node, double wall_seconds, double cpu_seconds);

/// Thread-CPU clock read used by spans (delegates to ThreadCpuTimer::now).
[[nodiscard]] double cpu_now();

}  // namespace detail

/// RAII span. Prefer the RSM_TRACE_SPAN macro, which compiles away under
/// -DRSM_TRACING=OFF.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!tracing_enabled()) return;
    node_ = detail::span_push(name);
    cpu_start_ = detail::cpu_now();
    wall_start_ = std::chrono::steady_clock::now();
  }

  ~ScopedSpan() {
    if (node_ == nullptr) return;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start_)
            .count();
    detail::span_pop(node_, wall, detail::cpu_now() - cpu_start_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  detail::SpanNode* node_ = nullptr;
  std::chrono::steady_clock::time_point wall_start_;
  double cpu_start_ = 0;
};

}  // namespace rsm::obs

#define RSM_OBS_CONCAT_INNER(a, b) a##b
#define RSM_OBS_CONCAT(a, b) RSM_OBS_CONCAT_INNER(a, b)

#if RSM_TRACING_ENABLED
/// Opens a trace span covering the rest of the enclosing scope.
#define RSM_TRACE_SPAN(name) \
  ::rsm::obs::ScopedSpan RSM_OBS_CONCAT(rsm_trace_span_, __LINE__)(name)
#else
#define RSM_TRACE_SPAN(name) static_cast<void>(0)
#endif
