// RSM_OBS_LEVEL environment override — enable observability in existing
// binaries without recompiling or new CLI flags.
//
//   RSM_OBS_LEVEL=0|off       tracing off, no telemetry sink
//   RSM_OBS_LEVEL=1|trace     tracing on (the default when unset)
//   RSM_OBS_LEVEL=2|jsonl     tracing on + JsonlFileSink writing every
//                             telemetry event to $RSM_OBS_JSONL
//                             (default "rsm_telemetry.jsonl")
//
// The variables are parsed exactly once per process (std::call_once); later
// set_tracing_enabled()/set_telemetry_sink() calls override the environment
// (explicit code wins over ambient configuration). tracing_enabled() applies
// the override lazily on first query, so simply setting the variable works
// for every bench/example with no code at all.
#pragma once

namespace rsm::obs {

/// Parses RSM_OBS_LEVEL / RSM_OBS_JSONL and applies them. Idempotent and
/// thread-safe; called automatically from the first tracing_enabled() query
/// and from bench::BenchReport.
void apply_env_overrides();

/// The resolved level (0, 1, or 2) after env parsing; applies the override
/// first when needed. Level 0 means the user asked for zero observability —
/// callers like bench::BenchReport skip installing sinks entirely.
[[nodiscard]] int obs_level();

}  // namespace rsm::obs
