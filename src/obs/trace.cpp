#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>

#include "obs/env.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace rsm::obs {

double SpanStats::total_named(const std::string& span_name) const {
  double sum = name == span_name ? total_seconds : 0;
  for (const SpanStats& c : children) sum += c.total_named(span_name);
  return sum;
}

const SpanStats* SpanStats::child(const std::string& child_name) const {
  for (const SpanStats& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

namespace detail {

struct SpanNode {
  const char* name = "";
  SpanNode* parent = nullptr;
  std::vector<std::unique_ptr<SpanNode>> children;
  std::uint64_t count = 0;
  double total = 0;
  double min = 0;
  double max = 0;
  double cpu = 0;
};

}  // namespace detail

namespace {

using detail::SpanNode;

/// -1 = uninitialized (environment override not yet applied).
std::atomic<int> g_tracing{-1};

/// Merges `src` into `dst` (same name assumed), matching children by name.
void merge_stats(SpanStats& dst, const SpanStats& src) {
  if (src.count > 0) {
    if (dst.count == 0) {
      dst.min_seconds = src.min_seconds;
    } else {
      dst.min_seconds = std::min(dst.min_seconds, src.min_seconds);
    }
    dst.max_seconds = std::max(dst.max_seconds, src.max_seconds);
  }
  dst.count += src.count;
  dst.total_seconds += src.total_seconds;
  dst.cpu_seconds += src.cpu_seconds;
  for (const SpanStats& child : src.children) {
    SpanStats* match = nullptr;
    for (SpanStats& existing : dst.children) {
      if (existing.name == child.name) {
        match = &existing;
        break;
      }
    }
    if (match == nullptr) {
      dst.children.push_back(child);
    } else {
      merge_stats(*match, child);
    }
  }
}

/// Converts a live node tree to SpanStats, pruning nodes never completed
/// (count == 0 with no completed descendants — e.g. zeroed by
/// reset_tracing while a span was open).
bool snapshot_node(const SpanNode& node, SpanStats& out) {
  out.name = node.name;
  out.count = node.count;
  out.total_seconds = node.total;
  out.min_seconds = node.min;
  out.max_seconds = node.max;
  out.cpu_seconds = node.cpu;
  bool any = node.count > 0;
  for (const auto& child : node.children) {
    SpanStats child_stats;
    if (snapshot_node(*child, child_stats)) {
      out.children.push_back(std::move(child_stats));
      any = true;
    }
  }
  return any;
}

void zero_node(SpanNode& node) {
  node.count = 0;
  node.total = node.min = node.max = node.cpu = 0;
  for (auto& child : node.children) zero_node(*child);
}

/// Span statistics of threads that have already exited, kept per-thread
/// (keyed by ordinal) so trace_snapshot() can merge them and
/// trace_snapshot_threads() can attribute spans to their recording thread.
struct Retired {
  Mutex mutex{"obs.trace.retired", lock_rank::kTraceRetired};
  std::vector<ThreadSpanStats> threads
      RSM_GUARDED_BY(mutex);  // ordered by retirement
};

Retired& retired() {
  static Retired r;
  return r;
}

/// Small stable thread ids for exported traces; 0 is reserved for "never
/// recorded a span".
std::atomic<std::uint64_t> g_next_ordinal{1};

/// Per-thread span tree. Recording touches only this — no locks on the hot
/// path. The destructor folds the tree into the retired accumulator.
struct ThreadTree {
  SpanNode root;
  SpanNode* current = &root;
  std::uint64_t ordinal =
      g_next_ordinal.fetch_add(1, std::memory_order_relaxed);

  ThreadTree() {
    (void)retired();  // force construction order: retired outlives us
  }

  ~ThreadTree() {
    SpanStats stats;
    if (!snapshot_node(root, stats)) return;
    Retired& r = retired();
    const MutexLock lock(r.mutex);
    r.threads.push_back({ordinal, std::move(stats)});
  }
};

ThreadTree& thread_tree() {
  thread_local ThreadTree tree;
  return tree;
}

}  // namespace

bool tracing_enabled() {
  if constexpr (!kTracingCompiled) return false;
  int v = g_tracing.load(std::memory_order_relaxed);
  if (v < 0) {
    apply_env_overrides();  // sets the flag (default: enabled)
    v = g_tracing.load(std::memory_order_relaxed);
    if (v < 0) {
      g_tracing.store(1, std::memory_order_relaxed);
      v = 1;
    }
  }
  return v != 0;
}

void set_tracing_enabled(bool enabled) {
  g_tracing.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

SpanStats trace_snapshot() {
  SpanStats merged;
  {
    Retired& r = retired();
    const MutexLock lock(r.mutex);
    for (const ThreadSpanStats& thread : r.threads)
      merge_stats(merged, thread.tree);
  }
  merged.name = "";
  SpanStats live;
  if (snapshot_node(thread_tree().root, live)) merge_stats(merged, live);
  return merged;
}

std::vector<ThreadSpanStats> trace_snapshot_threads() {
  std::vector<ThreadSpanStats> threads;
  {
    Retired& r = retired();
    const MutexLock lock(r.mutex);
    threads = r.threads;
  }
  ThreadTree& tree = thread_tree();
  SpanStats live;
  if (snapshot_node(tree.root, live))
    threads.push_back({tree.ordinal, std::move(live)});
  std::sort(threads.begin(), threads.end(),
            [](const ThreadSpanStats& a, const ThreadSpanStats& b) {
              return a.thread_ordinal < b.thread_ordinal;
            });
  return threads;
}

void reset_tracing() {
  {
    Retired& r = retired();
    const MutexLock lock(r.mutex);
    r.threads.clear();
  }
  // Zero (rather than delete) the calling thread's nodes: ScopedSpans still
  // open on the stack hold pointers into this tree.
  zero_node(thread_tree().root);
}

namespace detail {

SpanNode* span_push(const char* name) {
  ThreadTree& tree = thread_tree();
  SpanNode* current = tree.current;
  for (const auto& child : current->children) {
    // Names are string literals: pointer equality is the common fast case.
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      tree.current = child.get();
      return child.get();
    }
  }
  auto node = std::make_unique<SpanNode>();
  node->name = name;
  node->parent = current;
  SpanNode* raw = node.get();
  current->children.push_back(std::move(node));
  tree.current = raw;
  return raw;
}

void span_pop(SpanNode* node, double wall_seconds, double cpu_seconds) {
  ++node->count;
  node->total += wall_seconds;
  node->min = node->count == 1 ? wall_seconds
                               : std::min(node->min, wall_seconds);
  node->max = std::max(node->max, wall_seconds);
  node->cpu += cpu_seconds;
  ThreadTree& tree = thread_tree();
  tree.current = node->parent != nullptr ? node->parent : &tree.root;
}

double cpu_now() { return ThreadCpuTimer::now(); }

}  // namespace detail

}  // namespace rsm::obs
