#include "obs/resource.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define RSM_HAS_GETRUSAGE 1
#else
#define RSM_HAS_GETRUSAGE 0
#endif

namespace rsm::obs {
namespace {

/// Resident pages from /proc/self/statm (field 2), in KiB; 0 when /proc is
/// unavailable (non-Linux) — ru_maxrss still covers the peak there.
std::int64_t current_rss_kb_from_proc() {
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/statm", "r");
  if (file == nullptr) return 0;
  long long total_pages = 0;
  long long resident_pages = 0;
  const int parsed =
      std::fscanf(file, "%lld %lld", &total_pages, &resident_pages);
  std::fclose(file);
  if (parsed != 2) return 0;
  const long page_bytes = sysconf(_SC_PAGESIZE);
  if (page_bytes <= 0) return 0;
  return static_cast<std::int64_t>(resident_pages) * (page_bytes / 1024);
#else
  return 0;
#endif
}

double timeval_seconds(long sec, long usec) {
  return static_cast<double>(sec) + static_cast<double>(usec) * 1e-6;
}

}  // namespace

ResourceUsage sample_resource_usage() {
  ResourceUsage usage;
#if RSM_HAS_GETRUSAGE
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return usage;
  usage.valid = true;
#if defined(__APPLE__)
  usage.max_rss_kb = static_cast<std::int64_t>(ru.ru_maxrss) / 1024;  // bytes
#else
  usage.max_rss_kb = static_cast<std::int64_t>(ru.ru_maxrss);  // KiB
#endif
  usage.minor_faults = static_cast<std::int64_t>(ru.ru_minflt);
  usage.major_faults = static_cast<std::int64_t>(ru.ru_majflt);
  usage.voluntary_ctx_switches = static_cast<std::int64_t>(ru.ru_nvcsw);
  usage.involuntary_ctx_switches = static_cast<std::int64_t>(ru.ru_nivcsw);
  usage.user_cpu_seconds =
      timeval_seconds(ru.ru_utime.tv_sec, ru.ru_utime.tv_usec);
  usage.system_cpu_seconds =
      timeval_seconds(ru.ru_stime.tv_sec, ru.ru_stime.tv_usec);
  usage.current_rss_kb = current_rss_kb_from_proc();
#endif
  return usage;
}

ResourceUsage resource_delta(const ResourceUsage& end,
                             const ResourceUsage& start) {
  ResourceUsage delta = end;  // keeps valid + high-water/point fields
  delta.minor_faults -= start.minor_faults;
  delta.major_faults -= start.major_faults;
  delta.voluntary_ctx_switches -= start.voluntary_ctx_switches;
  delta.involuntary_ctx_switches -= start.involuntary_ctx_switches;
  delta.user_cpu_seconds -= start.user_cpu_seconds;
  delta.system_cpu_seconds -= start.system_cpu_seconds;
  return delta;
}

void record_resource_metrics(const ResourceUsage& usage) {
  MetricsRegistry& registry = metrics();
  registry.gauge("resource.max_rss_kb")
      .set(static_cast<double>(usage.max_rss_kb));
  registry.gauge("resource.current_rss_kb")
      .set(static_cast<double>(usage.current_rss_kb));
  registry.gauge("resource.minor_faults")
      .set(static_cast<double>(usage.minor_faults));
  registry.gauge("resource.major_faults")
      .set(static_cast<double>(usage.major_faults));
  registry.gauge("resource.voluntary_ctx_switches")
      .set(static_cast<double>(usage.voluntary_ctx_switches));
  registry.gauge("resource.involuntary_ctx_switches")
      .set(static_cast<double>(usage.involuntary_ctx_switches));
  registry.gauge("resource.user_cpu_seconds").set(usage.user_cpu_seconds);
  registry.gauge("resource.system_cpu_seconds").set(usage.system_cpu_seconds);
}

JsonValue resource_json(const ResourceUsage& usage) {
  JsonValue out = JsonValue::object();
  out.set("valid", usage.valid);
  out.set("max_rss_kb", usage.max_rss_kb);
  out.set("current_rss_kb", usage.current_rss_kb);
  out.set("minor_faults", usage.minor_faults);
  out.set("major_faults", usage.major_faults);
  out.set("voluntary_ctx_switches", usage.voluntary_ctx_switches);
  out.set("involuntary_ctx_switches", usage.involuntary_ctx_switches);
  out.set("user_cpu_seconds", usage.user_cpu_seconds);
  out.set("system_cpu_seconds", usage.system_cpu_seconds);
  return out;
}

}  // namespace rsm::obs
