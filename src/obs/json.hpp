// Minimal ordered JSON document model for the observability layer.
//
// The obs subsystem emits machine-readable reports (BENCH_*.json, JSONL
// telemetry); this is the small dependency-free value type they serialize
// through. It is a *writer* — deliberately no parser — kept ordered
// (insertion order of object keys is preserved) so reports diff cleanly
// across runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace rsm::obs {

/// Ordered JSON value: null, bool, int64, double, string, array, object.
/// Doubles serialize with %.17g (round-trip exact); non-finite doubles
/// serialize as null per RFC 8259 (JSON has no NaN/Inf).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}                // NOLINT
  JsonValue(std::int64_t i) : kind_(Kind::kInt), int_(i) {}          // NOLINT
  JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}      // NOLINT
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}          // NOLINT
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}     // NOLINT

  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

  /// Array append. RSM_CHECKs that this value is an array.
  void push_back(JsonValue v);

  /// Object insert-or-overwrite, preserving first-insertion order.
  /// RSM_CHECKs that this value is an object.
  void set(const std::string& key, JsonValue v);

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] JsonValue* find(const std::string& key);

  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const { return int_; }
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const { return string_; }

  /// Compact single-line serialization.
  [[nodiscard]] std::string dump() const;

  /// Pretty serialization with 2-space indentation.
  [[nodiscard]] std::string dump_pretty() const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace rsm::obs
