#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/log.hpp"

namespace rsm::obs {
namespace {

constexpr double kMicrosPerSecond = 1e6;
constexpr std::int64_t kPid = 1;  // single-process tool: constant pid

JsonValue metadata_event(const char* name, std::int64_t tid,
                         const std::string& value) {
  JsonValue event = JsonValue::object();
  event.set("name", name);
  event.set("ph", "M");
  event.set("pid", kPid);
  event.set("tid", tid);
  JsonValue args = JsonValue::object();
  args.set("name", value);
  event.set("args", std::move(args));
  return event;
}

/// A node's laid-out duration: its own total, or the sum of its children
/// when that is larger (a node pruned mid-span — reset while open — can
/// carry completed children but no completed time of its own; the children
/// must still fit inside it on the timeline).
double layout_seconds(const SpanStats& node) {
  double children = 0;
  for (const SpanStats& child : node.children)
    children += layout_seconds(child);
  return std::max(node.total_seconds, children);
}

void emit_node(const SpanStats& node, std::int64_t tid, double start_us,
               JsonValue& events) {
  JsonValue event = JsonValue::object();
  event.set("name", node.name);
  event.set("cat", "span");
  event.set("ph", "X");
  event.set("pid", kPid);
  event.set("tid", tid);
  event.set("ts", start_us);
  event.set("dur", layout_seconds(node) * kMicrosPerSecond);
  JsonValue args = JsonValue::object();
  args.set("count", static_cast<std::int64_t>(node.count));
  args.set("min_ms", node.min_seconds * 1e3);
  args.set("max_ms", node.max_seconds * 1e3);
  args.set("cpu_ms", node.cpu_seconds * 1e3);
  event.set("args", std::move(args));
  events.push_back(std::move(event));

  double child_start = start_us;
  for (const SpanStats& child : node.children) {
    emit_node(child, tid, child_start, events);
    child_start += layout_seconds(child) * kMicrosPerSecond;
  }
}

}  // namespace

JsonValue chrome_trace_document(const std::vector<ThreadSpanStats>& threads,
                                const std::string& process_name) {
  JsonValue events = JsonValue::array();
  events.push_back(metadata_event("process_name", 0, process_name));
  for (const ThreadSpanStats& thread : threads) {
    const auto tid = static_cast<std::int64_t>(thread.thread_ordinal);
    events.push_back(metadata_event(
        "thread_name", tid, "rsm-thread-" + std::to_string(tid)));
  }
  for (const ThreadSpanStats& thread : threads) {
    const auto tid = static_cast<std::int64_t>(thread.thread_ordinal);
    // The synthetic root ("") is layout only; its children are the real
    // top-level spans, laid out back to back from t = 0.
    double start_us = 0;
    for (const SpanStats& top : thread.tree.children) {
      emit_node(top, tid, start_us, events);
      start_us += layout_seconds(top) * kMicrosPerSecond;
    }
  }

  JsonValue doc = JsonValue::object();
  doc.set("displayTimeUnit", "ms");
  JsonValue other = JsonValue::object();
  other.set("process_name", process_name);
  other.set("tracing_compiled", kTracingCompiled);
  other.set("threads", static_cast<std::int64_t>(threads.size()));
  other.set("timeline", "synthetic (aggregated span totals, not instances)");
  doc.set("otherData", std::move(other));
  doc.set("traceEvents", std::move(events));
  return doc;
}

bool write_chrome_trace(const std::string& path,
                        const std::string& process_name) {
  const JsonValue doc =
      chrome_trace_document(trace_snapshot_threads(), process_name);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    RSM_WARN("observability: cannot write chrome trace to '" << path << '\'');
    return false;
  }
  const std::string text = doc.dump_pretty();
  std::fputs(text.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  RSM_INFO("observability: wrote chrome trace " << path);
  return true;
}

const std::string& trace_export_path() {
  static std::string path;
  static std::once_flag flag;
  std::call_once(flag, [] {
    const char* raw = std::getenv("RSM_TRACE_EXPORT");
    if (raw != nullptr) path = raw;
  });
  return path;
}

bool export_trace_if_configured(const std::string& process_name) {
  const std::string& path = trace_export_path();
  if (path.empty()) return false;
  return write_chrome_trace(path, process_name);
}

}  // namespace rsm::obs
