// Chrome-trace / Perfetto export of the RSM_TRACE_SPAN trees.
//
// The span trees (obs/trace.hpp) aggregate per call site; this module lays
// each thread's tree out as complete-duration "X" events on a synthetic
// timeline — a node's event starts where its previous sibling ended and
// spans the node's total wall seconds, with its children nested inside —
// and serializes the result as the Trace Event Format JSON that
// chrome://tracing, Perfetto UI, and speedscope all load:
//
//   RSM_TRACE_EXPORT=trace.json ./build/bench/campaign_parallel ...
//   # then open trace.json in https://ui.perfetto.dev
//
// Every event carries the recording thread's stable ordinal as `tid`
// (thread-name metadata events included), wall microseconds as ts/dur, and
// the node's call count, min/max wall and thread-CPU milliseconds in
// `args`. The export is a *profile* (aggregated, synthetic timestamps),
// not a timeline of individual span instances — recording stays lock-free
// and allocation-free on the hot path.
//
// Export is wired into every bench (bench::BenchReport writes the trace on
// destruction when RSM_TRACE_EXPORT is set) and into the campaign examples;
// scripts/check_trace_json.py validates the emitted structure in CI.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace rsm::obs {

/// Builds the Trace Event Format document for the given per-thread trees:
/// {"displayTimeUnit": "ms", "otherData": {...}, "traceEvents": [...]}.
/// The event array opens with process/thread-name metadata ("M" phase)
/// followed by one complete ("X" phase) event per span node, depth-first
/// per thread in ordinal order — deterministic for identical span trees.
[[nodiscard]] JsonValue chrome_trace_document(
    const std::vector<ThreadSpanStats>& threads,
    const std::string& process_name);

/// trace_snapshot_threads() -> chrome_trace_document -> pretty JSON at
/// `path`. Returns false (after logging a warning) when the file cannot be
/// written — trace export must never take down the tool it observes.
bool write_chrome_trace(const std::string& path,
                        const std::string& process_name);

/// The RSM_TRACE_EXPORT environment value, read once per process; empty
/// when unset.
[[nodiscard]] const std::string& trace_export_path();

/// write_chrome_trace(trace_export_path(), process_name) when the variable
/// is set; returns false without side effects otherwise.
bool export_trace_if_configured(const std::string& process_name);

}  // namespace rsm::obs
