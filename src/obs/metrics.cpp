#include "obs/metrics.hpp"

#include <algorithm>

namespace rsm::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1) {
  RSM_CHECK_MSG(!upper_bounds_.empty(), "histogram needs at least one bucket");
  for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
    RSM_CHECK_MSG(upper_bounds_[i - 1] < upper_bounds_[i],
                  "histogram bounds must be strictly increasing");
  }
}

void Histogram::observe(double value) {
  // First bucket whose upper bound is >= value; everything above the last
  // bound is the overflow bucket.
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - upper_bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  return counts;
}

namespace {

template <typename T, typename... Args>
T& find_or_create(std::vector<std::pair<std::string, std::unique_ptr<T>>>& map,
                  const std::string& name, Args&&... args) {
  for (auto& [key, metric] : map) {
    if (key == name) return *metric;
  }
  map.emplace_back(name, std::unique_ptr<T>(new T(std::forward<Args>(args)...)));
  return *map.back().second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  const MutexLock lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const MutexLock lock(mutex_);
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const MutexLock lock(mutex_);
  for (auto& [key, metric] : histograms_) {
    if (key == name) return *metric;
  }
  histograms_.emplace_back(
      name, std::unique_ptr<Histogram>(new Histogram(std::move(upper_bounds))));
  return *histograms_.back().second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    const MutexLock lock(mutex_);
    for (const auto& [name, c] : counters_)
      snap.counters.push_back({name, c->value()});
    for (const auto& [name, g] : gauges_)
      snap.gauges.push_back({name, g->value()});
    for (const auto& [name, h] : histograms_) {
      snap.histograms.push_back({name, h->upper_bounds(), h->bucket_counts(),
                                 h->count(), h->sum()});
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  const MutexLock lock(mutex_);
  for (auto& [name, c] : counters_)
    c->value_.store(0, std::memory_order_relaxed);
  for (auto& [name, g] : gauges_)
    g->value_.store(0, std::memory_order_relaxed);
  for (auto& [name, h] : histograms_) {
    for (auto& bucket : h->buckets_)
      bucket.store(0, std::memory_order_relaxed);
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace rsm::obs
