#include "obs/progress.hpp"

#include <utility>

#include "obs/json.hpp"
#include "util/common.hpp"

namespace rsm::obs {

ProgressReporter::ProgressReporter(Options options, LineSink sink)
    : options_(std::move(options)), sink_(std::move(sink)) {
  RSM_CHECK_MSG(static_cast<bool>(sink_),
                "ProgressReporter needs a line sink");
  start_ = std::chrono::steady_clock::now();
  last_emit_ = start_;
}

bool ProgressReporter::maybe_emit(const ProgressSnapshot& snapshot) {
  const auto now = std::chrono::steady_clock::now();
  const MutexLock lock(mutex_);
  const double since_last =
      std::chrono::duration<double>(now - last_emit_).count();
  if (emitted_any_ && since_last < options_.interval_seconds) return false;
  last_emit_ = now;
  emitted_any_ = true;
  emit_locked(snapshot, "progress",
              std::chrono::duration<double>(now - start_).count());
  return true;
}

void ProgressReporter::emit_final(const ProgressSnapshot& snapshot) {
  const auto now = std::chrono::steady_clock::now();
  const MutexLock lock(mutex_);
  last_emit_ = now;
  emitted_any_ = true;
  emit_locked(snapshot, "summary",
              std::chrono::duration<double>(now - start_).count());
}

std::int64_t ProgressReporter::events_emitted() const {
  const MutexLock lock(mutex_);
  return events_;
}

void ProgressReporter::emit_locked(const ProgressSnapshot& snapshot,
                                   const char* event,
                                   double elapsed_seconds) {
  JsonValue line = JsonValue::object();
  line.set("event", event);
  line.set("source", options_.source);
  line.set("elapsed_seconds", elapsed_seconds);
  line.set("total_rows", snapshot.total_rows);
  line.set("rows_done", snapshot.rows_done);
  line.set("rows_succeeded", snapshot.rows_succeeded);
  line.set("rows_quarantined", snapshot.rows_quarantined);
  const double rate = elapsed_seconds > 0
                          ? static_cast<double>(snapshot.rows_done) /
                                elapsed_seconds
                          : 0;
  line.set("rows_per_second", rate);
  const std::int64_t remaining = snapshot.total_rows - snapshot.rows_done;
  if (rate > 0 && remaining >= 0) {
    line.set("eta_seconds", static_cast<double>(remaining) / rate);
  } else {
    line.set("eta_seconds", JsonValue());  // unknown -> null
  }
  line.set("workers", snapshot.workers);
  line.set("active_workers", snapshot.active_workers);
  const double accounted = snapshot.busy_seconds + snapshot.idle_seconds;
  if (accounted > 0) {
    line.set("worker_utilization", snapshot.busy_seconds / accounted);
  } else {
    line.set("worker_utilization", JsonValue());
  }
  ++events_;
  sink_(line.dump());
}

}  // namespace rsm::obs
