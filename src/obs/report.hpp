// Versioned machine-readable observability report (the BENCH_*.json format).
//
// One report bundles everything the obs layer knows — the hierarchical span
// tree, the metrics registry snapshot, the telemetry records of a
// RingBufferSink — together with tool-specific `results` (table rows, fit
// timings) into a single JSON document:
//
//   {
//     "schema_version": 2,
//     "tool": "table1_linear_cost",
//     "generated_unix_ms": 1754500000000,
//     "tracing": {"compiled": true, "enabled": true},
//     "spans":   {"name": "", "count": 0, ..., "children": [...]},
//     "resources": {"valid": true, "max_rss_kb": 51200, ...},
//     "metrics": {"counters": [...], "gauges": [...], "histograms": [...]},
//     "telemetry": {"records": [...], "dropped": 0},
//     "results": { ... tool specific ... }
//   }
//
// The schema is documented field-by-field in docs/observability.md and
// validated in CI by scripts/check_bench_json.py. Bump kReportSchemaVersion
// on any incompatible change. Version history: 1 = original layout; 2 adds
// the "resources" block (obs/resource.hpp) and its resource.* gauges.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace rsm::obs {

inline constexpr int kReportSchemaVersion = 2;

/// Span tree -> JSON node: {"name", "count", "total_seconds",
/// "min_seconds", "max_seconds", "cpu_seconds", "children": [...]}.
[[nodiscard]] JsonValue span_to_json(const SpanStats& stats);

/// Metrics snapshot -> {"counters": [...], "gauges": [...],
/// "histograms": [...]}.
[[nodiscard]] JsonValue metrics_to_json(const MetricsSnapshot& snapshot);

/// Assembles the full report document. `results` must be an object (pass
/// JsonValue::object() when a tool has nothing extra to record);
/// `telemetry` may be nullptr, which serializes the field as null.
[[nodiscard]] JsonValue build_report(const std::string& tool,
                                     JsonValue results,
                                     const RingBufferSink* telemetry = nullptr);

/// build_report + pretty-print to `path`. Returns false (after logging a
/// warning) when the file cannot be written — report emission must never
/// take down the tool it observes.
bool write_report(const std::string& path, const std::string& tool,
                  JsonValue results, const RingBufferSink* telemetry = nullptr);

}  // namespace rsm::obs
