#include "obs/report.hpp"

#include <chrono>
#include <cstdio>

#include "obs/resource.hpp"
#include "util/log.hpp"

namespace rsm::obs {

JsonValue span_to_json(const SpanStats& stats) {
  JsonValue node = JsonValue::object();
  node.set("name", stats.name);
  node.set("count", static_cast<std::int64_t>(stats.count));
  node.set("total_seconds", stats.total_seconds);
  node.set("min_seconds", stats.min_seconds);
  node.set("max_seconds", stats.max_seconds);
  node.set("cpu_seconds", stats.cpu_seconds);
  JsonValue children = JsonValue::array();
  for (const SpanStats& child : stats.children)
    children.push_back(span_to_json(child));
  node.set("children", std::move(children));
  return node;
}

JsonValue metrics_to_json(const MetricsSnapshot& snapshot) {
  JsonValue out = JsonValue::object();

  JsonValue counters = JsonValue::array();
  for (const CounterSample& c : snapshot.counters) {
    JsonValue item = JsonValue::object();
    item.set("name", c.name);
    item.set("value", c.value);
    counters.push_back(std::move(item));
  }
  out.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::array();
  for (const GaugeSample& g : snapshot.gauges) {
    JsonValue item = JsonValue::object();
    item.set("name", g.name);
    item.set("value", g.value);
    gauges.push_back(std::move(item));
  }
  out.set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::array();
  for (const HistogramSample& h : snapshot.histograms) {
    JsonValue item = JsonValue::object();
    item.set("name", h.name);
    JsonValue bounds = JsonValue::array();
    for (const double b : h.upper_bounds) bounds.push_back(b);
    item.set("upper_bounds", std::move(bounds));
    JsonValue counts = JsonValue::array();
    for (const std::int64_t c : h.bucket_counts) counts.push_back(c);
    item.set("bucket_counts", std::move(counts));
    item.set("count", h.count);
    item.set("sum", h.sum);
    histograms.push_back(std::move(item));
  }
  out.set("histograms", std::move(histograms));
  return out;
}

JsonValue build_report(const std::string& tool, JsonValue results,
                       const RingBufferSink* telemetry) {
  RSM_CHECK_MSG(results.is_object(), "report results must be a JSON object");

  JsonValue report = JsonValue::object();
  report.set("schema_version", kReportSchemaVersion);
  report.set("tool", tool);
  report.set("generated_unix_ms",
             static_cast<std::int64_t>(
                 std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count()));

  JsonValue tracing = JsonValue::object();
  tracing.set("compiled", kTracingCompiled);
  tracing.set("enabled", tracing_enabled());
  report.set("tracing", std::move(tracing));

  report.set("spans", span_to_json(trace_snapshot()));

  // Sampled (and published as resource.* gauges) before the metrics
  // snapshot below, so the registry view includes the same sample.
  const ResourceUsage usage = sample_resource_usage();
  record_resource_metrics(usage);
  report.set("resources", resource_json(usage));

  report.set("metrics", metrics_to_json(metrics().snapshot()));

  if (telemetry != nullptr) {
    JsonValue tele = JsonValue::object();
    JsonValue records = JsonValue::array();
    for (const TelemetryRecord& record : telemetry->records())
      records.push_back(telemetry_record_value(record));
    tele.set("records", std::move(records));
    tele.set("dropped", static_cast<std::int64_t>(telemetry->dropped()));
    report.set("telemetry", std::move(tele));
  } else {
    report.set("telemetry", JsonValue());
  }

  report.set("results", std::move(results));
  return report;
}

bool write_report(const std::string& path, const std::string& tool,
                  JsonValue results, const RingBufferSink* telemetry) {
  const JsonValue report = build_report(tool, std::move(results), telemetry);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    RSM_WARN("observability: cannot write report to '" << path << '\'');
    return false;
  }
  const std::string text = report.dump_pretty();
  std::fputs(text.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  RSM_INFO("observability: wrote " << path);
  return true;
}

}  // namespace rsm::obs
