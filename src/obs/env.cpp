#include "obs/env.hpp"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace rsm::obs {
namespace {

int g_level = 1;

/// -1 = unset/unparsable; otherwise the numeric level.
int parse_level(const char* value) {
  if (value == nullptr || *value == '\0') return -1;
  if (std::strcmp(value, "off") == 0) return 0;
  if (std::strcmp(value, "trace") == 0) return 1;
  if (std::strcmp(value, "jsonl") == 0) return 2;
  char* end = nullptr;
  const long level = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || level < 0) return -1;
  return static_cast<int>(level > 2 ? 2 : level);
}

void apply_once() {
  const char* raw = std::getenv("RSM_OBS_LEVEL");
  int level = parse_level(raw);
  if (raw != nullptr && *raw != '\0' && level < 0) {
    RSM_WARN("RSM_OBS_LEVEL='" << raw
                               << "' not understood (want 0/off, 1/trace, "
                                  "2/jsonl); ignoring");
  }
  if (level < 0) level = 1;  // default: tracing on, no sink
  g_level = level;

  set_tracing_enabled(level >= 1 && kTracingCompiled);
  if (level >= 2) {
    const char* path = std::getenv("RSM_OBS_JSONL");
    const std::string jsonl_path =
        (path != nullptr && *path != '\0') ? path : "rsm_telemetry.jsonl";
    try {
      set_telemetry_sink(std::make_shared<JsonlFileSink>(jsonl_path));
      RSM_INFO("observability: telemetry JSONL -> " << jsonl_path);
    } catch (const Error& e) {
      RSM_WARN("observability: " << e.what() << "; telemetry disabled");
    }
  }
}

}  // namespace

void apply_env_overrides() {
  static std::once_flag flag;
  std::call_once(flag, apply_once);
}

int obs_level() {
  apply_env_overrides();
  return g_level;
}

}  // namespace rsm::obs
