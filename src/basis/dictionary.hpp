// Basis dictionary: a list of multi-indices plus design-matrix construction.
//
// Given K samples of dY (rows of a K x N matrix), the dictionary produces the
// K x M design matrix G of eq. (6)-(8): G(k, m) = g_m(dY^(k)). For the
// paper's quadratic OpAmp model M = 20 301 and K = 1000, so G is ~160 MB;
// the dictionary also offers per-column evaluation for streaming use.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "basis/multi_index.hpp"
#include "linalg/matrix.hpp"
#include "util/common.hpp"

namespace rsm {

class BasisDictionary {
 public:
  BasisDictionary(Index num_variables, std::vector<MultiIndex> indices);

  /// Convenience factories mirroring multi_index.hpp generators.
  [[nodiscard]] static BasisDictionary linear(Index num_variables);
  [[nodiscard]] static BasisDictionary quadratic(Index num_variables);
  [[nodiscard]] static BasisDictionary total_degree(Index num_variables,
                                                    int degree);
  [[nodiscard]] static BasisDictionary hyperbolic(Index num_variables,
                                                  int degree);

  [[nodiscard]] Index num_variables() const { return num_variables_; }
  [[nodiscard]] Index size() const {
    return static_cast<Index>(indices_.size());
  }

  [[nodiscard]] const MultiIndex& index(Index m) const;
  [[nodiscard]] const std::vector<MultiIndex>& indices() const {
    return indices_;
  }

  /// g_m evaluated at one sample point (sample.size() == num_variables).
  [[nodiscard]] Real evaluate(Index m, std::span<const Real> sample) const;

  /// Column G_m of the design matrix for all rows of `samples` (K x N).
  [[nodiscard]] std::vector<Real> evaluate_column(Index m,
                                                  const Matrix& samples) const;

  /// Full design matrix G (K x M). Evaluates each 1-D Hermite factor once
  /// per (sample, variable, order) via a per-row order table.
  [[nodiscard]] Matrix design_matrix(const Matrix& samples) const;

  /// Row of the design matrix for a single sample (length M).
  [[nodiscard]] std::vector<Real> design_row(std::span<const Real> sample) const;

  /// Highest Hermite order appearing in any index.
  [[nodiscard]] int max_order() const { return max_order_; }

  /// Text serialization. Together with SparseModel::save/load this makes a
  /// fitted model fully reloadable in another process (a model file's
  /// indices are positions in its dictionary).
  void save(std::ostream& out) const;
  [[nodiscard]] static BasisDictionary load(std::istream& in);

 private:
  Index num_variables_;
  std::vector<MultiIndex> indices_;
  int max_order_ = 0;
};

}  // namespace rsm
