#include "basis/hermite.hpp"

#include <cmath>

namespace rsm {

Real hermite_he(int n, Real x) {
  RSM_CHECK(n >= 0);
  if (n == 0) return 1;
  if (n == 1) return x;
  Real prev = 1;  // He_0
  Real cur = x;   // He_1
  for (int k = 1; k < n; ++k) {
    const Real next = x * cur - static_cast<Real>(k) * prev;
    prev = cur;
    cur = next;
  }
  return cur;
}

Real hermite_normalized(int n, Real x) {
  RSM_CHECK(n >= 0);
  // Recur directly on the normalized family to avoid n! overflow:
  //   g_{n+1}(x) = (x g_n(x) - sqrt(n) g_{n-1}(x)) / sqrt(n+1).
  if (n == 0) return 1;
  Real prev = 1;
  Real cur = x;
  for (int k = 1; k < n; ++k) {
    const Real next = (x * cur - std::sqrt(static_cast<Real>(k)) * prev) /
                      std::sqrt(static_cast<Real>(k + 1));
    prev = cur;
    cur = next;
  }
  return cur;
}

void hermite_normalized_all(int max_order, Real x, std::span<Real> out) {
  RSM_CHECK(max_order >= 0);
  RSM_CHECK(static_cast<int>(out.size()) == max_order + 1);
  out[0] = 1;
  if (max_order == 0) return;
  out[1] = x;
  for (int k = 1; k < max_order; ++k) {
    out[static_cast<std::size_t>(k + 1)] =
        (x * out[static_cast<std::size_t>(k)] -
         std::sqrt(static_cast<Real>(k)) * out[static_cast<std::size_t>(k - 1)]) /
        std::sqrt(static_cast<Real>(k + 1));
  }
}

Real hermite_normalized_derivative(int n, Real x) {
  RSM_CHECK(n >= 0);
  if (n == 0) return 0;
  return std::sqrt(static_cast<Real>(n)) * hermite_normalized(n - 1, x);
}

Real hermite_triple_product(int a, int b, int c) {
  RSM_CHECK(a >= 0 && b >= 0 && c >= 0);
  const int total = a + b + c;
  if (total % 2 != 0) return 0;
  const int s = total / 2;
  if (s < a || s < b || s < c) return 0;  // triangle condition
  // exp(0.5*(ln a! + ln b! + ln c!) - ln(s-a)! - ln(s-b)! - ln(s-c)!).
  const auto lf = [](int n) { return std::lgamma(static_cast<Real>(n + 1)); };
  return std::exp(Real{0.5} * (lf(a) + lf(b) + lf(c)) - lf(s - a) - lf(s - b) -
                  lf(s - c));
}

}  // namespace rsm
