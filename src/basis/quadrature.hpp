// Gauss-Hermite quadrature for expectations under the standard normal.
//
// Used by tests to verify the orthonormality property of eq. (2) exactly
// (an n-point rule integrates polynomials up to degree 2n-1), and by the
// examples to compute analytic moments of fitted models.
#pragma once

#include <functional>
#include <vector>

#include "util/common.hpp"

namespace rsm {

struct QuadratureRule {
  std::vector<Real> nodes;    // abscissae x_i
  std::vector<Real> weights;  // weights w_i summing to 1
};

/// n-point Gauss-Hermite rule in "probabilists'" normalization:
/// sum_i w_i f(x_i) ~= E[f(X)], X ~ N(0,1). Nodes via Newton iteration on
/// the Hermite recurrence; exact for polynomials of degree <= 2n-1.
[[nodiscard]] QuadratureRule gauss_hermite(int num_points);

/// E[f(X)] for X ~ N(0,1) using an n-point rule.
[[nodiscard]] Real normal_expectation(const std::function<Real(Real)>& f,
                                      int num_points = 40);

/// E[f(X1, X2)] for independent standard normals via a tensor rule.
[[nodiscard]] Real normal_expectation_2d(
    const std::function<Real(Real, Real)>& f, int num_points = 40);

}  // namespace rsm
