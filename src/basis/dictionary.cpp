#include "basis/dictionary.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "basis/hermite.hpp"

namespace rsm {

BasisDictionary::BasisDictionary(Index num_variables,
                                 std::vector<MultiIndex> indices)
    : num_variables_(num_variables), indices_(std::move(indices)) {
  RSM_CHECK(num_variables > 0);
  RSM_CHECK(!indices_.empty());
  for (const MultiIndex& mi : indices_) {
    for (const IndexTerm& t : mi.terms()) {
      RSM_CHECK_MSG(t.variable < num_variables,
                    "multi-index references variable " << t.variable
                        << " but dictionary has " << num_variables);
      max_order_ = std::max(max_order_, t.order);
    }
  }
}

BasisDictionary BasisDictionary::linear(Index num_variables) {
  return {num_variables, make_linear_indices(num_variables)};
}

BasisDictionary BasisDictionary::quadratic(Index num_variables) {
  return {num_variables, make_quadratic_indices(num_variables)};
}

BasisDictionary BasisDictionary::total_degree(Index num_variables,
                                              int degree) {
  return {num_variables, make_total_degree_indices(num_variables, degree)};
}

BasisDictionary BasisDictionary::hyperbolic(Index num_variables, int degree) {
  return {num_variables, make_hyperbolic_indices(num_variables, degree)};
}

const MultiIndex& BasisDictionary::index(Index m) const {
  RSM_CHECK(m >= 0 && m < size());
  return indices_[static_cast<std::size_t>(m)];
}

Real BasisDictionary::evaluate(Index m, std::span<const Real> sample) const {
  RSM_CHECK(static_cast<Index>(sample.size()) == num_variables_);
  Real product = 1;
  for (const IndexTerm& t : index(m).terms())
    product *= hermite_normalized(t.order,
                                  sample[static_cast<std::size_t>(t.variable)]);
  return product;
}

std::vector<Real> BasisDictionary::evaluate_column(Index m,
                                                   const Matrix& samples) const {
  RSM_CHECK(samples.cols() == num_variables_);
  std::vector<Real> col(static_cast<std::size_t>(samples.rows()));
  for (Index k = 0; k < samples.rows(); ++k)
    col[static_cast<std::size_t>(k)] = evaluate(m, samples.row(k));
  return col;
}

Matrix BasisDictionary::design_matrix(const Matrix& samples) const {
  RSM_CHECK(samples.cols() == num_variables_);
  const Index rows = samples.rows();
  Matrix g(rows, size());

  // Per sample row: precompute g_o(dy_v) for every variable and order once,
  // then each basis function is a product of table lookups. The table costs
  // O(N * max_order) per row vs O(M * terms) lookups — essential when M is
  // ~20k and most indices share factors.
  std::vector<Real> table(
      static_cast<std::size_t>(num_variables_ * (max_order_ + 1)));
  std::vector<Real> orders(static_cast<std::size_t>(max_order_ + 1));
  for (Index k = 0; k < rows; ++k) {
    std::span<const Real> sample = samples.row(k);
    for (Index v = 0; v < num_variables_; ++v) {
      hermite_normalized_all(max_order_, sample[static_cast<std::size_t>(v)],
                             orders);
      std::copy(orders.begin(), orders.end(),
                table.begin() + v * (max_order_ + 1));
    }
    Real* out_row = g.row(k).data();
    for (Index m = 0; m < size(); ++m) {
      Real product = 1;
      for (const IndexTerm& t : indices_[static_cast<std::size_t>(m)].terms())
        product *= table[static_cast<std::size_t>(t.variable * (max_order_ + 1) +
                                                   t.order)];
      out_row[m] = product;
    }
  }
  return g;
}

void BasisDictionary::save(std::ostream& out) const {
  out << "basis_dictionary v1\n" << num_variables_ << " " << size() << "\n";
  for (const MultiIndex& mi : indices_) {
    out << mi.terms().size();
    for (const IndexTerm& t : mi.terms())
      out << " " << t.variable << " " << t.order;
    out << "\n";
  }
}

BasisDictionary BasisDictionary::load(std::istream& in) {
  std::string tag, version;
  in >> tag >> version;
  RSM_CHECK_MSG(tag == "basis_dictionary" && version == "v1",
                "unrecognized dictionary file header");
  Index num_variables = 0, count = 0;
  in >> num_variables >> count;
  RSM_CHECK_MSG(in && num_variables > 0 && count > 0,
                "malformed dictionary header");
  std::vector<MultiIndex> indices;
  indices.reserve(static_cast<std::size_t>(count));
  for (Index i = 0; i < count; ++i) {
    std::size_t num_terms = 0;
    in >> num_terms;
    std::vector<IndexTerm> terms(num_terms);
    for (IndexTerm& t : terms) in >> t.variable >> t.order;
    RSM_CHECK_MSG(static_cast<bool>(in), "truncated dictionary file");
    indices.push_back(MultiIndex(std::move(terms)));
  }
  return {num_variables, std::move(indices)};
}

std::vector<Real> BasisDictionary::design_row(
    std::span<const Real> sample) const {
  RSM_CHECK(static_cast<Index>(sample.size()) == num_variables_);
  std::vector<Real> table(
      static_cast<std::size_t>(num_variables_ * (max_order_ + 1)));
  std::vector<Real> orders(static_cast<std::size_t>(max_order_ + 1));
  for (Index v = 0; v < num_variables_; ++v) {
    hermite_normalized_all(max_order_, sample[static_cast<std::size_t>(v)],
                           orders);
    std::copy(orders.begin(), orders.end(),
              table.begin() + v * (max_order_ + 1));
  }
  std::vector<Real> row(static_cast<std::size_t>(size()));
  for (Index m = 0; m < size(); ++m) {
    Real product = 1;
    for (const IndexTerm& t : indices_[static_cast<std::size_t>(m)].terms())
      product *= table[static_cast<std::size_t>(t.variable * (max_order_ + 1) +
                                                 t.order)];
    row[static_cast<std::size_t>(m)] = product;
  }
  return row;
}

}  // namespace rsm
