#include "basis/multi_index.hpp"

#include <algorithm>
#include <sstream>

namespace rsm {

MultiIndex::MultiIndex(std::vector<IndexTerm> terms) : terms_(std::move(terms)) {
  std::sort(terms_.begin(), terms_.end(),
            [](const IndexTerm& a, const IndexTerm& b) {
              return a.variable < b.variable;
            });
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    RSM_CHECK_MSG(terms_[i].order > 0, "multi-index orders must be positive");
    RSM_CHECK(terms_[i].variable >= 0);
    if (i > 0)
      RSM_CHECK_MSG(terms_[i].variable != terms_[i - 1].variable,
                    "duplicate variable in multi-index");
  }
}

MultiIndex MultiIndex::linear(Index v) {
  return MultiIndex{{IndexTerm{v, 1}}};
}

MultiIndex MultiIndex::square(Index v) {
  return MultiIndex{{IndexTerm{v, 2}}};
}

MultiIndex MultiIndex::cross(Index u, Index v) {
  RSM_CHECK(u != v);
  return MultiIndex{{IndexTerm{u, 1}, IndexTerm{v, 1}}};
}

int MultiIndex::total_degree() const {
  int d = 0;
  for (const IndexTerm& t : terms_) d += t.order;
  return d;
}

std::string MultiIndex::to_string() const {
  if (terms_.empty()) return "1";
  std::ostringstream os;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (i) os << "*";
    os << "H" << terms_[i].order << "(y" << terms_[i].variable << ")";
  }
  return os.str();
}

std::vector<MultiIndex> make_linear_indices(Index num_variables) {
  RSM_CHECK(num_variables > 0);
  std::vector<MultiIndex> out;
  out.reserve(static_cast<std::size_t>(num_variables + 1));
  out.push_back(MultiIndex::constant());
  for (Index v = 0; v < num_variables; ++v) out.push_back(MultiIndex::linear(v));
  return out;
}

std::vector<MultiIndex> make_quadratic_indices(Index num_variables) {
  RSM_CHECK(num_variables > 0);
  const Index n = num_variables;
  std::vector<MultiIndex> out;
  out.reserve(static_cast<std::size_t>(1 + 2 * n + n * (n - 1) / 2));
  out.push_back(MultiIndex::constant());
  for (Index v = 0; v < n; ++v) out.push_back(MultiIndex::linear(v));
  for (Index v = 0; v < n; ++v) out.push_back(MultiIndex::square(v));
  for (Index u = 0; u < n; ++u)
    for (Index v = u + 1; v < n; ++v) out.push_back(MultiIndex::cross(u, v));
  return out;
}

namespace {

// Recursively extends `prefix` (orders for variables [0, var)) to all
// combinations with remaining degree budget.
void extend(Index var, Index num_variables, int remaining,
            std::vector<IndexTerm>& prefix, std::vector<MultiIndex>& out,
            Index max_count) {
  if (var == num_variables) {
    RSM_CHECK_MSG(static_cast<Index>(out.size()) < max_count,
                  "total-degree dictionary exceeds max_count=" << max_count);
    out.push_back(MultiIndex{prefix});
    return;
  }
  // Order 0 for this variable (not stored).
  extend(var + 1, num_variables, remaining, prefix, out, max_count);
  for (int o = 1; o <= remaining; ++o) {
    prefix.push_back(IndexTerm{var, o});
    extend(var + 1, num_variables, remaining - o, prefix, out, max_count);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<MultiIndex> make_total_degree_indices(Index num_variables,
                                                  int degree,
                                                  Index max_count) {
  RSM_CHECK(num_variables > 0 && degree >= 0);
  std::vector<MultiIndex> all;
  std::vector<IndexTerm> prefix;
  extend(0, num_variables, degree, prefix, all, max_count);
  // Graded order: sort by total degree, stable within a degree.
  std::stable_sort(all.begin(), all.end(),
                   [](const MultiIndex& a, const MultiIndex& b) {
                     return a.total_degree() < b.total_degree();
                   });
  return all;
}

namespace {

// Extends `prefix` over variables [var, N) with remaining hyperbolic budget
// `budget` (the product of (order+1) factors still allowed).
void extend_hyperbolic(Index var, Index num_variables, int budget,
                       std::vector<IndexTerm>& prefix,
                       std::vector<MultiIndex>& out, Index max_count) {
  if (var == num_variables) {
    RSM_CHECK_MSG(static_cast<Index>(out.size()) < max_count,
                  "hyperbolic dictionary exceeds max_count=" << max_count);
    out.push_back(MultiIndex{prefix});
    return;
  }
  extend_hyperbolic(var + 1, num_variables, budget, prefix, out, max_count);
  for (int o = 1; o + 1 <= budget; ++o) {
    prefix.push_back(IndexTerm{var, o});
    extend_hyperbolic(var + 1, num_variables, budget / (o + 1), prefix, out,
                      max_count);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<MultiIndex> make_hyperbolic_indices(Index num_variables,
                                                int degree, Index max_count) {
  RSM_CHECK(num_variables > 0 && degree >= 0);
  std::vector<MultiIndex> all;
  std::vector<IndexTerm> prefix;
  extend_hyperbolic(0, num_variables, degree + 1, prefix, all, max_count);
  std::stable_sort(all.begin(), all.end(),
                   [](const MultiIndex& a, const MultiIndex& b) {
                     return a.total_degree() < b.total_degree();
                   });
  return all;
}

Real total_degree_count(Index num_variables, int degree) {
  // binomial(N + d, d) computed in floating point.
  Real c = 1;
  for (int i = 1; i <= degree; ++i)
    c *= static_cast<Real>(num_variables + i) / static_cast<Real>(i);
  return c;
}

}  // namespace rsm
