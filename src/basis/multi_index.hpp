// Sparse multi-indices for high-dimensional Hermite products.
//
// A basis function over N variables is a product of 1-D Hermite polynomials,
//   g(dY) = prod_i g_{o_i}(dy_{v_i}),
// identified by the set {(v_i, o_i)}. N reaches 21 310 in the paper's SRAM
// example while the product involves at most two variables (quadratic
// models), so the representation is sparse: only nonzero orders are stored.
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace rsm {

/// One factor of the product: Hermite order `order` in variable `variable`.
struct IndexTerm {
  Index variable = 0;
  int order = 0;

  friend bool operator==(const IndexTerm&, const IndexTerm&) = default;
};

/// A multi-index: sorted-by-variable list of nonzero-order terms.
/// The empty list is the constant basis function g == 1.
class MultiIndex {
 public:
  MultiIndex() = default;
  explicit MultiIndex(std::vector<IndexTerm> terms);

  /// Constant (order-zero) index.
  [[nodiscard]] static MultiIndex constant() { return MultiIndex{}; }

  /// Pure linear index: g_1 in variable v.
  [[nodiscard]] static MultiIndex linear(Index v);

  /// Pure quadratic index: g_2 in variable v.
  [[nodiscard]] static MultiIndex square(Index v);

  /// Cross term: g_1(dy_u) * g_1(dy_v), u != v.
  [[nodiscard]] static MultiIndex cross(Index u, Index v);

  [[nodiscard]] const std::vector<IndexTerm>& terms() const { return terms_; }

  /// Total polynomial degree (sum of orders).
  [[nodiscard]] int total_degree() const;

  [[nodiscard]] bool is_constant() const { return terms_.empty(); }

  /// Human-readable form, e.g. "H1(y3)*H2(y7)" or "1".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const MultiIndex&, const MultiIndex&) = default;

 private:
  std::vector<IndexTerm> terms_;
};

/// Generators for the standard dictionaries. All include the constant term
/// first, then linear terms in variable order, matching the paper's model
/// structure (Section II).

/// Constant + N linear terms: M = N + 1.
[[nodiscard]] std::vector<MultiIndex> make_linear_indices(Index num_variables);

/// Full quadratic dictionary: constant, N linear, N squares, N(N-1)/2 cross
/// terms: M = 1 + 2N + N(N-1)/2. For N = 200 this is the paper's 20 301.
[[nodiscard]] std::vector<MultiIndex> make_quadratic_indices(
    Index num_variables);

/// All multi-indices with total degree <= `degree` over `num_variables`
/// variables (graded ordering: degree 0, then 1, ...). Intended for small N;
/// throws if the count would exceed `max_count`.
[[nodiscard]] std::vector<MultiIndex> make_total_degree_indices(
    Index num_variables, int degree, Index max_count = 2'000'000);

/// Number of indices make_total_degree_indices would produce:
/// binomial(N + d, d). Returns the exact count as Real to avoid overflow.
[[nodiscard]] Real total_degree_count(Index num_variables, int degree);

/// Hyperbolic-cross dictionary: all multi-indices with
///   prod_i (order_i + 1) <= degree + 1.
/// Keeps every 1-D term up to `degree` but prunes high-order interactions —
/// e.g. at degree 4 it admits H4(y_i) and H1*H1 cross terms but not
/// H2*H2 — so higher-order models stay tractable at large N, the standard
/// trick in the polynomial-chaos literature. Graded ordering; throws if the
/// count would exceed `max_count`.
[[nodiscard]] std::vector<MultiIndex> make_hyperbolic_indices(
    Index num_variables, int degree, Index max_count = 2'000'000);

}  // namespace rsm
