// Normalized probabilists' Hermite polynomials.
//
// Section II, eq. (2)-(4): the basis functions are orthonormal under the
// standard-normal weight. With He_n the probabilists' Hermite polynomials
// (He_0 = 1, He_1 = x, He_2 = x^2 - 1, ...), the normalized family is
//   g_n(x) = He_n(x) / sqrt(n!),
// satisfying E[g_i(X) g_j(X)] = [i == j] for X ~ N(0,1). These match the
// paper's eq. (3): g_3(x) = (x^2 - 1)/sqrt(2).
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace rsm {

/// He_n(x), the (unnormalized) probabilists' Hermite polynomial, by the
/// three-term recurrence He_{n+1} = x He_n - n He_{n-1}.
[[nodiscard]] Real hermite_he(int n, Real x);

/// g_n(x) = He_n(x)/sqrt(n!), orthonormal under N(0,1).
[[nodiscard]] Real hermite_normalized(int n, Real x);

/// Evaluates g_0..g_max_order at x in one recurrence pass.
/// out.size() must be max_order + 1.
void hermite_normalized_all(int max_order, Real x, std::span<Real> out);

/// d/dx of g_n: g_n'(x) = sqrt(n) * g_{n-1}(x).
[[nodiscard]] Real hermite_normalized_derivative(int n, Real x);

/// E[g_a(X) g_b(X) g_c(X)] for X ~ N(0,1): the Hermite linearization
/// coefficient sqrt(a! b! c!) / ((s-a)! (s-b)! (s-c)!) when a+b+c = 2s is
/// even and the triangle condition s >= max(a,b,c) holds; 0 otherwise.
/// Enables closed-form third moments of fitted models (APEX-style moment
/// extraction, the paper's ref [8]).
[[nodiscard]] Real hermite_triple_product(int a, int b, int c);

}  // namespace rsm
