#include "basis/quadrature.hpp"

#include <cmath>

#include "basis/hermite.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/matrix.hpp"

namespace rsm {

QuadratureRule gauss_hermite(int num_points) {
  RSM_CHECK(num_points >= 1);
  const Index n = num_points;

  // Golub-Welsch: nodes are the eigenvalues of the Jacobi matrix of the
  // orthonormal probabilists' Hermite family (zero diagonal, off-diagonal
  // b_k = sqrt(k)); the weight of node i is mu_0 * (first eigenvector
  // component)^2 with mu_0 = 1 for a probability measure. This is robust at
  // any order, unlike Newton iteration from asymptotic initial guesses.
  Matrix jacobi(n, n);
  for (Index k = 1; k < n; ++k) {
    const Real b = std::sqrt(static_cast<Real>(k));
    jacobi(k - 1, k) = b;
    jacobi(k, k - 1) = b;
  }
  const SymmetricEigen eig = eigen_symmetric(jacobi);

  QuadratureRule rule;
  rule.nodes.resize(static_cast<std::size_t>(n));
  rule.weights.resize(static_cast<std::size_t>(n));
  // eigen_symmetric sorts descending; emit ascending nodes.
  for (Index i = 0; i < n; ++i) {
    const Index src = n - 1 - i;
    rule.nodes[static_cast<std::size_t>(i)] =
        eig.values[static_cast<std::size_t>(src)];
    const Real v0 = eig.vectors(0, src);
    rule.weights[static_cast<std::size_t>(i)] = v0 * v0;
  }
  return rule;
}

Real normal_expectation(const std::function<Real(Real)>& f, int num_points) {
  const QuadratureRule rule = gauss_hermite(num_points);
  Real s = 0;
  for (std::size_t i = 0; i < rule.nodes.size(); ++i)
    s += rule.weights[i] * f(rule.nodes[i]);
  return s;
}

Real normal_expectation_2d(const std::function<Real(Real, Real)>& f,
                           int num_points) {
  const QuadratureRule rule = gauss_hermite(num_points);
  Real s = 0;
  for (std::size_t i = 0; i < rule.nodes.size(); ++i)
    for (std::size_t j = 0; j < rule.nodes.size(); ++j)
      s += rule.weights[i] * rule.weights[j] * f(rule.nodes[i], rule.nodes[j]);
  return s;
}

}  // namespace rsm
