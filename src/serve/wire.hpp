// Little-endian wire primitives shared by the model codec and the serving
// protocol.
//
// Fixed-width little-endian integers plus IEEE-754 doubles moved through
// their bit patterns — the conventions io/checkpoint.cpp established — so
// model files and protocol frames are byte-for-byte identical across
// platforms. The writer appends to a caller-owned std::string (the unit
// both atomic_write_file and the socket send path consume); the reader is
// bounds-checked and fails closed with a structured IoError naming the
// artifact being decoded, so a truncated buffer can never yield a value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/common.hpp"

namespace rsm::serve {

void put_u8(std::string& out, std::uint8_t v);
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);

/// Real through its IEEE-754 bit pattern (u64, little-endian).
void put_real(std::string& out, Real v);

/// u32 byte count followed by the raw bytes.
void put_bytes(std::string& out, std::string_view bytes);

/// Bounds-checked little-endian reader. Every accessor verifies the bytes
/// it needs exist before touching them and throws IoError("<context>: ...")
/// on overrun — decoding a hostile or truncated buffer is safe by
/// construction. `context` (and the viewed bytes) must outlive the reader.
class WireReader {
 public:
  WireReader(std::string_view bytes, const char* context)
      : bytes_(bytes), context_(context) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] Real real();

  /// Length-prefixed byte string written by put_bytes. The declared length
  /// is validated against the remaining buffer before any allocation.
  [[nodiscard]] std::string bytes();

  /// Exactly `n` raw bytes.
  [[nodiscard]] std::string_view raw(std::size_t n);

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  /// Throws IoError when decoded structures did not consume every byte —
  /// trailing garbage means the artifact is not what its header claims.
  void expect_done() const;

 private:
  [[noreturn]] void fail(const char* what) const;
  const unsigned char* cursor() const;

  std::string_view bytes_;
  std::size_t pos_ = 0;
  const char* context_;
};

}  // namespace rsm::serve
