// Length-prefixed, CRC-guarded binary framing for the model server.
//
// A client connection is a byte stream of frames:
//
//   magic        u32  kFrameMagic ("RSF1" little-endian)
//   type         u8   MessageType
//   payload_len  u32  <= kMaxFramePayload
//   payload      payload_len bytes (request/response body, wire.hpp encoded)
//   crc          u32  CRC32 of the frame's first 9 + payload_len bytes
//
// try_extract_frame() consumes frames incrementally from a receive buffer:
// an incomplete frame returns nullopt (read more), a structurally invalid
// one — wrong magic, length beyond the cap, CRC mismatch — throws a
// structured ProtocolError. After a malformed frame the stream offset is
// unknowable, so the server replies with an error frame and closes the
// connection instead of guessing a resync point.
//
// Payload layouts (all wire.hpp little-endian; `bytes` = u32 len + raw):
//
//   kEvalRequest        bytes name, u32 version, u32 n, n x real sample
//   kEvalResponse       real value
//   kEvalBatchRequest   bytes name, u32 version, u32 rows, u32 cols,
//                       rows*cols x real (row-major)
//   kEvalBatchResponse  u32 rows, rows x real
//   kYieldRequest       bytes name, u32 version, real lower, real upper,
//                       u64 num_samples, u64 seed
//   kYieldResponse      real yield, real standard_error, u64 num_samples,
//                       u64 num_failures
//   kWorstCaseRequest   bytes name, u32 version, real radius, u8 maximize
//   kWorstCaseResponse  real value, real sigma_distance, u32 iterations,
//                       u8 converged, u32 n, n x real corner
//   kListModelsRequest  (empty)
//   kListModelsResponse u32 count, count x (bytes name, u32 version,
//                       u64 fingerprint, u32 num_variables, u32 num_terms)
//   kReloadRequest      (empty)
//   kReloadResponse     u32 models_reloaded, u32 models_failed
//   kErrorResponse      u8 ErrorCode, bytes message; kOverloaded frames
//                       append u32 retry_after_ms (a backoff hint — the
//                       request was shed by admission control and will
//                       succeed on retry once load drains)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/common.hpp"

namespace rsm::serve {

inline constexpr std::uint32_t kFrameMagic = 0x31465352;  // "RSF1" in LE
inline constexpr std::size_t kFrameHeaderBytes = 9;       // magic+type+len
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

enum class MessageType : std::uint8_t {
  kEvalRequest = 1,
  kEvalBatchRequest = 2,
  kYieldRequest = 3,
  kWorstCaseRequest = 4,
  kListModelsRequest = 5,
  // 6 and 7 are skipped: responses are request|64, and 6|64 = 70 is taken
  // by kErrorResponse (7|64 = 71 stays reserved alongside it).
  kReloadRequest = 8,

  kEvalResponse = 65,
  kEvalBatchResponse = 66,
  kYieldResponse = 67,
  kWorstCaseResponse = 68,
  kListModelsResponse = 69,
  kErrorResponse = 70,
  kReloadResponse = 72,
};

struct Frame {
  MessageType type = MessageType::kErrorResponse;
  std::string payload;
};

/// Wraps `payload` in a complete frame (header + CRC), ready to send.
[[nodiscard]] std::string encode_frame(MessageType type,
                                       std::string_view payload);

/// Pops one complete frame off the front of `buffer` (erasing its bytes).
/// Returns nullopt while the buffer holds only a prefix of a frame; throws
/// ProtocolError when the bytes at the front cannot be a valid frame.
[[nodiscard]] std::optional<Frame> try_extract_frame(std::string& buffer);

}  // namespace rsm::serve
