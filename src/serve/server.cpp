#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <vector>

#include "core/worst_case.hpp"
#include "core/yield.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/model_codec.hpp"
#include "serve/wire.hpp"
#include "stats/rng.hpp"
#include "util/errors.hpp"

namespace rsm::serve {
namespace {

/// Monte-Carlo budget cap for yield requests: a client must not be able to
/// park the serving loop on one request for minutes.
constexpr std::uint64_t kMaxYieldSamples = 100'000'000;

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Rethrows WireReader truncation (IoError) as the protocol-layer error a
/// malformed-but-well-framed request deserves.
template <typename Fn>
auto parse_payload(const char* request_name, Fn&& fn) {
  try {
    return fn();
  } catch (const IoError& e) {
    std::ostringstream os;
    os << "malformed " << request_name << " payload: " << e.what();
    throw ProtocolError(os.str());
  }
}

}  // namespace

struct ModelServer::Connection {
  int fd = -1;
  std::string rx;
  std::string tx;
  bool closed = false;
  /// Stream is done (framing error, read timeout): stop reading, flush the
  /// buffered responses — the error frame must reach the peer — then close.
  bool close_after_flush = false;
  int admitted_this_cycle = 0;
  /// Armed while rx holds a partial frame (the slow-loris detector).
  Deadline read_deadline;
  /// Armed while tx holds unsent bytes (the stalled-reader detector).
  Deadline write_deadline;
  /// Armed between requests when the idle reaper is on.
  Deadline idle_deadline;
};

ModelServer::ModelServer(ServerOptions options)
    : options_(std::move(options)),
      registry_(options_.registry_root),
      pool_(ThreadPool::Options{options_.num_threads, 256}) {
  RSM_CHECK_MSG(!options_.socket_path.empty(),
                "server requires a socket path");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path))
    throw IoError("socket path '" + options_.socket_path +
                  "' exceeds AF_UNIX length limit");
  std::copy(options_.socket_path.begin(), options_.socket_path.end(),
            addr.sun_path);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket()");
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("bind('" + options_.socket_path + "')");
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("listen('" + options_.socket_path + "')");
  }
  set_nonblocking(listen_fd_);
  registry_fingerprint_ = registry_.state_fingerprint();
}

ModelServer::~ModelServer() {
  for (auto& [fd, connection] : connections_) ::close(fd);
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

const SparseModel& ModelServer::model_for(const std::string& name,
                                          std::uint32_t version) {
  std::uint32_t resolved = version;
  const bool want_latest = resolved == 0;
  if (want_latest) {
    resolved = registry_.latest_version(name);
    if (resolved == 0)
      throw IoError("registry: no versions of model '" + name + "'");
  }
  const auto key = std::make_pair(name, resolved);

  if (want_latest && bad_versions_.count(key) != 0) {
    // Known-corrupt latest: fail closed to the last-good version without
    // re-reading the bad file on every request.
    const auto good = latest_good_.find(name);
    if (good != latest_good_.end()) {
      const auto good_it =
          model_cache_.find(std::make_pair(name, good->second));
      if (good_it != model_cache_.end()) return good_it->second;
    }
    throw IoError("registry: model '" + name + "' v" +
                  std::to_string(resolved) +
                  " is corrupt and no last-good version is cached");
  }

  auto it = model_cache_.find(key);
  if (it == model_cache_.end()) {
    try {
      it = model_cache_.emplace(key, registry_.load(name, resolved)).first;
    } catch (const StructuredError&) {
      if (!want_latest) throw;  // a pinned version never falls back
      bad_versions_.insert(key);
      ++stats_.reload_failures;
      obs::metrics().counter("serve.reload_failures").increment();
      const auto good = latest_good_.find(name);
      if (good == latest_good_.end()) throw;
      const auto good_it =
          model_cache_.find(std::make_pair(name, good->second));
      if (good_it == model_cache_.end()) throw;
      return good_it->second;
    }
  }
  if (want_latest) latest_good_[name] = resolved;
  return it->second;
}

std::pair<std::uint32_t, std::uint32_t> ModelServer::reload_models() {
  RSM_TRACE_SPAN("serve.reload");
  // A reload is a fresh look at the registry: forget prior corruption
  // verdicts so a republished (fixed) version gets another chance.
  bad_versions_.clear();
  std::uint32_t reloaded = 0;
  std::uint32_t failed = 0;
  for (auto& [name, current] : latest_good_) {
    const std::uint32_t latest = registry_.latest_version(name);
    if (latest == 0 || latest == current) continue;
    try {
      SparseModel model = registry_.load(name, latest);
      model_cache_.insert_or_assign(std::make_pair(name, latest),
                                    std::move(model));
      const std::string& swapped = name;
      std::erase_if(model_cache_, [&](const auto& entry) {
        return entry.first.first == swapped && entry.first.second != latest;
      });
      current = latest;
      ++reloaded;
      ++stats_.reloads;
      obs::metrics().counter("serve.reloads").increment();
    } catch (const StructuredError&) {
      // Fail closed: remember the version as bad and keep serving
      // `current` — the registry publish was torn or corrupt.
      bad_versions_.insert(std::make_pair(name, latest));
      ++failed;
      ++stats_.reload_failures;
      obs::metrics().counter("serve.reload_failures").increment();
    }
  }
  registry_fingerprint_ = registry_.state_fingerprint();
  return {reloaded, failed};
}

std::string ModelServer::handle_eval(const std::string& payload) {
  RSM_TRACE_SPAN("serve.eval");
  struct Parsed {
    std::string name;
    std::uint32_t version;
    std::vector<Real> sample;
  };
  const Parsed parsed = parse_payload("eval", [&] {
    WireReader in(payload, "eval request");
    Parsed p;
    p.name = in.bytes();
    p.version = in.u32();
    const std::uint32_t n = in.u32();
    p.sample.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) p.sample.push_back(in.real());
    in.expect_done();
    return p;
  });
  const SparseModel& model = model_for(parsed.name, parsed.version);
  if (static_cast<Index>(parsed.sample.size()) !=
      model.dictionary().num_variables()) {
    std::ostringstream os;
    os << "eval: sample has " << parsed.sample.size() << " values but model '"
       << parsed.name << "' has " << model.dictionary().num_variables()
       << " variables";
    throw ProtocolError(os.str());
  }
  const Real value = model.predict(parsed.sample);
  ++stats_.evals;
  obs::metrics().counter("serve.evals").increment();
  std::string response;
  put_real(response, value);
  return encode_frame(MessageType::kEvalResponse, response);
}

std::string ModelServer::handle_eval_batch(const std::string& payload) {
  RSM_TRACE_SPAN("serve.eval_batch");
  struct Parsed {
    std::string name;
    std::uint32_t version;
    Index rows;
    Index cols;
    std::vector<Real> samples;
  };
  const Parsed parsed = parse_payload("eval_batch", [&] {
    WireReader in(payload, "eval_batch request");
    Parsed p;
    p.name = in.bytes();
    p.version = in.u32();
    p.rows = static_cast<Index>(in.u32());
    p.cols = static_cast<Index>(in.u32());
    p.samples.reserve(static_cast<std::size_t>(p.rows * p.cols));
    for (Index i = 0; i < p.rows * p.cols; ++i)
      p.samples.push_back(in.real());
    in.expect_done();
    return p;
  });
  const SparseModel& model = model_for(parsed.name, parsed.version);
  if (parsed.cols != model.dictionary().num_variables()) {
    std::ostringstream os;
    os << "eval_batch: rows have " << parsed.cols << " values but model '"
       << parsed.name << "' has " << model.dictionary().num_variables()
       << " variables";
    throw ProtocolError(os.str());
  }

  std::vector<Real> out(static_cast<std::size_t>(parsed.rows));
  const Index chunk = std::max<Index>(Index{1}, options_.batch_chunk);
  if (parsed.rows <= chunk) {
    model.predict_batch(parsed.samples, parsed.rows, out);
  } else {
    // Fan the request across the pool in `chunk`-row slices; each worker
    // writes a disjoint range of `out`, so no synchronization beyond
    // wait_idle() is needed.
    for (Index r0 = 0; r0 < parsed.rows; r0 += chunk) {
      const Index nb = std::min(chunk, parsed.rows - r0);
      pool_.submit([&model, &parsed, &out, r0, nb] {
        const std::size_t offset =
            static_cast<std::size_t>(r0 * parsed.cols);
        model.predict_batch(
            std::span<const Real>(parsed.samples.data() + offset,
                                  static_cast<std::size_t>(nb * parsed.cols)),
            nb,
            std::span<Real>(out.data() + r0, static_cast<std::size_t>(nb)));
      });
    }
    pool_.wait_idle();
  }
  stats_.batch_rows += static_cast<std::uint64_t>(parsed.rows);
  obs::metrics().counter("serve.batch_rows").increment(parsed.rows);

  std::string response;
  put_u32(response, static_cast<std::uint32_t>(parsed.rows));
  for (const Real v : out) put_real(response, v);
  return encode_frame(MessageType::kEvalBatchResponse, response);
}

std::string ModelServer::handle_yield(const std::string& payload) {
  RSM_TRACE_SPAN("serve.yield");
  struct Parsed {
    std::string name;
    std::uint32_t version;
    Specification spec;
    std::uint64_t num_samples;
    std::uint64_t seed;
  };
  const Parsed parsed = parse_payload("yield", [&] {
    WireReader in(payload, "yield request");
    Parsed p;
    p.name = in.bytes();
    p.version = in.u32();
    p.spec.lower = in.real();
    p.spec.upper = in.real();
    p.num_samples = in.u64();
    p.seed = in.u64();
    in.expect_done();
    return p;
  });
  if (parsed.num_samples == 0 || parsed.num_samples > kMaxYieldSamples) {
    std::ostringstream os;
    os << "yield: num_samples " << parsed.num_samples
       << " outside [1, " << kMaxYieldSamples << "]";
    throw ProtocolError(os.str());
  }
  const SparseModel& model = model_for(parsed.name, parsed.version);
  Rng rng(parsed.seed);
  const YieldResult result = estimate_yield(
      model, parsed.spec, static_cast<Index>(parsed.num_samples), rng);
  std::string response;
  put_real(response, result.yield);
  put_real(response, result.standard_error);
  put_u64(response, static_cast<std::uint64_t>(result.num_samples));
  put_u64(response, static_cast<std::uint64_t>(result.num_failures));
  return encode_frame(MessageType::kYieldResponse, response);
}

std::string ModelServer::handle_worst_case(const std::string& payload) {
  RSM_TRACE_SPAN("serve.worst_case");
  struct Parsed {
    std::string name;
    std::uint32_t version;
    Real radius;
    bool maximize;
  };
  const Parsed parsed = parse_payload("worst_case", [&] {
    WireReader in(payload, "worst_case request");
    Parsed p;
    p.name = in.bytes();
    p.version = in.u32();
    p.radius = in.real();
    p.maximize = in.u8() != 0;
    in.expect_done();
    return p;
  });
  if (!(parsed.radius > 0) || parsed.radius > Real{100})
    throw ProtocolError("worst_case: radius outside (0, 100] sigma");
  const SparseModel& model = model_for(parsed.name, parsed.version);
  WorstCaseOptions wc_options;
  wc_options.radius = parsed.radius;
  wc_options.maximize = parsed.maximize;
  const WorstCaseResult result = find_worst_case(model, wc_options);
  std::string response;
  put_real(response, result.value);
  put_real(response, result.sigma_distance);
  put_u32(response, static_cast<std::uint32_t>(result.iterations));
  put_u8(response, result.converged ? 1 : 0);
  put_u32(response, static_cast<std::uint32_t>(result.corner.size()));
  for (const Real v : result.corner) put_real(response, v);
  return encode_frame(MessageType::kWorstCaseResponse, response);
}

std::string ModelServer::handle_list_models() {
  RSM_TRACE_SPAN("serve.list_models");
  const std::vector<ModelRecord> records = registry_.list();
  std::string response;
  put_u32(response, static_cast<std::uint32_t>(records.size()));
  for (const ModelRecord& r : records) {
    put_bytes(response, r.name);
    put_u32(response, r.version);
    put_u64(response, r.fingerprint);
    put_u32(response, static_cast<std::uint32_t>(r.num_variables));
    put_u32(response, static_cast<std::uint32_t>(r.num_terms));
  }
  return encode_frame(MessageType::kListModelsResponse, response);
}

std::string ModelServer::handle_reload(const std::string& payload) {
  if (!payload.empty())
    throw ProtocolError("reload: request carries an unexpected payload");
  const auto [reloaded, failed] = reload_models();
  std::string response;
  put_u32(response, reloaded);
  put_u32(response, failed);
  return encode_frame(MessageType::kReloadResponse, response);
}

std::string ModelServer::error_frame(ErrorCode code,
                                     const std::string& message) const {
  std::string response;
  put_u8(response, static_cast<std::uint8_t>(code));
  put_bytes(response, message);
  // Overload is retryable by contract: tell the client how long to back
  // off (protocol.hpp documents the extra field).
  if (code == ErrorCode::kOverloaded)
    put_u32(response, options_.retry_after_ms);
  return encode_frame(MessageType::kErrorResponse, response);
}

std::string ModelServer::handle_request(const Frame& frame) {
  RSM_TRACE_SPAN("serve.request");
  try {
    switch (frame.type) {
      case MessageType::kEvalRequest: return handle_eval(frame.payload);
      case MessageType::kEvalBatchRequest:
        return handle_eval_batch(frame.payload);
      case MessageType::kYieldRequest: return handle_yield(frame.payload);
      case MessageType::kWorstCaseRequest:
        return handle_worst_case(frame.payload);
      case MessageType::kListModelsRequest: return handle_list_models();
      case MessageType::kReloadRequest: return handle_reload(frame.payload);
      default: {
        std::ostringstream os;
        os << "unknown request type "
           << static_cast<int>(static_cast<std::uint8_t>(frame.type));
        throw ProtocolError(os.str());
      }
    }
  } catch (const StructuredError& e) {
    ++stats_.request_errors;
    obs::metrics().counter("serve.request_errors").increment();
    return error_frame(e.code(), e.what());
  } catch (const std::exception& e) {
    ++stats_.request_errors;
    obs::metrics().counter("serve.request_errors").increment();
    return error_frame(ErrorCode::kUnclassified, e.what());
  }
}

void ModelServer::accept_ready() {
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return;  // transient (EINTR, aborted handshake): poll retries
  adopt_connection(fd);
}

void ModelServer::adopt_connection(int fd) {
  set_nonblocking(fd);
  auto connection = std::make_unique<Connection>();
  connection->fd = fd;
  if (options_.idle_timeout_seconds > 0)
    connection->idle_deadline =
        Deadline::after_seconds(options_.idle_timeout_seconds);
  connections_.emplace(fd, std::move(connection));
  ++stats_.connections_accepted;
  obs::metrics().counter("serve.connections").increment();
}

void ModelServer::queue_frame(Connection& connection, std::string frame) {
  if (connection.closed) return;
  connection.tx += frame;
  flush_connection(connection);
}

void ModelServer::flush_connection(Connection& connection) {
  if (connection.closed) return;
  while (!connection.tx.empty()) {
    const ssize_t n = ::send(connection.fd, connection.tx.data(),
                             connection.tx.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      connection.closed = true;
      return;
    }
    connection.tx.erase(0, static_cast<std::size_t>(n));
  }
  if (connection.tx.empty()) {
    connection.write_deadline = Deadline::unlimited();
    if (connection.close_after_flush) connection.closed = true;
  } else if (!connection.write_deadline.is_limited() &&
             options_.write_timeout_seconds > 0) {
    connection.write_deadline =
        Deadline::after_seconds(options_.write_timeout_seconds);
  }
}

void ModelServer::service_connection(Connection& connection) {
  char buf[65536];
  const ssize_t n = ::recv(connection.fd, buf, sizeof(buf), 0);
  if (n == 0) {
    connection.closed = true;
    return;
  }
  if (n < 0) {
    if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK)
      connection.closed = true;
    return;
  }
  connection.rx.append(buf, static_cast<std::size_t>(n));
  if (options_.idle_timeout_seconds > 0)
    connection.idle_deadline =
        Deadline::after_seconds(options_.idle_timeout_seconds);
  drain_connection(connection);
}

void ModelServer::drain_connection(Connection& connection) {
  std::size_t frames_extracted = 0;
  while (!connection.closed && !connection.close_after_flush) {
    std::optional<Frame> frame;
    try {
      frame = try_extract_frame(connection.rx);
    } catch (const ProtocolError& e) {
      // The stream offset is unknowable after a framing error: answer with
      // a structured error frame, then close rather than resync-guess. The
      // close waits for the flush so responses to earlier frames — and the
      // error frame itself — still reach the peer, in order.
      ++stats_.protocol_errors;
      obs::metrics().counter("serve.protocol_errors").increment();
      queue_frame(connection,
                  error_frame(ErrorCode::kProtocolError, e.what()));
      connection.close_after_flush = true;
      if (connection.tx.empty()) connection.closed = true;
      break;
    }
    if (!frame.has_value()) break;
    ++frames_extracted;
    ++stats_.requests_served;
    obs::metrics().counter("serve.requests").increment();

    const bool over_global =
        options_.max_inflight_requests > 0 &&
        admitted_this_cycle_ >= options_.max_inflight_requests;
    const bool over_connection =
        options_.max_pending_per_connection > 0 &&
        connection.admitted_this_cycle >= options_.max_pending_per_connection;
    if (!draining_ && (over_global || over_connection)) {
      // Shed instead of queueing unboundedly. The frame is consumed (the
      // stream stays in sync) and answered with a retryable error.
      ++stats_.requests_shed;
      obs::metrics().counter("serve.requests_shed").increment();
      std::ostringstream os;
      os << "overloaded: "
         << (over_connection ? "connection pending-frame cap ("
                             : "in-flight request budget (")
         << (over_connection ? options_.max_pending_per_connection
                             : options_.max_inflight_requests)
         << ") exhausted; retry after backoff";
      queue_frame(connection, error_frame(ErrorCode::kOverloaded, os.str()));
      continue;
    }
    ++admitted_this_cycle_;
    ++connection.admitted_this_cycle;
    ++stats_.requests_admitted;
    obs::metrics().counter("serve.requests_admitted").increment();
    queue_frame(connection, handle_request(*frame));
  }

  // Read-deadline bookkeeping: armed while a partial frame sits in rx, and
  // re-armed whenever a frame completed this pass — so a slow-loris client
  // trickling one byte per cadence still faces a fixed per-frame budget.
  if (connection.closed || connection.close_after_flush) return;
  if (connection.rx.empty()) {
    connection.read_deadline = Deadline::unlimited();
  } else if (options_.read_timeout_seconds > 0 &&
             (frames_extracted > 0 || !connection.read_deadline.is_limited())) {
    connection.read_deadline =
        Deadline::after_seconds(options_.read_timeout_seconds);
  }
}

void ModelServer::enforce_deadlines(Connection& connection) {
  if (connection.closed) return;
  if (connection.write_deadline.expired()) {
    // The peer is not draining its responses; an error frame would only
    // grow the very buffer it refuses to read. Close outright.
    ++stats_.connections_timed_out;
    obs::metrics().counter("serve.connection_timeouts").increment();
    connection.closed = true;
    return;
  }
  if (connection.read_deadline.expired()) {
    ++stats_.connections_timed_out;
    obs::metrics().counter("serve.connection_timeouts").increment();
    queue_frame(connection,
                error_frame(ErrorCode::kConnectionTimeout,
                            "connection-timeout: partial frame exceeded the "
                            "read deadline"));
    connection.read_deadline = Deadline::unlimited();
    connection.close_after_flush = true;
    if (connection.tx.empty()) connection.closed = true;
    return;
  }
  if (options_.idle_timeout_seconds > 0 && connection.idle_deadline.expired() &&
      connection.rx.empty() && connection.tx.empty() &&
      !connection.close_after_flush) {
    ++stats_.idle_closed;
    obs::metrics().counter("serve.idle_closed").increment();
    connection.closed = true;
  }
}

void ModelServer::probe_registry() {
  if (options_.reload_probe_seconds <= 0) return;
  if (reload_probe_deadline_.is_limited() && !reload_probe_deadline_.expired())
    return;
  reload_probe_deadline_ =
      Deadline::after_seconds(options_.reload_probe_seconds);
  try {
    const std::uint64_t fingerprint = registry_.state_fingerprint();
    if (fingerprint == registry_fingerprint_) return;
    registry_fingerprint_ = fingerprint;
    reload_models();
  } catch (const StructuredError&) {
    // A transient registry listing failure must not kill the serving loop;
    // the next probe retries.
  }
}

void ModelServer::poll_once(int timeout_ms) {
  admitted_this_cycle_ = 0;
  std::vector<pollfd> fds;
  fds.reserve(connections_.size() + 1);
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  for (auto& [fd, connection] : connections_) {
    connection->admitted_this_cycle = 0;
    int events = 0;
    if (!connection->close_after_flush) events |= POLLIN;
    if (!connection->tx.empty()) events |= POLLOUT;
    fds.push_back(pollfd{fd, static_cast<short>(events), 0});
  }

  const int ready =
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return;
    throw_errno("poll()");
  }
  if (ready > 0) {
    if ((fds[0].revents & POLLIN) != 0) accept_ready();
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const auto it = connections_.find(fds[i].fd);
      if (it == connections_.end()) continue;
      Connection& connection = *it->second;
      if ((fds[i].revents & POLLOUT) != 0) flush_connection(connection);
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
        service_connection(connection);
    }
  }
  for (auto& [fd, connection] : connections_) enforce_deadlines(*connection);
  probe_registry();
  std::erase_if(connections_, [](const auto& entry) {
    if (!entry.second->closed) return false;
    ::close(entry.second->fd);
    return true;
  });
}

void ModelServer::run() {
  RSM_TRACE_SPAN("serve.run");
  const int timeout_ms = std::max(
      1, static_cast<int>(options_.poll_interval_seconds * 1000.0));
  while (!options_.cancel.cancelled()) poll_once(timeout_ms);

  // Graceful drain: accept the handshakes already completed in the listen
  // backlog (those clients connected before cancellation and may have
  // requests in flight), scoop any bytes already queued in the kernel,
  // answer every complete frame — admission control is bypassed, a drain
  // must not shed — flush, close. No response to a fully received request
  // is dropped.
  RSM_TRACE_SPAN("serve.drain");
  draining_ = true;
  while (true) {
    pollfd pending{listen_fd_, POLLIN, 0};
    if (::poll(&pending, 1, 0) <= 0 || (pending.revents & POLLIN) == 0) break;
    accept_ready();
  }
  for (auto& [fd, connection] : connections_) {
    char buf[65536];
    while (!connection->closed) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n <= 0) break;
      connection->rx.append(buf, static_cast<std::size_t>(n));
    }
    if (!connection->closed) drain_connection(*connection);
    // Flush whatever the opportunistic sends left behind, bounded by the
    // write deadline so one stalled reader cannot park shutdown forever.
    Deadline limit = options_.write_timeout_seconds > 0
        ? Deadline::after_seconds(options_.write_timeout_seconds)
        : Deadline::unlimited();
    while (!connection->closed && !connection->tx.empty()) {
      if (limit.expired()) {
        ++stats_.connections_timed_out;
        obs::metrics().counter("serve.connection_timeouts").increment();
        break;
      }
      pollfd out{fd, POLLOUT, 0};
      (void)::poll(&out, 1, 10);
      flush_connection(*connection);
    }
    ::close(fd);
  }
  connections_.clear();
}

}  // namespace rsm::serve
