// Versioned, CRC-guarded binary serialization of fitted models.
//
// The paper's product is a tiny artifact — tens of active Hermite terms out
// of a 10^4..10^6-term dictionary — that downstream consumers evaluate
// millions of times. This codec freezes that artifact byte-exactly:
// coefficients travel as IEEE-754 bit patterns (a decoded model predicts
// bit-identically to the fitted one, unlike the text round-trip through
// decimal) and the dictionary metadata is embedded so a model file is
// self-contained.
//
// File layout (all integers little-endian):
//
//   magic      8 bytes  "RSMMODL\n"
//   version    u32      kModelFormatVersion
//   dictionary          u32 num_variables, u32 num_indices, then per index:
//                       u16 num_factors + num_factors x (u32 var, u16 order)
//   fingerprint u64     FNV-1a 64 of the dictionary bytes above
//   terms               u32 count, then per term:
//                       u32 basis_index, u64 coefficient bits
//   crc        u32      CRC32 of every preceding byte
//
// Failure modes are disjoint by design: truncation / bad magic / CRC
// mismatch / structural nonsense decode as IoError ("the bytes are not a
// model"), while an unknown format version or a fingerprint that does not
// match the embedded dictionary decode as VersionMismatchError ("a model,
// but not one this build/caller can honor"). Nothing ever half-loads.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/model.hpp"

namespace rsm::serve {

inline constexpr std::uint32_t kModelFormatVersion = 1;
inline constexpr std::string_view kModelMagic = "RSMMODL\n";

/// FNV-1a 64 of the dictionary's canonical encoding: two dictionaries
/// fingerprint equal iff they are structurally identical (same variables,
/// same indices, same order). Registry loads validate against it.
[[nodiscard]] std::uint64_t dictionary_fingerprint(
    const BasisDictionary& dictionary);

/// Serializes model + dictionary metadata into the layout above.
[[nodiscard]] std::string encode_model(const SparseModel& model);

/// Decodes an encode_model artifact, rebuilding the dictionary. Throws
/// IoError on any corruption and VersionMismatchError on an unknown format
/// version or an internal fingerprint mismatch; never returns partial data.
[[nodiscard]] SparseModel decode_model(std::string_view bytes);

}  // namespace rsm::serve
