#include "serve/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <utility>

#include "io/atomic_file.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/model_codec.hpp"
#include "util/errors.hpp"

namespace rsm::serve {
namespace {

namespace fs = std::filesystem;

bool valid_model_name(const std::string& name) {
  if (name.empty() || name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

void require_valid_name(const std::string& name) {
  if (!valid_model_name(name))
    throw IoError("registry: invalid model name '" + name +
                  "' (allowed: [A-Za-z0-9._-], no leading dot)");
}

/// Parses "<name>.v<version>.model" filenames; returns false for foreign
/// files (registries tolerate stray content rather than refusing to list).
bool parse_entry_filename(const std::string& filename, std::string& name,
                          std::uint32_t& version) {
  const std::string suffix = ".model";
  if (filename.size() <= suffix.size() ||
      filename.substr(filename.size() - suffix.size()) != suffix)
    return false;
  const std::string stem = filename.substr(0, filename.size() - suffix.size());
  const std::size_t dot_v = stem.rfind(".v");
  if (dot_v == std::string::npos || dot_v == 0 || dot_v + 2 >= stem.size())
    return false;
  const std::string version_digits = stem.substr(dot_v + 2);
  std::uint64_t parsed = 0;
  for (const char c : version_digits) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
    if (parsed > 0xffffffffull) return false;
  }
  if (parsed == 0) return false;
  name = stem.substr(0, dot_v);
  version = static_cast<std::uint32_t>(parsed);
  return valid_model_name(name);
}

}  // namespace

ModelRegistry::ModelRegistry(std::string root, const FsFaultInjector* faults)
    : root_(std::move(root)), faults_(faults) {
  RSM_CHECK_MSG(!root_.empty(), "registry root must be non-empty");
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec)
    throw IoError("registry: cannot create root '" + root_ +
                  "': " + ec.message());
}

std::string ModelRegistry::path_for(const std::string& name,
                                    std::uint32_t version) const {
  std::ostringstream os;
  os << root_ << '/' << name << ".v" << version << ".model";
  return os.str();
}

std::uint32_t ModelRegistry::latest_version(const std::string& name) const {
  require_valid_name(name);
  std::uint32_t latest = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    std::string entry_name;
    std::uint32_t entry_version = 0;
    if (parse_entry_filename(entry.path().filename().string(), entry_name,
                             entry_version) &&
        entry_name == name)
      latest = std::max(latest, entry_version);
  }
  if (ec)
    throw IoError("registry: cannot list '" + root_ + "': " + ec.message());
  return latest;
}

std::uint64_t ModelRegistry::state_fingerprint() const {
  std::uint64_t combined = 0xcbf29ce484222325ull;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    std::string name;
    std::uint32_t version = 0;
    const std::string filename = entry.path().filename().string();
    if (!parse_entry_filename(filename, name, version)) continue;
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a per entry
    for (const char c : filename) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    std::error_code size_ec;
    const auto size = fs::file_size(entry.path(), size_ec);
    h ^= size_ec ? 0 : static_cast<std::uint64_t>(size);
    h *= 0x100000001b3ull;
    combined ^= h;  // XOR: directory iteration order must not matter
  }
  if (ec)
    throw IoError("registry: cannot list '" + root_ + "': " + ec.message());
  return combined;
}

std::uint32_t ModelRegistry::save(const std::string& name,
                                  const SparseModel& model) {
  RSM_TRACE_SPAN("serve.registry.save");
  require_valid_name(name);
  const std::uint32_t version = latest_version(name) + 1;
  io::atomic_write_file(path_for(name, version), encode_model(model), faults_);
  obs::metrics().counter("serve.registry.saves").increment();
  return version;
}

SparseModel ModelRegistry::load(
    const std::string& name, std::uint32_t version,
    std::optional<std::uint64_t> expected_fingerprint) const {
  RSM_TRACE_SPAN("serve.registry.load");
  require_valid_name(name);
  std::uint32_t resolved = version;
  if (resolved == 0) {
    resolved = latest_version(name);
    if (resolved == 0)
      throw IoError("registry: no versions of model '" + name + "'");
  }
  const std::string path = path_for(name, resolved);
  if (!io::file_exists(path))
    throw IoError("registry: model '" + name + "' has no version " +
                  std::to_string(resolved));
  SparseModel model = decode_model(io::read_file_bytes(path));
  if (expected_fingerprint.has_value()) {
    const std::uint64_t actual = dictionary_fingerprint(model.dictionary());
    if (actual != *expected_fingerprint) {
      std::ostringstream os;
      os << "registry: model '" << name << "' v" << resolved
         << " dictionary fingerprint " << actual
         << " does not match expected " << *expected_fingerprint;
      throw VersionMismatchError(os.str());
    }
  }
  obs::metrics().counter("serve.registry.loads").increment();
  return model;
}

std::vector<ModelRecord> ModelRegistry::list() const {
  RSM_TRACE_SPAN("serve.registry.list");
  std::vector<std::pair<std::string, std::uint32_t>> entries;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    std::string name;
    std::uint32_t version = 0;
    if (parse_entry_filename(entry.path().filename().string(), name, version))
      entries.emplace_back(std::move(name), version);
  }
  if (ec)
    throw IoError("registry: cannot list '" + root_ + "': " + ec.message());
  std::sort(entries.begin(), entries.end());

  std::vector<ModelRecord> records;
  records.reserve(entries.size());
  for (const auto& [name, version] : entries) {
    const std::string bytes = io::read_file_bytes(path_for(name, version));
    const SparseModel model = decode_model(bytes);
    ModelRecord record;
    record.name = name;
    record.version = version;
    record.fingerprint = dictionary_fingerprint(model.dictionary());
    record.num_variables = model.dictionary().num_variables();
    record.num_terms = model.num_terms();
    record.size_bytes = bytes.size();
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace rsm::serve
