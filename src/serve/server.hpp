// The model server: fitted models behind a local socket.
//
// A single-threaded poll(2) event loop on an AF_UNIX stream socket accepts
// connections, extracts protocol frames (serve/protocol.hpp), and answers
// eval / eval_batch / yield / worst_case / list_models requests against a
// ModelRegistry. Large batches are split into chunks and dispatched onto
// the shared rsm::ThreadPool so one million-row request uses every core;
// requests themselves are handled in arrival order, which keeps responses
// on one connection ordered without any per-connection queueing.
//
// Error containment mirrors the taxonomy: a structurally invalid frame
// (ProtocolError) earns an error frame and a connection close — after a
// framing error the stream offset is unknowable; a well-framed but bad
// request (unknown model, malformed payload, version mismatch) earns an
// error frame carrying the structured ErrorCode and the connection lives
// on. The serving loop never crashes on client input.
//
// Shutdown is the repo's standard cooperative drain: run() polls the
// cancellation token (wired to SIGINT/SIGTERM by the caller via
// util/signals.hpp); on cancellation it stops accepting, answers every
// complete frame already received, flushes responses, and returns — no
// in-flight response is dropped.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/model.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "util/cancellation.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace rsm::serve {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX listening socket (unlinked and rebound
  /// on startup, removed on shutdown).
  std::string socket_path;

  /// Registry directory the server loads models from.
  std::string registry_root;

  /// Worker threads for batched evaluation; 0 = auto (RSM_THREADS or
  /// hardware concurrency).
  int num_threads = 0;

  /// Rows per thread-pool task when splitting an eval_batch request.
  Index batch_chunk = 2048;

  /// Drain-and-exit signal; poll cadence bounds shutdown latency.
  CancellationToken cancel;
  double poll_interval_seconds = 0.05;
};

/// Lifetime counters, readable after run() returns.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t evals = 0;        // single-point evaluations answered
  std::uint64_t batch_rows = 0;   // rows answered through eval_batch
  std::uint64_t protocol_errors = 0;
  std::uint64_t request_errors = 0;  // structured errors returned to clients
};

class ModelServer {
 public:
  /// Binds and listens immediately (so a caller that forks a client after
  /// construction never races the listener); throws IoError on failure.
  explicit ModelServer(ServerOptions options);
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Serves until the cancellation token fires, then drains: answers every
  /// fully received frame, flushes, closes, and returns.
  void run();

  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] const ModelRegistry& registry() const { return registry_; }

 private:
  struct Connection;

  /// Loads (name, version) through a cache keyed by resolved version; the
  /// registry's durable load path runs once per distinct artifact.
  const SparseModel& model_for(const std::string& name, std::uint32_t version);

  [[nodiscard]] std::string handle_request(const Frame& frame);
  [[nodiscard]] std::string handle_eval(const std::string& payload);
  [[nodiscard]] std::string handle_eval_batch(const std::string& payload);
  [[nodiscard]] std::string handle_yield(const std::string& payload);
  [[nodiscard]] std::string handle_worst_case(const std::string& payload);
  [[nodiscard]] std::string handle_list_models();

  void accept_ready();
  void service_connection(Connection& connection);
  void drain_connection(Connection& connection);

  ServerOptions options_;
  ModelRegistry registry_;
  ThreadPool pool_;
  int listen_fd_ = -1;
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::map<std::pair<std::string, std::uint32_t>, SparseModel> model_cache_;
  ServerStats stats_;
};

}  // namespace rsm::serve
