// The model server: fitted models behind a local socket.
//
// A single-threaded poll(2) event loop on an AF_UNIX stream socket accepts
// connections, extracts protocol frames (serve/protocol.hpp), and answers
// eval / eval_batch / yield / worst_case / list_models / reload requests
// against a ModelRegistry. Large batches are split into chunks and
// dispatched onto the shared rsm::ThreadPool so one million-row request
// uses every core; requests themselves are handled in arrival order, which
// keeps responses on one connection ordered without any per-connection
// queueing.
//
// Overload and misbehaving-peer defenses (all per-connection — one bad
// client never degrades the others):
//
//   admission control  Every extracted frame is either *admitted* or *shed*.
//                      A poll cycle admits at most max_inflight_requests
//                      frames total and max_pending_per_connection frames
//                      per connection; the excess is answered immediately
//                      with a retryable kOverloaded error frame carrying a
//                      retry-after hint, instead of queueing unboundedly.
//   I/O deadlines      Sockets are non-blocking and responses are buffered
//                      per connection, so a peer that stops reading can
//                      never park the event loop in send(). A connection
//                      that leaves a frame unfinished past the read timeout
//                      (slow loris) is answered with kConnectionTimeout and
//                      closed; one that will not drain its responses past
//                      the write timeout is closed outright; one that sits
//                      idle past the idle timeout is quietly reaped.
//   hot reload         A kReloadRequest frame — or, when reload_probe
//                      _seconds is set, a cheap registry state-fingerprint
//                      probe — re-resolves the latest version of every
//                      served model and swaps the cache atomically between
//                      requests (handling is synchronous, so no in-flight
//                      request ever observes the swap). A corrupt new
//                      version fails closed: the codec's CRC rejects it,
//                      the version is remembered as bad, and the server
//                      keeps serving the last-good model.
//
// Error containment mirrors the taxonomy: a structurally invalid frame
// (ProtocolError) earns an error frame and a connection close — after a
// framing error the stream offset is unknowable; a well-framed but bad
// request (unknown model, malformed payload, version mismatch) earns an
// error frame carrying the structured ErrorCode and the connection lives
// on. The serving loop never crashes on client input.
//
// Shutdown is the repo's standard cooperative drain: run() polls the
// cancellation token (wired to SIGINT/SIGTERM by the caller via
// util/signals.hpp); on cancellation it stops accepting, answers every
// complete frame already received (admission control is bypassed — a drain
// must not shed), flushes responses, and returns — no in-flight response
// is dropped.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "core/model.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "util/cancellation.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace rsm::serve {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX listening socket (unlinked and rebound
  /// on startup, removed on shutdown).
  std::string socket_path;

  /// Registry directory the server loads models from.
  std::string registry_root;

  /// Worker threads for batched evaluation; 0 = auto (RSM_THREADS or
  /// hardware concurrency).
  int num_threads = 0;

  /// Rows per thread-pool task when splitting an eval_batch request.
  Index batch_chunk = 2048;

  /// Drain-and-exit signal; poll cadence bounds shutdown latency.
  CancellationToken cancel;
  double poll_interval_seconds = 0.05;

  /// Admission control: at most this many frames are admitted per poll
  /// cycle across all connections (0 = unlimited); the rest are shed with
  /// a kOverloaded error frame.
  int max_inflight_requests = 256;

  /// Per-connection admission cap per poll cycle (0 = unlimited): one
  /// firehose client cannot consume the whole global budget.
  int max_pending_per_connection = 64;

  /// Backoff hint carried in every kOverloaded error frame.
  std::uint32_t retry_after_ms = 50;

  /// A connection that holds a partial frame longer than this is answered
  /// kConnectionTimeout and closed (0 = no read deadline).
  double read_timeout_seconds = 30.0;

  /// A connection that will not drain its buffered responses within this
  /// is closed outright — it is not reading, so an error frame would only
  /// grow the buffer (0 = no write deadline).
  double write_timeout_seconds = 30.0;

  /// A connection with no traffic in either direction for this long is
  /// quietly closed (0 = never reap).
  double idle_timeout_seconds = 0;

  /// When set, the registry's state fingerprint is probed at this cadence
  /// and a change triggers the same swap as an explicit reload frame
  /// (0 = reload only on request).
  double reload_probe_seconds = 0;
};

/// Lifetime counters, readable after run() returns. Every extracted frame
/// is counted in requests_served and exactly one of requests_admitted /
/// requests_shed — the schema validator holds reports to that invariant.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_shed = 0;
  std::uint64_t evals = 0;        // single-point evaluations answered
  std::uint64_t batch_rows = 0;   // rows answered through eval_batch
  std::uint64_t protocol_errors = 0;
  std::uint64_t request_errors = 0;  // structured errors returned to clients
  std::uint64_t connections_timed_out = 0;  // read/write deadline expiries
  std::uint64_t idle_closed = 0;            // reaped by the idle timeout
  std::uint64_t reloads = 0;           // model versions hot-swapped in
  std::uint64_t reload_failures = 0;   // corrupt versions kept out
};

class ModelServer {
 public:
  /// Binds and listens immediately (so a caller that forks a client after
  /// construction never races the listener); throws IoError on failure.
  explicit ModelServer(ServerOptions options);
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Serves until the cancellation token fires, then drains: answers every
  /// fully received frame, flushes, closes, and returns.
  void run();

  /// One event-loop cycle: poll (up to `timeout_ms`), accept, read, answer,
  /// flush, enforce deadlines, reap. run() is a loop of these; benches and
  /// tests call it directly to drive the server deterministically without
  /// a second thread.
  void poll_once(int timeout_ms);

  /// Adopts an already-connected stream socket (e.g. one end of a
  /// socketpair) as a client connection. With poll_once this lets a bench
  /// script exact request/shed/timeout counts with no listener race.
  void adopt_connection(int fd);

  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] const ModelRegistry& registry() const { return registry_; }

 private:
  struct Connection;

  /// Loads (name, version) through a cache keyed by resolved version; the
  /// registry's durable load path runs once per distinct artifact. For
  /// version-0 (latest) requests, a corrupt latest falls back to the
  /// last-good version; an explicitly pinned version never falls back.
  const SparseModel& model_for(const std::string& name, std::uint32_t version);

  /// Re-resolves the latest version of every model served so far, swapping
  /// each changed one into the cache; returns {reloaded, failed}.
  std::pair<std::uint32_t, std::uint32_t> reload_models();

  [[nodiscard]] std::string handle_request(const Frame& frame);
  [[nodiscard]] std::string handle_eval(const std::string& payload);
  [[nodiscard]] std::string handle_eval_batch(const std::string& payload);
  [[nodiscard]] std::string handle_yield(const std::string& payload);
  [[nodiscard]] std::string handle_worst_case(const std::string& payload);
  [[nodiscard]] std::string handle_list_models();
  [[nodiscard]] std::string handle_reload(const std::string& payload);

  [[nodiscard]] std::string error_frame(ErrorCode code,
                                        const std::string& message) const;

  void accept_ready();
  void service_connection(Connection& connection);
  void drain_connection(Connection& connection);
  /// Appends a frame to the connection's send buffer and flushes
  /// opportunistically.
  void queue_frame(Connection& connection, std::string frame);
  /// Sends as much buffered output as the socket accepts without blocking;
  /// arms/disarms the write deadline and completes close_after_flush.
  void flush_connection(Connection& connection);
  void enforce_deadlines(Connection& connection);
  void probe_registry();

  ServerOptions options_;
  ModelRegistry registry_;
  ThreadPool pool_;
  int listen_fd_ = -1;
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::map<std::pair<std::string, std::uint32_t>, SparseModel> model_cache_;
  /// name -> version currently served for version-0 requests (the reload
  /// swap point and the corrupt-version fallback target).
  std::map<std::string, std::uint32_t> latest_good_;
  /// Versions that failed to load (CRC/codec rejection): remembered so the
  /// fallback path does not re-read the corrupt file on every request.
  std::set<std::pair<std::string, std::uint32_t>> bad_versions_;
  std::uint64_t registry_fingerprint_ = 0;
  Deadline reload_probe_deadline_;
  int admitted_this_cycle_ = 0;
  bool draining_ = false;
  ServerStats stats_;
};

}  // namespace rsm::serve
