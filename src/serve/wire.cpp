#include "serve/wire.hpp"

#include <bit>
#include <sstream>

#include "util/errors.hpp"

namespace rsm::serve {

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_real(std::string& out, Real v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_bytes(std::string& out, std::string_view bytes) {
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(bytes);
}

void WireReader::fail(const char* what) const {
  std::ostringstream os;
  os << context_ << ": " << what << " at byte " << pos_ << " of "
     << bytes_.size();
  throw IoError(os.str());
}

const unsigned char* WireReader::cursor() const {
  return reinterpret_cast<const unsigned char*>(bytes_.data()) + pos_;
}

std::uint8_t WireReader::u8() {
  if (remaining() < 1) fail("truncated u8");
  const std::uint8_t v = cursor()[0];
  pos_ += 1;
  return v;
}

std::uint16_t WireReader::u16() {
  if (remaining() < 2) fail("truncated u16");
  const unsigned char* p = cursor();
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(p[i])
                                        << (8 * i)));
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  if (remaining() < 4) fail("truncated u32");
  const unsigned char* p = cursor();
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  if (remaining() < 8) fail("truncated u64");
  const unsigned char* p = cursor();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  pos_ += 8;
  return v;
}

Real WireReader::real() { return std::bit_cast<Real>(u64()); }

std::string WireReader::bytes() {
  const std::uint32_t n = u32();
  return std::string(raw(n));
}

std::string_view WireReader::raw(std::size_t n) {
  if (remaining() < n) fail("truncated byte range");
  const std::string_view v = bytes_.substr(pos_, n);
  pos_ += n;
  return v;
}

void WireReader::expect_done() const {
  if (pos_ != bytes_.size()) fail("trailing bytes after decoded content");
}

}  // namespace rsm::serve
