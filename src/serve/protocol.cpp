#include "serve/protocol.hpp"

#include <sstream>

#include "io/crc32.hpp"
#include "serve/wire.hpp"
#include "util/errors.hpp"

namespace rsm::serve {

std::string encode_frame(MessageType type, std::string_view payload) {
  RSM_CHECK_MSG(payload.size() <= kMaxFramePayload,
                "frame payload of " << payload.size()
                                    << " bytes exceeds protocol cap");
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size() + 4);
  put_u32(out, kFrameMagic);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  put_u32(out, io::crc32(out.data(), out.size()));
  return out;
}

std::optional<Frame> try_extract_frame(std::string& buffer) {
  if (buffer.size() < kFrameHeaderBytes) return std::nullopt;

  WireReader header(std::string_view(buffer).substr(0, kFrameHeaderBytes),
                    "frame header");
  const std::uint32_t magic = header.u32();
  if (magic != kFrameMagic) {
    std::ostringstream os;
    os << "frame magic 0x" << std::hex << magic << " (expected 0x"
       << kFrameMagic << ") — stream desynchronized";
    throw ProtocolError(os.str());
  }
  const std::uint8_t type = header.u8();
  const std::uint32_t payload_len = header.u32();
  if (payload_len > kMaxFramePayload) {
    std::ostringstream os;
    os << "declared payload of " << payload_len << " bytes exceeds cap of "
       << kMaxFramePayload;
    throw ProtocolError(os.str());
  }

  const std::size_t frame_bytes = kFrameHeaderBytes + payload_len + 4;
  if (buffer.size() < frame_bytes) return std::nullopt;

  const std::size_t crc_at = kFrameHeaderBytes + payload_len;
  WireReader crc_in(std::string_view(buffer).substr(crc_at, 4), "frame crc");
  const std::uint32_t stored_crc = crc_in.u32();
  if (io::crc32(buffer.data(), crc_at) != stored_crc)
    throw ProtocolError("frame CRC mismatch");

  Frame frame;
  frame.type = static_cast<MessageType>(type);
  frame.payload = buffer.substr(kFrameHeaderBytes, payload_len);
  buffer.erase(0, frame_bytes);
  return frame;
}

}  // namespace rsm::serve
