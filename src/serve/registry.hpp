// On-disk registry of named, versioned fitted models.
//
// Fit offline, serve online: a campaign saves its fitted SparseModel under a
// stable name ("sram_delay"), the serving layer loads it by (name, version)
// — version 0 meaning latest — and every byte that crosses the disk goes
// through the durable primitives in src/io (atomic_write_file: readers see
// the old artifact or the whole new one, never a prefix) and the CRC-guarded
// codec in serve/model_codec.hpp (corruption fails closed as IoError).
//
// Layout: one file per version, `<root>/<name>.v<version>.model`. Versions
// are assigned by save() as latest + 1, so concurrent histories never
// overwrite each other silently — the rename in atomic_write_file is the
// commit point. Loads can pin an expected dictionary fingerprint, turning
// "served the wrong model generation" from a silent wrong answer into a
// structured VersionMismatchError.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "util/fault_injection.hpp"

namespace rsm::serve {

/// One registry entry as reported by list().
struct ModelRecord {
  std::string name;
  std::uint32_t version = 0;
  std::uint64_t fingerprint = 0;   // dictionary fingerprint
  Index num_variables = 0;
  Index num_terms = 0;
  std::uint64_t size_bytes = 0;
};

class ModelRegistry {
 public:
  /// Opens (creating if needed) the registry rooted at `root`. The fault
  /// injector, when given, must outlive the registry; it reaches every
  /// physical write through atomic_write_file.
  explicit ModelRegistry(std::string root,
                         const FsFaultInjector* faults = nullptr);

  /// Serializes and durably stores `model` as the next version of `name`;
  /// returns the assigned version (1 for a new name). Model names are
  /// restricted to [A-Za-z0-9._-] minus leading dots, so a name can never
  /// escape the registry root.
  std::uint32_t save(const std::string& name, const SparseModel& model);

  /// Loads (name, version); version 0 loads the latest. When
  /// `expected_fingerprint` is set, the loaded model's dictionary
  /// fingerprint must match or the load fails with VersionMismatchError.
  /// Missing name/version or any corruption raises IoError.
  [[nodiscard]] SparseModel load(
      const std::string& name, std::uint32_t version = 0,
      std::optional<std::uint64_t> expected_fingerprint = std::nullopt) const;

  /// Every (name, version) on disk, sorted by name then version. Each entry
  /// is fully decoded (registries hold few, small artifacts), so a corrupt
  /// file surfaces here as IoError rather than later at serving time.
  [[nodiscard]] std::vector<ModelRecord> list() const;

  /// Latest stored version of `name`; 0 when the name is absent.
  [[nodiscard]] std::uint32_t latest_version(const std::string& name) const;

  /// Order-independent hash of the registry's directory state (every entry
  /// filename + size). Cheap — no file is opened — so a server can probe it
  /// periodically and trigger a hot reload only when it changes. It answers
  /// "did the set of versions change", not "are the bytes intact": content
  /// integrity stays the codec's CRC's job at load time.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

  [[nodiscard]] const std::string& root() const { return root_; }

  /// On-disk path of one version (exposed for corruption tests).
  [[nodiscard]] std::string path_for(const std::string& name,
                                     std::uint32_t version) const;

 private:
  std::string root_;
  const FsFaultInjector* faults_ = nullptr;
};

}  // namespace rsm::serve
