#include "serve/model_codec.hpp"

#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "io/crc32.hpp"
#include "serve/wire.hpp"
#include "util/errors.hpp"

namespace rsm::serve {
namespace {

void encode_dictionary(std::string& out, const BasisDictionary& dictionary) {
  put_u32(out, static_cast<std::uint32_t>(dictionary.num_variables()));
  put_u32(out, static_cast<std::uint32_t>(dictionary.size()));
  for (const MultiIndex& mi : dictionary.indices()) {
    RSM_CHECK_MSG(mi.terms().size() <= 0xffff,
                  "multi-index with " << mi.terms().size()
                                      << " factors exceeds codec limit");
    put_u16(out, static_cast<std::uint16_t>(mi.terms().size()));
    for (const IndexTerm& t : mi.terms()) {
      RSM_CHECK_MSG(t.order >= 0 && t.order <= 0xffff,
                    "Hermite order " << t.order << " exceeds codec limit");
      put_u32(out, static_cast<std::uint32_t>(t.variable));
      put_u16(out, static_cast<std::uint16_t>(t.order));
    }
  }
}

BasisDictionary decode_dictionary(WireReader& in) {
  const std::uint32_t num_variables = in.u32();
  const std::uint32_t num_indices = in.u32();
  if (num_variables == 0 || num_indices == 0)
    throw IoError("model file: dictionary with zero variables or indices");
  std::vector<MultiIndex> indices;
  for (std::uint32_t m = 0; m < num_indices; ++m) {
    const std::uint16_t num_factors = in.u16();
    std::vector<IndexTerm> factors;
    factors.reserve(num_factors);
    for (std::uint16_t f = 0; f < num_factors; ++f) {
      IndexTerm t;
      t.variable = static_cast<Index>(in.u32());
      t.order = static_cast<int>(in.u16());
      if (t.variable >= static_cast<Index>(num_variables))
        throw IoError("model file: multi-index references variable beyond "
                      "dictionary width");
      if (t.order == 0)
        throw IoError("model file: multi-index factor with order zero");
      factors.push_back(t);
    }
    indices.push_back(MultiIndex(std::move(factors)));
  }
  return BasisDictionary(static_cast<Index>(num_variables),
                         std::move(indices));
}

}  // namespace

std::uint64_t dictionary_fingerprint(const BasisDictionary& dictionary) {
  std::string bytes;
  encode_dictionary(bytes, dictionary);
  return io::fnv1a64(bytes.data(), bytes.size());
}

std::string encode_model(const SparseModel& model) {
  std::string out;
  out.append(kModelMagic);
  put_u32(out, kModelFormatVersion);

  const std::size_t dict_begin = out.size();
  encode_dictionary(out, model.dictionary());
  put_u64(out, io::fnv1a64(out.data() + dict_begin, out.size() - dict_begin));

  put_u32(out, static_cast<std::uint32_t>(model.num_terms()));
  for (const ModelTerm& t : model.terms()) {
    put_u32(out, static_cast<std::uint32_t>(t.basis_index));
    put_real(out, t.coefficient);
  }
  put_u32(out, io::crc32(out.data(), out.size()));
  return out;
}

SparseModel decode_model(std::string_view bytes) {
  // Smallest well-formed file: magic + version + trailing CRC.
  if (bytes.size() < kModelMagic.size() + 8)
    throw IoError("model file: shorter than any valid artifact");
  if (bytes.substr(0, kModelMagic.size()) != kModelMagic)
    throw IoError("model file: bad magic (not a model artifact)");

  // Whole-file CRC before trusting any field beyond the magic.
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  WireReader crc_in(bytes.substr(bytes.size() - 4), "model file");
  const std::uint32_t stored_crc = crc_in.u32();
  if (io::crc32(body.data(), body.size()) != stored_crc)
    throw IoError("model file: CRC mismatch (torn write or bit corruption)");

  WireReader in(body, "model file");
  (void)in.raw(kModelMagic.size());
  const std::uint32_t version = in.u32();
  if (version != kModelFormatVersion) {
    std::ostringstream os;
    os << "model file: format version " << version << " (this build reads "
       << kModelFormatVersion << ")";
    throw VersionMismatchError(os.str());
  }

  const std::size_t dict_begin = in.position();
  BasisDictionary dictionary = decode_dictionary(in);
  const std::size_t dict_end = in.position();
  const std::uint64_t stored_fingerprint = in.u64();
  const std::uint64_t actual_fingerprint = io::fnv1a64(
      body.data() + dict_begin, dict_end - dict_begin);
  if (stored_fingerprint != actual_fingerprint)
    throw VersionMismatchError(
        "model file: fingerprint does not match embedded dictionary");

  const std::uint32_t num_terms = in.u32();
  std::vector<ModelTerm> terms;
  for (std::uint32_t i = 0; i < num_terms; ++i) {
    ModelTerm t;
    t.basis_index = static_cast<Index>(in.u32());
    t.coefficient = in.real();
    if (t.basis_index >= dictionary.size())
      throw IoError("model file: term references basis index beyond "
                    "dictionary size");
    terms.push_back(t);
  }
  in.expect_done();
  return SparseModel(
      std::make_shared<const BasisDictionary>(std::move(dictionary)),
      std::move(terms));
}

}  // namespace rsm::serve
