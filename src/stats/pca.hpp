// Principal component analysis of correlated process parameters.
//
// Section II of the paper: correlated jointly-normal variations dX are mapped
// by PCA to independent standard-normal factors dY. The Hermite basis and all
// sparse solvers operate in dY space; this class provides the two-way map.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/common.hpp"

namespace rsm {

class Pca {
 public:
  /// Decomposes the covariance matrix of dX. Components with eigenvalue
  /// below `variance_tolerance` * (largest eigenvalue) are discarded, which
  /// is how PCA reduces, e.g., foundry corner data to the paper's 630
  /// independent factors.
  explicit Pca(const Matrix& covariance, Real variance_tolerance = 1e-12);

  /// Number of retained independent factors (<= original dimension).
  [[nodiscard]] Index num_factors() const;

  /// Original variable count.
  [[nodiscard]] Index num_variables() const;

  /// Retained eigenvalues, descending.
  [[nodiscard]] std::span<const Real> eigenvalues() const;

  /// Maps a physical deviation dX to whitened independent factors dY
  /// (each component ~ N(0,1) if dX ~ N(0, covariance)).
  [[nodiscard]] std::vector<Real> to_factors(std::span<const Real> dx) const;

  /// Maps independent factors dY back to correlated deviations dX.
  [[nodiscard]] std::vector<Real> to_physical(std::span<const Real> dy) const;

  /// Fraction of total variance captured by the retained factors.
  [[nodiscard]] Real explained_variance_fraction() const;

 private:
  Matrix components_;            // num_variables x num_factors (unit columns)
  std::vector<Real> values_;     // retained eigenvalues
  std::vector<Real> sqrt_vals_;  // cached sqrt(eigenvalue)
  Real total_variance_ = 0;
};

}  // namespace rsm
