// Descriptive statistics over sample vectors.
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace rsm {

[[nodiscard]] Real mean(std::span<const Real> x);

/// Unbiased sample variance (divides by n-1); 0 for n < 2.
[[nodiscard]] Real variance(std::span<const Real> x);

[[nodiscard]] Real stddev(std::span<const Real> x);

/// Standardized third central moment; 0 for degenerate samples.
[[nodiscard]] Real skewness(std::span<const Real> x);

/// Excess kurtosis (normal -> 0).
[[nodiscard]] Real excess_kurtosis(std::span<const Real> x);

/// Pearson correlation coefficient.
[[nodiscard]] Real correlation(std::span<const Real> x,
                               std::span<const Real> y);

/// Empirical quantile by linear interpolation, q in [0, 1].
[[nodiscard]] Real quantile(std::span<const Real> x, Real q);

struct Summary {
  Real mean = 0;
  Real stddev = 0;
  Real min = 0;
  Real max = 0;
  Real median = 0;
};

[[nodiscard]] Summary summarize(std::span<const Real> x);

}  // namespace rsm
