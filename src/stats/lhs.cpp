#include "stats/lhs.hpp"

#include <cmath>
#include <numeric>

namespace rsm {

Real inverse_normal_cdf(Real p) {
  RSM_CHECK_MSG(p > 0 && p < 1, "inverse_normal_cdf domain is (0,1), got " << p);
  // Acklam's rational approximation with central/tail split.
  static constexpr Real a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr Real b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
  static constexpr Real c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr Real d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
  constexpr Real p_low = 0.02425;

  if (p < p_low) {
    const Real q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - p_low) {
    const Real q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const Real q = p - Real{0.5};
  const Real r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

Matrix latin_hypercube_normal(Index num_samples, Index num_variables,
                              Rng& rng) {
  RSM_CHECK(num_samples > 0 && num_variables > 0);
  Matrix samples(num_samples, num_variables);
  std::vector<Index> perm(static_cast<std::size_t>(num_samples));
  for (Index v = 0; v < num_variables; ++v) {
    std::iota(perm.begin(), perm.end(), Index{0});
    rng.shuffle(perm);
    for (Index k = 0; k < num_samples; ++k) {
      // One uniform draw inside stratum perm[k], mapped through the normal
      // inverse CDF.
      const Real u = (static_cast<Real>(perm[static_cast<std::size_t>(k)]) +
                      rng.uniform()) /
                     static_cast<Real>(num_samples);
      samples(k, v) = inverse_normal_cdf(u);
    }
  }
  return samples;
}

Matrix monte_carlo_normal(Index num_samples, Index num_variables, Rng& rng) {
  RSM_CHECK(num_samples > 0 && num_variables > 0);
  Matrix samples(num_samples, num_variables);
  for (Index k = 0; k < num_samples; ++k) rng.fill_normal(samples.row(k));
  return samples;
}

}  // namespace rsm
