// Deterministic pseudo-random number generation.
//
// xoshiro256++ with splitmix64 seeding: fast, high-quality, and — unlike
// std::normal_distribution — bit-identical across standard libraries, so
// every test and benchmark in this repository is reproducible on any
// platform.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace rsm {

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Equivalent to 2^128 calls; used to derive independent parallel streams.
  void jump();

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Random scalar/vector draws on top of Xoshiro256.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform in [0, 1).
  [[nodiscard]] Real uniform();

  /// Uniform in [lo, hi).
  [[nodiscard]] Real uniform(Real lo, Real hi);

  /// Uniform integer in [0, n).
  [[nodiscard]] Index uniform_index(Index n);

  /// Standard normal via the Marsaglia polar method (exact, no table).
  [[nodiscard]] Real normal();

  /// Normal with given mean and standard deviation.
  [[nodiscard]] Real normal(Real mean, Real stddev);

  /// Fills `out` with i.i.d. standard normals.
  void fill_normal(std::span<Real> out);

  /// Vector of n i.i.d. standard normals.
  [[nodiscard]] std::vector<Real> normal_vector(Index n);

  /// In-place Fisher-Yates shuffle of an index range.
  void shuffle(std::span<Index> items);

  /// Derives an independent child stream (jump + reseed); used to give each
  /// cross-validation fold / benchmark repetition its own stream.
  [[nodiscard]] Rng split();

  [[nodiscard]] Xoshiro256& engine() { return engine_; }

 private:
  Xoshiro256 engine_;
  bool have_cached_normal_ = false;
  Real cached_normal_ = 0;
};

}  // namespace rsm
