// Process-variation covariance models and sampling of correlated normals.
//
// The paper models process variations as jointly normal random variables and
// applies PCA to obtain independent factors (Section II). These builders
// construct the correlated covariance structures that PCA then diagonalizes:
// a shared inter-die component plus spatially correlated intra-die mismatch.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "stats/rng.hpp"
#include "util/common.hpp"

namespace rsm {

/// 2-D placement of a device on the die, in arbitrary length units.
struct DiePosition {
  Real x = 0;
  Real y = 0;
};

/// Covariance of n variables sharing one inter-die component:
///   Cov(i,j) = sigma_inter^2 + [i==j] * sigma_intra^2.
[[nodiscard]] Matrix inter_die_covariance(Index n, Real sigma_inter,
                                          Real sigma_intra);

/// Spatially correlated intra-die variation with exponential decay:
///   Cov(i,j) = sigma_inter^2
///            + sigma_intra^2 * exp(-dist(i,j) / correlation_length).
/// This is the standard grid-based spatial-correlation model used by
/// statistical timing/RSM work (e.g., Chang & Sapatnekar).
[[nodiscard]] Matrix spatial_covariance(std::span<const DiePosition> positions,
                                        Real sigma_inter, Real sigma_intra,
                                        Real correlation_length);

/// Sample covariance of data rows (samples x variables), unbiased (n-1).
[[nodiscard]] Matrix sample_covariance(const Matrix& data);

/// Draws one sample of N(0, cov) using a (precomputed) lower Cholesky factor.
[[nodiscard]] std::vector<Real> sample_correlated(const Matrix& chol_lower,
                                                  Rng& rng);

}  // namespace rsm
