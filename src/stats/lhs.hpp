// Latin hypercube sampling of standard normals.
//
// The paper draws plain Monte Carlo samples from pdf(dY) (Section IV-A);
// LHS is offered as a variance-reduced alternative and is exercised by the
// ablation benches (stratification reduces the noise of the inner-product
// estimator rho_m at small K).
#pragma once

#include "linalg/matrix.hpp"
#include "stats/rng.hpp"
#include "util/common.hpp"

namespace rsm {

/// K x N matrix of samples: each column is a stratified standard-normal
/// sample (one draw per probability stratum, randomly permuted across rows).
[[nodiscard]] Matrix latin_hypercube_normal(Index num_samples,
                                            Index num_variables, Rng& rng);

/// Plain Monte Carlo counterpart: K x N i.i.d. standard normals.
[[nodiscard]] Matrix monte_carlo_normal(Index num_samples, Index num_variables,
                                        Rng& rng);

/// Inverse standard-normal CDF (Acklam's rational approximation, |err| <
/// 1.2e-9), exposed for tests and for the LHS transform.
[[nodiscard]] Real inverse_normal_cdf(Real p);

}  // namespace rsm
