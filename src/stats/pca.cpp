#include "stats/pca.hpp"

#include <cmath>

#include "linalg/eigen_sym.hpp"

namespace rsm {

Pca::Pca(const Matrix& covariance, Real variance_tolerance) {
  RSM_CHECK(covariance.rows() == covariance.cols());
  const SymmetricEigen eig = eigen_symmetric(covariance);
  const Index n = covariance.rows();

  for (Real v : eig.values) total_variance_ += std::max(v, Real{0});
  const Real cutoff =
      eig.values.empty() ? Real{0}
                         : std::max(eig.values.front(), Real{0}) *
                               variance_tolerance;

  Index keep = 0;
  for (Real v : eig.values) {
    if (v > cutoff && v > 0) ++keep;
  }
  RSM_CHECK_MSG(keep > 0, "covariance matrix has no positive eigenvalues");

  components_ = Matrix(n, keep);
  values_.resize(static_cast<std::size_t>(keep));
  sqrt_vals_.resize(static_cast<std::size_t>(keep));
  for (Index j = 0; j < keep; ++j) {
    values_[static_cast<std::size_t>(j)] = eig.values[static_cast<std::size_t>(j)];
    sqrt_vals_[static_cast<std::size_t>(j)] =
        std::sqrt(eig.values[static_cast<std::size_t>(j)]);
    for (Index i = 0; i < n; ++i) components_(i, j) = eig.vectors(i, j);
  }
}

Index Pca::num_factors() const { return components_.cols(); }

Index Pca::num_variables() const { return components_.rows(); }

std::span<const Real> Pca::eigenvalues() const { return values_; }

std::vector<Real> Pca::to_factors(std::span<const Real> dx) const {
  RSM_CHECK(static_cast<Index>(dx.size()) == num_variables());
  std::vector<Real> dy(static_cast<std::size_t>(num_factors()), Real{0});
  for (Index j = 0; j < num_factors(); ++j) {
    Real s = 0;
    for (Index i = 0; i < num_variables(); ++i)
      s += components_(i, j) * dx[static_cast<std::size_t>(i)];
    dy[static_cast<std::size_t>(j)] = s / sqrt_vals_[static_cast<std::size_t>(j)];
  }
  return dy;
}

std::vector<Real> Pca::to_physical(std::span<const Real> dy) const {
  RSM_CHECK(static_cast<Index>(dy.size()) == num_factors());
  std::vector<Real> dx(static_cast<std::size_t>(num_variables()), Real{0});
  for (Index j = 0; j < num_factors(); ++j) {
    const Real scaled =
        dy[static_cast<std::size_t>(j)] * sqrt_vals_[static_cast<std::size_t>(j)];
    for (Index i = 0; i < num_variables(); ++i)
      dx[static_cast<std::size_t>(i)] += components_(i, j) * scaled;
  }
  return dx;
}

Real Pca::explained_variance_fraction() const {
  if (total_variance_ <= 0) return 1;
  Real kept = 0;
  for (Real v : values_) kept += v;
  return kept / total_variance_;
}

}  // namespace rsm
