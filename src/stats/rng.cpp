#include "stats/rng.hpp"

#include <cmath>

namespace rsm {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // splitmix64 expansion guarantees a non-degenerate state for any seed.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull, 0xa9582618e03fc9aaull,
      0x39abdc4529b1661cull};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ull << b)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
      }
      (void)(*this)();
    }
  }
  state_ = acc;
}

Real Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<Real>(engine_() >> 11) * 0x1.0p-53;
}

Real Rng::uniform(Real lo, Real hi) { return lo + (hi - lo) * uniform(); }

Index Rng::uniform_index(Index n) {
  RSM_CHECK(n > 0);
  // Rejection-free modulo is fine here: n is tiny relative to 2^64, so the
  // modulo bias is < n/2^64 and irrelevant for sampling applications.
  return static_cast<Index>(engine_() % static_cast<std::uint64_t>(n));
}

Real Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method: exact normal pairs from uniform rejection.
  Real u, v, s;
  do {
    u = uniform(-1, 1);
    v = uniform(-1, 1);
    s = u * u + v * v;
  } while (s >= Real{1} || s == Real{0});
  const Real factor = std::sqrt(Real{-2} * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return u * factor;
}

Real Rng::normal(Real mean, Real stddev) { return mean + stddev * normal(); }

void Rng::fill_normal(std::span<Real> out) {
  for (Real& x : out) x = normal();
}

std::vector<Real> Rng::normal_vector(Index n) {
  std::vector<Real> out(static_cast<std::size_t>(n));
  fill_normal(out);
  return out;
}

void Rng::shuffle(std::span<Index> items) {
  for (Index i = static_cast<Index>(items.size()) - 1; i > 0; --i) {
    const Index j = uniform_index(i + 1);
    std::swap(items[static_cast<std::size_t>(i)],
              items[static_cast<std::size_t>(j)]);
  }
}

Rng Rng::split() {
  Rng child = *this;
  child.engine_.jump();
  child.have_cached_normal_ = false;
  engine_();  // perturb the parent so repeated splits differ
  return child;
}

}  // namespace rsm
