#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

namespace rsm {

Real mean(std::span<const Real> x) {
  RSM_CHECK(!x.empty());
  Real s = 0;
  for (Real v : x) s += v;
  return s / static_cast<Real>(x.size());
}

Real variance(std::span<const Real> x) {
  if (x.size() < 2) return 0;
  const Real m = mean(x);
  Real s = 0;
  for (Real v : x) s += (v - m) * (v - m);
  return s / static_cast<Real>(x.size() - 1);
}

Real stddev(std::span<const Real> x) { return std::sqrt(variance(x)); }

Real skewness(std::span<const Real> x) {
  if (x.size() < 3) return 0;
  const Real m = mean(x);
  Real m2 = 0, m3 = 0;
  for (Real v : x) {
    const Real d = v - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  const Real n = static_cast<Real>(x.size());
  m2 /= n;
  m3 /= n;
  if (m2 <= 0) return 0;
  return m3 / std::pow(m2, Real{1.5});
}

Real excess_kurtosis(std::span<const Real> x) {
  if (x.size() < 4) return 0;
  const Real m = mean(x);
  Real m2 = 0, m4 = 0;
  for (Real v : x) {
    const Real d = v - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  const Real n = static_cast<Real>(x.size());
  m2 /= n;
  m4 /= n;
  if (m2 <= 0) return 0;
  return m4 / (m2 * m2) - Real{3};
}

Real correlation(std::span<const Real> x, std::span<const Real> y) {
  RSM_CHECK(x.size() == y.size() && x.size() >= 2);
  const Real mx = mean(x), my = mean(y);
  Real sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Real dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

Real quantile(std::span<const Real> x, Real q) {
  RSM_CHECK(!x.empty());
  RSM_CHECK(q >= 0 && q <= 1);
  std::vector<Real> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  const Real pos = q * static_cast<Real>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const Real frac = pos - static_cast<Real>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const Real> x) {
  RSM_CHECK(!x.empty());
  Summary s;
  s.mean = mean(x);
  s.stddev = stddev(x);
  s.min = *std::min_element(x.begin(), x.end());
  s.max = *std::max_element(x.begin(), x.end());
  s.median = quantile(x, Real{0.5});
  return s;
}

}  // namespace rsm
