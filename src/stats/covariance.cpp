#include "stats/covariance.hpp"

#include <cmath>

#include "stats/descriptive.hpp"

namespace rsm {

Matrix inter_die_covariance(Index n, Real sigma_inter, Real sigma_intra) {
  RSM_CHECK(n > 0 && sigma_inter >= 0 && sigma_intra > 0);
  Matrix cov(n, n, sigma_inter * sigma_inter);
  for (Index i = 0; i < n; ++i) cov(i, i) += sigma_intra * sigma_intra;
  return cov;
}

Matrix spatial_covariance(std::span<const DiePosition> positions,
                          Real sigma_inter, Real sigma_intra,
                          Real correlation_length) {
  const Index n = static_cast<Index>(positions.size());
  RSM_CHECK(n > 0 && correlation_length > 0 && sigma_intra > 0);
  Matrix cov(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      const Real dx = positions[static_cast<std::size_t>(i)].x -
                      positions[static_cast<std::size_t>(j)].x;
      const Real dy = positions[static_cast<std::size_t>(i)].y -
                      positions[static_cast<std::size_t>(j)].y;
      const Real dist = std::sqrt(dx * dx + dy * dy);
      const Real c = sigma_inter * sigma_inter +
                     sigma_intra * sigma_intra *
                         std::exp(-dist / correlation_length);
      cov(i, j) = c;
      cov(j, i) = c;
    }
  }
  return cov;
}

Matrix sample_covariance(const Matrix& data) {
  const Index n_samples = data.rows();
  const Index n_vars = data.cols();
  RSM_CHECK_MSG(n_samples >= 2, "need >= 2 samples for covariance");
  std::vector<Real> means(static_cast<std::size_t>(n_vars), Real{0});
  for (Index r = 0; r < n_samples; ++r)
    for (Index c = 0; c < n_vars; ++c)
      means[static_cast<std::size_t>(c)] += data(r, c);
  for (Real& m : means) m /= static_cast<Real>(n_samples);

  Matrix cov(n_vars, n_vars);
  for (Index r = 0; r < n_samples; ++r) {
    for (Index i = 0; i < n_vars; ++i) {
      const Real di = data(r, i) - means[static_cast<std::size_t>(i)];
      for (Index j = i; j < n_vars; ++j) {
        cov(i, j) += di * (data(r, j) - means[static_cast<std::size_t>(j)]);
      }
    }
  }
  const Real inv = Real{1} / static_cast<Real>(n_samples - 1);
  for (Index i = 0; i < n_vars; ++i)
    for (Index j = i; j < n_vars; ++j) {
      cov(i, j) *= inv;
      cov(j, i) = cov(i, j);
    }
  return cov;
}

std::vector<Real> sample_correlated(const Matrix& chol_lower, Rng& rng) {
  const Index n = chol_lower.rows();
  RSM_CHECK(chol_lower.cols() == n);
  std::vector<Real> z = rng.normal_vector(n);
  std::vector<Real> x(static_cast<std::size_t>(n), Real{0});
  for (Index i = 0; i < n; ++i) {
    Real s = 0;
    for (Index j = 0; j <= i; ++j)
      s += chol_lower(i, j) * z[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = s;
  }
  return x;
}

}  // namespace rsm
