#include "spice/netlist.hpp"

namespace rsm::spice {

Netlist::Netlist() {
  node_names_.push_back("0");
  node_ids_["0"] = kGround;
  node_ids_["gnd"] = kGround;
}

NodeId Netlist::node(const std::string& name) {
  auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  node_ids_[name] = id;
  return id;
}

const std::string& Netlist::node_name(NodeId id) const {
  RSM_CHECK(id >= 0 && id < num_nodes());
  return node_names_[static_cast<std::size_t>(id)];
}

ResistorId Netlist::add_resistor(NodeId a, NodeId b, Real resistance) {
  RSM_CHECK_MSG(resistance > 0, "resistance must be positive");
  resistors_.push_back({a, b, resistance});
  return {static_cast<Index>(resistors_.size()) - 1};
}

CapacitorId Netlist::add_capacitor(NodeId a, NodeId b, Real capacitance) {
  RSM_CHECK_MSG(capacitance >= 0, "capacitance must be non-negative");
  capacitors_.push_back({a, b, capacitance});
  return {static_cast<Index>(capacitors_.size()) - 1};
}

VsourceId Netlist::add_vsource(NodeId a, NodeId b, Real dc, Real ac) {
  vsources_.push_back({a, b, dc, ac});
  return {static_cast<Index>(vsources_.size()) - 1};
}

IsourceId Netlist::add_isource(NodeId a, NodeId b, Real dc, Real ac) {
  isources_.push_back({a, b, dc, ac});
  return {static_cast<Index>(isources_.size()) - 1};
}

VcvsId Netlist::add_vcvs(NodeId p, NodeId q, NodeId cp, NodeId cq, Real gain) {
  vcvs_.push_back({p, q, cp, cq, gain});
  return {static_cast<Index>(vcvs_.size()) - 1};
}

VccsId Netlist::add_vccs(NodeId p, NodeId q, NodeId cp, NodeId cq, Real gm) {
  vccs_.push_back({p, q, cp, cq, gm});
  return {static_cast<Index>(vccs_.size()) - 1};
}

MosfetId Netlist::add_mosfet(NodeId d, NodeId g, NodeId s, NodeId b,
                             const MosfetParams& params) {
  mosfets_.push_back({d, g, s, b, params});
  return {static_cast<Index>(mosfets_.size()) - 1};
}

Resistor& Netlist::resistor(ResistorId id) {
  RSM_CHECK(id.v >= 0 && id.v < static_cast<Index>(resistors_.size()));
  return resistors_[static_cast<std::size_t>(id.v)];
}

Capacitor& Netlist::capacitor(CapacitorId id) {
  RSM_CHECK(id.v >= 0 && id.v < static_cast<Index>(capacitors_.size()));
  return capacitors_[static_cast<std::size_t>(id.v)];
}

VoltageSource& Netlist::vsource(VsourceId id) {
  RSM_CHECK(id.v >= 0 && id.v < static_cast<Index>(vsources_.size()));
  return vsources_[static_cast<std::size_t>(id.v)];
}

CurrentSource& Netlist::isource(IsourceId id) {
  RSM_CHECK(id.v >= 0 && id.v < static_cast<Index>(isources_.size()));
  return isources_[static_cast<std::size_t>(id.v)];
}

Mosfet& Netlist::mosfet(MosfetId id) {
  RSM_CHECK(id.v >= 0 && id.v < static_cast<Index>(mosfets_.size()));
  return mosfets_[static_cast<std::size_t>(id.v)];
}

Index Netlist::mna_size() const {
  return (num_nodes() - 1) + static_cast<Index>(vsources_.size()) +
         static_cast<Index>(vcvs_.size());
}

Index Netlist::vsource_branch_index(Index k) const {
  RSM_CHECK(k >= 0 && k < static_cast<Index>(vsources_.size()));
  return (num_nodes() - 1) + k;
}

Index Netlist::vcvs_branch_index(Index k) const {
  RSM_CHECK(k >= 0 && k < static_cast<Index>(vcvs_.size()));
  return (num_nodes() - 1) + static_cast<Index>(vsources_.size()) + k;
}

}  // namespace rsm::spice
