#include "spice/parser.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace rsm::spice {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Splits a logical line into whitespace-separated tokens, dropping
/// everything after a ';' comment.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : line) {
    if (ch == ';') break;
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == '(' ||
        ch == ')') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

struct ParseContext {
  int line_number = 0;

  [[noreturn]] void fail(const std::string& message) const {
    throw Error("netlist line " + std::to_string(line_number) + ": " +
                message);
  }
};

Real number(const ParseContext& ctx, const std::string& token) {
  try {
    return parse_spice_number(token);
  } catch (const Error& e) {
    ctx.fail(e.what());
  }
}

/// Parses "W=6u" style assignments; returns false if not an assignment.
bool key_value(const std::string& token, std::string& key,
               std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size())
    return false;
  key = lower(token.substr(0, eq));
  value = token.substr(eq + 1);
  return true;
}

struct ModelCard {
  MosType type = MosType::kNmos;
  Real vt0 = 0.4;
  Real kp = 200e-6;
  Real lambda = 0.1;
};

}  // namespace

Real parse_spice_number(const std::string& token) {
  RSM_CHECK_MSG(!token.empty(), "empty number");
  const std::string t = lower(token);
  std::size_t pos = 0;
  double base = 0;
  try {
    base = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw Error("malformed number '" + token + "'");
  }
  const std::string suffix = t.substr(pos);
  if (suffix.empty()) return base;
  // "meg" must be matched before the single-letter 'm'.
  if (suffix.rfind("meg", 0) == 0) return base * 1e6;
  switch (suffix[0]) {
    case 'f': return base * 1e-15;
    case 'p': return base * 1e-12;
    case 'n': return base * 1e-9;
    case 'u': return base * 1e-6;
    case 'm': return base * 1e-3;
    case 'k': return base * 1e3;
    case 'g': return base * 1e9;
    case 't': return base * 1e12;
    default:
      throw Error("unknown unit suffix '" + suffix + "' in '" + token + "'");
  }
}


/// A .subckt definition: ordered port names (lowercase) + body cards.
struct SubcktDef {
  std::vector<std::string> ports;
  std::vector<std::pair<int, std::string>> body;
};

/// Emits element cards into `netlist`, resolving node names through the
/// instance `port_map` (subckt ports -> caller nodes) and prefixing
/// internal nodes with the hierarchical instance `prefix`. X cards recurse.
void emit_cards(const std::vector<std::pair<int, std::string>>& lines,
                const std::map<std::string, ModelCard>& models,
                const std::map<std::string, SubcktDef>& subckts,
                const std::map<std::string, std::string>& port_map,
                const std::string& prefix, int depth, Netlist& netlist) {
  ParseContext ctx;
  RSM_CHECK_MSG(depth <= 20, "subcircuit nesting deeper than 20 levels");

  // Resolve a card-local node name to its flat global name.
  const auto global_name = [&](const std::string& raw) -> std::string {
    const std::string name = lower(raw);
    if (name == "0" || name == "gnd") return "0";
    const auto it = port_map.find(name);
    if (it != port_map.end()) return it->second;
    return prefix + name;
  };
  const auto node = [&](const std::string& raw) {
    return netlist.node(global_name(raw));
  };

  for (const auto& [no, text] : lines) {
    ctx.line_number = no;
    const std::vector<std::string> tok = tokenize(text);
    if (tok.empty()) continue;
    const std::string head = lower(tok[0]);
    if (head == ".model") continue;
    if (head == ".end") break;
    if (head[0] == '.') ctx.fail("unsupported directive '" + tok[0] + "'");

    switch (head[0]) {
      case 'x': {
        // Xname n1 n2 ... subcktname
        if (tok.size() < 3) ctx.fail("X card: Xname nodes... subckt");
        const auto it = subckts.find(lower(tok.back()));
        if (it == subckts.end())
          ctx.fail("unknown subcircuit '" + tok.back() + "'");
        const SubcktDef& def = it->second;
        if (tok.size() - 2 != def.ports.size())
          ctx.fail("subcircuit '" + tok.back() + "' has " +
                   std::to_string(def.ports.size()) + " ports, got " +
                   std::to_string(tok.size() - 2));
        std::map<std::string, std::string> child_ports;
        for (std::size_t p = 0; p < def.ports.size(); ++p)
          child_ports[def.ports[p]] = global_name(tok[p + 1]);
        emit_cards(def.body, models, subckts, child_ports,
                   prefix + head + ".", depth + 1, netlist);
        break;
      }
      case 'r': {
        if (tok.size() != 4) ctx.fail("R card: Rname n1 n2 value");
        netlist.add_resistor(node(tok[1]), node(tok[2]), number(ctx, tok[3]));
        break;
      }
      case 'c': {
        if (tok.size() != 4) ctx.fail("C card: Cname n1 n2 value");
        netlist.add_capacitor(node(tok[1]), node(tok[2]), number(ctx, tok[3]));
        break;
      }
      case 'v':
      case 'i': {
        // Size check must precede the iterator arithmetic below.
        if (tok.size() < 4) ctx.fail("source card: name n+ n- [DC] value");
        std::vector<std::string> rest(tok.begin() + 3, tok.end());
        std::size_t i = 0;
        if (i < rest.size() && lower(rest[i]) == "dc") ++i;
        if (i >= rest.size()) ctx.fail("source card missing DC value");
        const Real dc = number(ctx, rest[i++]);
        Real ac = 0;
        if (i < rest.size()) {
          if (lower(rest[i]) != "ac")
            ctx.fail("unexpected token '" + rest[i] + "' on source card");
          ++i;
          if (i >= rest.size()) ctx.fail("AC keyword missing magnitude");
          ac = number(ctx, rest[i++]);
        }
        if (i != rest.size()) ctx.fail("trailing tokens on source card");
        if (head[0] == 'v') {
          netlist.add_vsource(node(tok[1]), node(tok[2]), dc, ac);
        } else {
          netlist.add_isource(node(tok[1]), node(tok[2]), dc, ac);
        }
        break;
      }
      case 'e': {
        if (tok.size() != 6) ctx.fail("E card: Ename p q cp cq gain");
        netlist.add_vcvs(node(tok[1]), node(tok[2]), node(tok[3]),
                         node(tok[4]), number(ctx, tok[5]));
        break;
      }
      case 'g': {
        if (tok.size() != 6) ctx.fail("G card: Gname p q cp cq gm");
        netlist.add_vccs(node(tok[1]), node(tok[2]), node(tok[3]),
                         node(tok[4]), number(ctx, tok[5]));
        break;
      }
      case 'm': {
        if (tok.size() < 6) ctx.fail("M card: Mname d g s b model [W= L=]");
        const auto it = models.find(lower(tok[5]));
        if (it == models.end())
          ctx.fail("unknown MOSFET model '" + tok[5] + "'");
        MosfetParams params;
        params.type = it->second.type;
        params.vt0 = it->second.vt0;
        params.kp = it->second.kp;
        params.lambda = it->second.lambda;
        for (std::size_t i = 6; i < tok.size(); ++i) {
          std::string key, value;
          if (!key_value(tok[i], key, value))
            ctx.fail("expected W=/L= on M card, got '" + tok[i] + "'");
          if (key == "w") params.w = number(ctx, value);
          else if (key == "l") params.l = number(ctx, value);
          else ctx.fail("unknown M-card parameter '" + key + "'");
        }
        netlist.add_mosfet(node(tok[1]), node(tok[2]), node(tok[3]),
                           node(tok[4]), params);
        break;
      }
      default:
        ctx.fail("unrecognized card '" + tok[0] + "'");
    }
  }
}

Netlist parse_netlist(std::istream& in) {
  // Join continuation lines ('+' prefix) into logical lines first.
  std::vector<std::pair<int, std::string>> logical;  // (line number, text)
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip trailing CR from CRLF inputs.
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    std::string trimmed = raw;
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    if (trimmed.empty() || trimmed[0] == '*') continue;
    if (trimmed[0] == '+') {
      if (logical.empty()) {
        throw Error("netlist line " + std::to_string(line_no) +
                    ": continuation with no previous card");
      }
      std::string& card = logical.back().second;
      card += ' ';
      card.append(trimmed, 1, std::string::npos);
    } else {
      logical.emplace_back(line_no, trimmed);
    }
  }

  Netlist netlist;
  std::map<std::string, ModelCard> models;
  ParseContext ctx;

  // First pass: collect .model cards (they may appear after use).
  for (const auto& [no, text] : logical) {
    ctx.line_number = no;
    const std::vector<std::string> tok = tokenize(text);
    if (tok.empty() || lower(tok[0]) != ".model") continue;
    if (tok.size() < 3) ctx.fail(".model needs a name and a type");
    ModelCard card;
    const std::string type = lower(tok[2]);
    if (type == "nmos") {
      card.type = MosType::kNmos;
    } else if (type == "pmos") {
      card.type = MosType::kPmos;
    } else {
      ctx.fail("unknown model type '" + tok[2] + "' (want NMOS or PMOS)");
    }
    for (std::size_t i = 3; i < tok.size(); ++i) {
      std::string key, value;
      if (!key_value(tok[i], key, value))
        ctx.fail("expected KEY=VALUE in .model, got '" + tok[i] + "'");
      if (key == "vt0") card.vt0 = number(ctx, value);
      else if (key == "kp") card.kp = number(ctx, value);
      else if (key == "lambda") card.lambda = number(ctx, value);
      else ctx.fail("unknown .model parameter '" + key + "'");
    }
    models[lower(tok[1])] = card;
  }

  // Separate .subckt blocks from top-level cards.
  std::map<std::string, SubcktDef> subckts;
  std::vector<std::pair<int, std::string>> top_level;
  for (std::size_t li = 0; li < logical.size(); ++li) {
    ctx.line_number = logical[li].first;
    const std::vector<std::string> tok = tokenize(logical[li].second);
    if (tok.empty()) continue;
    if (lower(tok[0]) == ".subckt") {
      if (tok.size() < 3) ctx.fail(".subckt needs a name and >= 1 port");
      SubcktDef def;
      for (std::size_t p = 2; p < tok.size(); ++p)
        def.ports.push_back(lower(tok[p]));
      bool closed = false;
      for (++li; li < logical.size(); ++li) {
        const std::vector<std::string> inner = tokenize(logical[li].second);
        if (!inner.empty() && lower(inner[0]) == ".ends") {
          closed = true;
          break;
        }
        if (!inner.empty() && lower(inner[0]) == ".subckt") {
          ctx.line_number = logical[li].first;
          ctx.fail("nested .subckt definitions are not supported");
        }
        def.body.push_back(logical[li]);
      }
      if (!closed) ctx.fail(".subckt without matching .ends");
      subckts[lower(tok[1])] = std::move(def);
    } else {
      top_level.push_back(logical[li]);
    }
  }

  emit_cards(top_level, models, subckts, /*port_map=*/{}, /*prefix=*/"",
             /*depth=*/0, netlist);
  return netlist;
}

Netlist parse_netlist(const std::string& text) {
  std::istringstream in(text);
  return parse_netlist(in);
}

}  // namespace rsm::spice
