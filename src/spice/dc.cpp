#include "spice/dc.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"
#include "spice/mna.hpp"
#include "util/log.hpp"

namespace rsm::spice {
namespace {

/// One Newton run at a fixed gmin. Returns converged flag; x is updated in
/// place with the best iterate.
bool newton_run(const Netlist& netlist, const DcOptions& opt, Real gmin,
                std::vector<Real>& x, int& iterations_used) {
  const Index n = netlist.mna_size();
  for (int it = 0; it < opt.max_iterations; ++it) {
    RealStamp stamp(n);
    stamp_dc(netlist, x, gmin, stamp);

    std::vector<Real> x_new;
    try {
      LuFactorization<Real> lu(std::move(stamp.matrix()), n);
      x_new = lu.solve(stamp.rhs());
    } catch (const Error&) {
      return false;  // singular system; caller escalates gmin
    }

    // Damped update: limit per-node voltage change to max_step.
    Real max_dv = 0;
    const Index num_voltage_unknowns = netlist.num_nodes() - 1;
    for (Index i = 0; i < n; ++i) {
      Real dv = x_new[static_cast<std::size_t>(i)] -
                x[static_cast<std::size_t>(i)];
      if (i < num_voltage_unknowns) {
        dv = std::clamp(dv, -opt.max_step, opt.max_step);
        max_dv = std::max(max_dv, std::abs(dv));
      }
      x[static_cast<std::size_t>(i)] += dv;
    }
    ++iterations_used;

    Real max_abs_x = 0;
    for (Real v : x) max_abs_x = std::max(max_abs_x, std::abs(v));
    if (max_dv < opt.voltage_tolerance + opt.relative_tolerance * max_abs_x) {
      return true;
    }
  }
  return false;
}

}  // namespace

DcSolution solve_dc(const Netlist& netlist, const DcOptions& options,
                    std::span<const Real> initial_guess) {
  const Index n = netlist.mna_size();
  RSM_CHECK_MSG(n > 0, "empty netlist");

  DcSolution sol;
  sol.x.assign(static_cast<std::size_t>(n), Real{0});
  if (!initial_guess.empty()) {
    RSM_CHECK(static_cast<Index>(initial_guess.size()) == n);
    std::copy(initial_guess.begin(), initial_guess.end(), sol.x.begin());
  }

  // Plain Newton at the target gmin first.
  if (newton_run(netlist, options, options.gmin, sol.x, sol.iterations)) {
    sol.converged = true;
    return sol;
  }

  // gmin stepping: start heavily damped (large gmin linearizes the system),
  // walk down to the target, warm-starting each rung from the previous.
  RSM_DEBUG("DC: plain Newton failed, entering gmin stepping");
  std::fill(sol.x.begin(), sol.x.end(), Real{0});
  Real gmin = Real{1e-2};
  for (int step = 0; step <= options.gmin_ladder_steps; ++step) {
    const bool last = gmin <= options.gmin;
    const Real g = last ? options.gmin : gmin;
    if (!newton_run(netlist, options, g, sol.x, sol.iterations)) {
      RSM_DEBUG("DC: gmin rung " << g << " failed");
      // Keep descending anyway; a later rung sometimes recovers.
    }
    if (last) break;
    gmin *= Real{1e-1};
    if (gmin < options.gmin) gmin = options.gmin;
  }
  // Final verification run at the target gmin.
  sol.converged = newton_run(netlist, options, options.gmin, sol.x,
                             sol.iterations);
  RSM_CHECK_MSG(sol.converged, "DC operating point failed to converge after "
                                   << sol.iterations << " iterations");
  return sol;
}

Real vsource_current(const Netlist& netlist, const DcSolution& solution,
                     Index k) {
  const Index br = netlist.vsource_branch_index(k);
  return solution.x[static_cast<std::size_t>(br)];
}

std::vector<Real> dc_sweep(Netlist& netlist, VsourceId source,
                           std::span<const Real> values, NodeId probe,
                           const DcOptions& options) {
  RSM_CHECK(!values.empty());
  const Real original = netlist.vsource(source).dc;
  std::vector<Real> out;
  out.reserve(values.size());
  std::vector<Real> warm;
  for (Real v : values) {
    netlist.vsource(source).dc = v;
    const DcSolution sol = solve_dc(netlist, options, warm);
    warm = sol.x;
    out.push_back(sol.voltage(probe));
  }
  netlist.vsource(source).dc = original;
  return out;
}

}  // namespace rsm::spice
