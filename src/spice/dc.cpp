#include "spice/dc.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "linalg/lu.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spice/mna.hpp"
#include "util/cancellation.hpp"
#include "util/log.hpp"

namespace rsm::spice {
namespace {

/// Why a Newton run gave up; solve_dc aggregates these into the taxonomy
/// error it throws when the whole ladder is exhausted.
enum class RunFail { kNone, kSingular, kNonFinite, kMaxIterations };

struct RunConfig {
  Real gmin = 0;
  Real source_scale = 1;
  /// Pseudo-transient anchor: when set, every node is tied to
  /// anchor[node] through g_anchor (companion model of a pseudo-capacitor).
  const std::vector<Real>* anchor = nullptr;
  Real g_anchor = 0;
};

/// One Newton run under a fixed convergence-aid configuration. Returns the
/// converged flag; x is updated in place with the best iterate.
bool newton_run(const Netlist& netlist, const DcOptions& opt,
                const RunConfig& cfg, std::vector<Real>& x,
                int& iterations_used, RunFail& fail) {
  const Index n = netlist.mna_size();
  const Index num_voltage_unknowns = netlist.num_nodes() - 1;
  fail = RunFail::kMaxIterations;
  for (int it = 0; it < opt.max_iterations; ++it) {
    // A hung operating point must not outlive its watchdog: this is the
    // innermost loop a pathological sample spins in, so the campaign's
    // deadline/cancellation is polled here (no-op without an active scope).
    check_cooperative_stop("dc.newton");
    RealStamp stamp(n);
    stamp_dc(netlist, x, cfg.gmin, stamp, cfg.source_scale);
    if (cfg.anchor != nullptr && cfg.g_anchor > 0) {
      for (Index i = 0; i < num_voltage_unknowns; ++i) {
        stamp.add(i, i, cfg.g_anchor);
        stamp.add_rhs(i, cfg.g_anchor *
                             (*cfg.anchor)[static_cast<std::size_t>(i)]);
      }
    }

    std::vector<Real> x_new;
    try {
      LuFactorization<Real> lu(std::move(stamp.matrix()), n);
      x_new = lu.solve(stamp.rhs());
    } catch (const Error&) {
      fail = RunFail::kSingular;  // singular system; caller escalates
      return false;
    }
    for (Real v : x_new) {
      if (!std::isfinite(v)) {
        fail = RunFail::kNonFinite;  // device model overflow / bad stamp
        return false;
      }
    }

    // Damped update: limit per-node voltage change to max_step. Branch
    // currents are updated undamped but still tracked for convergence with
    // their own tolerance — otherwise a run can report a converged voltage
    // profile while source currents are still moving.
    Real max_dv = 0;
    Real max_di = 0;
    for (Index i = 0; i < n; ++i) {
      Real dv = x_new[static_cast<std::size_t>(i)] -
                x[static_cast<std::size_t>(i)];
      if (i < num_voltage_unknowns) {
        dv = std::clamp(dv, -opt.max_step, opt.max_step);
        max_dv = std::max(max_dv, std::abs(dv));
      } else {
        max_di = std::max(max_di, std::abs(dv));
      }
      x[static_cast<std::size_t>(i)] += dv;
    }
    ++iterations_used;

    Real max_abs_v = 0;
    Real max_abs_i = 0;
    for (Index i = 0; i < n; ++i) {
      const Real a = std::abs(x[static_cast<std::size_t>(i)]);
      if (i < num_voltage_unknowns) {
        max_abs_v = std::max(max_abs_v, a);
      } else {
        max_abs_i = std::max(max_abs_i, a);
      }
    }
    const bool v_done =
        max_dv < opt.voltage_tolerance + opt.relative_tolerance * max_abs_v;
    const bool i_done =
        max_di < opt.current_tolerance + opt.relative_tolerance * max_abs_i;
    if (v_done && i_done) {
      fail = RunFail::kNone;
      return true;
    }
  }
  return false;
}

/// Strategy drivers. Each returns converged-at-target; `fail` reports the
/// final verification run's failure mode.

bool run_plain_newton(const Netlist& netlist, const DcOptions& opt,
                      std::vector<Real>& x, int& iterations, RunFail& fail) {
  return newton_run(netlist, opt, {.gmin = opt.gmin}, x, iterations, fail);
}

bool run_gmin_stepping(const Netlist& netlist, const DcOptions& opt,
                       std::vector<Real>& x, int& iterations, RunFail& fail) {
  // Start heavily damped (large gmin linearizes the system), walk down to
  // the target, warm-starting each rung from the previous.
  std::fill(x.begin(), x.end(), Real{0});
  Real gmin = Real{1e-2};
  for (int step = 0; step <= opt.gmin_ladder_steps; ++step) {
    const bool last = gmin <= opt.gmin;
    const Real g = last ? opt.gmin : gmin;
    RunFail rung_fail = RunFail::kNone;
    if (!newton_run(netlist, opt, {.gmin = g}, x, iterations, rung_fail)) {
      RSM_DEBUG("DC: gmin rung " << g << " failed");
      // Keep descending anyway; a later rung sometimes recovers.
    }
    if (last) break;
    gmin *= Real{1e-1};
    if (gmin < opt.gmin) gmin = opt.gmin;
  }
  // Final verification run at the target gmin.
  return newton_run(netlist, opt, {.gmin = opt.gmin}, x, iterations, fail);
}

bool run_source_stepping(const Netlist& netlist, const DcOptions& opt,
                         std::vector<Real>& x, int& iterations,
                         RunFail& fail) {
  // Homotopy in source strength: at scale 0 the all-off circuit converges
  // from anywhere; each rung warm-starts the next along a continuous branch
  // of solutions, which steers multistable circuits to a stable state.
  std::fill(x.begin(), x.end(), Real{0});
  const int steps = std::max(opt.source_ladder_steps, 1);
  for (int step = 1; step <= steps; ++step) {
    const Real scale = static_cast<Real>(step) / static_cast<Real>(steps);
    RunFail rung_fail = RunFail::kNone;
    if (!newton_run(netlist, opt, {.gmin = opt.gmin, .source_scale = scale},
                    x, iterations, rung_fail)) {
      RSM_DEBUG("DC: source rung " << scale << " failed");
    }
  }
  return newton_run(netlist, opt, {.gmin = opt.gmin}, x, iterations, fail);
}

bool run_pseudo_transient(const Netlist& netlist, const DcOptions& opt,
                          std::vector<Real>& x, int& iterations,
                          RunFail& fail) {
  // Pseudo-capacitor continuation: tie every node to its previous
  // pseudo-state through g_anchor (backward-Euler companion of C/dt) and
  // relax g_anchor geometrically — equivalent to integrating d/dt with an
  // exponentially growing pseudo-timestep until the circuit is at rest.
  std::fill(x.begin(), x.end(), Real{0});
  const int steps = std::max(opt.ptran_steps, 1);
  const Real g0 = std::max(opt.ptran_g_initial, opt.ptran_g_final);
  const Real g1 = std::max(opt.ptran_g_final, Real{1e-300});
  const Real shrink =
      steps > 1 ? std::pow(g1 / g0, Real{1} / static_cast<Real>(steps - 1))
                : Real{1};
  std::vector<Real> anchor = x;
  Real g = g0;
  for (int step = 0; step < steps; ++step) {
    RunFail rung_fail = RunFail::kNone;
    if (!newton_run(
            netlist, opt,
            {.gmin = opt.gmin, .anchor = &anchor, .g_anchor = g}, x,
            iterations, rung_fail)) {
      RSM_DEBUG("DC: ptran rung g=" << g << " failed");
    }
    anchor = x;
    g *= shrink;
  }
  return newton_run(netlist, opt, {.gmin = opt.gmin}, x, iterations, fail);
}

}  // namespace

const char* dc_strategy_name(DcStrategy strategy) {
  switch (strategy) {
    case DcStrategy::kNewton: return "newton";
    case DcStrategy::kGminStepping: return "gmin-stepping";
    case DcStrategy::kSourceStepping: return "source-stepping";
    case DcStrategy::kPseudoTransient: return "pseudo-transient";
  }
  return "?";
}

DcOptions escalated(const DcOptions& base, int level) {
  RSM_CHECK(level >= 0);
  DcOptions opt = base;
  for (int l = 0; l < level; ++l) {
    opt.max_iterations *= 2;
    opt.max_step = std::max(opt.max_step / 2, Real{0.05});
    opt.gmin_ladder_steps += 4;
    opt.source_ladder_steps *= 2;
    opt.ptran_steps += opt.ptran_steps / 2;
  }
  return opt;
}

DcSolution solve_dc(const Netlist& netlist, const DcOptions& options,
                    std::span<const Real> initial_guess) {
  RSM_TRACE_SPAN("dc.solve");
  obs::metrics().counter("dc.solves").increment();
  const Index n = netlist.mna_size();
  RSM_CHECK_MSG(n > 0, "empty netlist");
  RSM_CHECK_MSG(!options.strategies.empty(),
                "DcOptions.strategies must not be empty");

  DcSolution sol;
  sol.x.assign(static_cast<std::size_t>(n), Real{0});
  if (!initial_guess.empty()) {
    RSM_CHECK(static_cast<Index>(initial_guess.size()) == n);
    std::copy(initial_guess.begin(), initial_guess.end(), sol.x.begin());
  }

  bool all_singular = true;
  bool any_non_finite = false;
  for (const DcStrategy strategy : options.strategies) {
    ++sol.strategies_tried;
    if (sol.strategies_tried > 1) {
      RSM_DEBUG("DC: escalating to " << dc_strategy_name(strategy));
    }
    RunFail fail = RunFail::kNone;
    bool ok = false;
    switch (strategy) {
      case DcStrategy::kNewton: {
        RSM_TRACE_SPAN("dc.newton");
        ok = run_plain_newton(netlist, options, sol.x, sol.iterations, fail);
        break;
      }
      case DcStrategy::kGminStepping: {
        RSM_TRACE_SPAN("dc.gmin_stepping");
        ok = run_gmin_stepping(netlist, options, sol.x, sol.iterations, fail);
        break;
      }
      case DcStrategy::kSourceStepping: {
        RSM_TRACE_SPAN("dc.source_stepping");
        ok = run_source_stepping(netlist, options, sol.x, sol.iterations,
                                 fail);
        break;
      }
      case DcStrategy::kPseudoTransient: {
        RSM_TRACE_SPAN("dc.pseudo_transient");
        ok = run_pseudo_transient(netlist, options, sol.x, sol.iterations,
                                  fail);
        break;
      }
    }
    if (ok) {
      sol.converged = true;
      sol.strategy = strategy;
      obs::metrics()
          .histogram("dc.newton_iterations",
                     {5, 10, 25, 50, 100, 250, 500, 1000})
          .observe(static_cast<double>(sol.iterations));
      return sol;
    }
    if (fail != RunFail::kSingular) all_singular = false;
    if (fail == RunFail::kNonFinite) any_non_finite = true;
  }

  obs::metrics().counter("dc.failures").increment();
  std::ostringstream os;
  os << "DC operating point failed after " << sol.strategies_tried
     << " strategies / " << sol.iterations << " Newton iterations";
  const char* last_strategy =
      dc_strategy_name(options.strategies.back());
  if (all_singular) {
    throw SingularMatrixError(
        "MNA matrix singular under every strategy — " + os.str(),
        last_strategy);
  }
  if (any_non_finite) {
    throw NumericalDomainError("non-finite Newton iterate — " + os.str(),
                               last_strategy);
  }
  throw ConvergenceError(os.str(), sol.iterations, last_strategy);
}

Real vsource_current(const Netlist& netlist, const DcSolution& solution,
                     Index k) {
  const Index br = netlist.vsource_branch_index(k);
  return solution.x[static_cast<std::size_t>(br)];
}

std::vector<Real> dc_sweep(Netlist& netlist, VsourceId source,
                           std::span<const Real> values, NodeId probe,
                           const DcOptions& options) {
  RSM_CHECK(!values.empty());
  const Real original = netlist.vsource(source).dc;
  std::vector<Real> out;
  out.reserve(values.size());
  std::vector<Real> warm;
  for (Real v : values) {
    netlist.vsource(source).dc = v;
    const DcSolution sol = solve_dc(netlist, options, warm);
    warm = sol.x;
    out.push_back(sol.voltage(probe));
  }
  netlist.vsource(source).dc = original;
  return out;
}

}  // namespace rsm::spice
