// SPICE-format netlist parser.
//
// Accepts the classic card syntax so circuits can be described as text
// rather than C++ builder calls:
//
//   * two-stage opamp bias branch
//   .model nch NMOS (VT0=0.4 KP=200u LAMBDA=0.1)
//   Ibias vdd bias 20u
//   M8 bias bias 0 0 nch W=6u L=120n
//   R1 out cz 450
//   C1 n2 cz 2p
//   V1 vdd 0 1.2
//   E1 out 0 in 0 10        ; VCVS
//   G1 out 0 in 0 1m        ; VCCS
//   .end
//
// Supported cards: R, C, V (DC [AC mag]), I (DC [AC mag]), E (VCVS),
// G (VCCS), M (MOSFET referencing a .model), .model NMOS/PMOS with
// VT0/KP/LAMBDA, hierarchical subcircuits (.subckt name ports... / .ends,
// instantiated with `Xname nodes... subcktname`; internal nodes expand to
// "<instance>.<node>", ground stays global), comments (*, ;), line
// continuation (+), SPICE unit suffixes (f p n u m k meg g t),
// case-insensitive names. `.end` is optional. Node "0"/"gnd" is ground.
#pragma once

#include <iosfwd>
#include <string>

#include "spice/netlist.hpp"
#include "util/common.hpp"

namespace rsm::spice {

/// Parses SPICE text into a Netlist. Throws rsm::Error with a line number
/// on any malformed card.
[[nodiscard]] Netlist parse_netlist(const std::string& text);

/// Stream overload (reads to EOF).
[[nodiscard]] Netlist parse_netlist(std::istream& in);

/// Parses one SPICE number with optional unit suffix: "2.5k" -> 2500,
/// "20u" -> 2e-5, "3meg" -> 3e6, "1.5" -> 1.5. Exposed for tests.
[[nodiscard]] Real parse_spice_number(const std::string& token);

}  // namespace rsm::spice
