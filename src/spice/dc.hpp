// Nonlinear DC operating-point analysis.
//
// Newton-Raphson on the MNA system with voltage-step damping, backed by a
// configurable escalation ladder of homotopy strategies — the same aids
// commercial simulators apply, in the same order:
//
//   1. kNewton          plain damped Newton at the target gmin
//   2. kGminStepping    large shunt conductance walked down to the target
//   3. kSourceStepping  all independent sources ramped 0 -> 100 %
//   4. kPseudoTransient pseudo-capacitor continuation: each node is pulled
//                       toward the previous pseudo-state by a conductance
//                       that is relaxed geometrically until Newton owns the
//                       solution (ptran / "dptran" in SPICE dialects)
//
// Every strategy ends with a verification run at the target gmin and full
// source strength, so a convergence claim always refers to the *requested*
// system. On failure solve_dc throws a structured taxonomy error
// (SingularMatrixError / ConvergenceError / NumericalDomainError, see
// util/errors.hpp) so campaign layers can retry, escalate, or quarantine.
#pragma once

#include <span>
#include <vector>

#include "spice/netlist.hpp"
#include "util/common.hpp"
#include "util/errors.hpp"

namespace rsm::spice {

/// Convergence-aid strategies, in default escalation order.
enum class DcStrategy {
  kNewton,
  kGminStepping,
  kSourceStepping,
  kPseudoTransient,
};

[[nodiscard]] const char* dc_strategy_name(DcStrategy strategy);

struct DcOptions {
  int max_iterations = 200;
  Real voltage_tolerance = 1e-9;     // absolute [V]
  Real relative_tolerance = 1e-6;    // relative to node voltage / current
  Real current_tolerance = 1e-9;     // absolute, branch-current unknowns [A]
  Real max_step = 0.5;               // Newton damping: max |dV| per iteration
  Real gmin = 1e-12;                 // baseline convergence aid [S]
  int gmin_ladder_steps = 8;         // retries with decreasing gmin
  int source_ladder_steps = 10;      // source-stepping ramp points
  int ptran_steps = 30;              // pseudo-transient relaxation steps
  Real ptran_g_initial = 1e2;        // initial node-anchor conductance [S]
  Real ptran_g_final = 1e-9;         // anchor conductance at handoff [S]

  /// Escalation ladder, tried in order until one converges. Must be
  /// non-empty; campaigns shrink or reorder it per retry budget.
  std::vector<DcStrategy> strategies = {
      DcStrategy::kNewton, DcStrategy::kGminStepping,
      DcStrategy::kSourceStepping, DcStrategy::kPseudoTransient};
};

/// Progressively hardened options for campaign retries: level 0 returns
/// `base` unchanged; each further level doubles the iteration budget,
/// halves the damping step, and deepens every homotopy ladder.
[[nodiscard]] DcOptions escalated(const DcOptions& base, int level);

struct DcSolution {
  /// MNA unknowns: node voltages then branch currents (see mna.hpp).
  std::vector<Real> x;
  int iterations = 0;
  bool converged = false;

  /// Strategy that produced convergence, and how many were attempted.
  DcStrategy strategy = DcStrategy::kNewton;
  int strategies_tried = 0;

  [[nodiscard]] Real voltage(NodeId node) const {
    return node == kGround ? Real{0}
                           : x[static_cast<std::size_t>(node - 1)];
  }
};

/// Solves the DC operating point. `initial_guess` (optional, MNA-sized)
/// seeds Newton — passing the previous sample's solution makes per-sample
/// Monte Carlo evaluation converge in a couple of iterations.
///
/// Throws SingularMatrixError when every strategy died on a singular MNA
/// matrix (a topology problem no ladder can fix), NumericalDomainError when
/// an iterate left the finite domain, and ConvergenceError otherwise.
[[nodiscard]] DcSolution solve_dc(const Netlist& netlist,
                                  const DcOptions& options = {},
                                  std::span<const Real> initial_guess = {});

/// Branch current of voltage source `k` in a DC solution (positive current
/// flows into the + terminal through the source to the - terminal).
[[nodiscard]] Real vsource_current(const Netlist& netlist,
                                   const DcSolution& solution, Index k);

/// DC transfer sweep: sets voltage source `source` to each entry of
/// `values` in turn, solving the operating point (warm-started from the
/// previous one) and recording V(probe). The classic .DC analysis, e.g. an
/// inverter's VTC. The netlist is restored to its original source value.
[[nodiscard]] std::vector<Real> dc_sweep(Netlist& netlist, VsourceId source,
                                         std::span<const Real> values,
                                         NodeId probe,
                                         const DcOptions& options = {});

}  // namespace rsm::spice
