// Nonlinear DC operating-point analysis.
//
// Newton-Raphson on the MNA system with voltage-step damping; if plain
// Newton fails to converge, gmin stepping retries with a decreasing
// convergence-aid conductance — the same ladder commercial simulators use.
#pragma once

#include <span>
#include <vector>

#include "spice/netlist.hpp"
#include "util/common.hpp"

namespace rsm::spice {

struct DcOptions {
  int max_iterations = 200;
  Real voltage_tolerance = 1e-9;     // absolute [V]
  Real relative_tolerance = 1e-6;    // relative to node voltage
  Real max_step = 0.5;               // Newton damping: max |dV| per iteration
  Real gmin = 1e-12;                 // baseline convergence aid [S]
  int gmin_ladder_steps = 8;         // retries with decreasing gmin
};

struct DcSolution {
  /// MNA unknowns: node voltages then branch currents (see mna.hpp).
  std::vector<Real> x;
  int iterations = 0;
  bool converged = false;

  [[nodiscard]] Real voltage(NodeId node) const {
    return node == kGround ? Real{0}
                           : x[static_cast<std::size_t>(node - 1)];
  }
};

/// Solves the DC operating point. `initial_guess` (optional, MNA-sized)
/// seeds Newton — passing the previous sample's solution makes per-sample
/// Monte Carlo evaluation converge in a couple of iterations.
/// Throws rsm::Error if all fallbacks fail.
[[nodiscard]] DcSolution solve_dc(const Netlist& netlist,
                                  const DcOptions& options = {},
                                  std::span<const Real> initial_guess = {});

/// Branch current of voltage source `k` in a DC solution (positive current
/// flows into the + terminal through the source to the - terminal).
[[nodiscard]] Real vsource_current(const Netlist& netlist,
                                   const DcSolution& solution, Index k);

/// DC transfer sweep: sets voltage source `source` to each entry of
/// `values` in turn, solving the operating point (warm-started from the
/// previous one) and recording V(probe). The classic .DC analysis, e.g. an
/// inverter's VTC. The netlist is restored to its original source value.
[[nodiscard]] std::vector<Real> dc_sweep(Netlist& netlist, VsourceId source,
                                         std::span<const Real> values,
                                         NodeId probe,
                                         const DcOptions& options = {});

}  // namespace rsm::spice
