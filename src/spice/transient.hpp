// Transient analysis: fixed-step backward Euler on the MNA system.
//
// Capacitors become conductance companions G = C/h with history current
// I_eq = (C/h) * v(t-h); the nonlinear devices are handled by the same
// Newton iteration as the DC solver at every time point, warm-started from
// the previous point. Backward Euler is L-stable — the right default for
// the stiff RC + square-law networks here — at the cost of first-order
// accuracy (halve `timestep` to check convergence).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "spice/dc.hpp"
#include "spice/netlist.hpp"
#include "util/common.hpp"

namespace rsm::spice {

struct TransientOptions {
  Real timestep = 1e-12;      // integration step h [s]
  Real stop_time = 1e-9;      // simulate t in [0, stop_time]
  DcOptions newton;           // per-step Newton controls

  /// Called before each step with the current time; mutate source values
  /// (e.g. netlist.vsource(id).dc = pulse(t)) to drive stimuli.
  std::function<void(Real time, Netlist&)> update_sources;

  /// Start from the DC operating point at t = 0 (with sources already set
  /// through update_sources(0)); if false, start from all-zeros.
  bool start_from_dc = true;
};

struct TransientResult {
  std::vector<Real> time;                 // sample instants
  std::vector<std::vector<Real>> states;  // MNA vector per instant

  /// Waveform of one node across the run.
  [[nodiscard]] std::vector<Real> node_waveform(NodeId node) const;

  [[nodiscard]] Real voltage(std::size_t step, NodeId node) const {
    if (node == kGround) return 0;
    return states[step][static_cast<std::size_t>(node - 1)];
  }
};

/// Runs the transient. The netlist is taken by mutable reference because
/// `update_sources` may steer its source values; element topology must not
/// change during the run. Throws if Newton fails at any time point.
[[nodiscard]] TransientResult run_transient(Netlist& netlist,
                                            const TransientOptions& options);

/// Convenience stimulus: a single rising step v0 -> v1 at t = t_step with
/// linear rise over t_rise.
[[nodiscard]] std::function<Real(Real)> step_waveform(Real v0, Real v1,
                                                      Real t_step,
                                                      Real t_rise);

}  // namespace rsm::spice
