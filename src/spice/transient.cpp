#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"
#include "spice/mna.hpp"
#include "util/cancellation.hpp"

namespace rsm::spice {
namespace {

/// One backward-Euler Newton solve at a fixed time point.
/// x holds the initial guess on entry and the solution on exit.
bool newton_step(const Netlist& netlist, const DcOptions& opt, Real h,
                 std::span<const Real> x_prev, std::vector<Real>& x) {
  const Index n = netlist.mna_size();
  for (int it = 0; it < opt.max_iterations; ++it) {
    RealStamp stamp(n);
    stamp_dc(netlist, x, opt.gmin, stamp);

    // Capacitor companions: G = C/h between the terminals, plus history
    // current I = (C/h) * v_prev flowing as a source.
    for (const Capacitor& c : netlist.capacitors()) {
      const Real g = c.capacitance / h;
      stamp.conductance(c.a, c.b, g);
      const Real v_prev = node_voltage(x_prev, c.a) - node_voltage(x_prev, c.b);
      // i = g (v - v_prev): the -g*v_prev part goes to the RHS as an
      // injection a -> b.
      stamp.current_into(c.a, g * v_prev);
      stamp.current_into(c.b, -g * v_prev);
    }

    std::vector<Real> x_new;
    try {
      LuFactorization<Real> lu(std::move(stamp.matrix()), n);
      x_new = lu.solve(stamp.rhs());
    } catch (const Error&) {
      return false;
    }

    Real max_dv = 0;
    const Index num_voltage_unknowns = netlist.num_nodes() - 1;
    for (Index i = 0; i < n; ++i) {
      Real dv = x_new[static_cast<std::size_t>(i)] -
                x[static_cast<std::size_t>(i)];
      if (i < num_voltage_unknowns) {
        dv = std::clamp(dv, -opt.max_step, opt.max_step);
        max_dv = std::max(max_dv, std::abs(dv));
      }
      x[static_cast<std::size_t>(i)] += dv;
    }
    Real max_abs_x = 0;
    for (Real v : x) max_abs_x = std::max(max_abs_x, std::abs(v));
    if (max_dv < opt.voltage_tolerance + opt.relative_tolerance * max_abs_x)
      return true;
  }
  return false;
}

}  // namespace

std::vector<Real> TransientResult::node_waveform(NodeId node) const {
  std::vector<Real> out;
  out.reserve(states.size());
  for (std::size_t s = 0; s < states.size(); ++s) out.push_back(voltage(s, node));
  return out;
}

TransientResult run_transient(Netlist& netlist,
                              const TransientOptions& options) {
  RSM_CHECK(options.timestep > 0 && options.stop_time > options.timestep);
  const Index n = netlist.mna_size();
  RSM_CHECK(n > 0);

  TransientResult result;
  const auto num_steps =
      static_cast<std::size_t>(options.stop_time / options.timestep) + 1;
  result.time.reserve(num_steps + 1);
  result.states.reserve(num_steps + 1);

  if (options.update_sources) options.update_sources(0, netlist);
  std::vector<Real> x;
  if (options.start_from_dc) {
    x = solve_dc(netlist, options.newton).x;
  } else {
    x.assign(static_cast<std::size_t>(n), Real{0});
  }
  result.time.push_back(0);
  result.states.push_back(x);

  std::vector<Real> x_prev = x;
  Real t = 0;
  while (t < options.stop_time) {
    // Transient runs are the longest single-sample computations in the
    // system; honor campaign watchdogs between time points.
    check_cooperative_stop("spice.transient");
    t += options.timestep;
    if (options.update_sources) options.update_sources(t, netlist);
    // Warm start from the previous point; x_prev feeds the companions.
    if (!newton_step(netlist, options.newton, options.timestep, x_prev, x)) {
      // One retry from the previous solution with a fresh copy (the damped
      // iterate may have wandered); then give up loudly.
      x = x_prev;
      RSM_CHECK_MSG(
          newton_step(netlist, options.newton, options.timestep, x_prev, x),
          "transient Newton failed at t=" << t);
    }
    result.time.push_back(t);
    result.states.push_back(x);
    x_prev = x;
  }
  return result;
}

std::function<Real(Real)> step_waveform(Real v0, Real v1, Real t_step,
                                        Real t_rise) {
  RSM_CHECK(t_rise >= 0);
  return [=](Real t) {
    if (t <= t_step) return v0;
    if (t_rise == 0 || t >= t_step + t_rise) return v1;
    return v0 + (v1 - v0) * (t - t_step) / t_rise;
  };
}

}  // namespace rsm::spice
