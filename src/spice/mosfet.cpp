#include "spice/mosfet.hpp"

#include <algorithm>
#include <cmath>

namespace rsm::spice {
namespace {

/// softplus(u) = ln(1 + e^u), overflow-safe.
Real softplus(Real u) {
  if (u > 40) return u;
  if (u < -40) return std::exp(u);
  return std::log1p(std::exp(u));
}

/// logistic(u) = d softplus / du.
Real logistic(Real u) {
  if (u > 40) return 1;
  if (u < -40) return std::exp(u);
  return Real{1} / (Real{1} + std::exp(-u));
}

}  // namespace

MosfetEval evaluate_nmos_convention(const MosfetParams& p, Real vgs,
                                    Real vds) {
  MosfetEval out;
  // Source/drain swap for vds < 0 (symmetric device): evaluate with the
  // terminals exchanged and reflect the result back.
  if (vds < 0) {
    const MosfetEval swapped = evaluate_nmos_convention(p, vgs - vds, -vds);
    out.ids = -swapped.ids;
    out.gm = -swapped.gm;             // d(-I(vgs-vds,-vds))/dvgs
    out.gds = swapped.gm + swapped.gds;  // chain rule through both arguments
    return out;
  }

  // EKV-style smooth interpolation. With a = n*vt and
  //   F(u) = ln^2(1 + e^{u/(2a)}),
  // the drain current is
  //   ids = 2 beta a^2 [F(vov) - F(vov - vds)] * (1 + lambda*vds).
  // Strong inversion: F(u) -> (u/2a)^2, recovering the exact square-law
  // triode/saturation expressions; subthreshold: F -> e^{u/a}, giving the
  // exponential leakage. Everything is C^inf — essential for the Newton DC
  // solver (a piecewise model's current jump at the region boundary makes
  // the iteration limit-cycle).
  const Real beta = p.beta();
  const Real a = kSubthresholdSlope * kThermalVoltage;
  const Real vov = vgs - p.vt0;

  const Real lf = softplus(vov / (2 * a));            // L(vov)
  const Real lr = softplus((vov - vds) / (2 * a));    // L(vov - vds)
  const Real sf = logistic(vov / (2 * a));
  const Real sr = logistic((vov - vds) / (2 * a));

  const Real f_fwd = lf * lf;
  const Real f_rev = lr * lr;
  const Real df_fwd = lf * sf / a;  // dF/du at vov
  const Real df_rev = lr * sr / a;  // dF/du at vov - vds

  const Real clm = Real{1} + p.lambda * vds;
  const Real scale = 2 * beta * a * a;

  out.ids = scale * (f_fwd - f_rev) * clm;
  out.gm = scale * (df_fwd - df_rev) * clm;
  out.gds = scale * df_rev * clm + scale * (f_fwd - f_rev) * p.lambda;

  // Tiny floors keep the MNA matrix nonsingular when a cut-off device is the
  // only element on a node.
  out.gds = std::max(out.gds, Real{1e-12});
  out.gm = std::max(out.gm, Real{0});
  return out;
}

}  // namespace rsm::spice
