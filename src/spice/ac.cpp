#include "spice/ac.hpp"

#include <cmath>
#include <numbers>

#include "linalg/lu.hpp"
#include "spice/mna.hpp"

namespace rsm::spice {

std::vector<Phasor> solve_ac(const Netlist& netlist, const DcSolution& op,
                             Real hz) {
  RSM_CHECK(hz >= 0);
  const Index n = netlist.mna_size();
  ComplexStamp stamp(n);
  const Real omega = 2 * std::numbers::pi_v<Real> * hz;
  stamp_ac(netlist, op.x, omega, stamp);
  ComplexLu lu(std::move(stamp.matrix()), n);
  return lu.solve(stamp.rhs());
}

Phasor ac_voltage(std::span<const Phasor> solution, NodeId node) {
  if (node == kGround) return {};
  return solution[static_cast<std::size_t>(node - 1)];
}

std::vector<AcSweepPoint> ac_sweep(const Netlist& netlist,
                                   const DcSolution& op, NodeId node,
                                   Real hz_start, Real hz_stop,
                                   int points_per_decade) {
  RSM_CHECK(hz_start > 0 && hz_stop > hz_start && points_per_decade >= 1);
  std::vector<AcSweepPoint> sweep;
  const Real decades = std::log10(hz_stop / hz_start);
  const int total = std::max(2, static_cast<int>(decades * points_per_decade) + 1);
  for (int i = 0; i < total; ++i) {
    const Real f = hz_start *
                   std::pow(Real{10}, decades * static_cast<Real>(i) /
                                          static_cast<Real>(total - 1));
    const std::vector<Phasor> sol = solve_ac(netlist, op, f);
    sweep.push_back({f, ac_voltage(sol, node)});
  }
  return sweep;
}

namespace {

Real magnitude_at(const Netlist& netlist, const DcSolution& op, NodeId node,
                  Real hz) {
  const std::vector<Phasor> sol = solve_ac(netlist, op, hz);
  return std::abs(ac_voltage(sol, node));
}

/// Finds the lowest f in [hz_lo, hz_stop] with magnitude(f) < threshold by
/// octave bracketing followed by log-domain bisection.
Real find_crossing(const Netlist& netlist, const DcSolution& op, NodeId node,
                   Real threshold, Real hz_lo, Real hz_stop) {
  Real lo = hz_lo;
  Real hi = lo;
  bool bracketed = false;
  while (hi < hz_stop) {
    hi = std::min(hi * 2, hz_stop);
    if (magnitude_at(netlist, op, node, hi) < threshold) {
      bracketed = true;
      break;
    }
    lo = hi;
  }
  if (!bracketed) return hz_stop;

  for (int i = 0; i < 60; ++i) {
    const Real mid = std::sqrt(lo * hi);
    if (magnitude_at(netlist, op, node, mid) < threshold) {
      hi = mid;
    } else {
      lo = mid;
    }
    if (hi / lo < Real{1} + Real{1e-9}) break;
  }
  return std::sqrt(lo * hi);
}

}  // namespace

Real find_3db_bandwidth(const Netlist& netlist, const DcSolution& op,
                        NodeId node, Real hz_ref, Real hz_stop) {
  RSM_CHECK(hz_ref > 0 && hz_stop > hz_ref);
  const Real ref = magnitude_at(netlist, op, node, hz_ref);
  RSM_CHECK_MSG(ref > 0, "reference magnitude is zero");
  return find_crossing(netlist, op, node, ref / std::sqrt(Real{2}), hz_ref,
                       hz_stop);
}

Real find_unity_gain_frequency(const Netlist& netlist, const DcSolution& op,
                               NodeId node, Real hz_start, Real hz_stop) {
  RSM_CHECK(hz_start > 0 && hz_stop > hz_start);
  if (magnitude_at(netlist, op, node, hz_start) < Real{1}) return hz_start;
  return find_crossing(netlist, op, node, Real{1}, hz_start, hz_stop);
}

}  // namespace rsm::spice
