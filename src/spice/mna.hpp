// Modified nodal analysis stamping.
//
// Unknown ordering: node voltages 1..n-1 first (ground eliminated), then one
// branch current per voltage source, then one per VCVS. Real stamps serve
// the DC Newton loop; complex stamps (G + jwC) serve AC analysis.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "spice/netlist.hpp"
#include "util/common.hpp"

namespace rsm::spice {

/// Dense real MNA system A x = z under construction.
class RealStamp {
 public:
  explicit RealStamp(Index size);

  void conductance(NodeId a, NodeId b, Real g);
  void current_into(NodeId node, Real amps);

  /// Raw access for branch rows (voltage sources / VCVS).
  void add(Index row, Index col, Real value);
  void add_rhs(Index row, Real value);

  [[nodiscard]] Index size() const { return n_; }
  [[nodiscard]] std::vector<Real>& matrix() { return a_; }
  [[nodiscard]] std::vector<Real>& rhs() { return z_; }

 private:
  Index n_;
  std::vector<Real> a_;  // row-major n x n
  std::vector<Real> z_;
};

/// Dense complex MNA system for AC analysis.
class ComplexStamp {
 public:
  using C = std::complex<Real>;

  explicit ComplexStamp(Index size);

  void admittance(NodeId a, NodeId b, C y);
  void current_into(NodeId node, C amps);
  void add(Index row, Index col, C value);
  void add_rhs(Index row, C value);

  [[nodiscard]] Index size() const { return n_; }
  [[nodiscard]] std::vector<C>& matrix() { return a_; }
  [[nodiscard]] std::vector<C>& rhs() { return z_; }

 private:
  Index n_;
  std::vector<C> a_;
  std::vector<C> z_;
};

/// Stamps every linear element of `netlist` into a real DC system
/// (capacitors are open at DC) around the solution estimate `x` and adds the
/// companion models of all MOSFETs linearized at `x`. `gmin` is a
/// conductance tied from every node to ground for convergence aid.
/// `source_scale` multiplies every independent source value — the source
/// stepping homotopy ramps it 0 -> 1 (at 0 the only DC solution is the
/// all-off state, which Newton finds trivially).
void stamp_dc(const Netlist& netlist, std::span<const Real> x, Real gmin,
              RealStamp& stamp, Real source_scale = Real{1});

/// Stamps the small-signal system at angular frequency `omega`, linearizing
/// MOSFETs at the DC solution `dc_solution`. Independent sources contribute
/// their AC magnitudes (DC values are zeroed in small-signal analysis).
void stamp_ac(const Netlist& netlist, std::span<const Real> dc_solution,
              Real omega, ComplexStamp& stamp);

/// Voltage of `node` in an MNA solution vector (0 for ground).
template <typename T>
[[nodiscard]] T node_voltage(std::span<const T> solution, NodeId node) {
  if (node == kGround) return T{};
  return solution[static_cast<std::size_t>(node - 1)];
}

}  // namespace rsm::spice
