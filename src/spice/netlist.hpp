// Circuit netlist: named nodes plus a flat list of elements.
//
// Node 0 / "0" / "gnd" is ground. Elements are added through typed methods
// that return handles, so circuit builders (src/circuits) can later perturb
// element values per variation sample without rebuilding the netlist.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "spice/mosfet.hpp"
#include "util/common.hpp"

namespace rsm::spice {

/// Node identifier; kGround == 0.
using NodeId = Index;
inline constexpr NodeId kGround = 0;

struct Resistor {
  NodeId a = kGround, b = kGround;
  Real resistance = 0;
};

struct Capacitor {
  NodeId a = kGround, b = kGround;
  Real capacitance = 0;
};

/// Independent voltage source a(+) -> b(-): V(a) - V(b) = dc + ac (AC phasor
/// magnitude; phase 0). Adds one branch-current unknown to the MNA system.
struct VoltageSource {
  NodeId a = kGround, b = kGround;
  Real dc = 0;
  Real ac = 0;
};

/// Independent current source injecting `dc` amps from a into b (i.e.
/// current flows a -> b through the source; node b receives current).
struct CurrentSource {
  NodeId a = kGround, b = kGround;
  Real dc = 0;
  Real ac = 0;
};

/// Voltage-controlled voltage source: V(p) - V(q) = gain * (V(cp) - V(cq)).
struct Vcvs {
  NodeId p = kGround, q = kGround;
  NodeId cp = kGround, cq = kGround;
  Real gain = 0;
};

/// Voltage-controlled current source: I(p->q) = gm * (V(cp) - V(cq)).
struct Vccs {
  NodeId p = kGround, q = kGround;
  NodeId cp = kGround, cq = kGround;
  Real gm = 0;
};

/// Four-terminal MOSFET instance (bulk is accepted for interface
/// completeness; the level-1 model ignores body effect).
struct Mosfet {
  NodeId d = kGround, g = kGround, s = kGround, b = kGround;
  MosfetParams params;
};

/// Typed element handles, indices into the per-type vectors.
struct ResistorId { Index v; };
struct CapacitorId { Index v; };
struct VsourceId { Index v; };
struct IsourceId { Index v; };
struct VcvsId { Index v; };
struct VccsId { Index v; };
struct MosfetId { Index v; };

class Netlist {
 public:
  Netlist();

  /// Returns the id for `name`, creating the node on first use.
  /// "0" and "gnd" map to ground.
  NodeId node(const std::string& name);

  /// Number of nodes including ground.
  [[nodiscard]] Index num_nodes() const {
    return static_cast<Index>(node_names_.size());
  }

  [[nodiscard]] const std::string& node_name(NodeId id) const;

  ResistorId add_resistor(NodeId a, NodeId b, Real resistance);
  CapacitorId add_capacitor(NodeId a, NodeId b, Real capacitance);
  VsourceId add_vsource(NodeId a, NodeId b, Real dc, Real ac = 0);
  IsourceId add_isource(NodeId a, NodeId b, Real dc, Real ac = 0);
  VcvsId add_vcvs(NodeId p, NodeId q, NodeId cp, NodeId cq, Real gain);
  VccsId add_vccs(NodeId p, NodeId q, NodeId cp, NodeId cq, Real gm);
  MosfetId add_mosfet(NodeId d, NodeId g, NodeId s, NodeId b,
                      const MosfetParams& params);

  // Mutable access for variation application and source steering.
  Resistor& resistor(ResistorId id);
  Capacitor& capacitor(CapacitorId id);
  VoltageSource& vsource(VsourceId id);
  CurrentSource& isource(IsourceId id);
  Mosfet& mosfet(MosfetId id);

  [[nodiscard]] const std::vector<Resistor>& resistors() const { return resistors_; }
  [[nodiscard]] const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  [[nodiscard]] const std::vector<VoltageSource>& vsources() const { return vsources_; }
  [[nodiscard]] const std::vector<CurrentSource>& isources() const { return isources_; }
  [[nodiscard]] const std::vector<Vcvs>& vcvs_list() const { return vcvs_; }
  [[nodiscard]] const std::vector<Vccs>& vccs_list() const { return vccs_; }
  [[nodiscard]] const std::vector<Mosfet>& mosfets() const { return mosfets_; }

  /// Unknown count of the MNA system: (num_nodes - 1) node voltages plus one
  /// branch current per voltage source and per VCVS.
  [[nodiscard]] Index mna_size() const;

  /// Row/column of node `n` in the MNA system; -1 for ground.
  [[nodiscard]] static Index mna_node_index(NodeId n) { return n - 1; }

  /// Branch-current unknown index for voltage source k.
  [[nodiscard]] Index vsource_branch_index(Index k) const;

  /// Branch-current unknown index for VCVS k.
  [[nodiscard]] Index vcvs_branch_index(Index k) const;

 private:
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_ids_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VoltageSource> vsources_;
  std::vector<CurrentSource> isources_;
  std::vector<Vcvs> vcvs_;
  std::vector<Vccs> vccs_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace rsm::spice
