// Small-signal AC analysis at a DC operating point.
#pragma once

#include <complex>
#include <functional>
#include <span>
#include <vector>

#include "spice/dc.hpp"
#include "spice/netlist.hpp"
#include "util/common.hpp"

namespace rsm::spice {

using Phasor = std::complex<Real>;

/// Solves the small-signal system at frequency `hz` (linearized at
/// `op`), returning all MNA phasors. AC source magnitudes come from the
/// netlist's `ac` fields.
[[nodiscard]] std::vector<Phasor> solve_ac(const Netlist& netlist,
                                           const DcSolution& op, Real hz);

/// Phasor voltage of `node` in an AC solution.
[[nodiscard]] Phasor ac_voltage(std::span<const Phasor> solution, NodeId node);

struct AcSweepPoint {
  Real hz = 0;
  Phasor value;
};

/// Logarithmic frequency sweep of one node voltage.
[[nodiscard]] std::vector<AcSweepPoint> ac_sweep(const Netlist& netlist,
                                                 const DcSolution& op,
                                                 NodeId node, Real hz_start,
                                                 Real hz_stop,
                                                 int points_per_decade = 10);

/// -3 dB bandwidth of |V(node)(f)| relative to its value at `hz_ref`:
/// the lowest frequency where the magnitude falls below 1/sqrt(2) of the
/// reference, found by bracketing on a log sweep then bisection.
/// Returns hz_stop if no crossing is found in range.
[[nodiscard]] Real find_3db_bandwidth(const Netlist& netlist,
                                      const DcSolution& op, NodeId node,
                                      Real hz_ref, Real hz_stop);

/// Unity-gain frequency of |V(node)| (assumes input AC magnitude 1):
/// lowest f with |V| < 1. Returns hz_stop if |V| never drops below 1.
[[nodiscard]] Real find_unity_gain_frequency(const Netlist& netlist,
                                             const DcSolution& op, NodeId node,
                                             Real hz_start, Real hz_stop);

}  // namespace rsm::spice
