// Level-1 (square-law) MOSFET model.
//
// The reproduction's stand-in for the foundry transistor models behind
// Cadence Spectre: accurate enough to give circuit performances a realistic,
// smoothly nonlinear dependence on Vth / beta / geometry variations, which is
// all the RSM algorithms observe.
#pragma once

#include "util/common.hpp"

namespace rsm::spice {

enum class MosType { kNmos, kPmos };

/// Device parameters after variation has been applied.
struct MosfetParams {
  MosType type = MosType::kNmos;
  Real vt0 = 0.4;      // zero-bias threshold [V] (magnitude; positive for both)
  Real kp = 200e-6;    // transconductance parameter mu*Cox [A/V^2]
  Real lambda = 0.15;  // channel-length modulation [1/V] (at drawn L)
  Real w = 1e-6;       // drawn width [m]
  Real l = 60e-9;      // drawn length [m]

  [[nodiscard]] Real beta() const { return kp * w / l; }
};

/// Operating-point evaluation result (NMOS sign convention: ids flows
/// drain->source and is >= 0 in normal operation).
struct MosfetEval {
  Real ids = 0;  // drain current [A]
  Real gm = 0;   // d ids / d vgs [S]
  Real gds = 0;  // d ids / d vds [S]
};

/// Evaluates the square-law model at (vgs, vds), both in the device's own
/// sign convention (positive for NMOS-normal operation). Includes a
/// weak-inversion exponential below threshold so Newton sees a smooth,
/// strictly monotonic characteristic (hard cutoff stalls convergence),
/// and channel-length modulation in saturation.
[[nodiscard]] MosfetEval evaluate_nmos_convention(const MosfetParams& p,
                                                  Real vgs, Real vds);

/// Subthreshold slope factor used by the weak-inversion blend; exposed for
/// the SRAM leakage model, which sums exp(-vth/(n*vt)) over all cells.
inline constexpr Real kSubthresholdSlope = 1.5;
inline constexpr Real kThermalVoltage = 0.0258;  // kT/q at ~300 K [V]

}  // namespace rsm::spice
