#include "spice/mna.hpp"

namespace rsm::spice {

RealStamp::RealStamp(Index size)
    : n_(size), a_(static_cast<std::size_t>(size * size), Real{0}),
      z_(static_cast<std::size_t>(size), Real{0}) {}

void RealStamp::add(Index row, Index col, Real value) {
  RSM_DCHECK(row >= 0 && row < n_ && col >= 0 && col < n_);
  a_[static_cast<std::size_t>(row * n_ + col)] += value;
}

void RealStamp::add_rhs(Index row, Real value) {
  RSM_DCHECK(row >= 0 && row < n_);
  z_[static_cast<std::size_t>(row)] += value;
}

void RealStamp::conductance(NodeId a, NodeId b, Real g) {
  const Index ia = Netlist::mna_node_index(a);
  const Index ib = Netlist::mna_node_index(b);
  if (ia >= 0) add(ia, ia, g);
  if (ib >= 0) add(ib, ib, g);
  if (ia >= 0 && ib >= 0) {
    add(ia, ib, -g);
    add(ib, ia, -g);
  }
}

void RealStamp::current_into(NodeId node, Real amps) {
  const Index i = Netlist::mna_node_index(node);
  if (i >= 0) add_rhs(i, amps);
}

ComplexStamp::ComplexStamp(Index size)
    : n_(size), a_(static_cast<std::size_t>(size * size)),
      z_(static_cast<std::size_t>(size)) {}

void ComplexStamp::add(Index row, Index col, C value) {
  RSM_DCHECK(row >= 0 && row < n_ && col >= 0 && col < n_);
  a_[static_cast<std::size_t>(row * n_ + col)] += value;
}

void ComplexStamp::add_rhs(Index row, C value) {
  RSM_DCHECK(row >= 0 && row < n_);
  z_[static_cast<std::size_t>(row)] += value;
}

void ComplexStamp::admittance(NodeId a, NodeId b, C y) {
  const Index ia = Netlist::mna_node_index(a);
  const Index ib = Netlist::mna_node_index(b);
  if (ia >= 0) add(ia, ia, y);
  if (ib >= 0) add(ib, ib, y);
  if (ia >= 0 && ib >= 0) {
    add(ia, ib, -y);
    add(ib, ia, -y);
  }
}

void ComplexStamp::current_into(NodeId node, C amps) {
  const Index i = Netlist::mna_node_index(node);
  if (i >= 0) add_rhs(i, amps);
}

namespace {

/// Linearized MOSFET stamp shared by DC (companion model) use.
/// Works in actual terminal voltages; handles PMOS by reflecting into the
/// NMOS convention.
struct LinearizedMos {
  Real ids;  // current drain->source at the linearization point
  Real gm;   // referenced to actual (vg - vs)
  Real gds;  // referenced to actual (vd - vs)
};

LinearizedMos linearize(const Mosfet& m, Real vd, Real vg, Real vs) {
  if (m.params.type == MosType::kNmos) {
    const MosfetEval e =
        evaluate_nmos_convention(m.params, vg - vs, vd - vs);
    return {e.ids, e.gm, e.gds};
  }
  // PMOS: evaluate the mirror NMOS at negated voltages; current and
  // derivatives reflect back with the same signs for the MNA stamp below
  // because d(-I(-v))/dv = I'(-v).
  const MosfetEval e =
      evaluate_nmos_convention(m.params, vs - vg, vs - vd);
  return {-e.ids, e.gm, e.gds};
}

}  // namespace

void stamp_dc(const Netlist& netlist, std::span<const Real> x, Real gmin,
              RealStamp& stamp, Real source_scale) {
  RSM_CHECK(static_cast<Index>(x.size()) == netlist.mna_size());
  RSM_CHECK(stamp.size() == netlist.mna_size());

  for (const Resistor& r : netlist.resistors())
    stamp.conductance(r.a, r.b, Real{1} / r.resistance);

  // Capacitors are open circuits at DC.

  for (const CurrentSource& i : netlist.isources()) {
    stamp.current_into(i.a, -i.dc * source_scale);
    stamp.current_into(i.b, i.dc * source_scale);
  }

  const auto& vsources = netlist.vsources();
  for (Index k = 0; k < static_cast<Index>(vsources.size()); ++k) {
    const VoltageSource& v = vsources[static_cast<std::size_t>(k)];
    const Index br = netlist.vsource_branch_index(k);
    const Index ia = Netlist::mna_node_index(v.a);
    const Index ib = Netlist::mna_node_index(v.b);
    if (ia >= 0) {
      stamp.add(ia, br, Real{1});
      stamp.add(br, ia, Real{1});
    }
    if (ib >= 0) {
      stamp.add(ib, br, Real{-1});
      stamp.add(br, ib, Real{-1});
    }
    stamp.add_rhs(br, v.dc * source_scale);
  }

  const auto& vcvs = netlist.vcvs_list();
  for (Index k = 0; k < static_cast<Index>(vcvs.size()); ++k) {
    const Vcvs& e = vcvs[static_cast<std::size_t>(k)];
    const Index br = netlist.vcvs_branch_index(k);
    const Index ip = Netlist::mna_node_index(e.p);
    const Index iq = Netlist::mna_node_index(e.q);
    const Index icp = Netlist::mna_node_index(e.cp);
    const Index icq = Netlist::mna_node_index(e.cq);
    if (ip >= 0) {
      stamp.add(ip, br, Real{1});
      stamp.add(br, ip, Real{1});
    }
    if (iq >= 0) {
      stamp.add(iq, br, Real{-1});
      stamp.add(br, iq, Real{-1});
    }
    if (icp >= 0) stamp.add(br, icp, -e.gain);
    if (icq >= 0) stamp.add(br, icq, e.gain);
  }

  for (const Vccs& e : netlist.vccs_list()) {
    const Index ip = Netlist::mna_node_index(e.p);
    const Index iq = Netlist::mna_node_index(e.q);
    const Index icp = Netlist::mna_node_index(e.cp);
    const Index icq = Netlist::mna_node_index(e.cq);
    if (ip >= 0 && icp >= 0) stamp.add(ip, icp, e.gm);
    if (ip >= 0 && icq >= 0) stamp.add(ip, icq, -e.gm);
    if (iq >= 0 && icp >= 0) stamp.add(iq, icp, -e.gm);
    if (iq >= 0 && icq >= 0) stamp.add(iq, icq, e.gm);
  }

  // MOSFET companion models: around the estimate x, the device current is
  //   ids ~= Ids0 + gm*(vgs - vgs0) + gds*(vds - vds0)
  // which stamps as a VCCS (gm), a conductance (gds) and an equivalent
  // current source Ieq = Ids0 - gm*vgs0 - gds*vds0 from drain to source.
  for (const Mosfet& m : netlist.mosfets()) {
    const Real vd = node_voltage(x, m.d);
    const Real vg = node_voltage(x, m.g);
    const Real vs = node_voltage(x, m.s);
    const LinearizedMos lin = linearize(m, vd, vg, vs);

    stamp.conductance(m.d, m.s, lin.gds);
    // VCCS gm from (g,s) controlling current d->s.
    const Index id = Netlist::mna_node_index(m.d);
    const Index is = Netlist::mna_node_index(m.s);
    const Index ig = Netlist::mna_node_index(m.g);
    if (id >= 0 && ig >= 0) stamp.add(id, ig, lin.gm);
    if (id >= 0 && is >= 0) stamp.add(id, is, -lin.gm);
    if (is >= 0 && ig >= 0) stamp.add(is, ig, -lin.gm);
    if (is >= 0 && is >= 0) stamp.add(is, is, lin.gm);

    const Real ieq = lin.ids - lin.gm * (vg - vs) - lin.gds * (vd - vs);
    stamp.current_into(m.d, -ieq);
    stamp.current_into(m.s, ieq);
  }

  // gmin from every node to ground.
  if (gmin > 0) {
    for (NodeId n = 1; n < netlist.num_nodes(); ++n)
      stamp.conductance(n, kGround, gmin);
  }
}

void stamp_ac(const Netlist& netlist, std::span<const Real> dc_solution,
              Real omega, ComplexStamp& stamp) {
  using C = std::complex<Real>;
  RSM_CHECK(static_cast<Index>(dc_solution.size()) == netlist.mna_size());
  RSM_CHECK(stamp.size() == netlist.mna_size());

  for (const Resistor& r : netlist.resistors())
    stamp.admittance(r.a, r.b, C{Real{1} / r.resistance, 0});

  for (const Capacitor& c : netlist.capacitors())
    stamp.admittance(c.a, c.b, C{0, omega * c.capacitance});

  for (const CurrentSource& i : netlist.isources()) {
    stamp.current_into(i.a, C{-i.ac, 0});
    stamp.current_into(i.b, C{i.ac, 0});
  }

  const auto& vsources = netlist.vsources();
  for (Index k = 0; k < static_cast<Index>(vsources.size()); ++k) {
    const VoltageSource& v = vsources[static_cast<std::size_t>(k)];
    const Index br = netlist.vsource_branch_index(k);
    const Index ia = Netlist::mna_node_index(v.a);
    const Index ib = Netlist::mna_node_index(v.b);
    if (ia >= 0) {
      stamp.add(ia, br, C{1, 0});
      stamp.add(br, ia, C{1, 0});
    }
    if (ib >= 0) {
      stamp.add(ib, br, C{-1, 0});
      stamp.add(br, ib, C{-1, 0});
    }
    stamp.add_rhs(br, C{v.ac, 0});  // small-signal: DC value suppressed
  }

  const auto& vcvs = netlist.vcvs_list();
  for (Index k = 0; k < static_cast<Index>(vcvs.size()); ++k) {
    const Vcvs& e = vcvs[static_cast<std::size_t>(k)];
    const Index br = netlist.vcvs_branch_index(k);
    const Index ip = Netlist::mna_node_index(e.p);
    const Index iq = Netlist::mna_node_index(e.q);
    const Index icp = Netlist::mna_node_index(e.cp);
    const Index icq = Netlist::mna_node_index(e.cq);
    if (ip >= 0) {
      stamp.add(ip, br, C{1, 0});
      stamp.add(br, ip, C{1, 0});
    }
    if (iq >= 0) {
      stamp.add(iq, br, C{-1, 0});
      stamp.add(br, iq, C{-1, 0});
    }
    if (icp >= 0) stamp.add(br, icp, C{-e.gain, 0});
    if (icq >= 0) stamp.add(br, icq, C{e.gain, 0});
  }

  for (const Vccs& e : netlist.vccs_list()) {
    const Index ip = Netlist::mna_node_index(e.p);
    const Index iq = Netlist::mna_node_index(e.q);
    const Index icp = Netlist::mna_node_index(e.cp);
    const Index icq = Netlist::mna_node_index(e.cq);
    if (ip >= 0 && icp >= 0) stamp.add(ip, icp, C{e.gm, 0});
    if (ip >= 0 && icq >= 0) stamp.add(ip, icq, C{-e.gm, 0});
    if (iq >= 0 && icp >= 0) stamp.add(iq, icp, C{-e.gm, 0});
    if (iq >= 0 && icq >= 0) stamp.add(iq, icq, C{e.gm, 0});
  }

  // MOSFETs linearized at the DC operating point contribute gm + gds.
  for (const Mosfet& m : netlist.mosfets()) {
    const Real vd = node_voltage(dc_solution, m.d);
    const Real vg = node_voltage(dc_solution, m.g);
    const Real vs = node_voltage(dc_solution, m.s);
    MosfetEval e;
    if (m.params.type == MosType::kNmos) {
      e = evaluate_nmos_convention(m.params, vg - vs, vd - vs);
    } else {
      e = evaluate_nmos_convention(m.params, vs - vg, vs - vd);
    }

    stamp.admittance(m.d, m.s, C{e.gds, 0});
    const Index id = Netlist::mna_node_index(m.d);
    const Index is = Netlist::mna_node_index(m.s);
    const Index ig = Netlist::mna_node_index(m.g);
    if (id >= 0 && ig >= 0) stamp.add(id, ig, C{e.gm, 0});
    if (id >= 0 && is >= 0) stamp.add(id, is, C{-e.gm, 0});
    if (is >= 0 && ig >= 0) stamp.add(is, ig, C{-e.gm, 0});
    if (is >= 0) stamp.add(is, is, C{e.gm, 0});
  }

  // Tiny gmin keeps floating AC nodes solvable.
  for (NodeId n = 1; n < netlist.num_nodes(); ++n)
    stamp.admittance(n, kGround, C{1e-12, 0});
}

}  // namespace rsm::spice
