// Symmetric eigendecomposition by the cyclic Jacobi method.
//
// PCA (src/stats) diagonalizes the process-parameter covariance matrix with
// this routine. Jacobi is O(n^3) per sweep but unconditionally robust and
// delivers eigenvectors orthogonal to machine precision, which PCA's
// whitening step depends on.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "util/common.hpp"

namespace rsm {

struct SymmetricEigen {
  /// Eigenvalues in descending order.
  std::vector<Real> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Full eigendecomposition of a symmetric matrix (only the upper triangle is
/// read). `max_sweeps` bounds the cyclic Jacobi iteration; convergence to
/// ~1e-14 off-diagonal mass typically takes 6-10 sweeps.
[[nodiscard]] SymmetricEigen eigen_symmetric(const Matrix& a,
                                             int max_sweeps = 50);

}  // namespace rsm
