#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"

namespace rsm {

Matrix::Matrix(Index rows, Index cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows * cols), Real{0}) {
  RSM_CHECK(rows >= 0 && cols >= 0);
}

Matrix::Matrix(Index rows, Index cols, Real value)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows * cols), value) {
  RSM_CHECK(rows >= 0 && cols >= 0);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Real>> rows) {
  rows_ = static_cast<Index>(rows.size());
  cols_ = rows_ > 0 ? static_cast<Index>(rows.begin()->size()) : 0;
  data_.reserve(static_cast<std::size_t>(rows_ * cols_));
  for (const auto& r : rows) {
    RSM_CHECK_MSG(static_cast<Index>(r.size()) == cols_,
                  "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(Index n) {
  Matrix m(n, n);
  for (Index i = 0; i < n; ++i) m(i, i) = Real{1};
  return m;
}

std::span<Real> Matrix::row(Index r) {
  RSM_DCHECK(r >= 0 && r < rows_);
  return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
}

std::span<const Real> Matrix::row(Index r) const {
  RSM_DCHECK(r >= 0 && r < rows_);
  return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
}

std::vector<Real> Matrix::col(Index c) const {
  RSM_DCHECK(c >= 0 && c < cols_);
  std::vector<Real> out(static_cast<std::size_t>(rows_));
  for (Index r = 0; r < rows_; ++r) out[static_cast<std::size_t>(r)] = (*this)(r, c);
  return out;
}

void Matrix::set_col(Index c, std::span<const Real> values) {
  RSM_CHECK(c >= 0 && c < cols_);
  RSM_CHECK(static_cast<Index>(values.size()) == rows_);
  for (Index r = 0; r < rows_; ++r)
    (*this)(r, c) = values[static_cast<std::size_t>(r)];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (Index r = 0; r < rows_; ++r)
    for (Index c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Real Matrix::frobenius_norm() const {
  Real sum = 0;
  for (Real v : data_) sum += v * v;
  return std::sqrt(sum);
}

void Matrix::set_zero() { std::fill(data_.begin(), data_.end(), Real{0}); }

Matrix& Matrix::operator+=(const Matrix& other) {
  RSM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  RSM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(Real scalar) {
  for (Real& v : data_) v *= scalar;
  return *this;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, Real s) { return a *= s; }
Matrix operator*(Real s, Matrix a) { return a *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  RSM_CHECK_MSG(a.cols() == b.rows(), "gemm shape mismatch: " << a.rows() << "x"
                                       << a.cols() << " * " << b.rows() << "x"
                                       << b.cols());
  Matrix c(a.rows(), b.cols());
  gemm(a, b, c);
  return c;
}

std::vector<Real> operator*(const Matrix& a, std::span<const Real> x) {
  RSM_CHECK(static_cast<Index>(x.size()) == a.cols());
  std::vector<Real> y(static_cast<std::size_t>(a.rows()));
  gemv(a, x, y);
  return y;
}

Real max_abs_diff(const Matrix& a, const Matrix& b) {
  RSM_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Real m = 0;
  for (Index r = 0; r < a.rows(); ++r)
    for (Index c = 0; c < a.cols(); ++c)
      m = std::max(m, std::abs(a(r, c) - b(r, c)));
  return m;
}

}  // namespace rsm
