// LU factorization with partial pivoting, templated over the scalar field.
//
// The MNA circuit solver needs both real solves (DC Newton iterations) and
// complex solves (AC analysis, G + jwC); a single templated implementation
// serves both. Header-only because it is a template.
#pragma once

#include <cmath>
#include <complex>
#include <numeric>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/errors.hpp"

namespace rsm {

namespace detail {
inline Real abs_value(Real x) { return std::abs(x); }
inline Real abs_value(const std::complex<Real>& x) { return std::abs(x); }
}  // namespace detail

/// Dense LU with partial pivoting over scalar T (Real or complex<Real>).
/// Stores the factors packed in a single n x n array plus a pivot vector.
template <typename T>
class LuFactorization {
 public:
  /// Factorizes the n x n matrix given in row-major `a`.
  /// Throws rsm::Error if the matrix is numerically singular.
  LuFactorization(std::vector<T> a, Index n) : n_(n), lu_(std::move(a)) {
    RSM_CHECK(static_cast<Index>(lu_.size()) == n * n);
    piv_.resize(static_cast<std::size_t>(n));
    std::iota(piv_.begin(), piv_.end(), Index{0});

    for (Index k = 0; k < n_; ++k) {
      // Partial pivot: largest magnitude in column k at/below the diagonal.
      Index p = k;
      Real best = detail::abs_value(at(k, k));
      for (Index i = k + 1; i < n_; ++i) {
        const Real v = detail::abs_value(at(i, k));
        if (v > best) {
          best = v;
          p = i;
        }
      }
      if (!(best > Real{0})) {
        throw SingularMatrixError("singular matrix in LU at column " +
                                  std::to_string(k));
      }
      if (p != k) {
        for (Index j = 0; j < n_; ++j) std::swap(at(k, j), at(p, j));
        std::swap(piv_[static_cast<std::size_t>(k)],
                  piv_[static_cast<std::size_t>(p)]);
        sign_flips_ ^= 1;
      }
      const T pivot = at(k, k);
      for (Index i = k + 1; i < n_; ++i) {
        const T m = at(i, k) / pivot;
        at(i, k) = m;
        if (m == T{}) continue;
        for (Index j = k + 1; j < n_; ++j) at(i, j) -= m * at(k, j);
      }
    }
  }

  [[nodiscard]] Index size() const { return n_; }

  /// Solves A x = b.
  [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const {
    RSM_CHECK(static_cast<Index>(b.size()) == n_);
    std::vector<T> x(static_cast<std::size_t>(n_));
    // Apply the row permutation.
    for (Index i = 0; i < n_; ++i)
      x[static_cast<std::size_t>(i)] =
          b[static_cast<std::size_t>(piv_[static_cast<std::size_t>(i)])];
    // Forward substitution with unit-diagonal L.
    for (Index i = 1; i < n_; ++i) {
      T s = x[static_cast<std::size_t>(i)];
      for (Index j = 0; j < i; ++j) s -= at(i, j) * x[static_cast<std::size_t>(j)];
      x[static_cast<std::size_t>(i)] = s;
    }
    // Backward substitution with U.
    for (Index i = n_ - 1; i >= 0; --i) {
      T s = x[static_cast<std::size_t>(i)];
      for (Index j = i + 1; j < n_; ++j)
        s -= at(i, j) * x[static_cast<std::size_t>(j)];
      x[static_cast<std::size_t>(i)] = s / at(i, i);
    }
    return x;
  }

  /// det(A), including the permutation sign.
  [[nodiscard]] T determinant() const {
    T d = sign_flips_ ? T{-1} : T{1};
    for (Index i = 0; i < n_; ++i) d *= at(i, i);
    return d;
  }

 private:
  T& at(Index r, Index c) { return lu_[static_cast<std::size_t>(r * n_ + c)]; }
  const T& at(Index r, Index c) const {
    return lu_[static_cast<std::size_t>(r * n_ + c)];
  }

  Index n_;
  std::vector<T> lu_;
  std::vector<Index> piv_;
  int sign_flips_ = 0;
};

using RealLu = LuFactorization<Real>;
using ComplexLu = LuFactorization<std::complex<Real>>;

}  // namespace rsm
