#include "linalg/incremental_qr.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.hpp"

namespace rsm {

IncrementalQr::IncrementalQr(Index rows, Index max_cols)
    : rows_(rows), max_cols_(max_cols), r_(max_cols, max_cols) {
  RSM_CHECK(rows > 0 && max_cols > 0);
  RSM_CHECK_MSG(max_cols <= rows,
                "cannot have more independent columns than rows");
  q_.reserve(static_cast<std::size_t>(rows * max_cols));
}

bool IncrementalQr::append_column(std::span<const Real> column,
                                  Real dependence_tol) {
  RSM_CHECK(static_cast<Index>(column.size()) == rows_);
  RSM_CHECK_MSG(num_cols_ < max_cols_, "IncrementalQr capacity exhausted");

  const Real norm_in = nrm2(column);
  std::vector<Real> v(column.begin(), column.end());
  std::vector<Real> rcol(static_cast<std::size_t>(num_cols_), Real{0});

  // Two MGS passes: the second pass mops up the cancellation error of the
  // first, keeping Q orthonormal to machine precision even for nearly
  // dependent inputs.
  for (int pass = 0; pass < 2; ++pass) {
    for (Index j = 0; j < num_cols_; ++j) {
      const Real c = dot(q_column(j), v);
      rcol[static_cast<std::size_t>(j)] += c;
      axpy(-c, q_column(j), v);
    }
  }

  const Real norm_rem = nrm2(v);
  if (norm_rem <= dependence_tol * std::max(norm_in, Real{1e-300})) {
    return false;  // numerically dependent; reject
  }

  for (Index j = 0; j < num_cols_; ++j)
    r_(j, num_cols_) = rcol[static_cast<std::size_t>(j)];
  r_(num_cols_, num_cols_) = norm_rem;

  const Real inv = Real{1} / norm_rem;
  for (Real x : v) q_.push_back(x * inv);
  ++num_cols_;
  return true;
}

void IncrementalQr::remove_column(Index j) {
  RSM_CHECK(j >= 0 && j < num_cols_);
  // Shift R's columns left past j: R becomes upper-Hessenberg in columns
  // j..end (one subdiagonal entry per column).
  for (Index c = j; c < num_cols_ - 1; ++c)
    for (Index r = 0; r <= c + 1; ++r) r_(r, c) = r_(r, c + 1);
  for (Index r = 0; r < num_cols_; ++r) r_(r, num_cols_ - 1) = 0;
  --num_cols_;

  // Annihilate the subdiagonal with Givens rotations G acting on rows
  // (k, k+1) of R; fold G' into the corresponding columns of Q so that
  // Q R stays equal to the retained columns.
  for (Index k = j; k < num_cols_; ++k) {
    const Real a = r_(k, k);
    const Real b = r_(k + 1, k);
    if (b == Real{0}) continue;
    const Real h = std::hypot(a, b);
    const Real c = a / h;
    const Real s = b / h;
    // Rows k and k+1 of R.
    for (Index col = k; col < num_cols_; ++col) {
      const Real rk = r_(k, col);
      const Real rk1 = r_(k + 1, col);
      r_(k, col) = c * rk + s * rk1;
      r_(k + 1, col) = -s * rk + c * rk1;
    }
    // Columns k and k+1 of Q (explicit storage, column-major).
    Real* qk = q_.data() + k * rows_;
    Real* qk1 = q_.data() + (k + 1) * rows_;
    for (Index r = 0; r < rows_; ++r) {
      const Real vk = qk[r];
      const Real vk1 = qk1[r];
      qk[r] = c * vk + s * vk1;
      qk1[r] = -s * vk + c * vk1;
    }
  }
  // Drop the now-unused trailing Q column.
  q_.resize(static_cast<std::size_t>(num_cols_ * rows_));
}

std::span<const Real> IncrementalQr::q_column(Index j) const {
  RSM_DCHECK(j >= 0 && j < num_cols_);
  return {q_.data() + j * rows_, static_cast<std::size_t>(rows_)};
}

Real IncrementalQr::r_entry(Index i, Index j) const {
  RSM_DCHECK(i >= 0 && j >= i && j < num_cols_);
  return r_(i, j);
}

std::vector<Real> IncrementalQr::project(std::span<const Real> b) const {
  RSM_CHECK(static_cast<Index>(b.size()) == rows_);
  std::vector<Real> qtb(static_cast<std::size_t>(num_cols_));
  for (Index j = 0; j < num_cols_; ++j)
    qtb[static_cast<std::size_t>(j)] = dot(q_column(j), b);
  return qtb;
}

std::vector<Real> IncrementalQr::solve(std::span<const Real> b) const {
  std::vector<Real> x = project(b);
  for (Index i = num_cols_ - 1; i >= 0; --i) {
    Real s = x[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < num_cols_; ++j)
      s -= r_(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = s / r_(i, i);
  }
  return x;
}

std::vector<Real> IncrementalQr::residual(std::span<const Real> b) const {
  RSM_CHECK(static_cast<Index>(b.size()) == rows_);
  std::vector<Real> res(b.begin(), b.end());
  for (Index j = 0; j < num_cols_; ++j) {
    const Real c = dot(q_column(j), res);
    axpy(-c, q_column(j), res);
  }
  return res;
}

}  // namespace rsm
