#include "linalg/blas.hpp"

#include <algorithm>

#include "linalg/vector_ops.hpp"

namespace rsm {

void gemv(const Matrix& a, std::span<const Real> x, std::span<Real> y) {
  RSM_CHECK(static_cast<Index>(x.size()) == a.cols());
  RSM_CHECK(static_cast<Index>(y.size()) == a.rows());
  for (Index r = 0; r < a.rows(); ++r)
    y[static_cast<std::size_t>(r)] = dot(a.row(r), x);
}

void gemv_transposed(const Matrix& a, std::span<const Real> x,
                     std::span<Real> y) {
  RSM_CHECK(static_cast<Index>(x.size()) == a.rows());
  RSM_CHECK(static_cast<Index>(y.size()) == a.cols());
  std::fill(y.begin(), y.end(), Real{0});
  for (Index r = 0; r < a.rows(); ++r)
    axpy(x[static_cast<std::size_t>(r)], a.row(r), y);
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  RSM_CHECK(a.cols() == b.rows());
  RSM_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  c.set_zero();
  constexpr Index kBlock = 64;
  const Index m = a.rows(), k = a.cols(), n = b.cols();
  for (Index i0 = 0; i0 < m; i0 += kBlock) {
    const Index i1 = std::min(i0 + kBlock, m);
    for (Index k0 = 0; k0 < k; k0 += kBlock) {
      const Index k1 = std::min(k0 + kBlock, k);
      for (Index i = i0; i < i1; ++i) {
        Real* crow = c.row(i).data();
        for (Index kk = k0; kk < k1; ++kk) {
          const Real aik = a(i, kk);
          if (aik == Real{0}) continue;
          const Real* brow = b.row(kk).data();
          for (Index j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

Matrix gram(const Matrix& a) {
  const Index n = a.cols();
  Matrix g(n, n);
  // Accumulate row outer products: G += a_r a_r' (upper triangle only).
  for (Index r = 0; r < a.rows(); ++r) {
    std::span<const Real> row = a.row(r);
    for (Index i = 0; i < n; ++i) {
      const Real ai = row[static_cast<std::size_t>(i)];
      if (ai == Real{0}) continue;
      Real* grow = g.row(i).data();
      for (Index j = i; j < n; ++j)
        grow[j] += ai * row[static_cast<std::size_t>(j)];
    }
  }
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

}  // namespace rsm
