// Cholesky factorization of symmetric positive-definite matrices.
//
// Used by the LAR solver (Gram matrix of the active set), by the
// normal-equation fast path of the LS baseline, and by the covariance-model
// sampler in src/stats.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/common.hpp"

namespace rsm {

/// Lower-triangular Cholesky factor L with A = L L'.
class CholeskyFactorization {
 public:
  /// Factorizes symmetric positive-definite `a` (only the lower triangle is
  /// read). Throws rsm::Error if a non-positive pivot is encountered.
  explicit CholeskyFactorization(const Matrix& a);

  [[nodiscard]] Index size() const { return l_.rows(); }

  /// Solves A x = b via forward + backward substitution.
  [[nodiscard]] std::vector<Real> solve(std::span<const Real> b) const;

  /// Solves L y = b (forward substitution).
  [[nodiscard]] std::vector<Real> solve_lower(std::span<const Real> b) const;

  /// Solves L' x = y (backward substitution).
  [[nodiscard]] std::vector<Real> solve_upper(std::span<const Real> y) const;

  /// The factor L (lower triangular).
  [[nodiscard]] const Matrix& l() const { return l_; }

  /// log(det A) = 2 * sum(log L(i,i)); used by statistical diagnostics.
  [[nodiscard]] Real log_determinant() const;

 private:
  Matrix l_;
};

/// Convenience: solve the SPD system A x = b in one call.
[[nodiscard]] std::vector<Real> cholesky_solve(const Matrix& a,
                                               std::span<const Real> b);

}  // namespace rsm
