#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>

#include "util/errors.hpp"

namespace rsm {

QrFactorization::QrFactorization(const Matrix& a) : qr_(a) {
  const Index m = qr_.rows(), n = qr_.cols();
  RSM_CHECK_MSG(m >= n, "QR requires rows >= cols, got " << m << "x" << n);
  tau_.assign(static_cast<std::size_t>(n), Real{0});

  for (Index k = 0; k < n; ++k) {
    // Householder vector from column k, rows k..m-1.
    Real norm_x = 0;
    for (Index i = k; i < m; ++i) norm_x += qr_(i, k) * qr_(i, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x == Real{0}) {
      tau_[static_cast<std::size_t>(k)] = 0;  // zero column; R(k,k)=0
      continue;
    }
    const Real alpha = qr_(k, k) >= 0 ? -norm_x : norm_x;
    // v = x - alpha*e1, normalized so v[0] = 1 (stored implicitly).
    const Real v0 = qr_(k, k) - alpha;
    for (Index i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    tau_[static_cast<std::size_t>(k)] = -v0 / alpha;  // = 2/(v'v) * v0^2 scaled
    qr_(k, k) = alpha;

    // Apply H = I - tau v v' to the trailing columns.
    const Real tau = tau_[static_cast<std::size_t>(k)];
    for (Index j = k + 1; j < n; ++j) {
      Real s = qr_(k, j);
      for (Index i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= tau;
      qr_(k, j) -= s;
      for (Index i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

void QrFactorization::apply_qt(std::span<Real> b) const {
  const Index m = qr_.rows(), n = qr_.cols();
  RSM_CHECK(static_cast<Index>(b.size()) == m);
  for (Index k = 0; k < n; ++k) {
    const Real tau = tau_[static_cast<std::size_t>(k)];
    if (tau == Real{0}) continue;
    Real s = b[static_cast<std::size_t>(k)];
    for (Index i = k + 1; i < m; ++i)
      s += qr_(i, k) * b[static_cast<std::size_t>(i)];
    s *= tau;
    b[static_cast<std::size_t>(k)] -= s;
    for (Index i = k + 1; i < m; ++i)
      b[static_cast<std::size_t>(i)] -= s * qr_(i, k);
  }
}

void QrFactorization::apply_q(std::span<Real> b) const {
  const Index m = qr_.rows(), n = qr_.cols();
  RSM_CHECK(static_cast<Index>(b.size()) == m);
  for (Index k = n - 1; k >= 0; --k) {
    const Real tau = tau_[static_cast<std::size_t>(k)];
    if (tau == Real{0}) continue;
    Real s = b[static_cast<std::size_t>(k)];
    for (Index i = k + 1; i < m; ++i)
      s += qr_(i, k) * b[static_cast<std::size_t>(i)];
    s *= tau;
    b[static_cast<std::size_t>(k)] -= s;
    for (Index i = k + 1; i < m; ++i)
      b[static_cast<std::size_t>(i)] -= s * qr_(i, k);
  }
}

std::vector<Real> QrFactorization::solve_r(std::span<const Real> y) const {
  const Index n = qr_.cols();
  RSM_CHECK(static_cast<Index>(y.size()) >= n);
  std::vector<Real> x(y.begin(), y.begin() + n);
  for (Index i = n - 1; i >= 0; --i) {
    Real s = x[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < n; ++j)
      s -= qr_(i, j) * x[static_cast<std::size_t>(j)];
    const Real rii = qr_(i, i);
    if (rii == Real{0}) {
      throw SingularMatrixError("singular R in QR solve at diagonal " +
                                std::to_string(i));
    }
    x[static_cast<std::size_t>(i)] = s / rii;
  }
  return x;
}

std::vector<Real> QrFactorization::solve(std::span<const Real> b) const {
  RSM_CHECK(static_cast<Index>(b.size()) == qr_.rows());
  std::vector<Real> work(b.begin(), b.end());
  apply_qt(work);
  return solve_r(work);
}

Matrix QrFactorization::thin_q() const {
  const Index m = qr_.rows(), n = qr_.cols();
  Matrix q(m, n);
  std::vector<Real> e(static_cast<std::size_t>(m));
  for (Index j = 0; j < n; ++j) {
    std::fill(e.begin(), e.end(), Real{0});
    e[static_cast<std::size_t>(j)] = 1;
    apply_q(e);
    q.set_col(j, e);
  }
  return q;
}

Matrix QrFactorization::r() const {
  const Index n = qr_.cols();
  Matrix r(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = i; j < n; ++j) r(i, j) = qr_(i, j);
  return r;
}

Real QrFactorization::condition_estimate() const {
  Real dmax = 0, dmin = std::numeric_limits<Real>::infinity();
  for (Index i = 0; i < qr_.cols(); ++i) {
    const Real d = std::abs(qr_(i, i));
    dmax = std::max(dmax, d);
    dmin = std::min(dmin, d);
  }
  if (dmin == Real{0}) return std::numeric_limits<Real>::infinity();
  return dmax / dmin;
}

bool QrFactorization::rank_deficient(Real relative_tolerance) const {
  Real dmax = 0;
  for (Index i = 0; i < qr_.cols(); ++i)
    dmax = std::max(dmax, std::abs(qr_(i, i)));
  for (Index i = 0; i < qr_.cols(); ++i)
    if (std::abs(qr_(i, i)) <= relative_tolerance * dmax) return true;
  return false;
}

std::vector<Real> least_squares_solve(const Matrix& a,
                                      std::span<const Real> b) {
  return QrFactorization(a).solve(b);
}

PivotedQr::PivotedQr(const Matrix& a, Real rank_tolerance) : qr_(a) {
  const Index m = qr_.rows(), n = qr_.cols();
  const Index kmax = std::min(m, n);
  tau_.assign(static_cast<std::size_t>(kmax), Real{0});
  perm_.resize(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) perm_[static_cast<std::size_t>(j)] = j;

  // Largest initial column norm anchors the absolute rank cutoff.
  Real norm_max = 0;
  for (Index j = 0; j < n; ++j) {
    Real s = 0;
    for (Index i = 0; i < m; ++i) s += qr_(i, j) * qr_(i, j);
    norm_max = std::max(norm_max, std::sqrt(s));
  }
  const Real cutoff = rank_tolerance * norm_max;

  for (Index k = 0; k < kmax; ++k) {
    // Pivot: bring the trailing column with the largest remaining norm to
    // position k (norms recomputed exactly — O(mn) per step is irrelevant
    // next to the factorization itself and immune to downdate cancellation).
    Index pivot = k;
    Real pivot_norm = 0;
    for (Index j = k; j < n; ++j) {
      Real s = 0;
      for (Index i = k; i < m; ++i) s += qr_(i, j) * qr_(i, j);
      s = std::sqrt(s);
      if (s > pivot_norm) {
        pivot_norm = s;
        pivot = j;
      }
    }
    if (pivot_norm <= cutoff) break;  // remaining columns are dependent
    if (pivot != k) {
      for (Index i = 0; i < m; ++i) std::swap(qr_(i, k), qr_(i, pivot));
      std::swap(perm_[static_cast<std::size_t>(k)],
                perm_[static_cast<std::size_t>(pivot)]);
    }

    // Householder vector from column k, rows k..m-1 (same scheme as the
    // unpivoted factorization above).
    const Real alpha = qr_(k, k) >= 0 ? -pivot_norm : pivot_norm;
    const Real v0 = qr_(k, k) - alpha;
    for (Index i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    tau_[static_cast<std::size_t>(k)] = -v0 / alpha;
    qr_(k, k) = alpha;

    const Real tau = tau_[static_cast<std::size_t>(k)];
    for (Index j = k + 1; j < n; ++j) {
      Real s = qr_(k, j);
      for (Index i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= tau;
      qr_(k, j) -= s;
      for (Index i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
    rank_ = k + 1;
  }
}

std::vector<Real> PivotedQr::solve(std::span<const Real> b) const {
  const Index m = qr_.rows(), n = qr_.cols();
  RSM_CHECK(static_cast<Index>(b.size()) == m);

  // y = Q' b over the first rank_ reflectors.
  std::vector<Real> y(b.begin(), b.end());
  for (Index k = 0; k < rank_; ++k) {
    const Real tau = tau_[static_cast<std::size_t>(k)];
    if (tau == Real{0}) continue;
    Real s = y[static_cast<std::size_t>(k)];
    for (Index i = k + 1; i < m; ++i)
      s += qr_(i, k) * y[static_cast<std::size_t>(i)];
    s *= tau;
    y[static_cast<std::size_t>(k)] -= s;
    for (Index i = k + 1; i < m; ++i)
      y[static_cast<std::size_t>(i)] -= s * qr_(i, k);
  }

  // Back-substitute the leading rank_ x rank_ triangle.
  std::vector<Real> z(static_cast<std::size_t>(rank_));
  for (Index i = rank_ - 1; i >= 0; --i) {
    Real s = y[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < rank_; ++j)
      s -= qr_(i, j) * z[static_cast<std::size_t>(j)];
    z[static_cast<std::size_t>(i)] = s / qr_(i, i);
  }

  // Scatter through the permutation; dependent columns get exact zeros.
  std::vector<Real> x(static_cast<std::size_t>(n), Real{0});
  for (Index k = 0; k < rank_; ++k)
    x[static_cast<std::size_t>(perm_[static_cast<std::size_t>(k)])] =
        z[static_cast<std::size_t>(k)];
  return x;
}

std::vector<Real> least_squares_solve_pivoted(const Matrix& a,
                                              std::span<const Real> b,
                                              Real rank_tolerance) {
  return PivotedQr(a, rank_tolerance).solve(b);
}

}  // namespace rsm
