// Incrementally grown thin QR factorization — the OMP hot path.
//
// Algorithm 1 re-solves the least-squares problem (Step 6) every time a new
// basis vector joins the active set. Re-factorizing from scratch costs
// O(K p^2) per step; appending one column to an existing thin QR costs only
// O(K p). Over lambda steps that is the difference between O(K lambda^3) and
// O(K lambda^2) total — material when cross-validation reruns the whole path
// Q times.
//
// Implementation: modified Gram-Schmidt with one reorthogonalization pass
// ("twice is enough", Giraud et al.), storing the thin Q explicitly.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/common.hpp"

namespace rsm {

class IncrementalQr {
 public:
  /// Prepares for up to `max_cols` columns of length `rows`.
  IncrementalQr(Index rows, Index max_cols);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index size() const { return num_cols_; }  // columns so far

  /// Appends a column. Returns false (and leaves the factorization
  /// unchanged) if the column is numerically dependent on the current span,
  /// i.e. its orthogonal remainder has norm <= tol * ||column||.
  [[nodiscard]] bool append_column(std::span<const Real> column,
                                   Real dependence_tol = 1e-10);

  /// Removes column j (0-based, in append order): deletes R's column and
  /// restores triangularity with Givens rotations, folding them into Q.
  /// O(K * p) — the downdate counterpart of append_column, used by
  /// active-set methods when a variable leaves the support.
  void remove_column(Index j);

  /// Least-squares coefficients for the appended columns against `b`:
  /// solves R x = Q' b by back-substitution. O(K p + p^2).
  [[nodiscard]] std::vector<Real> solve(std::span<const Real> b) const;

  /// Residual b - A x of the current LS fit, computed as b - Q Q' b.
  /// O(K p); avoids reconstructing A x from the original columns.
  [[nodiscard]] std::vector<Real> residual(std::span<const Real> b) const;

  /// Projection coefficients Q' b (length = size()).
  [[nodiscard]] std::vector<Real> project(std::span<const Real> b) const;

  /// Column j of the orthonormal factor.
  [[nodiscard]] std::span<const Real> q_column(Index j) const;

  /// Entry of the triangular factor (i <= j).
  [[nodiscard]] Real r_entry(Index i, Index j) const;

 private:
  Index rows_;
  Index max_cols_;
  Index num_cols_ = 0;
  std::vector<Real> q_;  // column-major rows_ x num_cols_
  Matrix r_;             // max_cols_ x max_cols_, upper triangular in use
};

}  // namespace rsm
