#include "linalg/cholesky.hpp"

#include <cmath>
#include <string>

#include "util/errors.hpp"

namespace rsm {

CholeskyFactorization::CholeskyFactorization(const Matrix& a)
    : l_(a.rows(), a.cols()) {
  RSM_CHECK_MSG(a.rows() == a.cols(), "Cholesky needs a square matrix");
  const Index n = a.rows();
  for (Index j = 0; j < n; ++j) {
    Real d = a(j, j);
    for (Index k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (!(d > Real{0})) {
      throw SingularMatrixError("matrix not positive definite at pivot " +
                                std::to_string(j) +
                                " (d=" + std::to_string(d) + ")");
    }
    const Real ljj = std::sqrt(d);
    l_(j, j) = ljj;
    for (Index i = j + 1; i < n; ++i) {
      Real s = a(i, j);
      for (Index k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / ljj;
    }
  }
}

std::vector<Real> CholeskyFactorization::solve_lower(
    std::span<const Real> b) const {
  const Index n = size();
  RSM_CHECK(static_cast<Index>(b.size()) == n);
  std::vector<Real> y(b.begin(), b.end());
  for (Index i = 0; i < n; ++i) {
    Real s = y[static_cast<std::size_t>(i)];
    for (Index k = 0; k < i; ++k) s -= l_(i, k) * y[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(i)] = s / l_(i, i);
  }
  return y;
}

std::vector<Real> CholeskyFactorization::solve_upper(
    std::span<const Real> y) const {
  const Index n = size();
  RSM_CHECK(static_cast<Index>(y.size()) == n);
  std::vector<Real> x(y.begin(), y.end());
  for (Index i = n - 1; i >= 0; --i) {
    Real s = x[static_cast<std::size_t>(i)];
    for (Index k = i + 1; k < n; ++k)
      s -= l_(k, i) * x[static_cast<std::size_t>(k)];
    x[static_cast<std::size_t>(i)] = s / l_(i, i);
  }
  return x;
}

std::vector<Real> CholeskyFactorization::solve(std::span<const Real> b) const {
  return solve_upper(solve_lower(b));
}

Real CholeskyFactorization::log_determinant() const {
  Real sum = 0;
  for (Index i = 0; i < size(); ++i) sum += std::log(l_(i, i));
  return 2 * sum;
}

std::vector<Real> cholesky_solve(const Matrix& a, std::span<const Real> b) {
  return CholeskyFactorization(a).solve(b);
}

}  // namespace rsm
