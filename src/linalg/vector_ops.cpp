#include "linalg/vector_ops.hpp"

#include <cmath>

namespace rsm {

Real dot(std::span<const Real> x, std::span<const Real> y) {
  RSM_DCHECK(x.size() == y.size());
  // Four partial accumulators: breaks the sequential dependence chain so the
  // compiler can keep several FMAs in flight.
  Real s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

Real nrm2(std::span<const Real> x) { return std::sqrt(dot(x, x)); }

Real vsum(std::span<const Real> x) {
  Real s = 0;
  for (Real v : x) s += v;
  return s;
}

void axpy(Real alpha, std::span<const Real> x, std::span<Real> y) {
  RSM_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Real alpha, std::span<Real> x) {
  for (Real& v : x) v *= alpha;
}

Real max_abs(std::span<const Real> x) {
  Real m = 0;
  for (Real v : x) m = std::max(m, std::abs(v));
  return m;
}

Index argmax_abs(std::span<const Real> x) {
  Index best = -1;
  Real best_val = -1;
  for (std::size_t i = 0; i < x.size(); ++i) {
    Real a = std::abs(x[i]);
    if (a > best_val) {
      best_val = a;
      best = static_cast<Index>(i);
    }
  }
  return best;
}

std::vector<Real> vsub(std::span<const Real> a, std::span<const Real> b) {
  RSM_CHECK(a.size() == b.size());
  std::vector<Real> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<Real> vadd(std::span<const Real> a, std::span<const Real> b) {
  RSM_CHECK(a.size() == b.size());
  std::vector<Real> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

}  // namespace rsm
