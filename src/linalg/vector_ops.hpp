// Level-1 vector kernels on std::span<Real>. Vectors throughout the library
// are plain std::vector<Real>; these free functions supply the BLAS-1 set.
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace rsm {

/// Inner product x'y.
[[nodiscard]] Real dot(std::span<const Real> x, std::span<const Real> y);

/// Euclidean norm ||x||_2 (no overflow guard; inputs here are O(1) scaled).
[[nodiscard]] Real nrm2(std::span<const Real> x);

/// Sum of entries.
[[nodiscard]] Real vsum(std::span<const Real> x);

/// y += alpha * x.
void axpy(Real alpha, std::span<const Real> x, std::span<Real> y);

/// x *= alpha.
void scale(Real alpha, std::span<Real> x);

/// Largest |x_i|.
[[nodiscard]] Real max_abs(std::span<const Real> x);

/// Index of the largest |x_i|; -1 for an empty span.
[[nodiscard]] Index argmax_abs(std::span<const Real> x);

/// Elementwise difference a - b as a new vector.
[[nodiscard]] std::vector<Real> vsub(std::span<const Real> a,
                                     std::span<const Real> b);

/// Elementwise sum a + b as a new vector.
[[nodiscard]] std::vector<Real> vadd(std::span<const Real> a,
                                     std::span<const Real> b);

}  // namespace rsm
