// Householder QR factorization and least-squares solves.
//
// This is the workhorse behind the LS-fitting baseline [21] and the final
// coefficient solve of every sparse method: given K samples and a selected
// support of p columns, coefficients are argmin ||G_sel * a - F||_2.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/common.hpp"

namespace rsm {

/// Householder QR of an m x n matrix with m >= n.
///
/// Storage follows LAPACK convention: the upper triangle of `qr_` holds R;
/// the essential parts of the Householder vectors live below the diagonal
/// with the scalar factors in `tau_`.
class QrFactorization {
 public:
  /// Factorizes `a` (copied). Requires a.rows() >= a.cols().
  explicit QrFactorization(const Matrix& a);

  [[nodiscard]] Index rows() const { return qr_.rows(); }
  [[nodiscard]] Index cols() const { return qr_.cols(); }

  /// Minimum-residual solution of A x = b. b.size() == rows().
  [[nodiscard]] std::vector<Real> solve(std::span<const Real> b) const;

  /// Applies Q' to b in place (b.size() == rows()).
  void apply_qt(std::span<Real> b) const;

  /// Applies Q to b in place (b.size() == rows()).
  void apply_q(std::span<Real> b) const;

  /// Back-substitution with the R factor: solves R x = y[0..cols).
  [[nodiscard]] std::vector<Real> solve_r(std::span<const Real> y) const;

  /// The thin orthogonal factor Q1 (rows x cols), QtQ = I.
  [[nodiscard]] Matrix thin_q() const;

  /// The square upper-triangular factor R (cols x cols).
  [[nodiscard]] Matrix r() const;

  /// |R(i,i)| ratio max/min — a cheap lower bound on the 2-norm condition
  /// number; used to flag near-rank-deficient supports.
  [[nodiscard]] Real condition_estimate() const;

  /// True if some |R(i,i)| is ~zero relative to the largest (rank-deficient).
  [[nodiscard]] bool rank_deficient(Real relative_tolerance = 1e-12) const;

 private:
  Matrix qr_;
  std::vector<Real> tau_;
};

/// One-shot least squares: argmin_x ||A x - b||_2 with A.rows() >= A.cols().
[[nodiscard]] std::vector<Real> least_squares_solve(const Matrix& a,
                                                    std::span<const Real> b);

/// Rank-revealing Householder QR with column pivoting: A P = Q R.
///
/// The robust fallback for least-squares systems the plain factorizations
/// reject — a rank-deficient design matrix (duplicate dictionary columns, a
/// degenerate CV fold) gets a well-defined *basic* solution: coefficients
/// for the `rank()` pivoted columns, exact zeros for the dependent rest,
/// instead of a SingularMatrixError.
class PivotedQr {
 public:
  /// Factorizes `a` (any shape). Columns whose trailing norm falls below
  /// `rank_tolerance` times the largest initial column norm are treated as
  /// dependent and never pivoted into the basis.
  explicit PivotedQr(const Matrix& a, Real rank_tolerance = 1e-12);

  [[nodiscard]] Index rows() const { return qr_.rows(); }
  [[nodiscard]] Index cols() const { return qr_.cols(); }

  /// Numerical rank detected during factorization.
  [[nodiscard]] Index rank() const { return rank_; }

  /// Column permutation: factorization column k holds original column
  /// `permutation()[k]`.
  [[nodiscard]] const std::vector<Index>& permutation() const { return perm_; }

  /// Basic least-squares solution of A x ~= b (length cols(), zeros on the
  /// non-pivot columns). b.size() == rows().
  [[nodiscard]] std::vector<Real> solve(std::span<const Real> b) const;

 private:
  Matrix qr_;
  std::vector<Real> tau_;
  std::vector<Index> perm_;
  Index rank_ = 0;
};

/// One-shot rank-tolerant least squares via PivotedQr; works at any rank.
[[nodiscard]] std::vector<Real> least_squares_solve_pivoted(
    const Matrix& a, std::span<const Real> b, Real rank_tolerance = 1e-12);

}  // namespace rsm
