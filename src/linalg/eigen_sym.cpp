#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rsm {

SymmetricEigen eigen_symmetric(const Matrix& a_in, int max_sweeps) {
  RSM_CHECK_MSG(a_in.rows() == a_in.cols(), "eigen_symmetric needs square");
  const Index n = a_in.rows();
  Matrix a = a_in;
  // Symmetrize from the upper triangle so callers may pass either half.
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j) a(j, i) = a(i, j);

  Matrix v = Matrix::identity(n);

  const auto off_diagonal_norm = [&] {
    Real s = 0;
    for (Index i = 0; i < n; ++i)
      for (Index j = i + 1; j < n; ++j) s += a(i, j) * a(i, j);
    return std::sqrt(Real{2} * s);
  };

  const Real scale = std::max(a.frobenius_norm(), Real{1e-300});
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= Real{1e-14} * scale) break;
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const Real apq = a(p, q);
        if (std::abs(apq) <= Real{1e-300}) continue;
        // Classic Jacobi rotation annihilating a(p,q).
        const Real theta = (a(q, q) - a(p, p)) / (2 * apq);
        const Real t = (theta >= 0 ? Real{1} : Real{-1}) /
                       (std::abs(theta) + std::sqrt(theta * theta + 1));
        const Real c = Real{1} / std::sqrt(t * t + 1);
        const Real s = t * c;

        for (Index k = 0; k < n; ++k) {
          const Real akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (Index k = 0; k < n; ++k) {
          const Real apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (Index k = 0; k < n; ++k) {
          const Real vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(),
            [&](Index i, Index j) { return a(i, i) > a(j, j); });

  SymmetricEigen out;
  out.values.resize(static_cast<std::size_t>(n));
  out.vectors = Matrix(n, n);
  for (Index j = 0; j < n; ++j) {
    const Index src = order[static_cast<std::size_t>(j)];
    out.values[static_cast<std::size_t>(j)] = a(src, src);
    for (Index i = 0; i < n; ++i) out.vectors(i, j) = v(i, src);
  }
  return out;
}

}  // namespace rsm
