// Level-2/3 kernels: matrix-vector and blocked matrix-matrix products.
//
// The OMP correlation scan (Step 3 of Algorithm 1) is a GEMV with the design
// matrix transposed, so these kernels dominate solver runtime at the paper's
// problem sizes (M ~ 2*10^4 columns, K ~ 10^3 rows).
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/common.hpp"

namespace rsm {

/// y = A * x.
void gemv(const Matrix& a, std::span<const Real> x, std::span<Real> y);

/// y = A' * x  without materializing the transpose (row-major friendly:
/// accumulates row r of A scaled by x[r] into y).
void gemv_transposed(const Matrix& a, std::span<const Real> x,
                     std::span<Real> y);

/// C = A * B (C must be preallocated to a.rows() x b.cols()). Blocked i-k-j
/// loop order for row-major locality.
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A' * A, exploiting symmetry (only the upper triangle is computed then
/// mirrored). Used to form Gram matrices for normal-equation solves.
[[nodiscard]] Matrix gram(const Matrix& a);

}  // namespace rsm
