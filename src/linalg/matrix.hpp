// Dense row-major matrix type.
//
// Eigen is deliberately not a dependency: this library implements every
// numerical kernel the paper's algorithms need (QR least squares, Cholesky,
// Jacobi eigendecomposition, LU) from scratch on top of this type.
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace rsm {

/// Dense row-major matrix of Real. Value semantics; cheap to move.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(Index rows, Index cols);

  /// rows x cols matrix filled with `value`.
  Matrix(Index rows, Index cols, Real value);

  /// Construction from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<Real>> rows);

  [[nodiscard]] static Matrix identity(Index n);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] Index size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  Real& operator()(Index r, Index c) {
    RSM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  Real operator()(Index r, Index c) const {
    RSM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  /// Contiguous view of row `r`.
  [[nodiscard]] std::span<Real> row(Index r);
  [[nodiscard]] std::span<const Real> row(Index r) const;

  /// Copies column `c` into a vector (columns are strided in row-major).
  [[nodiscard]] std::vector<Real> col(Index c) const;

  /// Writes `values` into column `c`.
  void set_col(Index c, std::span<const Real> values);

  [[nodiscard]] Real* data() { return data_.data(); }
  [[nodiscard]] const Real* data() const { return data_.data(); }

  [[nodiscard]] Matrix transposed() const;

  /// Frobenius norm.
  [[nodiscard]] Real frobenius_norm() const;

  /// Resets all entries to zero without reallocating.
  void set_zero();

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(Real scalar);

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Real> data_;
};

[[nodiscard]] Matrix operator+(Matrix a, const Matrix& b);
[[nodiscard]] Matrix operator-(Matrix a, const Matrix& b);
[[nodiscard]] Matrix operator*(Matrix a, Real s);
[[nodiscard]] Matrix operator*(Real s, Matrix a);

/// Matrix product (delegates to the blocked GEMM kernel in blas.hpp).
[[nodiscard]] Matrix operator*(const Matrix& a, const Matrix& b);

/// Matrix-vector product A*x.
[[nodiscard]] std::vector<Real> operator*(const Matrix& a,
                                          std::span<const Real> x);

/// Maximum absolute entrywise difference; handy in tests.
[[nodiscard]] Real max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace rsm
