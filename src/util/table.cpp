#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/common.hpp"

namespace rsm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RSM_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  RSM_CHECK_MSG(cells.size() <= header_.size(),
                "row has " << cells.size() << " cells, header has "
                           << header_.size());
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void Table::add_rule() { pending_rule_ = true; }

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const Row& row : rows_)
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      width[c] = std::max(width[c], row.cells[c].size());

  const auto hline = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = hline() + line(header_) + hline();
  for (const Row& row : rows_) {
    if (row.rule_before) out += hline();
    out += line(row.cells);
  }
  out += hline();
  return out;
}

std::string format_sig(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string format_pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds < 0) return "-";
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else if (seconds < 2.0 * 86400.0) {
    std::snprintf(buf, sizeof(buf), "%.1f h", seconds / 3600.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f days", seconds / 86400.0);
  }
  return buf;
}

}  // namespace rsm
