// Aligned ASCII table rendering for benchmark and example output.
//
// The benchmark harness reproduces the paper's tables (Tables I-IV) as text;
// this helper keeps all of them consistently formatted:
//
//   Table t({"", "LS [21]", "STAR [1]", "LAR [2]", "OMP"});
//   t.add_row({"# of training samples", "1200", "600", "600", "600"});
//   std::cout << t.render();
#pragma once

#include <string>
#include <vector>

namespace rsm {

/// Column-aligned ASCII table. The first `add_row` call after construction may
/// have fewer cells than the header; missing cells render empty.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row. Rows longer than the header throw.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders the table with a boxed header and padded columns.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// Formats a floating-point value with `digits` significant digits.
[[nodiscard]] std::string format_sig(double value, int digits = 4);

/// Formats a value as a percentage with two decimals, e.g. 4.21 -> "4.21%".
[[nodiscard]] std::string format_pct(double fraction, int decimals = 2);

/// Formats seconds with adaptive units (e.g. "1.2 ms", "3.4 s", "2.1 h").
[[nodiscard]] std::string format_seconds(double seconds);

}  // namespace rsm
