// Shared fundamental types and assertion macros for the sparse-RSM library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rsm {

/// Floating-point type used throughout the library. All numerical kernels are
/// written against this alias so a single edit switches precision.
using Real = double;

/// Signed index type. Signed to keep loop arithmetic (e.g., `j - 1` in
/// back-substitution) well-defined without casts.
using Index = std::ptrdiff_t;

/// Exception thrown on precondition violations and numerical failures.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const std::string& msg,
                                      const std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace rsm

/// Runtime check, always enabled. Throws rsm::Error with file:line context.
#define RSM_CHECK(expr)                                                      \
  do {                                                                       \
    if (!(expr))                                                             \
      ::rsm::detail::check_failed(#expr, {}, std::source_location::current()); \
  } while (false)

/// Runtime check with a streamed message: RSM_CHECK_MSG(x > 0, "x=" << x).
#define RSM_CHECK_MSG(expr, msg)                                             \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream rsm_check_os_;                                      \
      rsm_check_os_ << msg;                                                  \
      ::rsm::detail::check_failed(#expr, rsm_check_os_.str(),                \
                                  std::source_location::current());          \
    }                                                                        \
  } while (false)

/// Debug-only check for hot loops. In NDEBUG builds the expression is
/// type-checked (sizeof of an unevaluated operand) but never evaluated, so
/// it costs nothing at runtime yet cannot bitrot in release-only code.
#ifdef NDEBUG
#define RSM_DCHECK(expr) static_cast<void>(sizeof((expr) ? 1 : 0))
#else
#define RSM_DCHECK(expr) RSM_CHECK(expr)
#endif

/// True when RSM_DCHECK is enforced at runtime (i.e. a debug build); lets
/// tests assert the macro fires exactly when it should.
namespace rsm {
#ifdef NDEBUG
inline constexpr bool kDchecksEnabled = false;
#else
inline constexpr bool kDchecksEnabled = true;
#endif
}  // namespace rsm
