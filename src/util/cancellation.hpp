// Cooperative cancellation and wall-clock deadlines.
//
// Long campaigns need two stop signals that a SIGKILL does not give them a
// chance to honor gracefully: *cancellation* (operator pressed Ctrl-C, a
// supervisor wants the slot back) and *deadlines* (a per-sample watchdog
// against a hung Newton loop, a global campaign time budget). Both are
// cooperative: hot loops — the DC Newton iteration, the transient stepper,
// the OMP/LAR/STAR greedy steps — poll a check site and unwind with a
// structured DeadlineExceededError, so the campaign layer can quarantine the
// sample or flush its checkpoint and return best-so-far.
//
// The signal path is lock-free: CancellationSource::request_cancel is one
// relaxed atomic store (async-signal-safe, see util/signals.hpp), tokens are
// shared_ptr copies of the same flag, and a check costs one atomic load plus
// (when a deadline is armed) one steady_clock read.
//
// Controls reach inner loops *ambiently*: ScopedRunControl installs a
// thread-local RunControl for its lifetime, and check sites call
// check_cooperative_stop(), which is a no-op when no scope is active. This
// keeps SampleEvaluator and the solver Options structs unchanged — the
// campaign wraps each attempt in a scope and every instrumented loop below
// it becomes interruptible. Scopes nest; a check honors every level.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "util/common.hpp"

namespace rsm {

/// Read side of a cancellation flag. Default-constructed tokens are never
/// cancelled; real ones come from CancellationSource::token().
class CancellationToken {
 public:
  CancellationToken() = default;

  [[nodiscard]] bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Write side: owns the flag, hands out tokens. request_cancel is a single
/// relaxed store, safe to call from a signal handler on a pre-built source.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] CancellationToken token() const {
    return CancellationToken(flag_);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// A wall-clock budget on the steady clock. Default-constructed deadlines
/// are unlimited (never expire), so plumbing one through options costs
/// nothing until a caller arms it.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  // unlimited

  /// Deadline `seconds` from now; non-positive budgets expire immediately.
  [[nodiscard]] static Deadline after_seconds(double seconds) {
    Deadline d;
    d.limited_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  [[nodiscard]] static Deadline unlimited() { return Deadline{}; }

  [[nodiscard]] bool is_limited() const { return limited_; }
  [[nodiscard]] bool expired() const {
    return limited_ && Clock::now() >= at_;
  }

  /// Seconds until expiry (negative once expired); +inf when unlimited.
  [[nodiscard]] double remaining_seconds() const;

  /// The earlier of the two deadlines (unlimited is the identity).
  [[nodiscard]] static Deadline sooner(const Deadline& a, const Deadline& b);

 private:
  Clock::time_point at_{};
  bool limited_ = false;
};

/// One stop-control bundle: cancellation wins over the deadline in check().
struct RunControl {
  CancellationToken cancel;
  Deadline deadline;

  [[nodiscard]] bool should_stop() const {
    return cancel.cancelled() || deadline.expired();
  }

  /// Throws DeadlineExceededError naming `where` when cancelled or expired.
  void check(const char* where, Index sample = -1) const;
};

/// Installs `control` as the thread's ambient stop control for the scope's
/// lifetime; scopes nest and check sites honor every active level.
class ScopedRunControl {
 public:
  explicit ScopedRunControl(RunControl control);
  ~ScopedRunControl();
  ScopedRunControl(const ScopedRunControl&) = delete;
  ScopedRunControl& operator=(const ScopedRunControl&) = delete;

 private:
  friend void check_cooperative_stop(const char* where, Index sample);
  friend bool cooperative_stop_requested();

  RunControl control_;
  ScopedRunControl* prev_;
};

namespace detail {
extern thread_local ScopedRunControl* g_run_control_top;
}

/// Check site for interruptible loops: throws DeadlineExceededError when any
/// ambient RunControl is cancelled or past its deadline; no-op (one
/// thread-local load) when no scope is active.
void check_cooperative_stop(const char* where, Index sample = -1);

/// Non-throwing form for sites that prefer to drain gracefully.
[[nodiscard]] bool cooperative_stop_requested();

}  // namespace rsm
