// Minimal CSV writer used by benches to dump figure series for replotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace rsm {

/// Streams rows of a CSV file. Values are written as-is (caller formats);
/// fields containing commas or quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<std::string>& fields);

  /// Convenience overload for numeric rows.
  void write_row(const std::vector<double>& values);

 private:
  void emit(const std::vector<std::string>& fields);
  std::ofstream out_;
  std::size_t num_columns_;
};

}  // namespace rsm
