#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/sync.hpp"

namespace rsm {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

/// Guards sink installation and every emission: concurrent RSM_LOG calls
/// from campaign/bench threads must not interleave half-lines on stderr.
/// Rank kLog is near-leaf: any subsystem may log while holding its own
/// locks, and sinks must not take rsm locks (or log) reentrantly.
Mutex& log_mutex() {
  static Mutex mutex{"log", lock_rank::kLog};
  return mutex;
}

LogSink& sink_slot() {
  static LogSink sink;
  return sink;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::chrono::steady_clock::time_point process_start() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_sink(LogSink sink) {
  const MutexLock lock(log_mutex());
  sink_slot() = std::move(sink);
}

namespace detail {

double log_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_start())
      .count();
}

std::string format_log_line(LogLevel level, double seconds,
                            const std::string& message) {
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "[%9.3f %s] ", seconds,
                level_tag(level));
  return prefix + message;
}

void log_emit(LogLevel level, const std::string& message) {
  const double uptime = log_uptime_seconds();
  const MutexLock lock(log_mutex());
  const LogSink& sink = sink_slot();
  if (sink) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "%s\n",
               format_log_line(level, uptime, message).c_str());
}

}  // namespace detail

}  // namespace rsm
