#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace rsm {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace rsm
