#include "util/errors.hpp"

#include <sstream>

namespace rsm {
namespace {

std::string format_message(ErrorCode code, const std::string& message,
                           const std::string& strategy, Index sample) {
  std::ostringstream os;
  os << '[' << error_code_name(code) << ']';
  if (!strategy.empty()) os << " (" << strategy << ')';
  if (sample >= 0) os << " sample " << sample << ':';
  os << ' ' << message;
  return os.str();
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kSingularMatrix: return "singular-matrix";
    case ErrorCode::kNoConvergence: return "no-convergence";
    case ErrorCode::kNumericalDomain: return "numerical-domain";
    case ErrorCode::kUnclassified: return "unclassified";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kProtocolError: return "protocol-error";
    case ErrorCode::kVersionMismatch: return "version-mismatch";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kConnectionTimeout: return "connection-timeout";
  }
  return "?";
}

StructuredError::StructuredError(ErrorCode code, const std::string& message,
                                 std::string strategy, Index sample)
    : Error(format_message(code, message, strategy, sample)),
      code_(code),
      strategy_(std::move(strategy)),
      sample_(sample) {}

ConvergenceError::ConvergenceError(const std::string& message, int iterations,
                                   std::string strategy, Index sample)
    : StructuredError(ErrorCode::kNoConvergence, message, std::move(strategy),
                      sample),
      iterations_(iterations) {}

ErrorCode classify_error(const std::exception& e) {
  if (const auto* s = dynamic_cast<const StructuredError*>(&e)) return s->code();
  return ErrorCode::kUnclassified;
}

}  // namespace rsm
