#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "util/common.hpp"

namespace rsm {

void CliArgs::add_option(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  RSM_CHECK_MSG(!specs_.count(name), "duplicate option --" << name);
  specs_[name] = Spec{default_value, help, /*is_flag=*/false};
  order_.push_back(name);
}

void CliArgs::add_flag(const std::string& name, const std::string& help) {
  RSM_CHECK_MSG(!specs_.count(name), "duplicate flag --" << name);
  specs_[name] = Spec{"false", help, /*is_flag=*/true};
  order_.push_back(name);
}

void CliArgs::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    RSM_CHECK_MSG(arg.rfind("--", 0) == 0, "unexpected argument: " << arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = specs_.find(arg);
    RSM_CHECK_MSG(it != specs_.end(), "unknown option --" << arg);
    if (it->second.is_flag) {
      RSM_CHECK_MSG(!has_value, "flag --" << arg << " does not take a value");
      values_[arg] = "true";
    } else {
      if (!has_value) {
        RSM_CHECK_MSG(i + 1 < argc, "option --" << arg << " needs a value");
        value = argv[++i];
      }
      values_[arg] = value;
    }
  }
}

std::string CliArgs::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const std::string& name : order_) {
    const Spec& s = specs_.at(name);
    os << "  --" << name;
    if (!s.is_flag) os << " <value> (default: " << s.default_value << ")";
    os << "\n      " << s.help << "\n";
  }
  os << "  --help\n      print this usage (every option above) and exit\n";
  return os.str();
}

const std::string& CliArgs::get(const std::string& name) const {
  auto it = specs_.find(name);
  RSM_CHECK_MSG(it != specs_.end(), "undeclared option --" << name);
  auto v = values_.find(name);
  return v != values_.end() ? v->second : it->second.default_value;
}

long CliArgs::get_int(const std::string& name) const {
  const std::string& s = get(name);
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  RSM_CHECK_MSG(end && *end == '\0' && !s.empty(),
                "option --" << name << " expects an integer, got '" << s << "'");
  return v;
}

double CliArgs::get_double(const std::string& name) const {
  const std::string& s = get(name);
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  RSM_CHECK_MSG(end && *end == '\0' && !s.empty(),
                "option --" << name << " expects a number, got '" << s << "'");
  return v;
}

bool CliArgs::get_flag(const std::string& name) const {
  return get(name) == "true";
}

}  // namespace rsm
