// Wall-clock and thread-CPU timing utilities used by the benchmark harness
// and the observability layer (obs/trace.hpp spans record both).
#pragma once

#include <chrono>
#include <ctime>

namespace rsm {

/// Monotonic wall-clock stopwatch. Started on construction; `seconds()` reads
/// elapsed time without stopping; `restart()` resets the origin; `lap()`
/// returns the time since the last lap (or construction/restart) and opens a
/// new lap without disturbing the overall `seconds()` origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()), lap_(start_) {}

  void restart() {
    start_ = Clock::now();
    lap_ = start_;
  }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Elapsed seconds since the previous lap() / restart() / construction;
  /// resets the lap origin to now.
  double lap() {
    const Clock::time_point now = Clock::now();
    const double elapsed = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return elapsed;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

/// CPU-time counterpart of WallTimer scoped to the *calling thread*:
/// `seconds()` is the CPU time this thread has burned since construction,
/// which excludes time spent blocked or preempted. Backed by
/// clock_gettime(CLOCK_THREAD_CPUTIME_ID) where available (Linux/macOS);
/// falls back to process CPU time via std::clock() elsewhere.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void restart() { start_ = now(); }

  [[nodiscard]] double seconds() const { return now() - start_; }

  /// Absolute thread-CPU clock reading in seconds (origin unspecified).
  [[nodiscard]] static double now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return static_cast<double>(std::clock()) /
           static_cast<double>(CLOCKS_PER_SEC);
  }

 private:
  double start_;
};

}  // namespace rsm
