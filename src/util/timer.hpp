// Wall-clock timing utilities used by the benchmark harness.
#pragma once

#include <chrono>

namespace rsm {

/// Monotonic wall-clock stopwatch. Started on construction; `seconds()` reads
/// elapsed time without stopping; `restart()` resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rsm
