// Deterministic fault injection for campaign robustness testing.
//
// Production fault tolerance is only trustworthy if the recovery paths run
// in CI. The injector decides — from a seed and the sample index alone, via
// a splitmix64-style hash, so the decision is independent of evaluation
// order and thread count — whether a sample "faults", with which failure
// mode (singular solve vs. Newton stall), and whether the fault is
// *transient* (clears on retry, exercising the escalation path) or
// *persistent* (fails every attempt, exercising quarantine).
//
// The campaign layer calls `throw_if_faulted(sample, attempt)` before each
// evaluation attempt; tests then assert exact quarantine sets and per-code
// histograms against `kind()` / `is_persistent()`.
#pragma once

#include <cstdint>

#include "util/common.hpp"
#include "util/errors.hpp"

namespace rsm {

enum class FaultKind {
  kNone = 0,
  kSingularSolve,  // raises SingularMatrixError
  kNewtonStall,    // raises ConvergenceError
};

class FaultInjector {
 public:
  struct Options {
    /// Expected fraction of samples that fault (0 disables injection).
    Real fault_rate = 0;

    /// Of the faulted samples, the fraction whose fault persists across
    /// every retry (and therefore must be quarantined).
    Real persistent_fraction = 0.5;

    /// Hash seed; campaigns derive it from their own RNG seed so one seed
    /// reproduces both the sample draw and the fault pattern.
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  };

  /// Disabled injector (never faults).
  FaultInjector() = default;
  explicit FaultInjector(const Options& options);

  [[nodiscard]] bool enabled() const { return options_.fault_rate > 0; }

  /// Fault mode assigned to `sample` (kNone for unfaulted samples).
  [[nodiscard]] FaultKind kind(Index sample) const;

  /// True if `sample` faults on every attempt (unrecoverable).
  [[nodiscard]] bool is_persistent(Index sample) const;

  /// True if attempt `attempt` (0-based) on `sample` should fail:
  /// transient faults fail only attempt 0, persistent faults fail all.
  [[nodiscard]] bool should_fail(Index sample, int attempt) const;

  /// Raises the structured error for (sample, attempt) when it should fail;
  /// no-op otherwise.
  void throw_if_faulted(Index sample, int attempt) const;

 private:
  Options options_;
};

}  // namespace rsm
