// Deterministic fault injection for campaign robustness testing.
//
// Production fault tolerance is only trustworthy if the recovery paths run
// in CI. The injector decides — from a seed and the sample index alone, via
// a splitmix64-style hash, so the decision is independent of evaluation
// order and thread count — whether a sample "faults", with which failure
// mode (singular solve vs. Newton stall), and whether the fault is
// *transient* (clears on retry, exercising the escalation path) or
// *persistent* (fails every attempt, exercising quarantine).
//
// The campaign layer calls `throw_if_faulted(sample, attempt)` before each
// evaluation attempt; tests then assert exact quarantine sets and per-code
// histograms against `kind()` / `is_persistent()`.
#pragma once

#include <cstdint>

#include "util/common.hpp"
#include "util/errors.hpp"

namespace rsm {

enum class FaultKind {
  kNone = 0,
  kSingularSolve,  // raises SingularMatrixError
  kNewtonStall,    // raises ConvergenceError
};

class FaultInjector {
 public:
  struct Options {
    /// Expected fraction of samples that fault (0 disables injection).
    Real fault_rate = 0;

    /// Of the faulted samples, the fraction whose fault persists across
    /// every retry (and therefore must be quarantined).
    Real persistent_fraction = 0.5;

    /// Hash seed; campaigns derive it from their own RNG seed so one seed
    /// reproduces both the sample draw and the fault pattern.
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  };

  /// Disabled injector (never faults).
  FaultInjector() = default;
  explicit FaultInjector(const Options& options);

  [[nodiscard]] bool enabled() const { return options_.fault_rate > 0; }

  /// Fault mode assigned to `sample` (kNone for unfaulted samples).
  [[nodiscard]] FaultKind kind(Index sample) const;

  /// True if `sample` faults on every attempt (unrecoverable).
  [[nodiscard]] bool is_persistent(Index sample) const;

  /// True if attempt `attempt` (0-based) on `sample` should fail:
  /// transient faults fail only attempt 0, persistent faults fail all.
  [[nodiscard]] bool should_fail(Index sample, int attempt) const;

  /// Raises the structured error for (sample, attempt) when it should fail;
  /// no-op otherwise.
  void throw_if_faulted(Index sample, int attempt) const;

  /// The configuration (checkpoint headers hash it to bind a resume to the
  /// fault plan of the interrupted run).
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Worker-level (infrastructure) fault injection for the parallel campaign
/// executor: decides — from a pure hash of (seed, row), never from worker
/// identity — whether the *first* execution of a row dies in the task
/// wrapper, outside the evaluator (a crashed worker process, an OOM kill,
/// a lost RPC). Keying by row keeps the injected schedule identical
/// regardless of worker count or interleaving; the executor charges the
/// fault to whichever worker happened to claim the row, requeues the row
/// (the retry succeeds: the fault is infrastructural, not the sample's),
/// and retires workers that absorb too many.
class WorkerFaultInjector {
 public:
  struct Options {
    /// Expected fraction of rows whose first execution dies (0 disables).
    Real fault_rate = 0;

    /// Hash seed, so one seed reproduces the whole infrastructure-failure
    /// schedule.
    std::uint64_t seed = 0xa0761d6478bd642full;
  };

  WorkerFaultInjector() = default;
  explicit WorkerFaultInjector(const Options& options);

  [[nodiscard]] bool enabled() const { return options_.fault_rate > 0; }

  /// True when the first execution of `row` should die in the task wrapper.
  [[nodiscard]] bool should_fault(Index row) const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Filesystem failure modes the src/io writers can be made to exhibit.
enum class FsFaultKind {
  kNone = 0,
  kTornWrite,   // a prefix of the buffer reaches the file, then the write
                // fails — the crash-consistency hazard checkpoints must
                // survive (partial record on disk)
  kShortWrite,  // the write persists all but the final byte and the writer
                // detects the count mismatch — tail corruption
  kNoSpace,     // nothing is written; the operation fails like ENOSPC
};

[[nodiscard]] const char* fs_fault_kind_name(FsFaultKind kind);

/// Deterministic injector for the durable-I/O layer (src/io). Like
/// FaultInjector, the decision is a pure hash of (seed, operation index) so
/// a test can predict exactly which physical write faults and with which
/// mode; the io writers count their own write operations and consult
/// kind(op) before each one. Faults are transient per operation: the next
/// write (e.g. an atomic rewrite during recovery) rolls a fresh op index.
class FsFaultInjector {
 public:
  struct Options {
    /// Expected fraction of write operations that fault (0 disables).
    Real fault_rate = 0;

    /// Hash seed, so one seed reproduces an entire failure schedule.
    std::uint64_t seed = 0x6a09e667f3bcc909ull;
  };

  FsFaultInjector() = default;
  explicit FsFaultInjector(const Options& options);

  [[nodiscard]] bool enabled() const { return options_.fault_rate > 0; }

  /// Fault mode assigned to write operation `op` (kNone when unfaulted);
  /// faulted ops split evenly between the three modes.
  [[nodiscard]] FsFaultKind kind(std::uint64_t op) const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Socket-level misbehavior a serving-protocol peer can exhibit. These are
/// the client-side failure modes the ModelServer must contain to one
/// connection: a write that stops mid-frame, a peer that reads one byte at
/// a time, a peer that stops reading responses entirely, and a peer that
/// vanishes with a frame half sent.
enum class SocketFaultKind {
  kNone = 0,
  kTornWrite,          // only a prefix of the frame is sent before a pause
  kShortRead,          // responses are drained one byte per recv
  kStalledPeer,        // requests keep coming but responses are never read
  kMidFrameDisconnect, // the connection closes with a frame half sent
};

[[nodiscard]] const char* socket_fault_kind_name(SocketFaultKind kind);

/// Deterministic injector for the serving layer's chaos harness. Like
/// FsFaultInjector, the decision is a pure hash of (seed, operation index):
/// a chaos client counts its own requests and consults kind(op) before each
/// one, so a test can predict exactly which request misbehaves and how —
/// independent of scheduling, connection count, or retry order.
class SocketFaultInjector {
 public:
  struct Options {
    /// Expected fraction of socket operations that fault (0 disables).
    Real fault_rate = 0;

    /// Hash seed, so one seed reproduces an entire misbehavior schedule.
    std::uint64_t seed = 0x243f6a8885a308d3ull;
  };

  SocketFaultInjector() = default;
  explicit SocketFaultInjector(const Options& options);

  [[nodiscard]] bool enabled() const { return options_.fault_rate > 0; }

  /// Fault mode assigned to socket operation `op` (kNone when unfaulted);
  /// faulted ops split evenly between the four modes.
  [[nodiscard]] SocketFaultKind kind(std::uint64_t op) const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace rsm
