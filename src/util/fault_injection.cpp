#include "util/fault_injection.hpp"

namespace rsm {
namespace {

/// splitmix64 finalizer: one well-mixed 64-bit word per (seed, sample, lane).
std::uint64_t mix(std::uint64_t seed, std::uint64_t sample,
                  std::uint64_t lane) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (sample + 1) + lane;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Uniform in [0, 1) from one hash word.
Real uniform(std::uint64_t seed, std::uint64_t sample, std::uint64_t lane) {
  return static_cast<Real>(mix(seed, sample, lane) >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(const Options& options) : options_(options) {
  RSM_CHECK_MSG(options.fault_rate >= 0 && options.fault_rate <= 1,
                "fault_rate must be in [0, 1]");
  RSM_CHECK_MSG(
      options.persistent_fraction >= 0 && options.persistent_fraction <= 1,
      "persistent_fraction must be in [0, 1]");
}

FaultKind FaultInjector::kind(Index sample) const {
  if (!enabled()) return FaultKind::kNone;
  const auto s = static_cast<std::uint64_t>(sample);
  if (uniform(options_.seed, s, 0) >= options_.fault_rate)
    return FaultKind::kNone;
  return uniform(options_.seed, s, 1) < Real{0.5} ? FaultKind::kSingularSolve
                                                  : FaultKind::kNewtonStall;
}

bool FaultInjector::is_persistent(Index sample) const {
  if (kind(sample) == FaultKind::kNone) return false;
  const auto s = static_cast<std::uint64_t>(sample);
  return uniform(options_.seed, s, 2) < options_.persistent_fraction;
}

bool FaultInjector::should_fail(Index sample, int attempt) const {
  const FaultKind k = kind(sample);
  if (k == FaultKind::kNone) return false;
  return attempt == 0 || is_persistent(sample);
}

void FaultInjector::throw_if_faulted(Index sample, int attempt) const {
  if (!should_fail(sample, attempt)) return;
  switch (kind(sample)) {
    case FaultKind::kSingularSolve:
      throw SingularMatrixError("injected singular solve", "fault-injection",
                                sample);
    case FaultKind::kNewtonStall:
      throw ConvergenceError("injected Newton stall", /*iterations=*/0,
                             "fault-injection", sample);
    case FaultKind::kNone: break;
  }
}

WorkerFaultInjector::WorkerFaultInjector(const Options& options)
    : options_(options) {
  RSM_CHECK_MSG(options.fault_rate >= 0 && options.fault_rate <= 1,
                "fault_rate must be in [0, 1]");
}

bool WorkerFaultInjector::should_fault(Index row) const {
  if (!enabled()) return false;
  const auto r = static_cast<std::uint64_t>(row);
  return uniform(options_.seed, r, 3) < options_.fault_rate;
}

const char* fs_fault_kind_name(FsFaultKind kind) {
  switch (kind) {
    case FsFaultKind::kNone: return "none";
    case FsFaultKind::kTornWrite: return "torn-write";
    case FsFaultKind::kShortWrite: return "short-write";
    case FsFaultKind::kNoSpace: return "no-space";
  }
  return "?";
}

FsFaultInjector::FsFaultInjector(const Options& options) : options_(options) {
  RSM_CHECK_MSG(options.fault_rate >= 0 && options.fault_rate <= 1,
                "fault_rate must be in [0, 1]");
}

FsFaultKind FsFaultInjector::kind(std::uint64_t op) const {
  if (!enabled()) return FsFaultKind::kNone;
  if (uniform(options_.seed, op, 0) >= options_.fault_rate)
    return FsFaultKind::kNone;
  const Real mode = uniform(options_.seed, op, 1);
  if (mode < Real{1} / 3) return FsFaultKind::kTornWrite;
  if (mode < Real{2} / 3) return FsFaultKind::kShortWrite;
  return FsFaultKind::kNoSpace;
}

const char* socket_fault_kind_name(SocketFaultKind kind) {
  switch (kind) {
    case SocketFaultKind::kNone: return "none";
    case SocketFaultKind::kTornWrite: return "torn-write";
    case SocketFaultKind::kShortRead: return "short-read";
    case SocketFaultKind::kStalledPeer: return "stalled-peer";
    case SocketFaultKind::kMidFrameDisconnect: return "mid-frame-disconnect";
  }
  return "?";
}

SocketFaultInjector::SocketFaultInjector(const Options& options)
    : options_(options) {
  RSM_CHECK_MSG(options.fault_rate >= 0 && options.fault_rate <= 1,
                "fault_rate must be in [0, 1]");
}

SocketFaultKind SocketFaultInjector::kind(std::uint64_t op) const {
  if (!enabled()) return SocketFaultKind::kNone;
  // Lane 4/5: lanes 0-3 are taken by the sample/fs injectors above, and a
  // shared seed must not correlate socket faults with fs faults.
  if (uniform(options_.seed, op, 4) >= options_.fault_rate)
    return SocketFaultKind::kNone;
  const Real mode = uniform(options_.seed, op, 5);
  if (mode < Real{0.25}) return SocketFaultKind::kTornWrite;
  if (mode < Real{0.5}) return SocketFaultKind::kShortRead;
  if (mode < Real{0.75}) return SocketFaultKind::kStalledPeer;
  return SocketFaultKind::kMidFrameDisconnect;
}

}  // namespace rsm
