#include "util/cancellation.hpp"

#include <limits>
#include <sstream>

#include "util/errors.hpp"

namespace rsm {

double Deadline::remaining_seconds() const {
  if (!limited_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ - Clock::now()).count();
}

Deadline Deadline::sooner(const Deadline& a, const Deadline& b) {
  if (!a.limited_) return b;
  if (!b.limited_) return a;
  return a.at_ <= b.at_ ? a : b;
}

void RunControl::check(const char* where, Index sample) const {
  if (cancel.cancelled()) {
    std::ostringstream os;
    os << "cancellation requested while in " << where;
    throw DeadlineExceededError(os.str(), where, sample);
  }
  if (deadline.expired()) {
    std::ostringstream os;
    os << "deadline expired while in " << where << " ("
       << -deadline.remaining_seconds() << " s past)";
    throw DeadlineExceededError(os.str(), where, sample);
  }
}

namespace detail {
thread_local ScopedRunControl* g_run_control_top = nullptr;
}

ScopedRunControl::ScopedRunControl(RunControl control)
    : control_(std::move(control)), prev_(detail::g_run_control_top) {
  detail::g_run_control_top = this;
}

ScopedRunControl::~ScopedRunControl() { detail::g_run_control_top = prev_; }

void check_cooperative_stop(const char* where, Index sample) {
  for (const ScopedRunControl* s = detail::g_run_control_top; s != nullptr;
       s = s->prev_) {
    s->control_.check(where, sample);
  }
}

bool cooperative_stop_requested() {
  for (const ScopedRunControl* s = detail::g_run_control_top; s != nullptr;
       s = s->prev_) {
    if (s->control_.should_stop()) return true;
  }
  return false;
}

}  // namespace rsm
