#include "util/sync.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace rsm {
namespace {

/// Installed handler; nullptr means the default print-and-abort below.
std::atomic<RankViolationHandler> g_rank_handler{nullptr};

#if RSM_LOCK_RANK_CHECKS

/// Per-thread held-lock stack. A fixed trivially-destructible array, not a
/// vector: lock sites run during static destruction (logging from exit
/// paths), after a thread_local with a destructor may already be gone.
constexpr int kMaxHeldLocks = 32;

struct HeldLock {
  const void* mutex = nullptr;
  const char* name = "";
  int rank = 0;
};

thread_local HeldLock t_held[kMaxHeldLocks];
thread_local int t_held_count = 0;

void default_rank_violation(const RankViolation& violation) {
  std::fprintf(stderr,
               "rsm::Mutex lock-rank violation: acquiring '%s' (rank %d)%s "
               "while holding, oldest first:\n",
               violation.acquiring_name, violation.acquiring_rank,
               violation.recursive ? " RECURSIVELY" : "");
  for (const HeldLockInfo& held : violation.held) {
    std::fprintf(stderr, "  '%s' (rank %d)\n", held.name, held.rank);
  }
  std::fprintf(stderr,
               "lock ranks must strictly increase along every acquisition "
               "path (docs/static-analysis.md has the rank table); this "
               "ordering can deadlock, aborting\n");
  std::abort();
}

#endif  // RSM_LOCK_RANK_CHECKS

}  // namespace

RankViolationHandler set_rank_violation_handler(RankViolationHandler handler) {
  return g_rank_handler.exchange(handler, std::memory_order_acq_rel);
}

std::vector<HeldLockInfo> held_locks_for_testing() {
  std::vector<HeldLockInfo> out;
#if RSM_LOCK_RANK_CHECKS
  out.reserve(static_cast<std::size_t>(t_held_count));
  for (int i = 0; i < t_held_count; ++i)
    out.push_back({t_held[i].name, t_held[i].rank});
#endif
  return out;
}

#if RSM_LOCK_RANK_CHECKS

namespace detail {

void rank_note_acquire(const void* mutex, const char* name, int rank) {
  bool recursive = false;
  int max_held = 0;
  bool violates = false;
  for (int i = 0; i < t_held_count; ++i) {
    if (t_held[i].mutex == mutex) recursive = true;
    if (t_held[i].rank > max_held) max_held = t_held[i].rank;
    if (t_held[i].rank >= rank) violates = true;
  }
  if (violates || recursive) {
    RankViolation violation;
    violation.acquiring_name = name;
    violation.acquiring_rank = rank;
    violation.recursive = recursive;
    violation.held.reserve(static_cast<std::size_t>(t_held_count));
    for (int i = 0; i < t_held_count; ++i)
      violation.held.push_back({t_held[i].name, t_held[i].rank});
    RankViolationHandler handler =
        g_rank_handler.load(std::memory_order_acquire);
    if (handler == nullptr) handler = default_rank_violation;
    handler(violation);
    // A non-default handler that returns opted into record-and-continue.
  }
  if (t_held_count >= kMaxHeldLocks) {
    std::fprintf(stderr,
                 "rsm::Mutex: more than %d locks held by one thread while "
                 "acquiring '%s' — certainly a leak or runaway nesting; "
                 "aborting\n",
                 kMaxHeldLocks, name);
    std::abort();
  }
  t_held[t_held_count++] = {mutex, name, rank};
}

void rank_note_release(const void* mutex) {
  // Locks release in LIFO order in practice; scan from the top so an
  // out-of-order release (legal with manual lock()/unlock()) still finds
  // its entry.
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i].mutex != mutex) continue;
    for (int j = i; j + 1 < t_held_count; ++j) t_held[j] = t_held[j + 1];
    --t_held_count;
    return;
  }
  // Releasing a lock that was never noted: only possible if acquire ran
  // before this TU's checks were enabled — ignore rather than abort.
}

}  // namespace detail

#endif  // RSM_LOCK_RANK_CHECKS

}  // namespace rsm
