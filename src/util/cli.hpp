// Tiny command-line parser for the benchmark and example binaries.
//
// Supports `--flag`, `--key value` and `--key=value`. Unknown arguments
// throw, so typos in bench invocations fail loudly rather than silently
// running the default configuration.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace rsm {

class CliArgs {
 public:
  /// Declares an option with a default value; `help` is shown by usage().
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Declares a boolean flag (defaults to false).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Throws rsm::Error on unknown or malformed arguments.
  /// Recognizes `--help` and sets help_requested().
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] std::string usage(const std::string& program) const;

  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
  bool help_requested_ = false;
};

}  // namespace rsm
