#include "util/thread_pool.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "util/log.hpp"

namespace rsm {
namespace {

/// Which pool (if any) owns the calling thread, and its worker index.
/// Plain thread_locals: a worker belongs to exactly one pool for its whole
/// life, so no synchronization is needed.
thread_local const ThreadPool* t_pool = nullptr;
thread_local int t_worker = -1;

/// Workers re-check their predicates on this cadence even without a
/// notification — a belt-and-braces bound on any missed-wakeup bug turning
/// into a hang rather than a stall.
constexpr std::chrono::milliseconds kWakePollInterval{50};

/// Single-writer accumulate: only the owning worker stores, so a plain
/// load-add-store is race-free (readers may see a slightly stale total).
void add_seconds(std::atomic<double>& acc,
                 std::chrono::steady_clock::duration d) {
  acc.store(acc.load(std::memory_order_relaxed) +
                std::chrono::duration<double>(d).count(),
            std::memory_order_relaxed);
}

/// CAS-max for the queue-depth high-water mark.
void raise_highwater(std::atomic<std::uint64_t>& highwater,
                     std::uint64_t depth) {
  std::uint64_t seen = highwater.load(std::memory_order_relaxed);
  while (depth > seen &&
         !highwater.compare_exchange_weak(seen, depth,
                                          std::memory_order_relaxed)) {
  }
}

}  // namespace

int resolve_num_workers(int requested, int fallback) {
  RSM_CHECK_MSG(requested >= 0, "worker count must be >= 0");
  RSM_CHECK_MSG(fallback >= 1, "worker-count fallback must be >= 1");
  if (requested >= 1) return requested;
  if (const char* env = std::getenv("RSM_THREADS")) {
    int value = 0;
    const char* end = env + std::strlen(env);
    const auto [ptr, ec] = std::from_chars(env, end, value);
    if (ec == std::errc{} && ptr == end && value >= 1) return value;
    RSM_WARN("RSM_THREADS='" << env
                             << "' is not a positive integer; ignoring");
  }
  return fallback;
}

ThreadPool::ThreadPool() : ThreadPool(Options{}) {}

ThreadPool::ThreadPool(const Options& options) : options_(options) {
  const int fallback =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int n = resolve_num_workers(options_.num_threads, fallback);
  RSM_CHECK_MSG(options_.queue_capacity >= 1, "queue_capacity must be >= 1");
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  active_.store(n, std::memory_order_relaxed);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(coord_);
    stop_.store(true, std::memory_order_relaxed);
    work_cv_.notify_all();
    space_cv_.notify_all();
  }
  for (std::thread& thread : threads_) thread.join();
}

int ThreadPool::num_workers() const {
  return static_cast<int>(workers_.size());
}

int ThreadPool::active_workers() const {
  return active_.load(std::memory_order_relaxed);
}

int ThreadPool::current_worker_index() const {
  return t_pool == this ? t_worker : -1;
}

std::size_t ThreadPool::queue_depth() const {
  const std::int64_t depth = queued_.load(std::memory_order_relaxed);
  return depth > 0 ? static_cast<std::size_t>(depth) : 0;
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.stolen = stolen_.load(std::memory_order_relaxed);
  stats.task_exceptions = task_exceptions_.load(std::memory_order_relaxed);
  stats.backpressure_stalls =
      backpressure_stalls_.load(std::memory_order_relaxed);
  stats.queue_highwater = queue_highwater_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(workers_.size());
  for (const auto& worker : workers_) {
    WorkerStats ws;
    ws.executed = worker->executed.load(std::memory_order_relaxed);
    ws.stolen = worker->stolen.load(std::memory_order_relaxed);
    ws.retired = worker->retired.load(std::memory_order_relaxed);
    ws.busy_seconds = worker->busy_seconds.load(std::memory_order_relaxed);
    ws.idle_seconds = worker->idle_seconds.load(std::memory_order_relaxed);
    out.push_back(ws);
  }
  return out;
}

bool ThreadPool::try_push(int worker, Task& task) {
  Worker& target = *workers_[static_cast<std::size_t>(worker)];
  if (target.retired.load(std::memory_order_relaxed)) return false;
  MutexLock lock(target.mutex);
  if (target.queue.size() >= options_.queue_capacity) return false;
  target.queue.push_back(std::move(task));
  return true;
}

void ThreadPool::submit(Task task) {
  RSM_CHECK_MSG(static_cast<bool>(task), "submit() needs a callable task");
  RSM_CHECK_MSG(!stop_.load(std::memory_order_relaxed),
                "submit() after shutdown began");
  // Count the task as pending *before* it becomes visible to workers, so
  // wait_idle() can never observe a spurious zero between push and count.
  pending_.fetch_add(1, std::memory_order_acq_rel);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const int n = num_workers();
  for (;;) {
    const std::uint64_t start =
        next_queue_.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      const int target = static_cast<int>((start + static_cast<std::uint64_t>(
                                                       i)) %
                                          static_cast<std::uint64_t>(n));
      if (!try_push(target, task)) continue;
      const std::int64_t depth =
          queued_.fetch_add(1, std::memory_order_acq_rel) + 1;
      raise_highwater(queue_highwater_, static_cast<std::uint64_t>(depth));
      MutexLock lock(coord_);
      work_cv_.notify_one();
      return;
    }
    // Every live queue is full: backpressure. Timed wait so a burst of
    // completions that raced the notify cannot strand this producer.
    backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(coord_);
    space_cv_.wait_for(lock, kWakePollInterval);
  }
}

void ThreadPool::wait_idle() {
  MutexLock lock(coord_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

bool ThreadPool::retire_current_worker() {
  const int index = current_worker_index();
  if (index < 0) return false;
  int active = active_.load(std::memory_order_relaxed);
  do {
    if (active <= 1) return false;  // someone must drain the queues
  } while (!active_.compare_exchange_weak(active, active - 1,
                                          std::memory_order_acq_rel));
  workers_[static_cast<std::size_t>(index)]->retired.store(
      true, std::memory_order_relaxed);
  // Siblings must wake to steal whatever this worker still has queued.
  MutexLock lock(coord_);
  work_cv_.notify_all();
  return true;
}

ThreadPool::Task ThreadPool::try_pop_own(Worker& self) {
  MutexLock lock(self.mutex);
  if (self.queue.empty()) return nullptr;
  Task task = std::move(self.queue.front());
  self.queue.pop_front();
  return task;
}

ThreadPool::Task ThreadPool::try_steal(int thief) {
  const int n = num_workers();
  for (int i = 1; i < n; ++i) {
    // Victims include retired workers: their queues must still drain.
    const int victim = (thief + i) % n;
    Worker& target = *workers_[static_cast<std::size_t>(victim)];
    MutexLock lock(target.mutex);
    if (target.queue.empty()) continue;
    Task task = std::move(target.queue.back());
    target.queue.pop_back();
    return task;
  }
  return nullptr;
}

void ThreadPool::worker_loop(int index) {
  t_pool = this;
  t_worker = index;
  Worker& self = *workers_[static_cast<std::size_t>(index)];
  // Busy/idle accounting: `mark` is the end of the previous task (or thread
  // start); time up to the next task() call is idle, the call itself busy.
  auto mark = std::chrono::steady_clock::now();
  for (;;) {
    Task task;
    bool stole = false;
    if (!self.retired.load(std::memory_order_relaxed)) {
      task = try_pop_own(self);
      if (task == nullptr) {
        task = try_steal(index);
        stole = task != nullptr;
      }
    }
    if (task != nullptr) {
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      {
        MutexLock lock(coord_);
        space_cv_.notify_one();
      }
      if (stole) {
        stolen_.fetch_add(1, std::memory_order_relaxed);
        self.stolen.fetch_add(1, std::memory_order_relaxed);
      }
      const auto start = std::chrono::steady_clock::now();
      add_seconds(self.idle_seconds, start - mark);
      try {
        task();
      } catch (...) {
        // Infrastructure backstop only: campaign tasks classify and record
        // their own failures; anything escaping to here is a task bug, not
        // a reason to take the pool down.
        task_exceptions_.fetch_add(1, std::memory_order_relaxed);
        RSM_WARN("thread_pool: task on worker " << index
                                                << " threw; swallowed");
      }
      mark = std::chrono::steady_clock::now();
      add_seconds(self.busy_seconds, mark - start);
      executed_.fetch_add(1, std::memory_order_relaxed);
      self.executed.fetch_add(1, std::memory_order_relaxed);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(coord_);
        idle_cv_.notify_all();
      }
      continue;
    }
    if (self.retired.load(std::memory_order_relaxed)) {
      add_seconds(self.idle_seconds, std::chrono::steady_clock::now() - mark);
      return;
    }
    MutexLock lock(coord_);
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_acquire) == 0) {
      // Cooperative shutdown: every queued task has been drained.
      add_seconds(self.idle_seconds, std::chrono::steady_clock::now() - mark);
      return;
    }
    work_cv_.wait_for(lock, kWakePollInterval, [this, &self] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_acquire) > 0 ||
             self.retired.load(std::memory_order_relaxed);
    });
  }
}

}  // namespace rsm
