// Annotated synchronization layer: the one sanctioned mutex vocabulary.
//
// Every lock in the tree is an rsm::Mutex (or rsm::SharedMutex) created
// with a *name* and a *rank*, and every acquisition goes through the
// scoped wrappers below. That buys two kinds of checking the bare
// std::mutex never had:
//
//   1. Compile-time discipline (Clang Thread Safety Analysis). The
//      RSM_CAPABILITY / RSM_GUARDED_BY / RSM_REQUIRES / RSM_ACQUIRE /
//      RSM_RELEASE macros expand to Clang's capability attributes, so
//      under `clang++ -Wthread-safety -Werror` touching guarded state
//      without holding its mutex is a build break, not a TSan roll of the
//      dice. Under GCC (and any non-Clang compiler) the macros expand to
//      nothing and the wrappers cost exactly what std::lock_guard costs.
//
//   2. Run-time deadlock detection (the lock-rank checker). Ranks define
//      the global acquisition order: a thread may only acquire a mutex
//      whose rank is STRICTLY GREATER than every rank it already holds.
//      Any A->B / B->A inversion — the raw material of every deadlock —
//      trips the checker deterministically on first occurrence, with both
//      lock names and the full held-lock stack, instead of deadlocking
//      once a year under the right interleaving. The checker is compiled
//      in when RSM_LOCK_RANK_CHECKS is 1 (the repo's CMake default; see
//      the RSM_LOCK_RANKS option) and costs a thread-local array push/pop
//      plus an integer compare per acquisition.
//
// scripts/rsm_lint.py's `no-naked-mutex` rule bans std::mutex,
// std::shared_mutex, std::lock_guard & co everywhere outside this file
// pair, so the vocabulary cannot erode. The rank table (one row per
// Mutex in the tree) and the rule for ranking new locks live in
// docs/static-analysis.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

// --------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (no-ops elsewhere).
// Vocabulary and semantics follow the Clang documentation; the RSM_ prefix
// keeps them grep-able and lets non-Clang builds compile them away.

#if defined(__clang__)
#define RSM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RSM_THREAD_ANNOTATION(x)  // non-Clang: annotations compile away
#endif

/// Marks a type as a capability (lockable). The string names the kind.
#define RSM_CAPABILITY(x) RSM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires in its constructor and releases in its
/// destructor (MutexLock, ReaderLock, WriterLock).
#define RSM_SCOPED_CAPABILITY RSM_THREAD_ANNOTATION(scoped_lockable)

/// Data member / global: may only be touched while holding `x`.
#define RSM_GUARDED_BY(x) RSM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* may only be touched while holding `x`.
#define RSM_PT_GUARDED_BY(x) RSM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: caller must hold the capability (exclusively).
#define RSM_REQUIRES(...) \
  RSM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function precondition: caller must hold the capability (shared).
#define RSM_REQUIRES_SHARED(...) \
  RSM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define RSM_ACQUIRE(...) \
  RSM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RSM_ACQUIRE_SHARED(...) \
  RSM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability.
#define RSM_RELEASE(...) \
  RSM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RSM_RELEASE_SHARED(...) \
  RSM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `value`.
#define RSM_TRY_ACQUIRE(...) \
  RSM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be entered NOT holding the listed capabilities (they will
/// be acquired inside). This is the negative-capability vocabulary the CI
/// thread-safety job's -Wthread-safety-negative pass reads.
#define RSM_EXCLUDES(...) RSM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code reached only
/// under a lock taken by a caller the analysis cannot see).
#define RSM_ASSERT_CAPABILITY(x) RSM_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability `x`.
#define RSM_RETURN_CAPABILITY(x) RSM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disable the analysis for one function. Every use is a
/// code-review flag; prefer restructuring.
#define RSM_NO_THREAD_SAFETY_ANALYSIS \
  RSM_THREAD_ANNOTATION(no_thread_safety_analysis)

// --------------------------------------------------------------------------
// Lock-rank checking gate. CMake normally forces this on (RSM_LOCK_RANKS=ON
// -> -DRSM_LOCK_RANK_CHECKS=1) so the Release test suite exercises it too;
// without an explicit definition it follows NDEBUG.

#ifndef RSM_LOCK_RANK_CHECKS
#ifdef NDEBUG
#define RSM_LOCK_RANK_CHECKS 0
#else
#define RSM_LOCK_RANK_CHECKS 1
#endif
#endif

namespace rsm {

/// True when acquisitions are rank-checked at runtime; tests assert the
/// checker fires exactly when it should.
inline constexpr bool kLockRankChecksEnabled = RSM_LOCK_RANK_CHECKS != 0;

/// The global acquisition order, lowest first: while holding a lock of
/// rank R a thread may only acquire locks of rank strictly greater than R.
/// One named constant per lock site in the tree — the authoritative table
/// (with the nesting edges that motivated each value) is in
/// docs/static-analysis.md. Rule for new locks: find every path that can
/// hold an existing lock while taking yours (and vice versa), then pick an
/// unused value strictly between the ranks you nest inside and the ranks
/// you acquire while held; leave gaps of 10 for future insertions. A lock
/// that never nests takes kDefault.
namespace lock_rank {
inline constexpr int kCampaignProgress = 10;  ///< campaign.progress
inline constexpr int kPoolCoord = 20;         ///< pool.coord
inline constexpr int kPoolQueue = 30;         ///< pool.queue (per worker)
inline constexpr int kTelemetrySlot = 40;     ///< obs.telemetry.slot
inline constexpr int kTelemetryRing = 50;     ///< obs.telemetry.ring
inline constexpr int kTelemetryJsonl = 55;    ///< obs.telemetry.jsonl
inline constexpr int kMetricsRegistry = 60;   ///< obs.metrics
inline constexpr int kTraceRetired = 70;      ///< obs.trace.retired
inline constexpr int kProgressReporter = 80;  ///< obs.progress.reporter
inline constexpr int kLog = 90;  ///< log — near-leaf: code logs under locks
/// Unranked scratch (tests, tools): acquirable while holding anything,
/// forbids nesting anything under it — including another kDefault lock.
inline constexpr int kDefault = 1000;
}  // namespace lock_rank

/// One entry of a thread's held-lock stack, as reported to violation
/// handlers and tests (acquisition order, oldest first).
struct HeldLockInfo {
  const char* name = "";
  int rank = 0;
};

/// Everything a rank-violation handler learns: the offending acquisition
/// and the full held-lock stack of the acquiring thread.
struct RankViolation {
  const char* acquiring_name = "";
  int acquiring_rank = 0;
  bool recursive = false;  ///< the acquiring mutex itself is already held
  std::vector<HeldLockInfo> held;  ///< acquisition order, oldest first
};

/// Handler invoked on a rank violation. The default (nullptr) prints both
/// lock names plus the held-lock stack to stderr and aborts — a potential
/// deadlock becomes a deterministic test failure. Tests install a
/// recording handler; if a handler returns normally the acquisition
/// proceeds (record-and-continue), and a handler may throw instead.
using RankViolationHandler = void (*)(const RankViolation&);

/// Installs a handler, returning the previous one (nullptr = default
/// abort). Not synchronized with in-flight acquisitions: install before
/// spawning threads, as tests do.
RankViolationHandler set_rank_violation_handler(RankViolationHandler handler);

/// The calling thread's current held-lock stack (empty when rank checks
/// are compiled out). Test/debug introspection only.
[[nodiscard]] std::vector<HeldLockInfo> held_locks_for_testing();

namespace detail {
#if RSM_LOCK_RANK_CHECKS
void rank_note_acquire(const void* mutex, const char* name, int rank);
void rank_note_release(const void* mutex);
#else
inline void rank_note_acquire(const void*, const char*, int) {}
inline void rank_note_release(const void*) {}
#endif
}  // namespace detail

/// Exclusive mutex with a Clang TSA capability, a name, and a rank.
/// Constexpr-constructible so namespace-scope instances need no dynamic
/// initialization. Prefer the MutexLock wrapper to calling lock()/unlock()
/// directly; direct calls exist for the rare manual-pairing site.
class RSM_CAPABILITY("mutex") Mutex {
 public:
  constexpr explicit Mutex(const char* name = "mutex",
                           int rank = lock_rank::kDefault)
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RSM_ACQUIRE() {
    detail::rank_note_acquire(this, name_, rank_);
    raw_.lock();
  }

  void unlock() RSM_RELEASE() {
    raw_.unlock();
    detail::rank_note_release(this);
  }

  /// Rank-checked like lock(): a try_lock in rank-inverted order cannot
  /// deadlock by itself, but it establishes the inverted edge the next
  /// blocking acquire will deadlock on, so the discipline applies.
  [[nodiscard]] bool try_lock() RSM_TRY_ACQUIRE(true) {
    detail::rank_note_acquire(this, name_, rank_);
    if (raw_.try_lock()) return true;
    detail::rank_note_release(this);
    return false;
  }

  [[nodiscard]] constexpr const char* name() const { return name_; }
  [[nodiscard]] constexpr int rank() const { return rank_; }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex raw_;
  const char* name_;
  int rank_;
};

/// Reader/writer mutex with the same name+rank discipline. Shared
/// acquisitions follow the same rank order as exclusive ones.
class RSM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  constexpr explicit SharedMutex(const char* name = "shared_mutex",
                                 int rank = lock_rank::kDefault)
      : name_(name), rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() RSM_ACQUIRE() {
    detail::rank_note_acquire(this, name_, rank_);
    raw_.lock();
  }

  void unlock() RSM_RELEASE() {
    raw_.unlock();
    detail::rank_note_release(this);
  }

  void lock_shared() RSM_ACQUIRE_SHARED() {
    detail::rank_note_acquire(this, name_, rank_);
    raw_.lock_shared();
  }

  void unlock_shared() RSM_RELEASE_SHARED() {
    raw_.unlock_shared();
    detail::rank_note_release(this);
  }

  [[nodiscard]] bool try_lock() RSM_TRY_ACQUIRE(true) {
    detail::rank_note_acquire(this, name_, rank_);
    if (raw_.try_lock()) return true;
    detail::rank_note_release(this);
    return false;
  }

  [[nodiscard]] constexpr const char* name() const { return name_; }
  [[nodiscard]] constexpr int rank() const { return rank_; }

 private:
  std::shared_mutex raw_;
  const char* name_;
  int rank_;
};

/// Scoped exclusive lock on an rsm::Mutex — the std::lock_guard of this
/// layer, plus the capability handoff TSA needs and CondVar compatibility.
class RSM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) RSM_ACQUIRE(mutex) : mutex_(mutex) {
    detail::rank_note_acquire(&mutex_, mutex_.name_, mutex_.rank_);
    lock_ = std::unique_lock<std::mutex>(mutex_.raw_);
  }

  ~MutexLock() RSM_RELEASE() {
    lock_.unlock();
    detail::rank_note_release(&mutex_);
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mutex_;
  std::unique_lock<std::mutex> lock_;
};

/// Scoped shared (reader) lock on an rsm::SharedMutex.
class RSM_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) RSM_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }

  ~ReaderLock() RSM_RELEASE() { mutex_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Scoped exclusive (writer) lock on an rsm::SharedMutex.
class RSM_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mutex) RSM_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }

  ~WriterLock() RSM_RELEASE() { mutex_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable paired with MutexLock. While wait() internally
/// releases and reacquires the mutex, both the TSA capability and the
/// rank-checker's held-stack treat it as continuously held (the Abseil
/// CondVar convention) — so wait predicates must not acquire other rsm
/// locks of rank <= the waited mutex (the ones in the tree only read
/// atomics).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { raw_.notify_one(); }
  void notify_all() { raw_.notify_all(); }

  void wait(MutexLock& lock) { raw_.wait(lock.lock_); }

  template <typename Predicate>
  void wait(MutexLock& lock, Predicate predicate) {
    raw_.wait(lock.lock_, std::move(predicate));
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return raw_.wait_for(lock.lock_, timeout);
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Predicate predicate) {
    return raw_.wait_for(lock.lock_, timeout, std::move(predicate));
  }

 private:
  std::condition_variable raw_;
};

}  // namespace rsm
