#include "util/signals.hpp"

#include <csignal>
#include <cstdlib>

namespace rsm {
namespace {

// All state a handler touches is lock-free and pre-allocated. The source
// pointer is published before handlers are installed; the handler only ever
// loads it and stores through it. Lock-free std::atomic (asserted below) is
// async-signal-safe and, unlike volatile sig_atomic_t, also safe to read
// from other threads (campaign workers poll these flags while a signal
// lands on whichever thread the kernel picked).
std::atomic<CancellationSource*> g_signal_source{nullptr};
std::atomic<int> g_signal_count{0};
std::atomic<int> g_first_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires lock-free atomics");

extern "C" void rsm_signal_handler(int signo) {
  // Publish the signo before the count: a reader that observes count > 0
  // (acquire) is guaranteed to see which signal arrived first.
  int expected = 0;
  g_first_signal.compare_exchange_strong(expected, signo,
                                         std::memory_order_relaxed);
  const int count =
      g_signal_count.fetch_add(1, std::memory_order_release) + 1;
  if (count >= 2) std::_Exit(128 + signo);
  CancellationSource* source = g_signal_source.load(std::memory_order_acquire);
  if (source != nullptr) source->request_cancel();
}

}  // namespace

void install_signal_cancellation(CancellationSource* source) {
  g_signal_source.store(source, std::memory_order_release);
  std::signal(SIGINT, rsm_signal_handler);
  std::signal(SIGTERM, rsm_signal_handler);
}

bool signal_cancellation_requested() {
  return g_signal_count.load(std::memory_order_acquire) > 0;
}

int signal_exit_status() {
  if (g_signal_count.load(std::memory_order_acquire) == 0) return 0;
  return 128 + g_first_signal.load(std::memory_order_relaxed);
}

}  // namespace rsm
