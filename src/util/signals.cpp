#include "util/signals.hpp"

#include <csignal>
#include <cstdlib>

namespace rsm {
namespace {

// All state a handler touches is lock-free and pre-allocated. The source
// pointer is published before handlers are installed; the handler only ever
// loads it and performs one relaxed store through it.
std::atomic<CancellationSource*> g_signal_source{nullptr};
volatile std::sig_atomic_t g_signal_count = 0;
volatile std::sig_atomic_t g_first_signal = 0;

extern "C" void rsm_signal_handler(int signo) {
  if (g_signal_count == 0) g_first_signal = signo;
  g_signal_count = g_signal_count + 1;
  if (g_signal_count >= 2) std::_Exit(128 + signo);
  CancellationSource* source = g_signal_source.load(std::memory_order_acquire);
  if (source != nullptr) source->request_cancel();
}

}  // namespace

void install_signal_cancellation(CancellationSource* source) {
  g_signal_source.store(source, std::memory_order_release);
  std::signal(SIGINT, rsm_signal_handler);
  std::signal(SIGTERM, rsm_signal_handler);
}

bool signal_cancellation_requested() { return g_signal_count > 0; }

int signal_exit_status() {
  return g_signal_count > 0 ? 128 + static_cast<int>(g_first_signal) : 0;
}

}  // namespace rsm
