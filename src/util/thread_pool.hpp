// Work-stealing thread pool: the one sanctioned concurrency primitive.
//
// The paper's cost model makes sample rows embarrassingly parallel — each
// is an independent transistor-level simulation — but the campaign layer's
// guarantees (deterministic retry/quarantine accounting, durable
// checkpoints, bit-identical resume) must survive whatever interleaving N
// workers produce. Concentrating every thread the project spawns behind
// this pool keeps those properties auditable: rsm-lint forbids raw
// std::thread/std::async outside src/util/, and the pool itself is
// exercised under TSan in CI.
//
// Design:
//   * one bounded deque per worker; submit() round-robins across workers
//     and blocks (backpressure) while every live queue is full;
//   * a worker pops its own queue front-first and, when empty, steals from
//     the back of a victim's queue — classic work stealing, so a stalled
//     or retired worker cannot strand queued tasks;
//   * shutdown is cooperative: the destructor stops intake, drains every
//     queued task, then joins. Tasks are expected to poll the campaign's
//     cancellation token; the pool never kills a thread;
//   * retire_current_worker() lets a task permanently quarantine the
//     worker it runs on (the campaign's graceful-degradation path for
//     repeated infrastructure faults). The last active worker refuses to
//     retire so queues always drain;
//   * a task that throws is counted (task_exceptions) and swallowed — the
//     pool is infrastructure; error *classification* belongs to the
//     campaign layer, which catches per-row exceptions itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/common.hpp"
#include "util/sync.hpp"

namespace rsm {

/// Shared worker-count resolution: `requested >= 1` is taken literally;
/// `requested == 0` means "auto" — the RSM_THREADS environment variable
/// when it holds a positive integer, otherwise `fallback`. The campaign
/// layer passes fallback = 1 (serial stays the default), the pool passes
/// the hardware concurrency.
[[nodiscard]] int resolve_num_workers(int requested, int fallback);

class ThreadPool {
 public:
  using Task = std::function<void()>;

  struct Options {
    /// Worker threads; 0 = resolve_num_workers(0, hardware_concurrency).
    int num_threads = 0;

    /// Per-worker queue bound; submit() blocks while every live queue is
    /// full, so an unbounded producer cannot exhaust memory.
    std::size_t queue_capacity = 256;
  };

  /// Lifetime counters (monotonic; racy reads are fine for reporting).
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;           // executed via steal, not own queue
    std::uint64_t task_exceptions = 0;  // tasks that threw (swallowed)
    std::uint64_t backpressure_stalls = 0;  // submit() sleeps on full queues
    std::uint64_t queue_highwater = 0;  // max tasks simultaneously queued
  };

  /// Per-worker telemetry. Counters are exact; busy/idle seconds are
  /// wall-clock accumulations written only by the owning worker (reads
  /// while the pool runs may lag the current task boundary).
  struct WorkerStats {
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;    // tasks this worker stole from a sibling
    bool retired = false;
    double busy_seconds = 0;     // inside task();
    double idle_seconds = 0;     // between tasks (incl. sleeping)
  };

  ThreadPool();  // default Options
  explicit ThreadPool(const Options& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task; blocks for backpressure while all live queues are
  /// full. Safe to call from inside a task (workers submitting follow-up
  /// work), but not after the destructor has begun.
  void submit(Task task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] int num_workers() const;

  /// Workers that have not been retired.
  [[nodiscard]] int active_workers() const;

  /// 0-based index of the pool worker executing the calling task, or -1
  /// when called from a thread this pool does not own.
  [[nodiscard]] int current_worker_index() const;

  /// Permanently retires the calling worker: it finishes the current task,
  /// stops claiming new ones, and its queued tasks are stolen by siblings.
  /// Returns false — and retires nothing — when the caller is not a pool
  /// worker or when it is the last active worker (someone must drain the
  /// queues). This is the campaign's graceful-degradation hook.
  bool retire_current_worker();

  /// Tasks currently sitting in queues (not yet claimed).
  [[nodiscard]] std::size_t queue_depth() const;

  [[nodiscard]] Stats stats() const;

  /// One entry per worker, indexed by worker id (stable for the pool's
  /// life, retired workers included).
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

 private:
  struct Worker {
    Mutex mutex{"pool.queue", lock_rank::kPoolQueue};
    std::deque<Task> queue RSM_GUARDED_BY(mutex);
    std::atomic<bool> retired{false};

    // Telemetry. executed/stolen use relaxed fetch_add; the second pair is
    // single-writer (only the owning worker stores) so plain load+store.
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<double> busy_seconds{0};
    std::atomic<double> idle_seconds{0};
  };

  void worker_loop(int index);
  bool try_push(int worker, Task& task);
  Task try_pop_own(Worker& self);
  Task try_steal(int thief);

  Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::atomic<bool> stop_{false};
  std::atomic<int> active_{0};
  std::atomic<std::int64_t> pending_{0};  // submitted, not yet finished
  std::atomic<std::int64_t> queued_{0};   // sitting in queues
  std::atomic<std::uint64_t> next_queue_{0};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> task_exceptions_{0};
  std::atomic<std::uint64_t> backpressure_stalls_{0};
  std::atomic<std::uint64_t> queue_highwater_{0};

  // One coordination mutex for all sleeping/waking; per-worker mutexes only
  // guard their deques. Notifying under the lock closes the classic
  // check-then-wait race without per-queue condition variables. coord_ and
  // the worker mutexes are never held together, so their ranks are free.
  mutable Mutex coord_{"pool.coord", lock_rank::kPoolCoord};
  CondVar work_cv_;   // queued task may be available
  CondVar idle_cv_;   // pending_ may have reached zero
  CondVar space_cv_;  // queue space may have opened up
};

}  // namespace rsm
