// Minimal leveled logging to stderr. Benches use Info for progress lines;
// solvers use Debug for per-iteration traces (off by default).
//
// Emission is serialized by a mutex and each line is prefixed with the
// monotonic seconds since process start plus a level tag:
//
//   [   12.345 INFO ] campaign: fitting on 198/200 surviving samples
//
// Tests (and embedders) can capture output instead of scraping stderr:
//
//   set_log_sink([&](LogLevel level, const std::string& msg) { ... });
//   ...
//   set_log_sink(nullptr);  // restore stderr
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace rsm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Receives every emitted (level, raw message) pair — the message carries no
/// timestamp/tag prefix; the default stderr path adds it via
/// detail::format_log_line. Invoked under the log mutex, so sinks need no
/// synchronization of their own but must not log reentrantly.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Installs a capture sink; nullptr restores the default stderr writer.
void set_log_sink(LogSink sink);

namespace detail {
void log_emit(LogLevel level, const std::string& message);

/// "[%9.3f LEVEL] message" — the line format the stderr writer emits, with
/// `seconds` the monotonic time since process start.
[[nodiscard]] std::string format_log_line(LogLevel level, double seconds,
                                          const std::string& message);

/// Monotonic seconds since the first logging call of the process.
[[nodiscard]] double log_uptime_seconds();
}  // namespace detail

}  // namespace rsm

#define RSM_LOG(level, msg)                                        \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::rsm::log_level())) {                    \
      std::ostringstream rsm_log_os_;                              \
      rsm_log_os_ << msg;                                          \
      ::rsm::detail::log_emit(level, rsm_log_os_.str());           \
    }                                                              \
  } while (false)

#define RSM_DEBUG(msg) RSM_LOG(::rsm::LogLevel::kDebug, msg)
#define RSM_INFO(msg) RSM_LOG(::rsm::LogLevel::kInfo, msg)
#define RSM_WARN(msg) RSM_LOG(::rsm::LogLevel::kWarn, msg)
#define RSM_ERROR(msg) RSM_LOG(::rsm::LogLevel::kError, msg)
