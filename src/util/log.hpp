// Minimal leveled logging to stderr. Benches use Info for progress lines;
// solvers use Debug for per-iteration traces (off by default).
#pragma once

#include <sstream>
#include <string>

namespace rsm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace rsm

#define RSM_LOG(level, msg)                                        \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::rsm::log_level())) {                    \
      std::ostringstream rsm_log_os_;                              \
      rsm_log_os_ << msg;                                          \
      ::rsm::detail::log_emit(level, rsm_log_os_.str());           \
    }                                                              \
  } while (false)

#define RSM_DEBUG(msg) RSM_LOG(::rsm::LogLevel::kDebug, msg)
#define RSM_INFO(msg) RSM_LOG(::rsm::LogLevel::kInfo, msg)
#define RSM_WARN(msg) RSM_LOG(::rsm::LogLevel::kWarn, msg)
#define RSM_ERROR(msg) RSM_LOG(::rsm::LogLevel::kError, msg)
