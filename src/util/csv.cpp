#include "util/csv.hpp"

#include <sstream>

#include "util/common.hpp"

namespace rsm {
namespace {

std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  return out + "\"";
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), num_columns_(header.size()) {
  RSM_CHECK_MSG(out_.good(), "cannot open CSV file: " << path);
  RSM_CHECK(!header.empty());
  emit(header);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  RSM_CHECK_MSG(fields.size() == num_columns_,
                "CSV row has " << fields.size() << " fields, expected "
                               << num_columns_);
  emit(fields);
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    fields.push_back(os.str());
  }
  write_row(fields);
}

void CsvWriter::emit(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace rsm
