// Structured error taxonomy for recoverable numerical failures.
//
// Production simulation campaigns must distinguish *why* a sample failed —
// a singular MNA matrix is permanent (topology problem), a Newton stall is
// often recoverable with a stronger convergence aid, a domain error (NaN /
// servo out of range) may or may not be. Every throwing site in the solver
// and simulator layers raises one of the subclasses below instead of a bare
// rsm::Error, carrying a machine-readable ErrorCode plus the sample and
// strategy context the campaign layer (core/campaign.hpp) uses to decide
// between retry, escalation, and quarantine.
#pragma once

#include <string>

#include "util/common.hpp"

namespace rsm {

/// Machine-readable failure classes. Order is stable (reports index by it);
/// new codes are appended so persisted histograms stay comparable.
enum class ErrorCode {
  kOk = 0,
  kSingularMatrix,    // factorization hit a zero pivot / rank deficiency
  kNoConvergence,     // iteration budget exhausted without meeting tolerance
  kNumericalDomain,   // NaN/inf iterate, servo out of range, log of <= 0, ...
  kUnclassified,      // legacy rsm::Error or foreign std::exception
  kDeadlineExceeded,  // cooperative deadline expired / cancellation requested
  kIoError,           // durable-storage failure (checkpoint, report, fsync)
  kProtocolError,     // malformed/oversized/desynced serving-protocol frame
  kVersionMismatch,   // persisted artifact written by an incompatible version
  kOverloaded,        // admission control shed the request; retry with backoff
  kConnectionTimeout, // per-connection I/O deadline expired (slow peer)
};

inline constexpr int kNumErrorCodes = 11;

/// Short stable name for reports and logs ("singular-matrix", ...).
[[nodiscard]] const char* error_code_name(ErrorCode code);

/// Base of the taxonomy: an rsm::Error with a code and optional context.
///
/// `sample` is the campaign sample index (-1 outside a campaign); `strategy`
/// names the solver strategy that was active ("newton", "gmin-stepping",
/// "fault-injection", ...). Both are advisory — formatting them into what()
/// happens at construction so catch sites can log cheaply.
class StructuredError : public Error {
 public:
  StructuredError(ErrorCode code, const std::string& message,
                  std::string strategy = {}, Index sample = -1);

  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& strategy() const { return strategy_; }
  [[nodiscard]] Index sample() const { return sample_; }

 private:
  ErrorCode code_;
  std::string strategy_;
  Index sample_;
};

/// A linear solve met an (numerically) singular matrix.
class SingularMatrixError : public StructuredError {
 public:
  explicit SingularMatrixError(const std::string& message,
                               std::string strategy = {}, Index sample = -1)
      : StructuredError(ErrorCode::kSingularMatrix, message,
                        std::move(strategy), sample) {}
};

/// An iterative method exhausted its budget without converging.
class ConvergenceError : public StructuredError {
 public:
  ConvergenceError(const std::string& message, int iterations,
                   std::string strategy = {}, Index sample = -1);

  [[nodiscard]] int iterations() const { return iterations_; }

 private:
  int iterations_;
};

/// A computation left its numerical domain (non-finite values, a bisection
/// bracket that does not contain a root, ...).
class NumericalDomainError : public StructuredError {
 public:
  explicit NumericalDomainError(const std::string& message,
                                std::string strategy = {}, Index sample = -1)
      : StructuredError(ErrorCode::kNumericalDomain, message,
                        std::move(strategy), sample) {}
};

/// A cooperative deadline expired or cancellation was requested while a
/// solver loop was still running (util/cancellation.hpp check sites). The
/// campaign layer routes the per-sample form to quarantine and the global
/// form to graceful truncation.
class DeadlineExceededError : public StructuredError {
 public:
  explicit DeadlineExceededError(const std::string& message,
                                 std::string strategy = {}, Index sample = -1)
      : StructuredError(ErrorCode::kDeadlineExceeded, message,
                        std::move(strategy), sample) {}
};

/// A durable-storage operation failed: short or torn write, ENOSPC, rename
/// failure, or a load that met a truncated / bit-flipped / wrong-version
/// file. Raised by the src/io layer; loaders never return corrupt data.
class IoError : public StructuredError {
 public:
  explicit IoError(const std::string& message, std::string strategy = {},
                   Index sample = -1)
      : StructuredError(ErrorCode::kIoError, message, std::move(strategy),
                        sample) {}
};

/// A serving-protocol frame failed structural validation: bad magic, a
/// declared length beyond the cap, a CRC mismatch, or a payload that stops
/// short of its declared size. Raised by src/serve; the server answers with
/// a structured error frame and closes the (now desynchronized) connection
/// instead of guessing at a resync point.
class ProtocolError : public StructuredError {
 public:
  explicit ProtocolError(const std::string& message, std::string strategy = {},
                         Index sample = -1)
      : StructuredError(ErrorCode::kProtocolError, message,
                        std::move(strategy), sample) {}
};

/// A persisted artifact (model file, registry entry) declares a format
/// version this build does not speak, or a fingerprint that binds it to a
/// different dictionary/model than the caller expects. Distinct from
/// IoError so operators can tell "upgrade the binary" from "the disk lied".
class VersionMismatchError : public StructuredError {
 public:
  explicit VersionMismatchError(const std::string& message,
                                std::string strategy = {}, Index sample = -1)
      : StructuredError(ErrorCode::kVersionMismatch, message,
                        std::move(strategy), sample) {}
};

/// The serving layer's admission control shed this request: the in-flight
/// budget or the per-connection pending-frame cap was exceeded. Unlike every
/// other code this one is *retryable by design* — the error frame carries a
/// retry-after hint and clients are expected to back off and resend.
class OverloadedError : public StructuredError {
 public:
  explicit OverloadedError(const std::string& message,
                           std::string strategy = {}, Index sample = -1)
      : StructuredError(ErrorCode::kOverloaded, message, std::move(strategy),
                        sample) {}
};

/// A per-connection I/O deadline expired: the peer left a frame unfinished
/// past the read timeout, stopped draining responses past the write timeout,
/// or sat idle past the reaper threshold. The server quarantines exactly
/// that connection; distinct from kDeadlineExceeded (a *compute* budget) so
/// operators can tell "slow client" from "slow solver".
class ConnectionTimeoutError : public StructuredError {
 public:
  explicit ConnectionTimeoutError(const std::string& message,
                                  std::string strategy = {}, Index sample = -1)
      : StructuredError(ErrorCode::kConnectionTimeout, message,
                        std::move(strategy), sample) {}
};

/// Maps any in-flight exception to its taxonomy code: StructuredError
/// reports its own code, anything else is kUnclassified.
[[nodiscard]] ErrorCode classify_error(const std::exception& e);

}  // namespace rsm
