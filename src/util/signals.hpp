// Graceful SIGINT/SIGTERM handling for campaign binaries.
//
// First signal: request cooperative cancellation on the registered source —
// the campaign drains at its next check site, flushes its checkpoint and a
// partial report, and the binary exits nonzero. Second signal: the operator
// means it; exit immediately with the conventional 128+signo status.
//
// The handler body is async-signal-safe: one relaxed atomic store on a
// pre-registered CancellationSource plus a sig_atomic_t counter. Handlers
// stay installed for the process lifetime; re-registering replaces the
// source a signal will cancel.
#pragma once

#include "util/cancellation.hpp"

namespace rsm {

/// Installs SIGINT/SIGTERM handlers wired to `source` (which must outlive
/// signal delivery). Safe to call more than once.
void install_signal_cancellation(CancellationSource* source);

/// True once a first signal arrived (for choosing a nonzero exit status).
[[nodiscard]] bool signal_cancellation_requested();

/// Exit status a signal-cancelled binary should return (128 + signo of the
/// first signal received; 0 when none arrived).
[[nodiscard]] int signal_exit_status();

}  // namespace rsm
