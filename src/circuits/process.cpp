#include "circuits/process.hpp"

#include <cmath>

namespace rsm::circuits {

Real Process65::vth_mismatch_sigma(Real w, Real l) const {
  RSM_CHECK(w > 0 && l > 0);
  return a_vt / std::sqrt(w * l);
}

spice::MosfetParams apply_variation(const spice::MosfetParams& nominal,
                                    const DeviceVariation& variation) {
  spice::MosfetParams p = nominal;
  p.vt0 = nominal.vt0 + variation.d_vth;
  p.kp = nominal.kp * (Real{1} + variation.d_kp_rel);
  p.w = nominal.w * (Real{1} + variation.d_w_rel);
  p.l = nominal.l * (Real{1} + variation.d_l_rel);
  RSM_CHECK_MSG(p.kp > 0 && p.w > 0 && p.l > 0,
                "variation drove a device parameter non-positive");
  return p;
}

}  // namespace rsm::circuits
