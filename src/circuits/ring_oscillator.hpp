// Ring-oscillator workload: oscillation frequency under process variation.
//
// A ring of current-starved NMOS inverters (resistive loads, stage caps) —
// the classic silicon "process monitor" structure, and a third modeling
// target alongside the paper's OpAmp and SRAM. The frequency is extracted
// the honest way: transient simulation of the full nonlinear ring, counting
// threshold crossings once the oscillation settles.
//
// Variation mapping mirrors the OpAmp's: a handful of inter-die globals,
// per-stage local mismatch (2 factors per stage: dVth, dKP), and an
// optional parasitic tail perturbing the stage capacitors. Frequency is
// dominated by the global corner and spreads mildly over the per-stage
// mismatch (which averages around the ring) — a different, "denser"
// sparsity pattern than the SRAM's.
#pragma once

#include <span>

#include "circuits/process.hpp"
#include "util/common.hpp"

namespace rsm::circuits {

struct RingOscillatorConfig {
  Process65 process;

  /// Number of inverter stages (odd; >= 3).
  Index num_stages = 5;

  /// Total independent variation variables: >= 3 globals + 2 per stage.
  /// Extra variables become the parasitic capacitor tail.
  Index num_variables = 64;

  Real load_resistance = 15e3;  // stage pull-up [Ohm]
  Real stage_capacitance = 8e-15;  // stage load [F]
  Real sigma_stage_vth = 0.008;    // per-stage Vth mismatch [V]
};

class RingOscillatorWorkload {
 public:
  explicit RingOscillatorWorkload(const RingOscillatorConfig& config = {});

  [[nodiscard]] Index num_variables() const { return config_.num_variables; }
  [[nodiscard]] const RingOscillatorConfig& config() const { return config_; }

  /// Oscillation frequency [Hz] for one variation sample, from transient
  /// simulation (throws if the ring fails to oscillate — does not happen
  /// at the default sigmas).
  [[nodiscard]] Real evaluate(std::span<const Real> dy) const;

  [[nodiscard]] Real nominal() const { return nominal_; }

  /// Variable-layout helpers (offsets into dY).
  [[nodiscard]] static Index global_variable(Index g) { return g; }  // g<3
  [[nodiscard]] Index stage_variable(Index stage, Index p) const;   // p in {0,1}

 private:
  RingOscillatorConfig config_;
  Real nominal_ = 0;
};

}  // namespace rsm::circuits
