#include "circuits/opamp.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/netlist.hpp"
#include "spice/transient.hpp"

namespace rsm::circuits {
namespace {

using spice::MosfetParams;
using spice::MosType;
using spice::Netlist;

/// Device roles, indexing the per-device mismatch block of the variation
/// vector.
enum Device : Index { kM1, kM2, kM3, kM4, kM5, kM6, kM7, kM8, kNumDevices };

/// Nominal sizing (W in meters; L = 2x minimum for analog devices).
struct Sizing {
  Real w;
  Real l;
  MosType type;
};

constexpr Real kLu = 120e-9;  // analog unit length (2x Lmin)

const Sizing kSizing[kNumDevices] = {
    {6.0e-6, kLu, MosType::kNmos},   // M1 input pair
    {6.0e-6, kLu, MosType::kNmos},   // M2 input pair
    {3.0e-6, kLu, MosType::kPmos},   // M3 mirror load (diode)
    {3.0e-6, kLu, MosType::kPmos},   // M4 mirror load
    {12.0e-6, kLu, MosType::kNmos},  // M5 tail (2x bias)
    {24.0e-6, kLu, MosType::kPmos},  // M6 second stage
    {48.0e-6, kLu, MosType::kNmos},  // M7 sink (8x bias)
    {6.0e-6, kLu, MosType::kNmos},   // M8 bias diode
};

/// Passive perturbation accumulators driven by the parasitic tail.
struct PassiveScales {
  Real cc = 1, cl = 1, rz = 1;
  Real c_n1 = 0, c_n2 = 0, c_out = 0, c_tail = 0;  // added parasitic caps [F]
};

struct MappedVariation {
  MosfetParams device[kNumDevices];
  PassiveScales passives;
};

/// dY (independent standard normals) -> physical device/passive parameters.
MappedVariation map_variation(const OpAmpConfig& cfg,
                              std::span<const Real> dy) {
  const Process65& p = cfg.process;
  RSM_CHECK(static_cast<Index>(dy.size()) == cfg.num_variables);

  const Real g_vth_n = dy[0] * p.sigma_vth_global;
  const Real g_vth_p = dy[1] * p.sigma_vth_global;
  const Real g_kp_n = dy[2] * p.sigma_kp_global;
  const Real g_kp_p = dy[3] * p.sigma_kp_global;
  const Real g_len = dy[4] * p.sigma_len_global;
  const Real g_par = dy[5] * p.sigma_parasitic;

  MappedVariation out;
  for (Index d = 0; d < kNumDevices; ++d) {
    const Sizing& s = kSizing[d];
    MosfetParams nominal;
    nominal.type = s.type;
    nominal.vt0 = s.type == MosType::kNmos ? p.vt0_nmos : p.vt0_pmos;
    nominal.kp = s.type == MosType::kNmos ? p.kp_nmos : p.kp_pmos;
    nominal.lambda =
        s.type == MosType::kNmos ? p.lambda_nmos : p.lambda_pmos;
    nominal.w = s.w;
    nominal.l = s.l;

    const std::size_t base = static_cast<std::size_t>(6 + 4 * d);
    DeviceVariation v;
    v.d_vth = (s.type == MosType::kNmos ? g_vth_n : g_vth_p) +
              dy[base + 0] * p.vth_mismatch_sigma(s.w, s.l);
    v.d_kp_rel = (s.type == MosType::kNmos ? g_kp_n : g_kp_p) +
                 dy[base + 1] * p.sigma_kp_local;
    v.d_w_rel = dy[base + 2] * p.sigma_w_local;
    v.d_l_rel = g_len + dy[base + 3] * p.sigma_len_local;
    out.device[d] = apply_variation(nominal, v);
  }

  // Parasitic tail: variables 38..N-1 cycle over seven passive targets.
  // DC metrics (power, offset) and low-frequency gain do not see these at
  // all; bandwidth sees each with a tiny sensitivity.
  PassiveScales& ps = out.passives;
  ps.cc = 1 + g_par;
  ps.cl = 1 + g_par;
  for (Index i = 38; i < cfg.num_variables; ++i) {
    const Real x = dy[static_cast<std::size_t>(i)] * p.sigma_parasitic;
    switch ((i - 38) % 7) {
      case 0: ps.cc += x * Real{0.1}; break;
      case 1: ps.cl += x * Real{0.1}; break;
      case 2: ps.rz += x * Real{0.1}; break;
      case 3: ps.c_n1 += x * Real{20e-15}; break;
      case 4: ps.c_n2 += x * Real{20e-15}; break;
      case 5: ps.c_out += x * Real{20e-15}; break;
      default: ps.c_tail += x * Real{20e-15}; break;
    }
  }
  ps.cc = std::max(ps.cc, Real{0.5});
  ps.cl = std::max(ps.cl, Real{0.5});
  ps.rz = std::max(ps.rz, Real{0.5});
  ps.c_n1 = std::max(ps.c_n1, Real{-10e-15});
  ps.c_n2 = std::max(ps.c_n2, Real{-10e-15});
  ps.c_out = std::max(ps.c_out, Real{-10e-15});
  ps.c_tail = std::max(ps.c_tail, Real{-10e-15});
  return out;
}

/// The built testbench: netlist + handles needed during measurement.
struct Bench {
  Netlist netlist;
  spice::NodeId out = spice::kGround;
  spice::VsourceId vinp{0};
  spice::VsourceId vinn{0};  // only valid when unity_gain == false
  Index vdd_source_index = 0;  // position in netlist.vsources()
};

Bench build_bench(const OpAmpConfig& cfg, const MappedVariation& mv,
                  bool unity_gain = false) {
  Bench b;
  Netlist& n = b.netlist;
  const auto vdd = n.node("vdd");
  const auto inp = n.node("inp");
  const auto inn = n.node("inn");
  const auto bias = n.node("bias");
  const auto tail = n.node("tail");
  const auto n1 = n.node("n1");
  const auto n2 = n.node("n2");
  const auto cz = n.node("cz");
  const auto out = n.node("out");
  b.out = out;

  // Supplies and inputs. VDD is vsource #0 -> power measurement.
  b.vdd_source_index = 0;
  n.add_vsource(vdd, spice::kGround, cfg.process.vdd);
  if (unity_gain) {
    // Voltage follower. M1 drains into the diode (n1) side, which makes its
    // gate the INVERTING input of the two-stage topology — so feedback ties
    // M1's gate to the output and the drive goes to M2's gate (node inn).
    b.vinp = n.add_vsource(inn, spice::kGround, cfg.input_cm, Real{1});
  } else {
    // Differential drive: +vd/2 on inp (AC +0.5), -vd/2 on inn (AC -0.5).
    b.vinp = n.add_vsource(inp, spice::kGround, cfg.input_cm, Real{0.5});
    b.vinn = n.add_vsource(inn, spice::kGround, cfg.input_cm, Real{-0.5});
  }

  // Bias branch.
  n.add_isource(vdd, bias, cfg.ibias);  // current flows vdd -> bias node
  n.add_mosfet(bias, bias, spice::kGround, spice::kGround,
               mv.device[kM8]);  // M8 diode

  // First stage. In unity-gain mode M1's (inverting) gate is the output.
  n.add_mosfet(tail, bias, spice::kGround, spice::kGround, mv.device[kM5]);
  n.add_mosfet(n1, unity_gain ? out : inp, tail, spice::kGround,
               mv.device[kM1]);
  n.add_mosfet(n2, inn, tail, spice::kGround, mv.device[kM2]);
  n.add_mosfet(n1, n1, vdd, vdd, mv.device[kM3]);  // PMOS diode
  n.add_mosfet(n2, n1, vdd, vdd, mv.device[kM4]);

  // Second stage.
  n.add_mosfet(out, n2, vdd, vdd, mv.device[kM6]);  // PMOS common source
  n.add_mosfet(out, bias, spice::kGround, spice::kGround, mv.device[kM7]);

  // Compensation and load. Rz ~ 1/gm6 nominal.
  const Real rz_nominal = 450.0;
  n.add_capacitor(n2, cz, cfg.cc * mv.passives.cc);
  n.add_resistor(cz, out, rz_nominal * mv.passives.rz);
  n.add_capacitor(out, spice::kGround, cfg.cl * mv.passives.cl);

  // Node parasitics (only if positive after variation).
  const Real base_par = 5e-15;
  n.add_capacitor(n1, spice::kGround,
                  std::max(base_par + mv.passives.c_n1, Real{1e-16}));
  n.add_capacitor(n2, spice::kGround,
                  std::max(base_par + mv.passives.c_n2, Real{1e-16}));
  n.add_capacitor(out, spice::kGround,
                  std::max(base_par + mv.passives.c_out, Real{1e-16}));
  n.add_capacitor(tail, spice::kGround,
                  std::max(base_par + mv.passives.c_tail, Real{1e-16}));
  return b;
}

/// Sets the differential drive on the bench inputs.
void set_differential(Bench& b, const OpAmpConfig& cfg, Real vd) {
  b.netlist.vsource(b.vinp).dc = cfg.input_cm + vd / 2;
  b.netlist.vsource(b.vinn).dc = cfg.input_cm - vd / 2;
}

}  // namespace

const char* opamp_metric_name(OpAmpMetric metric) {
  switch (metric) {
    case OpAmpMetric::kGain: return "Gain";
    case OpAmpMetric::kBandwidth: return "Bandwidth";
    case OpAmpMetric::kPower: return "Power";
    case OpAmpMetric::kOffset: return "Offset";
  }
  return "?";
}

Real OpAmpMetrics::get(OpAmpMetric metric) const {
  switch (metric) {
    case OpAmpMetric::kGain: return gain_db;
    case OpAmpMetric::kBandwidth: return bandwidth_hz;
    case OpAmpMetric::kPower: return power_w;
    case OpAmpMetric::kOffset: return offset_v;
  }
  return 0;
}

OpAmpWorkload::OpAmpWorkload(const OpAmpConfig& config) : config_(config) {
  RSM_CHECK_MSG(config_.num_variables >= 38,
                "OpAmp variation space needs >= 38 variables (6 global + 32 "
                "local), got " << config_.num_variables);
  const std::vector<Real> zeros(static_cast<std::size_t>(config_.num_variables),
                                Real{0});
  nominal_ = evaluate(zeros);
}

OpAmpMetrics OpAmpWorkload::evaluate(std::span<const Real> dy) const {
  return evaluate(dy, spice::DcOptions{});
}

OpAmpMetrics OpAmpWorkload::evaluate(
    std::span<const Real> dy, const spice::DcOptions& dc_opt) const {
  const MappedVariation mv = map_variation(config_, dy);
  Bench bench = build_bench(config_, mv);
  const Real vdd = config_.process.vdd;
  const Real target = vdd / 2;

  // --- Offset servo: bisection on the differential input vd so that
  // V(out) == VDD/2. The open-loop transfer is monotonic in vd.
  const Real vd_max = 0.2;
  set_differential(bench, config_, -vd_max);
  spice::DcSolution sol_lo = solve_dc(bench.netlist, dc_opt);
  const Real f_lo = sol_lo.voltage(bench.out) - target;
  set_differential(bench, config_, vd_max);
  spice::DcSolution sol_hi = solve_dc(bench.netlist, dc_opt, sol_lo.x);
  const Real f_hi = sol_hi.voltage(bench.out) - target;
  if (!(f_lo * f_hi < 0)) {
    throw NumericalDomainError("offset outside +/-" + std::to_string(vd_max) +
                                   " V servo range",
                               "offset-servo");
  }

  Real lo = -vd_max, hi = vd_max;
  spice::DcSolution op = sol_hi;
  Real vd = 0;
  for (int iter = 0; iter < 50; ++iter) {
    vd = (lo + hi) / 2;
    set_differential(bench, config_, vd);
    op = solve_dc(bench.netlist, dc_opt, op.x);
    const Real f_mid = op.voltage(bench.out) - target;
    if ((f_mid > 0) == (f_hi > 0)) {
      hi = vd;
    } else {
      lo = vd;
    }
    if (hi - lo < 1e-9) break;
  }

  OpAmpMetrics metrics;
  // Input-referred offset is the differential input required to balance the
  // output (sign convention: offset = -vd at balance).
  metrics.offset_v = -vd;

  // --- Power: VDD branch current at the balanced operating point.
  // vsource_current is the current flowing a->b inside the source, i.e. the
  // current delivered out of the + terminal is its negative.
  const Real i_vdd =
      spice::vsource_current(bench.netlist, op, bench.vdd_source_index);
  metrics.power_w = vdd * std::abs(i_vdd);

  // --- Gain and bandwidth: AC at the balanced operating point.
  const Real f_ref = 10.0;  // well below the dominant pole
  const std::vector<spice::Phasor> ac = solve_ac(bench.netlist, op, f_ref);
  const Real gain_lin = std::abs(spice::ac_voltage(ac, bench.out));
  if (!(gain_lin > 1)) {
    throw NumericalDomainError("opamp gain collapsed; check operating point",
                               "ac-analysis");
  }
  metrics.gain_db = Real{20} * std::log10(gain_lin);
  metrics.bandwidth_hz =
      spice::find_3db_bandwidth(bench.netlist, op, bench.out, f_ref, 1e9);
  return metrics;
}

OpAmpWorkload::StepResponse OpAmpWorkload::evaluate_step_response(
    std::span<const Real> dy, Real step_v) const {
  RSM_CHECK(step_v > 0 && step_v < config_.process.vdd / 2);
  const MappedVariation mv = map_variation(config_, dy);
  Bench bench = build_bench(config_, mv, /*unity_gain=*/true);

  const Real v0 = config_.input_cm - step_v / 2;
  const Real v1 = config_.input_cm + step_v / 2;
  spice::TransientOptions opt;
  opt.timestep = 0.5e-9;
  opt.stop_time = 600e-9;
  const Real t_step = 50e-9;
  const auto wave = spice::step_waveform(v0, v1, t_step, 1e-9);
  opt.update_sources = [&](Real t, spice::Netlist& nl) {
    nl.vsource(bench.vinp).dc = wave(t);
  };
  const spice::TransientResult res =
      spice::run_transient(bench.netlist, opt);

  StepResponse out;
  const std::vector<Real> wave_out = res.node_waveform(bench.out);
  out.final_value = wave_out.back();
  // Max slope after the step edge.
  for (std::size_t s = 1; s < wave_out.size(); ++s) {
    if (res.time[s] <= t_step) continue;
    const Real slope = std::abs(wave_out[s] - wave_out[s - 1]) / opt.timestep;
    out.slew_rate = std::max(out.slew_rate, slope);
  }
  // Settling: last instant the output is outside 1% of the total swing
  // around the final value.
  const Real swing = std::abs(out.final_value - wave_out.front());
  RSM_CHECK_MSG(swing > step_v / 4, "follower did not track the input step");
  const Real band = Real{0.01} * swing;
  out.settling_time = 0;
  for (std::size_t s = wave_out.size(); s-- > 0;) {
    if (res.time[s] <= t_step) break;
    if (std::abs(wave_out[s] - out.final_value) > band) {
      out.settling_time = res.time[s] - t_step;
      break;
    }
  }
  return out;
}

}  // namespace rsm::circuits
