#include "circuits/ring_oscillator.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "spice/netlist.hpp"
#include "spice/transient.hpp"

namespace rsm::circuits {

RingOscillatorWorkload::RingOscillatorWorkload(
    const RingOscillatorConfig& config)
    : config_(config) {
  RSM_CHECK_MSG(config_.num_stages >= 3 && config_.num_stages % 2 == 1,
                "ring needs an odd stage count >= 3");
  RSM_CHECK_MSG(config_.num_variables >= 3 + 2 * config_.num_stages,
                "ring variation space needs >= 3 + 2*stages variables");
  const std::vector<Real> zeros(static_cast<std::size_t>(config_.num_variables),
                                Real{0});
  nominal_ = evaluate(zeros);
}

Index RingOscillatorWorkload::stage_variable(Index stage, Index p) const {
  RSM_CHECK(stage >= 0 && stage < config_.num_stages && (p == 0 || p == 1));
  return 3 + 2 * stage + p;
}

Real RingOscillatorWorkload::evaluate(std::span<const Real> dy) const {
  RSM_CHECK(static_cast<Index>(dy.size()) == config_.num_variables);
  const Process65& proc = config_.process;
  const auto at = [&](Index i) { return dy[static_cast<std::size_t>(i)]; };

  const Real g_vth = at(0) * proc.sigma_vth_global;
  const Real g_kp = at(1) * proc.sigma_kp_global;
  const Real g_cap = at(2) * Real{0.03};

  spice::Netlist n;
  const auto vdd = n.node("vdd");
  n.add_vsource(vdd, spice::kGround, proc.vdd);

  // Ring of NMOS common-source inverters: stage i drives node i+1 (mod S).
  std::vector<spice::NodeId> nodes;
  for (Index s = 0; s < config_.num_stages; ++s) {
    std::string name("s");
    name += std::to_string(s);
    nodes.push_back(n.node(name));
  }

  for (Index s = 0; s < config_.num_stages; ++s) {
    spice::MosfetParams dev;
    dev.vt0 = proc.vt0_nmos + g_vth +
              at(stage_variable(s, 0)) * config_.sigma_stage_vth;
    dev.kp = proc.kp_nmos * (1 + g_kp +
                             at(stage_variable(s, 1)) * proc.sigma_kp_local);
    dev.lambda = proc.lambda_nmos;
    dev.w = 2e-6;
    dev.l = proc.l_min;
    const spice::NodeId in = nodes[static_cast<std::size_t>(s)];
    const spice::NodeId out =
        nodes[static_cast<std::size_t>((s + 1) % config_.num_stages)];
    n.add_mosfet(out, in, spice::kGround, spice::kGround, dev);
    n.add_resistor(vdd, out, config_.load_resistance);

    // Stage cap with its slice of the parasitic tail.
    Real cap = config_.stage_capacitance * (1 + g_cap);
    for (Index i = 3 + 2 * config_.num_stages; i < config_.num_variables; ++i) {
      if ((i - 3 - 2 * config_.num_stages) % config_.num_stages == s)
        cap += at(i) * Real{0.02e-15};
    }
    n.add_capacitor(out, spice::kGround, std::max(cap, Real{1e-16}));
  }

  // A perfectly matched ring started symmetrically settles at the
  // metastable DC point instead of oscillating; kick stage 0 with a brief
  // current pulse to break the symmetry deterministically.
  const spice::IsourceId kick = n.add_isource(spice::kGround, nodes[0], 0.0);

  spice::TransientOptions opt;
  opt.start_from_dc = false;
  const Real stage_rc = config_.load_resistance * config_.stage_capacitance;
  opt.timestep = stage_rc / 12;
  opt.stop_time = stage_rc * static_cast<Real>(config_.num_stages) * 40;
  const Real kick_end = 4 * opt.timestep;
  opt.update_sources = [&](Real t, spice::Netlist& nl) {
    nl.isource(kick).dc = (t > 0 && t <= kick_end) ? 50e-6 : 0.0;
  };
  const spice::TransientResult res = spice::run_transient(n, opt);

  // Count rising crossings of VDD/2 on stage 0 in the second half of the
  // run (first half = startup transient).
  const std::vector<Real> wave = res.node_waveform(nodes[0]);
  const Real threshold = proc.vdd / 2;
  const std::size_t start = wave.size() / 2;
  std::vector<Real> crossings;
  for (std::size_t s = std::max<std::size_t>(start, 1); s < wave.size(); ++s) {
    if (wave[s - 1] < threshold && wave[s] >= threshold) {
      // Linear interpolation of the crossing instant.
      const Real frac = (threshold - wave[s - 1]) / (wave[s] - wave[s - 1]);
      crossings.push_back(res.time[s - 1] +
                          frac * (res.time[s] - res.time[s - 1]));
    }
  }
  RSM_CHECK_MSG(crossings.size() >= 3,
                "ring failed to oscillate (crossings="
                    << crossings.size() << ")");
  // Mean period over the observed cycles.
  const Real period = (crossings.back() - crossings.front()) /
                      static_cast<Real>(crossings.size() - 1);
  return Real{1} / period;
}

}  // namespace rsm::circuits
