// Process-corner helpers: classic named corners as points in the
// independent-variation space used by the workloads.
//
// The global variables of every workload in this library sit at the front
// of dY (index 0 = NMOS Vth, 1 = PMOS Vth / strength, 2.. = others per
// workload). A "corner" pins those globals at +/- k sigma with local
// mismatch at zero — the traditional SS/FF/SF/FS/TT five-corner set that
// response-surface models replaced with statistical analysis. Provided so
// examples and tests can relate model predictions back to corner lore.
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace rsm::circuits {

enum class Corner {
  kTypical,     // TT: all globals at 0
  kSlowSlow,    // SS: both device types slow (+Vth, -strength)
  kFastFast,    // FF: both fast
  kSlowFast,    // SF: slow NMOS, fast PMOS
  kFastSlow,    // FS: fast NMOS, slow PMOS
};

[[nodiscard]] const char* corner_name(Corner corner);

/// All five corners in conventional order.
inline constexpr Corner kAllCorners[] = {
    Corner::kTypical, Corner::kSlowSlow, Corner::kFastFast,
    Corner::kSlowFast, Corner::kFastSlow};

/// Builds the dY vector for a corner in the OpAmp/ring layout where
/// dy[0] = global NMOS dVth, dy[1] = global PMOS dVth, dy[2]/dy[3] =
/// global NMOS/PMOS strength (KP). `sigma` is the corner distance
/// (typically 3). Remaining variables are zero.
[[nodiscard]] std::vector<Real> opamp_corner(Corner corner, Index num_variables,
                                             Real sigma = 3.0);

/// SRAM layout variant: dy[0] = global Vth (one device type dominates the
/// read path), dy[1] = global strength. SS/FF map to +/-; SF/FS fall back
/// to Vth-only and strength-only skews respectively.
[[nodiscard]] std::vector<Real> sram_corner(Corner corner, Index num_variables,
                                            Real sigma = 3.0);

}  // namespace rsm::circuits
