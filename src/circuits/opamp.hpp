// Two-stage Miller-compensated operational amplifier workload (paper Fig. 3).
//
// Eight transistors plus an on-chip bias current source:
//   M1/M2  NMOS input differential pair
//   M3/M4  PMOS current-mirror load (M3 diode-connected)
//   M5     NMOS tail current source (mirrored from M8)
//   M6     PMOS common-source second stage
//   M7     NMOS current-sink load of the second stage (mirrored from M8)
//   M8     NMOS diode-connected bias reference carrying Ibias
// with Miller compensation Cc + nulling resistor Rz and load CL.
//
// Four performance metrics are extracted per variation sample, exactly the
// paper's set: gain [dB], -3 dB bandwidth [Hz], power [W], and input-referred
// offset [V]. Offset is measured the way a testbench would: a bisection servo
// finds the differential input that brings the output to VDD/2; gain and
// bandwidth are then measured by AC analysis at that balanced operating
// point, and power from the VDD branch current.
//
// The variation space has `num_variables` independent standard-normal
// factors (default 630, the paper's post-PCA count), mapped as:
//   [0..5]    global inter-die: dVth_n, dVth_p, dKP_n, dKP_p, dL, dC_par
//   [6..37]   4 local mismatch factors per device x 8 devices
//             (dVth, dKP, dW, dL; Pelgrom-scaled)
//   [38..N)   layout parasitic factors, each perturbing one passive
//             (Cc / CL / Rz / node capacitances) by a ~0.2% sigma slice.
// The long parasitic tail gives each metric near-zero (DC metrics: exactly
// zero) sensitivity to most variables — the sparse structure the paper's
// algorithms exploit.
#pragma once

#include <span>
#include <string>

#include "circuits/process.hpp"
#include "spice/dc.hpp"
#include "util/common.hpp"

namespace rsm::circuits {

enum class OpAmpMetric { kGain, kBandwidth, kPower, kOffset };

inline constexpr OpAmpMetric kAllOpAmpMetrics[] = {
    OpAmpMetric::kGain, OpAmpMetric::kBandwidth, OpAmpMetric::kPower,
    OpAmpMetric::kOffset};

[[nodiscard]] const char* opamp_metric_name(OpAmpMetric metric);

struct OpAmpMetrics {
  Real gain_db = 0;
  Real bandwidth_hz = 0;
  Real power_w = 0;
  Real offset_v = 0;

  [[nodiscard]] Real get(OpAmpMetric metric) const;
};

struct OpAmpConfig {
  Process65 process;

  /// Total independent variation variables (>= 38; default matches the
  /// paper's 630 post-PCA factors).
  Index num_variables = 630;

  Real ibias = 20e-6;  // bias reference current [A]
  Real cc = 2e-12;     // Miller capacitance [F]
  Real cl = 4e-12;     // load capacitance [F]
  Real input_cm = 0.6; // input common-mode level [V]
};

class OpAmpWorkload {
 public:
  explicit OpAmpWorkload(const OpAmpConfig& config = {});

  [[nodiscard]] Index num_variables() const { return config_.num_variables; }
  [[nodiscard]] const OpAmpConfig& config() const { return config_; }

  /// Simulates one variation sample (dy.size() == num_variables()):
  /// DC operating point + offset servo + AC sweep. Throws a structured
  /// taxonomy error (util/errors.hpp) on a sample where DC fails to
  /// converge or the servo bracket collapses (does not happen at the
  /// default sigma levels).
  [[nodiscard]] OpAmpMetrics evaluate(std::span<const Real> dy) const;

  /// Same, under caller-supplied DC solver options — the campaign layer's
  /// escalation hook: retries pass spice::escalated(base, attempt).
  [[nodiscard]] OpAmpMetrics evaluate(std::span<const Real> dy,
                                      const spice::DcOptions& dc_options)
      const;

  /// Nominal metrics (all-zeros sample), cached at construction.
  [[nodiscard]] const OpAmpMetrics& nominal() const { return nominal_; }

  /// Large-signal step response in unity-gain feedback (M2's gate tied to
  /// the output): applies a +/- `step_v` input step around the common mode
  /// and runs a transient.
  struct StepResponse {
    Real slew_rate = 0;      // max |dVout/dt| during the rising step [V/s]
    Real settling_time = 0;  // to within 1% of the final value [s]
    Real final_value = 0;    // settled output [V]
  };

  /// Transient characterization of one variation sample. Slew rate is
  /// classically I_tail / Cc for this topology — a cross-check between the
  /// variation mapping and the transient engine.
  [[nodiscard]] StepResponse evaluate_step_response(std::span<const Real> dy,
                                                    Real step_v = 0.2) const;

 private:
  OpAmpConfig config_;
  OpAmpMetrics nominal_;
};

}  // namespace rsm::circuits
