#include "circuits/corners.hpp"

namespace rsm::circuits {

const char* corner_name(Corner corner) {
  switch (corner) {
    case Corner::kTypical: return "TT";
    case Corner::kSlowSlow: return "SS";
    case Corner::kFastFast: return "FF";
    case Corner::kSlowFast: return "SF";
    case Corner::kFastSlow: return "FS";
  }
  return "?";
}

std::vector<Real> opamp_corner(Corner corner, Index num_variables,
                               Real sigma) {
  RSM_CHECK(num_variables >= 4 && sigma > 0);
  std::vector<Real> dy(static_cast<std::size_t>(num_variables), Real{0});
  // Slow device: higher Vth, lower strength. dy[0]/dy[1] = n/p Vth;
  // dy[2]/dy[3] = n/p KP.
  const auto set = [&](Real n_slow, Real p_slow) {
    dy[0] = n_slow * sigma;
    dy[1] = p_slow * sigma;
    dy[2] = -n_slow * sigma;
    dy[3] = -p_slow * sigma;
  };
  switch (corner) {
    case Corner::kTypical: break;
    case Corner::kSlowSlow: set(1, 1); break;
    case Corner::kFastFast: set(-1, -1); break;
    case Corner::kSlowFast: set(1, -1); break;
    case Corner::kFastSlow: set(-1, 1); break;
  }
  return dy;
}

std::vector<Real> sram_corner(Corner corner, Index num_variables, Real sigma) {
  RSM_CHECK(num_variables >= 2 && sigma > 0);
  std::vector<Real> dy(static_cast<std::size_t>(num_variables), Real{0});
  switch (corner) {
    case Corner::kTypical: break;
    case Corner::kSlowSlow:
      dy[0] = sigma;    // higher Vth
      dy[1] = -sigma;   // weaker devices
      break;
    case Corner::kFastFast:
      dy[0] = -sigma;
      dy[1] = sigma;
      break;
    case Corner::kSlowFast:
      dy[0] = sigma;  // Vth-only skew
      break;
    case Corner::kFastSlow:
      dy[1] = -sigma;  // strength-only skew
      break;
  }
  return dy;
}

}  // namespace rsm::circuits
