// 65 nm-flavoured process parameter set.
//
// Nominal level-1 parameters and variation sigmas chosen to land circuit
// performances and variability in the ranges the paper reports for its
// commercial 65 nm examples (the exact PDK is proprietary; see DESIGN.md's
// substitution table). Local mismatch follows the Pelgrom scaling
// sigma(dVth) = A_vt / sqrt(W * L).
#pragma once

#include "spice/mosfet.hpp"
#include "util/common.hpp"

namespace rsm::circuits {

struct Process65 {
  // Nominal device parameters.
  Real vdd = 1.2;           // supply [V]
  Real vt0_nmos = 0.40;     // [V]
  Real vt0_pmos = 0.45;     // magnitude [V]
  Real kp_nmos = 200e-6;    // mu*Cox [A/V^2]
  Real kp_pmos = 80e-6;     // [A/V^2]
  Real lambda_nmos = 0.10;  // [1/V]
  Real lambda_pmos = 0.15;  // [1/V]
  Real l_min = 60e-9;       // minimum drawn length [m]

  // Inter-die (global) variation sigmas.
  Real sigma_vth_global = 0.010;  // [V]
  Real sigma_kp_global = 0.03;    // relative
  Real sigma_len_global = 0.02;   // relative

  // Intra-die (local mismatch) Pelgrom coefficient.
  Real a_vt = 2.0e-9;        // [V * m]: sigma(dVth) = a_vt / sqrt(W L)
  Real sigma_kp_local = 0.02;   // relative, per device
  Real sigma_w_local = 0.01;    // relative, per device
  Real sigma_len_local = 0.015; // relative, per device

  // Layout parasitic variation (per parasitic variable, relative).
  Real sigma_parasitic = 0.002;

  /// Pelgrom mismatch sigma for a device of drawn W, L.
  [[nodiscard]] Real vth_mismatch_sigma(Real w, Real l) const;
};

/// Per-device variation deltas (already scaled by sigmas; add to nominals).
struct DeviceVariation {
  Real d_vth = 0;    // absolute [V]
  Real d_kp_rel = 0; // relative
  Real d_w_rel = 0;  // relative
  Real d_l_rel = 0;  // relative
};

/// Applies a variation to nominal parameters.
[[nodiscard]] spice::MosfetParams apply_variation(
    const spice::MosfetParams& nominal, const DeviceVariation& variation);

}  // namespace rsm::circuits
