#include "io/progress_sink.hpp"

#include <utility>

#include "util/errors.hpp"
#include "util/log.hpp"

namespace rsm::io {

ProgressSink::ProgressSink(std::string path) {
  try {
    file_ = std::make_unique<DurableFile>(std::move(path),
                                          DurableFile::Mode::kAppend);
  } catch (const IoError& e) {
    RSM_WARN("progress sink: cannot open heartbeat file: " << e.what());
    failed_ = true;
  }
}

void ProgressSink::write_line(const std::string& line) noexcept {
  if (failed_ || file_ == nullptr) return;
  try {
    file_->write(line);
    file_->write("\n");
    file_->sync();
    ++lines_;
  } catch (const IoError& e) {
    RSM_WARN("progress sink: heartbeat write failed, disabling: "
             << e.what());
    failed_ = true;
    file_.reset();
  }
}

std::function<void(const std::string&)> ProgressSink::as_line_sink() {
  return [this](const std::string& line) { write_line(line); };
}

}  // namespace rsm::io
