#include "io/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/errors.hpp"
#include "util/log.hpp"

namespace rsm::io {
namespace {

[[noreturn]] void throw_io(const std::string& what, const std::string& path,
                           int err = 0) {
  std::ostringstream os;
  os << what << " '" << path << '\'';
  if (err != 0) os << ": " << std::strerror(err);
  throw IoError(os.str(), "fs");
}

/// Writes all of [data, data+size) to fd, looping over partial writes.
void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io("write failed on", path, errno);
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Applies the injected fault for this op, if any: persists the fault
/// mode's prefix, then throws IoError. No-op for clean ops.
void apply_injected_fault(int fd, std::string_view data, std::uint64_t op,
                          const FsFaultInjector* faults,
                          const std::string& path) {
  if (faults == nullptr || !faults->enabled()) return;
  const FsFaultKind kind = faults->kind(op);
  if (kind == FsFaultKind::kNone) return;
  obs::metrics().counter("io.fs_faults.injected").increment();
  std::size_t persisted = 0;
  switch (kind) {
    case FsFaultKind::kTornWrite: persisted = data.size() / 2; break;
    case FsFaultKind::kShortWrite:
      persisted = data.empty() ? 0 : data.size() - 1;
      break;
    case FsFaultKind::kNoSpace: persisted = 0; break;
    case FsFaultKind::kNone: return;
  }
  write_all(fd, data.data(), persisted, path);
  std::ostringstream os;
  os << "injected " << fs_fault_kind_name(kind) << " on '" << path << "' ("
     << persisted << '/' << data.size() << " bytes persisted, op " << op
     << ')';
  throw IoError(os.str(), "fault-injection");
}

}  // namespace

DurableFile::DurableFile(std::string path, Mode mode,
                         const FsFaultInjector* faults)
    : path_(std::move(path)), faults_(faults) {
  const int flags = O_WRONLY | O_CREAT | O_CLOEXEC |
                    (mode == Mode::kTruncate ? O_TRUNC : O_APPEND);
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) throw_io("cannot open", path_, errno);
}

DurableFile::~DurableFile() {
  if (fd_ >= 0) ::close(fd_);
}

void DurableFile::write(std::string_view data) {
  RSM_CHECK_MSG(fd_ >= 0, "write on closed DurableFile");
  const std::uint64_t op = write_ops_++;
  apply_injected_fault(fd_, data, op, faults_, path_);
  write_all(fd_, data.data(), data.size(), path_);
}

void DurableFile::sync() {
  RSM_CHECK_MSG(fd_ >= 0, "sync on closed DurableFile");
  if (::fsync(fd_) != 0) throw_io("fsync failed on", path_, errno);
}

void DurableFile::close() {
  if (fd_ < 0) return;
  const int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) throw_io("close failed on", path_, errno);
}

void atomic_write_file(const std::string& path, std::string_view data,
                       const FsFaultInjector* faults) {
  const std::string temp = path + ".tmp";
  try {
    DurableFile file(temp, DurableFile::Mode::kTruncate, faults);
    file.write(data);
    file.sync();
    file.close();
  } catch (...) {
    ::unlink(temp.c_str());
    throw;
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(temp.c_str());
    throw_io("rename failed onto", path, err);
  }
  // Make the rename itself durable: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    if (::fsync(dfd) != 0) {
      RSM_WARN("directory fsync failed on '" << dir << "': "
                                             << std::strerror(errno));
    }
    ::close(dfd);
  }
  obs::metrics().counter("io.atomic_writes").increment();
}

std::string read_file_bytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_io("cannot open", path, errno);
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw_io("read failed on", path, err);
    }
    if (n == 0) break;
    out.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace rsm::io
