// Durable JSONL line sink for progress heartbeats.
//
// The heartbeat *formatter* lives in obs/progress.hpp (obs cannot link io);
// this is the file end of the pipe: append-open the path, write each line
// plus '\n', fsync — so `tail -f progress.jsonl` on another terminal (or a
// dashboard scraping it) always sees complete lines, and the last heartbeat
// survives a SIGKILL.
//
// A sink must never take down the campaign it narrates: every I/O failure
// is logged once, the sink disables itself, and later lines are dropped
// silently (`failed()` reports it for the final accounting).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "io/atomic_file.hpp"

namespace rsm::io {

class ProgressSink {
 public:
  /// Append-opens `path`. Open failures do not throw: the sink starts in
  /// the failed state and drops everything.
  explicit ProgressSink(std::string path);

  /// Writes `line` + '\n' and fsyncs. Never throws; first failure flips
  /// the sink to failed and is logged.
  void write_line(const std::string& line) noexcept;

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::int64_t lines_written() const { return lines_; }

  /// Adapter for obs::ProgressReporter's LineSink. The returned function
  /// references this sink, which must outlive it.
  [[nodiscard]] std::function<void(const std::string&)> as_line_sink();

 private:
  std::unique_ptr<DurableFile> file_;
  bool failed_ = false;
  std::int64_t lines_ = 0;
};

}  // namespace rsm::io
