#include "io/checkpoint.hpp"

#include <cstring>
#include <sstream>

#include "io/atomic_file.hpp"
#include "io/crc32.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace rsm::io {
namespace {

// ---- little-endian wire helpers -------------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_real(std::string& out, Real v) {
  static_assert(sizeof(Real) == 8, "checkpoint format assumes 64-bit Real");
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked cursor over a loaded byte buffer.
struct Reader {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const { return size - pos; }

  std::uint8_t u8() { return data[pos++]; }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
    return v;
  }

  Real real() {
    const std::uint64_t bits = u64();
    Real v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  throw IoError("checkpoint '" + path + "' rejected: " + why, "checkpoint");
}

// header = magic(8) + version(4) + matrix_hash(8) + config_hash(8)
//          + total_rows(8) + crc(4)
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8 + 8 + 4;

// record framing = type(1) + payload_len(4) + payload + crc(4)
constexpr std::size_t kRecordOverhead = 1 + 4 + 4;

/// Largest legal payload: a quarantine record with a maximal reason. Caps
/// what a corrupt length field can make the loader trust.
constexpr std::size_t kMaxPayload = 8 + 4 + 4 + 4 + kMaxReasonLength;

std::string bounded_reason(const std::string& reason) {
  if (reason.size() <= kMaxReasonLength) return reason;
  return reason.substr(0, kMaxReasonLength);
}

}  // namespace

std::string serialize_header(const CheckpointHeader& header) {
  std::string out;
  out.reserve(kHeaderSize);
  out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  put_u32(out, header.version);
  put_u64(out, header.sample_matrix_hash);
  put_u64(out, header.config_hash);
  put_u64(out, header.total_rows);
  put_u32(out, crc32(out));
  return out;
}

std::string serialize_record(const CheckpointRecord& record) {
  std::string payload;
  put_u64(payload, static_cast<std::uint64_t>(record.sample));
  if (record.type == CheckpointRecord::Type::kSample) {
    put_real(payload, record.value);
    put_u32(payload, static_cast<std::uint32_t>(record.attempts));
  } else {
    const std::string reason = bounded_reason(record.reason);
    put_u32(payload, static_cast<std::uint32_t>(record.code));
    put_u32(payload, static_cast<std::uint32_t>(record.attempts));
    put_u32(payload, static_cast<std::uint32_t>(reason.size()));
    payload.append(reason);
  }
  std::string out;
  out.reserve(kRecordOverhead + payload.size());
  put_u8(out, static_cast<std::uint8_t>(record.type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  put_u32(out, crc32(out));
  return out;
}

CheckpointData load_checkpoint(const std::string& path, LoadMode mode) {
  const std::string bytes = read_file_bytes(path);
  Reader in{reinterpret_cast<const unsigned char*>(bytes.data()),
            bytes.size()};

  if (in.remaining() < kHeaderSize) reject(path, "truncated header");
  if (std::memcmp(bytes.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    reject(path, "bad magic (not a checkpoint file)");
  }
  const std::uint32_t header_crc = crc32(bytes.data(), kHeaderSize - 4);
  CheckpointData data;
  in.pos = sizeof(kCheckpointMagic);
  data.header.version = in.u32();
  data.header.sample_matrix_hash = in.u64();
  data.header.config_hash = in.u64();
  data.header.total_rows = in.u64();
  if (in.u32() != header_crc) reject(path, "header CRC mismatch");
  if (data.header.version != kCheckpointVersion) {
    std::ostringstream os;
    os << "unsupported version " << data.header.version << " (expected "
       << kCheckpointVersion << ')';
    reject(path, os.str());
  }

  while (in.remaining() > 0) {
    // A record shorter than its framing, or than its declared payload, is a
    // torn tail: recoverable only in kRecoverTail mode and only because
    // nothing can follow it.
    bool torn = in.remaining() < kRecordOverhead;
    std::size_t payload_len = 0;
    if (!torn) {
      const std::size_t record_start = in.pos;
      in.pos = record_start + 1;  // skip type for the length peek
      payload_len = in.u32();
      in.pos = record_start;
      torn = payload_len > kMaxPayload ||
             in.remaining() < kRecordOverhead + payload_len;
      // An oversized length field on a *complete* remainder is corruption,
      // not truncation; but we cannot distinguish the two without trusting
      // the corrupt length, so treat > kMaxPayload as torn only at EOF
      // proximity — i.e. when the remainder could not hold a legal record
      // anyway — and corruption otherwise.
      if (payload_len > kMaxPayload &&
          in.remaining() >= kRecordOverhead + kMaxPayload) {
        reject(path, "record payload length field corrupt");
      }
    }
    if (torn) {
      if (mode == LoadMode::kStrict) {
        reject(path, "truncated trailing record (torn write?)");
      }
      data.truncated_tail = true;
      RSM_WARN("checkpoint '" << path << "': dropping " << in.remaining()
                              << "-byte torn tail after "
                              << data.records.size() << " valid records");
      break;
    }

    const std::size_t record_start = in.pos;
    const std::uint32_t expected_crc =
        crc32(bytes.data() + record_start, 1 + 4 + payload_len);
    const std::uint8_t type = in.u8();
    (void)in.u32();  // payload_len, already read

    CheckpointRecord record;
    const std::size_t payload_end = in.pos + payload_len;
    if (type == static_cast<std::uint8_t>(CheckpointRecord::Type::kSample)) {
      if (payload_len != 8 + 8 + 4) reject(path, "sample record malformed");
      record.type = CheckpointRecord::Type::kSample;
      record.sample = static_cast<Index>(in.u64());
      record.value = in.real();
      record.attempts = static_cast<int>(in.u32());
    } else if (type ==
               static_cast<std::uint8_t>(CheckpointRecord::Type::kQuarantine)) {
      if (payload_len < 8 + 4 + 4 + 4) {
        reject(path, "quarantine record malformed");
      }
      record.type = CheckpointRecord::Type::kQuarantine;
      record.sample = static_cast<Index>(in.u64());
      const std::uint32_t code = in.u32();
      if (code >= static_cast<std::uint32_t>(kNumErrorCodes)) {
        reject(path, "quarantine record carries an unknown error code");
      }
      record.code = static_cast<ErrorCode>(code);
      record.attempts = static_cast<int>(in.u32());
      const std::uint32_t reason_len = in.u32();
      if (reason_len > kMaxReasonLength ||
          in.pos + reason_len != payload_end) {
        reject(path, "quarantine reason length inconsistent");
      }
      record.reason.assign(bytes.data() + in.pos, reason_len);
      in.pos += reason_len;
    } else {
      reject(path, "unknown record type");
    }
    if (in.pos != payload_end) reject(path, "record payload size mismatch");
    if (in.u32() != expected_crc) {
      reject(path, "record CRC mismatch (bit flip?)");
    }
    data.records.push_back(std::move(record));
  }
  return data;
}

CheckpointWriter::CheckpointWriter(const CheckpointOptions& options,
                                   CheckpointHeader header,
                                   std::vector<CheckpointRecord> existing)
    : options_(options), header_(header), mirror_(std::move(existing)) {
  RSM_CHECK_MSG(options_.enabled(), "CheckpointOptions.path must be set");
  RSM_CHECK_MSG(options_.flush_every >= 1, "flush_every must be >= 1");
  rewrite_and_reopen();
  // The base rewrite is not a recovery; do not count it.
  rewrites_ = 0;
}

CheckpointWriter::~CheckpointWriter() = default;

void CheckpointWriter::rewrite_and_reopen() {
  std::string full = serialize_header(header_);
  for (const CheckpointRecord& record : mirror_)
    full.append(serialize_record(record));
  file_.reset();
  atomic_write_file(options_.path, full, &options_.fs_faults);
  file_ = std::make_unique<DurableFile>(
      options_.path, DurableFile::Mode::kAppend, &options_.fs_faults);
  unsynced_ = 0;
  ++rewrites_;
}

void CheckpointWriter::append(CheckpointRecord record) {
  record.reason = bounded_reason(record.reason);
  mirror_.push_back(record);
  const std::string wire = serialize_record(record);
  try {
    // A previous failed recovery leaves no open file; retry the rewrite
    // (which now includes this record) instead of dereferencing nothing.
    if (file_ == nullptr) throw IoError("checkpoint file not open", "fs");
    file_->write(wire);
  } catch (const IoError& e) {
    // The file now ends in a torn/short record (or the write vanished).
    // Recover by rewriting the whole log atomically from the mirror — the
    // readers' contract (old-or-new, never a prefix) makes this safe even
    // if we crash mid-recovery. One attempt; a second failure propagates.
    RSM_WARN("checkpoint append faulted (" << e.what()
                                           << "); rewriting atomically");
    rewrite_and_reopen();
  }
  ++records_appended_;
  obs::metrics().counter("io.checkpoint.appends").increment();
  if (++unsynced_ >= options_.flush_every) flush();
}

void CheckpointWriter::flush() {
  if (file_ == nullptr) return;
  file_->sync();
  unsynced_ = 0;
  ++flushes_;
  obs::metrics().counter("io.checkpoint.flushes").increment();
}

std::uint64_t matrix_fingerprint(const Matrix& m) {
  const Index dims[2] = {m.rows(), m.cols()};
  std::uint64_t hash = fnv1a64(dims, sizeof(dims));
  return fnv1a64(m.data(),
                 static_cast<std::size_t>(m.size()) * sizeof(Real), hash);
}

std::uint64_t fault_plan_fingerprint(const FaultInjector& injector,
                                     int max_attempts) {
  const FaultInjector::Options& o = injector.options();
  std::uint64_t hash = fnv1a64(&max_attempts, sizeof(max_attempts));
  hash = fnv1a64(&o.fault_rate, sizeof(o.fault_rate), hash);
  hash = fnv1a64(&o.persistent_fraction, sizeof(o.persistent_fraction), hash);
  hash = fnv1a64(&o.seed, sizeof(o.seed), hash);
  return hash;
}

}  // namespace rsm::io
