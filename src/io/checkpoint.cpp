#include "io/checkpoint.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string_view>
#include <utility>

#include "io/atomic_file.hpp"
#include "io/crc32.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace rsm::io {
namespace {

// ---- little-endian wire helpers -------------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_real(std::string& out, Real v) {
  static_assert(sizeof(Real) == 8, "checkpoint format assumes 64-bit Real");
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked cursor over a loaded byte buffer.
struct Reader {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const { return size - pos; }

  std::uint8_t u8() { return data[pos++]; }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
    return v;
  }

  Real real() {
    const std::uint64_t bits = u64();
    Real v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  throw IoError("checkpoint '" + path + "' rejected: " + why, "checkpoint");
}

// header = magic(8) + version(4) + matrix_hash(8) + config_hash(8)
//          + total_rows(8) + crc(4)
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8 + 8 + 4;

// record framing = type(1) + payload_len(4) + payload + crc(4)
constexpr std::size_t kRecordOverhead = 1 + 4 + 4;

/// Largest legal payload: a quarantine record with a maximal failed-code
/// list and a maximal reason. Caps what a corrupt length field can make the
/// loader trust.
constexpr std::size_t kMaxPayload =
    8 + 4 + 4 + 4 + 4 * kMaxFailedAttemptCodes + 4 + kMaxReasonLength;

std::string bounded_reason(const std::string& reason) {
  if (reason.size() <= kMaxReasonLength) return reason;
  return reason.substr(0, kMaxReasonLength);
}

}  // namespace

std::string serialize_header(const CheckpointHeader& header) {
  std::string out;
  out.reserve(kHeaderSize);
  out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  put_u32(out, header.version);
  put_u64(out, header.sample_matrix_hash);
  put_u64(out, header.config_hash);
  put_u64(out, header.total_rows);
  put_u32(out, crc32(out));
  return out;
}

std::string serialize_record(const CheckpointRecord& record) {
  std::string payload;
  put_u64(payload, static_cast<std::uint64_t>(record.sample));
  const std::size_t n_codes =
      std::min(record.failed_codes.size(), kMaxFailedAttemptCodes);
  if (record.type == CheckpointRecord::Type::kSample) {
    put_real(payload, record.value);
    put_u32(payload, static_cast<std::uint32_t>(record.attempts));
    put_u32(payload, static_cast<std::uint32_t>(n_codes));
    for (std::size_t i = 0; i < n_codes; ++i)
      put_u32(payload, static_cast<std::uint32_t>(record.failed_codes[i]));
  } else {
    const std::string reason = bounded_reason(record.reason);
    put_u32(payload, static_cast<std::uint32_t>(record.code));
    put_u32(payload, static_cast<std::uint32_t>(record.attempts));
    put_u32(payload, static_cast<std::uint32_t>(n_codes));
    for (std::size_t i = 0; i < n_codes; ++i)
      put_u32(payload, static_cast<std::uint32_t>(record.failed_codes[i]));
    put_u32(payload, static_cast<std::uint32_t>(reason.size()));
    payload.append(reason);
  }
  std::string out;
  out.reserve(kRecordOverhead + payload.size());
  put_u8(out, static_cast<std::uint8_t>(record.type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  put_u32(out, crc32(out));
  return out;
}

CheckpointData load_checkpoint(const std::string& path, LoadMode mode) {
  const std::string bytes = read_file_bytes(path);
  Reader in{reinterpret_cast<const unsigned char*>(bytes.data()),
            bytes.size()};

  if (in.remaining() < kHeaderSize) reject(path, "truncated header");
  if (std::memcmp(bytes.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    reject(path, "bad magic (not a checkpoint file)");
  }
  const std::uint32_t header_crc = crc32(bytes.data(), kHeaderSize - 4);
  CheckpointData data;
  in.pos = sizeof(kCheckpointMagic);
  data.header.version = in.u32();
  data.header.sample_matrix_hash = in.u64();
  data.header.config_hash = in.u64();
  data.header.total_rows = in.u64();
  if (in.u32() != header_crc) reject(path, "header CRC mismatch");
  if (data.header.version != kCheckpointVersion) {
    std::ostringstream os;
    os << "unsupported version " << data.header.version << " (expected "
       << kCheckpointVersion << ')';
    reject(path, os.str());
  }

  while (in.remaining() > 0) {
    // A record shorter than its framing, or than its declared payload, is a
    // torn tail: recoverable in kRecoverTail/kSalvage mode and only because
    // nothing can follow it.
    bool torn = in.remaining() < kRecordOverhead;
    bool corrupt_length = false;
    std::size_t payload_len = 0;
    if (!torn) {
      const std::size_t record_start = in.pos;
      in.pos = record_start + 1;  // skip type for the length peek
      payload_len = in.u32();
      in.pos = record_start;
      torn = payload_len > kMaxPayload ||
             in.remaining() < kRecordOverhead + payload_len;
      // An oversized length field on a *complete* remainder is corruption,
      // not truncation; but we cannot distinguish the two without trusting
      // the corrupt length, so treat > kMaxPayload as torn only at EOF
      // proximity — i.e. when the remainder could not hold a legal record
      // anyway — and corruption otherwise.
      corrupt_length = payload_len > kMaxPayload &&
                       in.remaining() >= kRecordOverhead + kMaxPayload;
    }
    if (torn && !corrupt_length) {
      if (mode == LoadMode::kStrict) {
        reject(path, "truncated trailing record (torn write?)");
      }
      data.truncated_tail = true;
      RSM_WARN("checkpoint '" << path << "': dropping " << in.remaining()
                              << "-byte torn tail after "
                              << data.records.size() << " valid records");
      break;
    }

    // Everything from here on is structural damage to a *complete* record:
    // fatal in kStrict/kRecoverTail, prefix-salvaged in kSalvage (the
    // dropped rows are simply re-evaluated; corrupt data is never trusted).
    try {
      if (corrupt_length) reject(path, "record payload length field corrupt");

      const std::size_t record_start = in.pos;
      const std::uint32_t expected_crc =
          crc32(bytes.data() + record_start, 1 + 4 + payload_len);
      const std::uint8_t type = in.u8();
      (void)in.u32();  // payload_len, already read

      CheckpointRecord record;
      const std::size_t payload_end = in.pos + payload_len;
      if (type == static_cast<std::uint8_t>(CheckpointRecord::Type::kSample)) {
        if (payload_len < 8 + 8 + 4 + 4) {
          reject(path, "sample record malformed");
        }
        record.type = CheckpointRecord::Type::kSample;
        record.sample = static_cast<Index>(in.u64());
        record.value = in.real();
        record.attempts = static_cast<int>(in.u32());
        const std::uint32_t n_codes = in.u32();
        if (n_codes > kMaxFailedAttemptCodes ||
            payload_len != 8 + 8 + 4 + 4 + 4 * std::size_t{n_codes}) {
          reject(path, "sample record malformed");
        }
        record.failed_codes.reserve(n_codes);
        for (std::uint32_t i = 0; i < n_codes; ++i) {
          const std::uint32_t code = in.u32();
          if (code >= static_cast<std::uint32_t>(kNumErrorCodes)) {
            reject(path, "record carries an unknown error code");
          }
          record.failed_codes.push_back(static_cast<ErrorCode>(code));
        }
      } else if (type == static_cast<std::uint8_t>(
                             CheckpointRecord::Type::kQuarantine)) {
        if (payload_len < 8 + 4 + 4 + 4 + 4) {
          reject(path, "quarantine record malformed");
        }
        record.type = CheckpointRecord::Type::kQuarantine;
        record.sample = static_cast<Index>(in.u64());
        const std::uint32_t code = in.u32();
        if (code >= static_cast<std::uint32_t>(kNumErrorCodes)) {
          reject(path, "quarantine record carries an unknown error code");
        }
        record.code = static_cast<ErrorCode>(code);
        record.attempts = static_cast<int>(in.u32());
        const std::uint32_t n_codes = in.u32();
        if (n_codes > kMaxFailedAttemptCodes ||
            in.pos + 4 * std::size_t{n_codes} + 4 > payload_end) {
          reject(path, "quarantine record malformed");
        }
        record.failed_codes.reserve(n_codes);
        for (std::uint32_t i = 0; i < n_codes; ++i) {
          const std::uint32_t failed = in.u32();
          if (failed >= static_cast<std::uint32_t>(kNumErrorCodes)) {
            reject(path, "record carries an unknown error code");
          }
          record.failed_codes.push_back(static_cast<ErrorCode>(failed));
        }
        const std::uint32_t reason_len = in.u32();
        if (reason_len > kMaxReasonLength ||
            in.pos + reason_len != payload_end) {
          reject(path, "quarantine reason length inconsistent");
        }
        record.reason.assign(bytes.data() + in.pos, reason_len);
        in.pos += reason_len;
      } else {
        reject(path, "unknown record type");
      }
      if (in.pos != payload_end) reject(path, "record payload size mismatch");
      if (in.u32() != expected_crc) {
        reject(path, "record CRC mismatch (bit flip?)");
      }
      data.records.push_back(std::move(record));
    } catch (const IoError& e) {
      if (mode != LoadMode::kSalvage) throw;
      data.salvaged_corruption = true;
      RSM_WARN("checkpoint '" << path << "': salvaging "
                              << data.records.size()
                              << " records before mid-stream corruption ("
                              << e.what() << ')');
      break;
    }
  }
  return data;
}

std::string shard_path(const std::string& base, int shard) {
  RSM_CHECK_MSG(shard >= 0, "shard index must be >= 0");
  return base + ".shard" + std::to_string(shard) + ".log";
}

std::vector<std::string> find_shard_paths(const std::string& base) {
  namespace fs = std::filesystem;
  const fs::path base_path(base);
  fs::path dir = base_path.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = base_path.filename().string() + ".shard";
  constexpr std::string_view suffix = ".log";

  std::vector<std::pair<int, std::string>> found;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const char* digits = name.data() + prefix.size();
    const char* digits_end = name.data() + name.size() - suffix.size();
    int index = -1;
    const auto [ptr, parse_ec] = std::from_chars(digits, digits_end, index);
    if (parse_ec != std::errc{} || ptr != digits_end || index < 0) continue;
    found.emplace_back(index, (base_path.parent_path() /
                               entry.path().filename()).string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [index, path] : found) paths.push_back(std::move(path));
  return paths;
}

int remove_shard_files(const std::string& base) {
  namespace fs = std::filesystem;
  int removed = 0;
  for (const std::string& path : find_shard_paths(base)) {
    std::error_code ec;
    if (fs::remove(path, ec) && !ec) {
      ++removed;
    } else {
      RSM_WARN("checkpoint: could not remove shard '"
               << path << "' (" << ec.message()
               << "); a later merge will deduplicate it");
    }
  }
  return removed;
}

CheckpointData load_sharded_checkpoint(const std::string& base,
                                       ShardMergeOutcome* outcome) {
  ShardMergeOutcome merge;
  const std::vector<std::string> shards = find_shard_paths(base);
  merge.shards_found = static_cast<int>(shards.size());

  // The base log is written atomically (old-or-new, never a prefix), so
  // anything beyond the recoverable torn tail of an interrupted *serial*
  // append stream means the storage broke its contract: refuse loudly.
  CheckpointData merged;
  bool have_header = false;
  if (file_exists(base)) {
    CheckpointData base_data = load_checkpoint(base, LoadMode::kRecoverTail);
    merged.header = base_data.header;
    merged.truncated_tail = base_data.truncated_tail;
    if (base_data.truncated_tail) ++merge.torn_tails;
    merged.records = std::move(base_data.records);
    merge.base_loaded = true;
    have_header = true;
  } else if (shards.empty()) {
    throw IoError("checkpoint '" + base +
                      "' missing: no base log and no shards to merge",
                  "checkpoint");
  }

  std::map<Index, CheckpointRecord> by_row;
  for (CheckpointRecord& record : merged.records)
    by_row.insert_or_assign(record.sample, std::move(record));

  for (const std::string& path : shards) {
    CheckpointData shard;
    try {
      shard = load_checkpoint(path, LoadMode::kSalvage);
    } catch (const IoError& e) {
      // A shard whose header cannot be verified contributes nothing; the
      // rows it held are re-evaluated. Never fatal — that is the point of
      // per-worker isolation.
      ++merge.shards_unreadable;
      RSM_WARN("checkpoint: dropping unreadable shard '" << path << "': "
                                                         << e.what());
      continue;
    }
    if (have_header &&
        (shard.header.sample_matrix_hash != merged.header.sample_matrix_hash ||
         shard.header.config_hash != merged.header.config_hash ||
         shard.header.total_rows != merged.header.total_rows)) {
      ++merge.shards_unreadable;
      RSM_WARN("checkpoint: dropping shard '"
               << path << "': header belongs to a different campaign");
      continue;
    }
    if (!have_header) {
      merged.header = shard.header;
      have_header = true;
    }
    if (shard.truncated_tail) {
      merged.truncated_tail = true;
      ++merge.torn_tails;
    }
    if (shard.salvaged_corruption) {
      merged.salvaged_corruption = true;
      ++merge.corrupt_salvaged;
    }
    for (CheckpointRecord& record : shard.records) {
      const auto [it, inserted] =
          by_row.insert_or_assign(record.sample, std::move(record));
      if (!inserted) {
        ++merge.duplicate_rows;
        RSM_WARN("checkpoint: duplicate record for row "
                 << it->first << " in shard '" << path
                 << "'; keeping the later write");
      }
    }
    ++merge.shards_merged;
  }
  if (!have_header) {
    throw IoError("checkpoint '" + base +
                      "': no readable base log or shard header",
                  "checkpoint");
  }

  merged.records.clear();
  merged.records.reserve(by_row.size());
  for (auto& [row, record] : by_row) {
    if (row < 0 || static_cast<std::uint64_t>(row) >=
                       merged.header.total_rows) {
      throw IoError("checkpoint '" + base +
                        "' holds a record outside the campaign's rows",
                    "checkpoint");
    }
    merged.records.push_back(std::move(record));
  }

  obs::metrics().counter("io.shard_merge.duplicate_rows")
      .increment(merge.duplicate_rows);
  obs::metrics().counter("io.shard_merge.torn_tails")
      .increment(merge.torn_tails);
  obs::metrics().counter("io.shard_merge.corrupt_salvaged")
      .increment(merge.corrupt_salvaged);
  obs::metrics().counter("io.shard_merge.unreadable_shards")
      .increment(merge.shards_unreadable);
  if (outcome != nullptr) *outcome = merge;
  return merged;
}

CheckpointWriter::CheckpointWriter(const CheckpointOptions& options,
                                   CheckpointHeader header,
                                   std::vector<CheckpointRecord> existing)
    : options_(options), header_(header), mirror_(std::move(existing)) {
  RSM_CHECK_MSG(options_.enabled(), "CheckpointOptions.path must be set");
  RSM_CHECK_MSG(options_.flush_every >= 1, "flush_every must be >= 1");
  rewrite_and_reopen();
  // The base rewrite is not a recovery; do not count it.
  rewrites_ = 0;
}

CheckpointWriter::~CheckpointWriter() = default;

void CheckpointWriter::rewrite_and_reopen() {
  std::string full = serialize_header(header_);
  for (const CheckpointRecord& record : mirror_)
    full.append(serialize_record(record));
  file_.reset();
  atomic_write_file(options_.path, full, &options_.fs_faults);
  file_ = std::make_unique<DurableFile>(
      options_.path, DurableFile::Mode::kAppend, &options_.fs_faults);
  unsynced_ = 0;
  ++rewrites_;
}

void CheckpointWriter::append(CheckpointRecord record) {
  record.reason = bounded_reason(record.reason);
  mirror_.push_back(record);
  const std::string wire = serialize_record(record);
  try {
    // A previous failed recovery leaves no open file; retry the rewrite
    // (which now includes this record) instead of dereferencing nothing.
    if (file_ == nullptr) throw IoError("checkpoint file not open", "fs");
    file_->write(wire);
  } catch (const IoError& e) {
    // The file now ends in a torn/short record (or the write vanished).
    // Recover by rewriting the whole log atomically from the mirror — the
    // readers' contract (old-or-new, never a prefix) makes this safe even
    // if we crash mid-recovery. One attempt; a second failure propagates.
    RSM_WARN("checkpoint append faulted (" << e.what()
                                           << "); rewriting atomically");
    rewrite_and_reopen();
  }
  ++records_appended_;
  obs::metrics().counter("io.checkpoint.appends").increment();
  if (++unsynced_ >= options_.flush_every) flush();
}

void CheckpointWriter::flush() {
  if (file_ == nullptr) return;
  file_->sync();
  unsynced_ = 0;
  ++flushes_;
  obs::metrics().counter("io.checkpoint.flushes").increment();
}

std::uint64_t matrix_fingerprint(const Matrix& m) {
  const Index dims[2] = {m.rows(), m.cols()};
  std::uint64_t hash = fnv1a64(dims, sizeof(dims));
  return fnv1a64(m.data(),
                 static_cast<std::size_t>(m.size()) * sizeof(Real), hash);
}

std::uint64_t fault_plan_fingerprint(const FaultInjector& injector,
                                     int max_attempts) {
  const FaultInjector::Options& o = injector.options();
  std::uint64_t hash = fnv1a64(&max_attempts, sizeof(max_attempts));
  hash = fnv1a64(&o.fault_rate, sizeof(o.fault_rate), hash);
  hash = fnv1a64(&o.persistent_fraction, sizeof(o.persistent_fraction), hash);
  hash = fnv1a64(&o.seed, sizeof(o.seed), hash);
  return hash;
}

}  // namespace rsm::io
