#include "io/crc32.hpp"

#include <array>

namespace rsm::io {
namespace {

constexpr std::uint32_t kPolynomial = 0xedb88320u;  // reflected 0x04c11db7

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i)
    crc = kTable[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

std::uint64_t fnv1a64(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace rsm::io
