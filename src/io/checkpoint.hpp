// Versioned, CRC-guarded binary checkpoint format for campaign resume.
//
// The paper's premise is that the K transistor-level simulations are the
// expensive resource; a checkpoint makes them durable, so a SIGKILL at
// sample 980 of 1000 costs one sample, not one thousand. The format is an
// append-only log:
//
//   header  : magic "RSMCKPT\n" | u32 version | u64 sample_matrix_hash
//             | u64 config_hash | u64 total_rows | u32 crc32(header)
//   record* : u8 type | u32 payload_len | payload | u32 crc32(type|len|payload)
//
// all integers little-endian, Reals as IEEE-754 bit patterns. One record is
// appended per campaign row — kSample {row, value bits, attempts, failed
// attempt codes} for survivors, kQuarantine {row, code, attempts, failed
// attempt codes, reason} for permanently failed rows — and fsync'd every
// `flush_every` records, so the log is a durable prefix of the campaign at
// all times. Version 2 added the per-attempt failure codes: replaying a
// record reconstructs the campaign's error histogram exactly, which is what
// lets a resumed report be byte-identical to an uninterrupted one.
//
// A serial campaign appends to one log in row order. A parallel campaign
// gives worker k its own shard — `<base>.shard<k>.log`, same format, same
// header — and rewrites the single base log from the merged, row-sorted
// record set on completion, so a finished parallel run leaves the same
// bytes a serial run would. Only a crash leaves shards behind;
// load_sharded_checkpoint() merges them back (tolerating per-shard damage)
// for resume.
//
// The two u64 hashes bind a checkpoint to the exact campaign that wrote it:
// sample_matrix_hash fingerprints the sample matrix bytes, config_hash the
// determinism-relevant options (attempt budget + fault plan). resume refuses
// to continue a different campaign — a resumed run must be bit-identical to
// an uninterrupted one, and that only holds when inputs match.
//
// Loaders never return silently corrupt data: bad magic, wrong version, a
// failed CRC, or a record that stops short of its declared length raise a
// structured IoError. The sanctioned relaxations: LoadMode::kRecoverTail for
// crash recovery drops an *incomplete trailing* record (the torn write an
// interrupted append leaves behind) and reports it via `truncated_tail` — a
// CRC mismatch on a complete record is still fatal, which is what
// distinguishes a torn tail from a bit flip. LoadMode::kSalvage (shards
// only) additionally keeps the valid record prefix when a *complete* record
// mid-stream fails its checks, reporting it via `salvaged_corruption`; the
// dropped rows are simply re-evaluated, so no corrupt data is ever trusted.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/common.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace rsm::io {

inline constexpr char kCheckpointMagic[8] = {'R', 'S', 'M', 'C',
                                             'K', 'P', 'T', '\n'};
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Quarantine reasons are clamped to this many bytes on write, so a
/// pathological campaign cannot grow checkpoints (or reports) without limit.
inline constexpr std::size_t kMaxReasonLength = 256;

/// Per-attempt failure codes retained per record (clamped on write); bounds
/// what a corrupt count field can make the loader trust.
inline constexpr std::size_t kMaxFailedAttemptCodes = 256;

struct CheckpointHeader {
  std::uint32_t version = kCheckpointVersion;
  std::uint64_t sample_matrix_hash = 0;
  std::uint64_t config_hash = 0;
  std::uint64_t total_rows = 0;
};

/// One durable campaign-row outcome.
struct CheckpointRecord {
  enum class Type : std::uint8_t {
    kSample = 1,      // row evaluated successfully
    kQuarantine = 2,  // row permanently failed
  };

  Type type = Type::kSample;
  Index sample = -1;  // row index in the original sample matrix
  int attempts = 1;   // attempts consumed (reconstructs retry counters)

  Real value = 0;  // kSample only

  ErrorCode code = ErrorCode::kUnclassified;  // kQuarantine only
  std::string reason;                         // kQuarantine only, bounded

  /// ErrorCode of every *failed* attempt, in attempt order (clamped to
  /// kMaxFailedAttemptCodes); replay rebuilds the error histogram exactly.
  std::vector<ErrorCode> failed_codes;
};

struct CheckpointData {
  CheckpointHeader header;
  std::vector<CheckpointRecord> records;

  /// kRecoverTail/kSalvage only: an incomplete trailing record was dropped.
  bool truncated_tail = false;

  /// kSalvage only: a complete record mid-stream failed its CRC or
  /// structural checks; the valid prefix was kept, the rest dropped.
  bool salvaged_corruption = false;
};

enum class LoadMode {
  kStrict,       // any damage, including a torn tail, raises IoError
  kRecoverTail,  // a short *trailing* record is dropped; all else fatal
  kSalvage,      // shards: keep the valid record prefix past any damage
};

/// Parses and verifies a checkpoint file. See LoadMode for the torn-tail
/// and salvage contracts; everything else invalid raises IoError.
[[nodiscard]] CheckpointData load_checkpoint(const std::string& path,
                                             LoadMode mode = LoadMode::kStrict);

// ---- sharded checkpoints (parallel campaigns) -----------------------------

/// The checkpoint shard worker `k` of a parallel campaign appends to:
/// `<base>.shard<k>.log`, next to the base log at `<base>`.
[[nodiscard]] std::string shard_path(const std::string& base, int shard);

/// Existing shard files beside `base`, ordered by shard index. Missing
/// indices are fine (a worker that never completed a row writes no shard).
[[nodiscard]] std::vector<std::string> find_shard_paths(
    const std::string& base);

/// Deletes every shard file beside `base` (after a successful compaction,
/// or before a fresh run overwrites the base). Returns how many were
/// removed; removal failures are logged and counted, never thrown.
int remove_shard_files(const std::string& base);

/// What the shard merge met and how it coped — surfaced in CampaignReport
/// and as io.shard_merge.* metrics.
struct ShardMergeOutcome {
  int shards_found = 0;       // shard files present on disk
  int shards_merged = 0;      // shards whose records were absorbed
  int shards_unreadable = 0;  // dropped whole: unreadable/mismatched header
  int torn_tails = 0;         // sources whose torn trailing record was cut
  int corrupt_salvaged = 0;   // shards salvaged past mid-stream corruption
  Index duplicate_rows = 0;   // same row in >1 record; last write won
  bool base_loaded = false;   // the single base log contributed records
};

/// Loads the base log and every shard a (possibly crashed, possibly
/// parallel) campaign left at `base`, merges them into one row-sorted,
/// duplicate-free record set under the base's verified header, and reports
/// what it met. The base is held to the serial contract (torn tail
/// recoverable, anything else fatal — it is written atomically, so
/// mid-file damage means the storage itself lied); shards are crash
/// artifacts and are salvaged per LoadMode::kSalvage, dropped whole only
/// when their header is unreadable or belongs to a different campaign.
/// Throws IoError when neither the base nor any shard yields a verified
/// header, or when a record's row index exceeds the header's total_rows.
[[nodiscard]] CheckpointData load_sharded_checkpoint(
    const std::string& base, ShardMergeOutcome* outcome = nullptr);

/// Checkpointing configuration carried inside CampaignOptions.
struct CheckpointOptions {
  /// Target file; empty disables checkpointing entirely.
  std::string path;

  /// fsync cadence in records (1 = every record is durable the moment its
  /// append returns; larger trades durability lag for fewer syncs).
  int flush_every = 1;

  /// Deterministic filesystem fault injection planted under the writers
  /// (default-constructed = disabled).
  FsFaultInjector fs_faults;

  [[nodiscard]] bool enabled() const { return !path.empty(); }
};

/// Append-side of the log. The writer keeps an in-memory mirror of every
/// record it owns, which buys self-healing: when an append's physical write
/// faults (torn/short/ENOSPC), the writer rewrites the whole file atomically
/// from the mirror and reopens for append — one recovery attempt per append;
/// if the rewrite also fails, the IoError propagates and the caller decides
/// (the campaign layer then disables checkpointing rather than abort).
class CheckpointWriter {
 public:
  /// Creates (or atomically replaces) `options.path` holding `header` plus
  /// `existing` records — resume passes the loaded records so the file is
  /// rewritten to a clean base before new appends. Throws IoError.
  CheckpointWriter(const CheckpointOptions& options, CheckpointHeader header,
                   std::vector<CheckpointRecord> existing = {});
  ~CheckpointWriter();

  /// Durably appends one record (fsync per `flush_every`). Throws IoError
  /// only after the internal rewrite recovery also failed.
  void append(CheckpointRecord record);

  /// Forces an fsync of everything appended so far.
  void flush();

  [[nodiscard]] Index records_appended() const { return records_appended_; }
  [[nodiscard]] Index flushes() const { return flushes_; }
  [[nodiscard]] Index rewrites() const { return rewrites_; }

 private:
  void rewrite_and_reopen();

  CheckpointOptions options_;
  CheckpointHeader header_;
  std::vector<CheckpointRecord> mirror_;
  std::unique_ptr<class DurableFile> file_;
  int unsynced_ = 0;
  Index records_appended_ = 0;
  Index flushes_ = 0;
  Index rewrites_ = 0;
};

/// Fingerprints for the header's binding hashes.
[[nodiscard]] std::uint64_t matrix_fingerprint(const Matrix& m);
[[nodiscard]] std::uint64_t fault_plan_fingerprint(
    const FaultInjector& injector, int max_attempts);

/// Serialization used by the writer (exposed for tests that hand-craft
/// corrupt files).
[[nodiscard]] std::string serialize_header(const CheckpointHeader& header);
[[nodiscard]] std::string serialize_record(const CheckpointRecord& record);

}  // namespace rsm::io
