// Crash-safe file primitives: durable appends and atomic whole-file writes.
//
// Two building blocks the checkpoint layer (io/checkpoint.hpp) and report
// writers are built on:
//
//   * DurableFile — an append-oriented fd wrapper whose write() loops over
//     partial writes, whose sync() runs fsync, and whose every physical
//     write first consults an optional FsFaultInjector, so torn writes,
//     short writes, and ENOSPC are reproducible in CI without filling a
//     disk;
//   * atomic_write_file — the classic write-temp -> fsync -> rename(2)
//     sequence (plus a directory fsync so the rename itself is durable):
//     readers observe either the old content or the complete new content,
//     never a prefix.
//
// Every failure surfaces as a structured IoError (ErrorCode::kIoError);
// nothing in this layer returns partial success silently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/common.hpp"
#include "util/fault_injection.hpp"

namespace rsm::io {

/// Append-oriented file handle with explicit durability and deterministic
/// fault injection. Not copyable; movable would complicate the fd contract
/// for no caller, so it is pinned too.
class DurableFile {
 public:
  enum class Mode {
    kTruncate,  // create or truncate
    kAppend,    // create if missing, append at end
  };

  /// Opens `path`; throws IoError on failure. The injector pointer may be
  /// null (no faults) and must outlive the file.
  DurableFile(std::string path, Mode mode,
              const FsFaultInjector* faults = nullptr);
  ~DurableFile();
  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;

  /// Appends all of `data`, looping over genuine partial writes. Injected
  /// faults raise IoError after persisting the fault mode's prefix (torn:
  /// half, short: all but one byte, no-space: nothing) — exactly the states
  /// a crashed or full filesystem leaves behind.
  void write(std::string_view data);

  /// fsync(2); throws IoError on failure. A record is durable only after
  /// its sync returns.
  void sync();

  /// Closes the fd early (the destructor otherwise closes silently).
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Physical write operations issued so far (the fault injector's op
  /// index space).
  [[nodiscard]] std::uint64_t write_ops() const { return write_ops_; }

 private:
  std::string path_;
  int fd_ = -1;
  const FsFaultInjector* faults_ = nullptr;
  std::uint64_t write_ops_ = 0;
};

/// Atomically replaces `path` with `data`: temp file in the same directory,
/// write, fsync, rename over `path`, fsync the directory. On any failure
/// the temp file is removed and IoError is thrown; `path` is never left
/// half-written.
void atomic_write_file(const std::string& path, std::string_view data,
                       const FsFaultInjector* faults = nullptr);

/// Reads a whole file into a string; throws IoError when missing/unreadable.
[[nodiscard]] std::string read_file_bytes(const std::string& path);

/// True when `path` exists (any file type).
[[nodiscard]] bool file_exists(const std::string& path);

}  // namespace rsm::io
