// Checksums for the durable-I/O layer.
//
// CRC32 (the IEEE 802.3 / zlib polynomial, reflected, table-driven) guards
// every checkpoint header and record against bit flips and torn writes;
// FNV-1a 64 fingerprints in-memory configuration (sample matrices, fault
// plans) so a resume can prove it is continuing the *same* campaign. Both
// are tiny, dependency-free, and byte-order independent on the inputs they
// are fed (the io layer serializes little-endian explicitly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rsm::io {

/// CRC32 of `size` bytes, continuing from `seed` (pass the previous return
/// value to checksum a message in pieces; 0 starts a fresh checksum).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes,
                                         std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

/// FNV-1a 64-bit over raw bytes, continuing from `seed` (pass the previous
/// return value to hash a message in pieces).
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t size,
                                    std::uint64_t seed = kFnvOffsetBasis);

}  // namespace rsm::io
