#include "core/lasso_cd.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/vector_ops.hpp"

namespace rsm {
namespace {

Real soft_threshold(Real z, Real gamma) {
  if (z > gamma) return z - gamma;
  if (z < -gamma) return z + gamma;
  return 0;
}

/// Cyclic coordinate descent at one penalty, updating `beta` in place.
/// `residual` is maintained as f - G beta. `col_sq` holds ||G_j||^2 / K.
void descend(const Matrix& g, Real mu, std::span<const Real> col_sq,
             std::vector<Real>& beta, std::vector<Real>& residual,
             Real tolerance, int max_sweeps) {
  const Index k = g.rows();
  const Index m = g.cols();
  const Real inv_k = Real{1} / static_cast<Real>(k);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    Real max_delta = 0, max_beta = 0;
    for (Index j = 0; j < m; ++j) {
      const Real sq = col_sq[static_cast<std::size_t>(j)];
      if (sq <= 0) continue;
      // Partial residual correlation: z = (1/K) G_j'(r + G_j beta_j).
      Real corr = 0;
      for (Index r = 0; r < k; ++r)
        corr += g(r, j) * residual[static_cast<std::size_t>(r)];
      corr *= inv_k;
      const Real old = beta[static_cast<std::size_t>(j)];
      const Real z = corr + sq * old;
      const Real updated = soft_threshold(z, mu) / sq;
      const Real delta = updated - old;
      if (delta != 0) {
        beta[static_cast<std::size_t>(j)] = updated;
        for (Index r = 0; r < k; ++r)
          residual[static_cast<std::size_t>(r)] -= delta * g(r, j);
      }
      max_delta = std::max(max_delta, std::abs(delta));
      max_beta = std::max(max_beta, std::abs(updated));
    }
    if (max_delta <= tolerance * std::max(max_beta, Real{1e-300})) break;
  }
}

}  // namespace

SolverPath LassoCdSolver::fit_path(const Matrix& g, std::span<const Real> f,
                                   Index max_steps) const {
  const Index k = g.rows();
  const Index m = g.cols();
  RSM_CHECK(static_cast<Index>(f.size()) == k);
  RSM_CHECK(max_steps > 0);

  std::vector<Real> col_sq(static_cast<std::size_t>(m));
  for (Index j = 0; j < m; ++j) {
    Real s = 0;
    for (Index r = 0; r < k; ++r) s += g(r, j) * g(r, j);
    col_sq[static_cast<std::size_t>(j)] = s / static_cast<Real>(k);
  }

  // mu_max: smallest penalty that zeroes everything = max |G'f| / K.
  std::vector<Real> corr(static_cast<std::size_t>(m));
  gemv_transposed(g, f, corr);
  Real mu_max = 0;
  for (Real c : corr) mu_max = std::max(mu_max, std::abs(c));
  mu_max /= static_cast<Real>(k);

  SolverPath path;
  if (mu_max <= 0) return path;

  std::vector<Real> beta(static_cast<std::size_t>(m), Real{0});
  std::vector<Real> residual(f.begin(), f.end());

  Real mu = mu_max * options_.grid_ratio;
  for (Index t = 0; t < max_steps; ++t) {
    descend(g, mu, col_sq, beta, residual, options_.tolerance,
            options_.max_sweeps_per_mu);

    std::vector<Index> active;
    std::vector<Real> coef;
    for (Index j = 0; j < m; ++j) {
      if (beta[static_cast<std::size_t>(j)] != 0) {
        active.push_back(j);
        coef.push_back(beta[static_cast<std::size_t>(j)]);
      }
    }
    path.active_sets.push_back(active);
    path.coefficients.push_back(std::move(coef));
    path.selection_order.push_back(active.empty() ? -1 : active.back());
    path.residual_norms.push_back(nrm2(residual));
    mu *= options_.grid_ratio;
  }
  return path;
}

std::vector<Real> LassoCdSolver::fit_at(const Matrix& g,
                                        std::span<const Real> f,
                                        Real mu) const {
  const Index k = g.rows();
  const Index m = g.cols();
  RSM_CHECK(static_cast<Index>(f.size()) == k);
  RSM_CHECK(mu >= 0);
  std::vector<Real> col_sq(static_cast<std::size_t>(m));
  for (Index j = 0; j < m; ++j) {
    Real s = 0;
    for (Index r = 0; r < k; ++r) s += g(r, j) * g(r, j);
    col_sq[static_cast<std::size_t>(j)] = s / static_cast<Real>(k);
  }
  std::vector<Real> beta(static_cast<std::size_t>(m), Real{0});
  std::vector<Real> residual(f.begin(), f.end());
  descend(g, mu, col_sq, beta, residual, options_.tolerance,
          options_.max_sweeps_per_mu);
  return beta;
}

}  // namespace rsm
