#include "core/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "io/progress_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace rsm {
namespace {

std::string bounded_reason(std::string reason) {
  if (reason.size() > kMaxQuarantineReasonLength)
    reason.resize(kMaxQuarantineReasonLength);
  return reason;
}

/// num_workers and worker_faults are deliberately excluded: neither changes
/// any row's outcome, so a crashed 8-worker run may resume serially (and
/// vice versa) without tripping the config-hash check.
io::CheckpointHeader make_header(const Matrix& samples,
                                 const CampaignOptions& options) {
  io::CheckpointHeader header;
  header.sample_matrix_hash = io::matrix_fingerprint(samples);
  header.config_hash = io::fault_plan_fingerprint(options.fault_injector,
                                                  options.max_attempts);
  header.total_rows = static_cast<std::uint64_t>(samples.rows());
  return header;
}

/// Everything one row's evaluation (or its checkpoint replay) produced.
/// Rows land in a per-row slot in whatever order workers finish them; the
/// fold below runs in row order, which is what makes the report independent
/// of scheduling.
struct RowOutcome {
  bool done = false;       // slot filled: the row at least started evaluating
  bool evaluated = false;  // reached a verdict (success or quarantine)
  bool replayed = false;   // came from a checkpoint, not a fresh evaluation
  bool ok = false;
  int attempts = 0;
  int retries = 0;  // retries charged to the report (an interrupt un-charges)
  Real value = 0;
  ErrorCode code = ErrorCode::kUnclassified;
  std::string reason;
  std::vector<ErrorCode> failed_codes;  // failed attempts, in attempt order
};

RowOutcome outcome_from_record(const io::CheckpointRecord& record) {
  RowOutcome out;
  out.done = true;
  out.evaluated = true;
  out.replayed = true;
  out.ok = record.type == io::CheckpointRecord::Type::kSample;
  out.attempts = record.attempts;
  out.retries = record.attempts - 1;
  out.value = record.value;
  out.code = record.code;
  out.reason = record.reason;
  out.failed_codes = record.failed_codes;
  return out;
}

io::CheckpointRecord record_from_outcome(Index k, const RowOutcome& out) {
  io::CheckpointRecord record;
  record.type = out.ok ? io::CheckpointRecord::Type::kSample
                       : io::CheckpointRecord::Type::kQuarantine;
  record.sample = k;
  record.attempts = out.attempts;
  record.value = out.value;
  record.code = out.code;
  record.reason = out.reason;
  record.failed_codes = out.failed_codes;
  return record;
}

/// One row's full retry/escalation ladder. A pure function of the row index
/// — fault injection, escalation, and classification never see worker
/// identity — so serial and parallel runs produce identical outcomes.
RowOutcome evaluate_row(const Matrix& samples, Index k,
                        const SampleEvaluator& evaluate,
                        const CampaignOptions& options,
                        const Deadline& global_deadline) {
  RSM_TRACE_SPAN("campaign.row");
  RowOutcome out;
  out.done = true;
  auto globally_stopped = [&] {
    return options.cancel.cancelled() || global_deadline.expired();
  };
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    if (attempt > 0) ++out.retries;
    out.attempts = attempt + 1;
    // Each attempt runs under its own watchdog; the effective deadline is
    // the sooner of the watchdog and the global budget, and cooperative
    // check sites (DC Newton, transient stepper, greedy solver loops)
    // observe it ambiently without evaluator plumbing.
    const Deadline attempt_deadline = Deadline::sooner(
        options.sample_deadline_seconds > 0
            ? Deadline::after_seconds(options.sample_deadline_seconds)
            : Deadline::unlimited(),
        global_deadline);
    ScopedRunControl scope({options.cancel, attempt_deadline});
    try {
      options.fault_injector.throw_if_faulted(k, attempt);
      out.value = evaluate(samples.row(k), attempt);
      if (!std::isfinite(out.value)) {
        throw NumericalDomainError("evaluator returned a non-finite value",
                                   "campaign", k);
      }
      out.ok = true;
      break;
    } catch (const std::exception& e) {
      out.code = classify_error(e);
      out.reason = e.what();
      if (globally_stopped()) {
        // The stop was the campaign's, not the sample's: leave the row
        // unevaluated (a resume will redo it) and un-charge the attempt.
        if (attempt > 0) --out.retries;
        return out;
      }
      out.failed_codes.push_back(out.code);
      if (out.code == ErrorCode::kDeadlineExceeded) {
        obs::metrics().counter("campaign.deadline_trips").increment();
      }
      RSM_DEBUG("campaign: sample " << k << " attempt " << attempt
                                    << " failed: " << e.what());
    }
  }
  out.evaluated = true;
  if (!out.ok) {
    out.reason = bounded_reason(std::move(out.reason));
    RSM_WARN("campaign: quarantining sample "
             << k << " after " << options.max_attempts << " attempts ["
             << error_code_name(out.code) << "]");
  }
  return out;
}

/// Accumulates one finished slot into the report — always called in row
/// order from a single thread. Interrupted rows contribute only their
/// partial attempt accounting (exactly as the serial engine always did);
/// replayed rows count fully but re-emit no telemetry.
void fold_outcome(Index k, const RowOutcome& out, CampaignReport& report,
                  std::vector<Real>& values, std::vector<Index>& survivors) {
  report.total_retries += out.retries;
  for (const ErrorCode code : out.failed_codes)
    ++report.error_histogram[static_cast<std::size_t>(code)];
  if (!out.evaluated) return;
  ++report.attempted;
  if (out.ok) {
    ++report.succeeded;
    if (out.attempts > 1) ++report.recovered;
    values.push_back(out.value);
    survivors.push_back(k);
  } else {
    report.quarantined.push_back({k, out.code, out.reason});
  }
  if (!out.replayed && obs::telemetry_enabled()) {
    obs::emit(obs::CampaignSampleEvent{.sample = k,
                                       .attempts = out.attempts,
                                       .succeeded = out.ok,
                                       .recovered = out.ok && out.attempts > 1,
                                       .code = out.ok ? ErrorCode::kOk
                                                      : out.code});
  }
}

/// The shared engine behind run_campaign (resumed == nullptr) and
/// resume_campaign (resumed == the loaded, verified checkpoint). Dispatches
/// to the historical serial streaming path or the sharded parallel executor
/// depending on the resolved worker count; both paths fill the same
/// outcome-slot array, so everything from the fold down is common.
CampaignResult run_rows(const Matrix& samples, const SampleEvaluator& evaluate,
                        const CampaignOptions& options,
                        const io::CheckpointData* resumed,
                        const io::ShardMergeOutcome* merge) {
  RSM_TRACE_SPAN("campaign.run");
  RSM_CHECK_MSG(samples.rows() > 0, "campaign needs at least one sample");
  RSM_CHECK_MSG(options.max_attempts >= 1,
                "campaign needs a positive attempt budget");
  RSM_CHECK_MSG(options.worker_quarantine_threshold >= 1,
                "worker quarantine threshold must be positive");
  RSM_CHECK(static_cast<bool>(evaluate));

  const Index num_samples = samples.rows();
  const int workers = resolve_num_workers(options.num_workers, 1);
  const obs::ResourceUsage resource_start = obs::sample_resource_usage();
  CampaignResult result;
  CampaignReport& report = result.report;
  report.min_success_fraction = options.min_success_fraction;
  report.workers = workers;
  if (merge != nullptr) {
    report.shards_merged = merge->shards_merged;
    report.shards_recovered = merge->torn_tails + merge->corrupt_salvaged;
    report.shard_duplicate_rows = merge->duplicate_rows;
  }

  std::vector<RowOutcome> outcomes(static_cast<std::size_t>(num_samples));
  if (resumed != nullptr) {
    for (const io::CheckpointRecord& record : resumed->records)
      outcomes[static_cast<std::size_t>(record.sample)] =
          outcome_from_record(record);
    report.resumed_samples = static_cast<Index>(resumed->records.size());
    obs::metrics().counter("campaign.samples.resumed")
        .increment(report.resumed_samples);
  }
  std::vector<Index> pending;
  pending.reserve(static_cast<std::size_t>(num_samples));
  for (Index k = 0; k < num_samples; ++k)
    if (!outcomes[static_cast<std::size_t>(k)].done) pending.push_back(k);

  const io::CheckpointHeader header = make_header(samples, options);
  const Deadline global_deadline =
      options.time_budget_seconds > 0
          ? Deadline::after_seconds(options.time_budget_seconds)
          : Deadline::unlimited();
  auto globally_stopped = [&] {
    return options.cancel.cancelled() || global_deadline.expired();
  };

  // Live heartbeats (no-op while progress_path is empty). Row counters are
  // bumped by whichever thread finishes a row; the reporter rate-limits, so
  // calling after every row is cheap. Replayed rows count as already done.
  std::unique_ptr<io::ProgressSink> progress_sink;
  std::unique_ptr<obs::ProgressReporter> progress;
  std::atomic<std::int64_t> rows_done{0};
  std::atomic<std::int64_t> rows_succeeded{0};
  std::atomic<std::int64_t> rows_quarantined{0};
  for (const RowOutcome& out : outcomes) {
    if (!out.done || !out.evaluated) continue;
    rows_done.fetch_add(1, std::memory_order_relaxed);
    (out.ok ? rows_succeeded : rows_quarantined)
        .fetch_add(1, std::memory_order_relaxed);
  }
  if (!options.progress_path.empty()) {
    progress_sink = std::make_unique<io::ProgressSink>(options.progress_path);
    obs::ProgressReporter::Options progress_options;
    progress_options.source = "campaign";
    progress_options.interval_seconds = options.progress_interval_seconds;
    progress = std::make_unique<obs::ProgressReporter>(
        progress_options, progress_sink->as_line_sink());
  }
  // Serializes count-update + snapshot + emit so every heartbeat line is
  // internally consistent (rows_done == succeeded + quarantined) and
  // rows_done is monotone along the stream — scripts/check_progress_jsonl.py
  // asserts both. One uncontended lock per row is noise next to the
  // simulation the row just ran.
  Mutex progress_mutex{"campaign.progress", lock_rank::kCampaignProgress};
  auto note_row = [&](const RowOutcome& out, ThreadPool* pool) {
    const MutexLock lock(progress_mutex);
    if (out.evaluated) {
      rows_done.fetch_add(1, std::memory_order_relaxed);
      (out.ok ? rows_succeeded : rows_quarantined)
          .fetch_add(1, std::memory_order_relaxed);
    }
    if (progress == nullptr) return;
    obs::ProgressSnapshot snap;
    snap.total_rows = static_cast<std::int64_t>(num_samples);
    snap.rows_done = rows_done.load(std::memory_order_relaxed);
    snap.rows_succeeded = rows_succeeded.load(std::memory_order_relaxed);
    snap.rows_quarantined = rows_quarantined.load(std::memory_order_relaxed);
    if (pool != nullptr) {
      snap.workers = pool->num_workers();
      snap.active_workers = pool->active_workers();
      for (const ThreadPool::WorkerStats& ws : pool->worker_stats()) {
        snap.busy_seconds += ws.busy_seconds;
        snap.idle_seconds += ws.idle_seconds;
      }
    } else {
      snap.workers = 1;
      snap.active_workers = 1;
    }
    progress->maybe_emit(snap);
  };

  if (workers <= 1 || pending.empty()) {
    // Serial streaming path: one log, one durable append the moment each
    // row finishes — unchanged from the original engine. Construction
    // rewrites the file atomically (fresh runs get an empty log, resumes a
    // clean row-sorted base without the torn tail); a failure here — or an
    // append failure the writer cannot self-heal — records an I/O error and
    // the campaign continues without durability.
    std::unique_ptr<io::CheckpointWriter> writer;
    auto sync_checkpoint_counters = [&] {
      if (writer == nullptr) return;
      report.checkpoint_records = writer->records_appended();
      report.checkpoint_flushes = writer->flushes();
      report.checkpoint_rewrites = writer->rewrites();
    };
    auto on_checkpoint_failure = [&](const IoError& e) {
      RSM_WARN("campaign: checkpointing disabled after I/O failure: "
               << e.what());
      ++report.error_histogram[static_cast<std::size_t>(ErrorCode::kIoError)];
      report.checkpoint_failed = true;
      sync_checkpoint_counters();
      writer.reset();
      obs::metrics().counter("campaign.checkpoint.failures").increment();
    };
    if (options.checkpoint.enabled()) {
      try {
        writer = std::make_unique<io::CheckpointWriter>(
            options.checkpoint, header,
            resumed != nullptr ? resumed->records
                               : std::vector<io::CheckpointRecord>{});
        // The base just became the single source of truth; shards a
        // previous (crashed parallel) run left behind are now redundant.
        io::remove_shard_files(options.checkpoint.path);
      } catch (const IoError& e) {
        on_checkpoint_failure(e);
      }
    }
    for (const Index k : pending) {
      if (globally_stopped()) break;
      RowOutcome out =
          evaluate_row(samples, k, evaluate, options, global_deadline);
      const bool interrupted = !out.evaluated;
      if (out.evaluated && writer != nullptr) {
        try {
          writer->append(record_from_outcome(k, out));
        } catch (const IoError& e) {
          on_checkpoint_failure(e);
        }
      }
      note_row(out, nullptr);
      outcomes[static_cast<std::size_t>(k)] = std::move(out);
      if (interrupted) break;
    }
    // Graceful shutdown: everything evaluated so far becomes durable now,
    // whatever the flush cadence was.
    if (writer != nullptr) {
      try {
        writer->flush();
      } catch (const IoError& e) {
        on_checkpoint_failure(e);
      }
    }
    sync_checkpoint_counters();
  } else {
    // Sharded parallel executor: rows fan out across a work-stealing pool;
    // worker k appends to its own checkpoint shard, and the shards are
    // compacted back into the single row-sorted base on the way out. Only a
    // hard kill leaves shards behind for load_sharded_checkpoint.
    RSM_TRACE_SPAN("campaign.parallel");
    std::atomic<bool> checkpoint_failed{false};
    std::atomic<Index> checkpoint_io_errors{0};
    auto record_checkpoint_failure = [&](const IoError& e, const char* what) {
      RSM_WARN("campaign: " << what << ": " << e.what());
      checkpoint_failed.store(true, std::memory_order_relaxed);
      checkpoint_io_errors.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter("campaign.checkpoint.failures").increment();
    };
    const bool checkpointing = options.checkpoint.enabled();
    if (checkpointing) {
      try {
        // Construction alone rewrites the base atomically (replayed records
        // on resume, empty otherwise); the writer is discarded — workers
        // append to their own shards, never to the base.
        io::CheckpointWriter base(options.checkpoint, header,
                                  resumed != nullptr
                                      ? resumed->records
                                      : std::vector<io::CheckpointRecord>{});
        io::remove_shard_files(options.checkpoint.path);
      } catch (const IoError& e) {
        record_checkpoint_failure(e, "base checkpoint rewrite failed");
      }
    }

    // Per-worker lanes: each slot is touched only by the worker with that
    // index (and by this thread again once the pool has joined).
    struct Shard {
      std::unique_ptr<io::CheckpointWriter> writer;
      bool failed = false;  // this worker's durability is gone
      Index rows = 0;       // rows this worker completed
      Index infra_faults = 0;
    };
    std::vector<Shard> shards(static_cast<std::size_t>(workers));
    std::vector<std::atomic<bool>> infra_fired(
        static_cast<std::size_t>(num_samples));
    std::atomic<int> workers_quarantined{0};
    std::atomic<Index> infra_failures{0};
    {
      ThreadPool::Options pool_options;
      pool_options.num_threads = workers;
      // Sized so every submit — including a worker requeueing a faulted row
      // from inside a task — finds queue space without blocking.
      pool_options.queue_capacity =
          2 * pending.size() / static_cast<std::size_t>(workers) + 16;
      std::function<void(Index)> run_one;
      ThreadPool pool(pool_options);
      run_one = [&](Index k) {
        if (globally_stopped()) return;  // slot stays empty -> truncated
        const int w = pool.current_worker_index();
        RSM_CHECK(w >= 0 && w < workers);
        Shard& shard = shards[static_cast<std::size_t>(w)];
        if (options.worker_faults.should_fault(k) &&
            !infra_fired[static_cast<std::size_t>(k)].exchange(true)) {
          // Infrastructure death, not a sample failure: charge the worker
          // that happened to claim the row, requeue the row (its outcome is
          // unaffected), and let the pool's exception backstop absorb the
          // corpse. Workers that absorb too many are retired — never the
          // last one, so the queue always drains.
          infra_failures.fetch_add(1, std::memory_order_relaxed);
          ++shard.infra_faults;
          obs::metrics().counter("campaign.worker.infra_faults").increment();
          if (shard.infra_faults >=
                  static_cast<Index>(options.worker_quarantine_threshold) &&
              pool.retire_current_worker()) {
            workers_quarantined.fetch_add(1, std::memory_order_relaxed);
            obs::metrics().counter("campaign.worker.quarantined").increment();
            RSM_WARN("campaign: worker " << w << " retired after "
                                         << shard.infra_faults
                                         << " infrastructure fault(s)");
          }
          pool.submit([&run_one, k] { run_one(k); });
          throw Error("injected worker infrastructure fault");
        }
        RowOutcome out =
            evaluate_row(samples, k, evaluate, options, global_deadline);
        if (out.evaluated && checkpointing && !shard.failed) {
          try {
            if (shard.writer == nullptr) {
              io::CheckpointOptions shard_options = options.checkpoint;
              shard_options.path = io::shard_path(options.checkpoint.path, w);
              shard.writer = std::make_unique<io::CheckpointWriter>(
                  shard_options, header);
            }
            shard.writer->append(record_from_outcome(k, out));
          } catch (const IoError& e) {
            // This worker's durability is gone; its rows stay in memory and
            // still reach the base log at compaction.
            shard.failed = true;
            shard.writer.reset();
            record_checkpoint_failure(e, "shard checkpoint append failed");
          }
        }
        if (out.evaluated) ++shard.rows;
        note_row(out, &pool);
        outcomes[static_cast<std::size_t>(k)] = std::move(out);
        obs::metrics().gauge("campaign.pool.queue_depth")
            .set(static_cast<double>(pool.queue_depth()));
      };
      for (const Index k : pending)
        pool.submit([&run_one, k] { run_one(k); });
      pool.wait_idle();
      const ThreadPool::Stats pool_stats = pool.stats();
      report.tasks_stolen = static_cast<Index>(pool_stats.stolen);
      report.pool_queue_highwater =
          static_cast<Index>(pool_stats.queue_highwater);
      report.pool_backpressure_stalls =
          static_cast<Index>(pool_stats.backpressure_stalls);
      for (const ThreadPool::WorkerStats& ws : pool.worker_stats()) {
        report.pool_busy_seconds += ws.busy_seconds;
        report.pool_idle_seconds += ws.idle_seconds;
      }
      obs::metrics().counter("campaign.pool.steals")
          .increment(static_cast<std::int64_t>(pool_stats.stolen));
      obs::metrics().counter("campaign.pool.backpressure_stalls")
          .increment(static_cast<std::int64_t>(pool_stats.backpressure_stalls));
      obs::metrics().gauge("campaign.pool.queue_highwater")
          .set(static_cast<double>(pool_stats.queue_highwater));
      obs::metrics().gauge("campaign.pool.busy_seconds")
          .set(report.pool_busy_seconds);
      obs::metrics().gauge("campaign.pool.idle_seconds")
          .set(report.pool_idle_seconds);
      obs::metrics().gauge("campaign.pool.queue_depth").set(0);
    }  // joins the pool: every worker-side write is visible below

    for (std::size_t w = 0; w < shards.size(); ++w) {
      Shard& shard = shards[w];
      obs::metrics()
          .histogram("campaign.pool.rows_per_worker",
                     {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
          .observe(static_cast<double>(shard.rows));
      if (shard.writer == nullptr) continue;
      try {
        shard.writer->flush();
      } catch (const IoError& e) {
        shard.failed = true;
        record_checkpoint_failure(e, "shard checkpoint flush failed");
      }
      report.checkpoint_records += shard.writer->records_appended();
      report.checkpoint_flushes += shard.writer->flushes();
      report.checkpoint_rewrites += shard.writer->rewrites();
      shard.writer.reset();  // close before compaction deletes the shards
    }

    // Compact: the complete in-memory outcome set becomes the single
    // row-sorted base log — byte-identical to a serial run's — and the
    // shards disappear. This runs on success AND on graceful truncation;
    // only a hard kill skips it.
    if (checkpointing) {
      std::vector<io::CheckpointRecord> records;
      for (Index k = 0; k < num_samples; ++k) {
        const RowOutcome& out = outcomes[static_cast<std::size_t>(k)];
        if (out.done && out.evaluated)
          records.push_back(record_from_outcome(k, out));
      }
      try {
        io::CheckpointWriter base(options.checkpoint, header,
                                  std::move(records));
        io::remove_shard_files(options.checkpoint.path);
        obs::metrics().counter("campaign.checkpoint.compactions").increment();
      } catch (const IoError& e) {
        record_checkpoint_failure(e,
                                  "checkpoint compaction failed; shards kept");
      }
    }
    report.workers_quarantined =
        workers_quarantined.load(std::memory_order_relaxed);
    report.worker_infra_failures =
        infra_failures.load(std::memory_order_relaxed);
    report.checkpoint_failed = checkpoint_failed.load(std::memory_order_relaxed);
    report.error_histogram[static_cast<std::size_t>(ErrorCode::kIoError)] +=
        checkpoint_io_errors.load(std::memory_order_relaxed);
  }

  // Fold in row order: the report, survivors, and values come out identical
  // for every execution order (serial, parallel, resumed).
  std::vector<Real> values;
  std::vector<Index> survivors;
  values.reserve(static_cast<std::size_t>(num_samples));
  survivors.reserve(static_cast<std::size_t>(num_samples));
  bool all_evaluated = true;
  for (Index k = 0; k < num_samples; ++k) {
    const RowOutcome& out = outcomes[static_cast<std::size_t>(k)];
    if (!out.done) {
      all_evaluated = false;
      continue;
    }
    if (!out.evaluated) all_evaluated = false;
    fold_outcome(k, out, report, values, survivors);
  }
  if (!all_evaluated) {
    report.truncated = true;
    obs::metrics().counter("campaign.truncated_runs").increment();
    RSM_WARN("campaign: truncated after "
             << report.attempted << '/' << num_samples << " samples ("
             << (options.cancel.cancelled() ? "cancellation requested"
                                            : "time budget exhausted")
             << "); survivors are durable and fit-worthy");
  }

  obs::metrics().counter("campaign.samples.attempted")
      .increment(report.attempted);
  obs::metrics().counter("campaign.samples.succeeded")
      .increment(report.succeeded);
  obs::metrics().counter("campaign.samples.quarantined")
      .increment(static_cast<std::int64_t>(report.quarantined.size()));
  obs::metrics().counter("campaign.retries").increment(report.total_retries);

  report.resources =
      obs::resource_delta(obs::sample_resource_usage(), resource_start);
  obs::record_resource_metrics(report.resources);
  if (progress != nullptr) {
    // The stream always ends with the folded truth, whatever the heartbeat
    // cadence caught mid-run.
    obs::ProgressSnapshot final_snap;
    final_snap.total_rows = static_cast<std::int64_t>(num_samples);
    final_snap.rows_done = static_cast<std::int64_t>(report.attempted);
    final_snap.rows_succeeded = static_cast<std::int64_t>(report.succeeded);
    final_snap.rows_quarantined =
        static_cast<std::int64_t>(report.quarantined.size());
    final_snap.workers = report.workers;
    final_snap.active_workers = report.workers - report.workers_quarantined;
    final_snap.busy_seconds = report.pool_busy_seconds;
    final_snap.idle_seconds = report.pool_idle_seconds;
    progress->emit_final(final_snap);
    report.progress_heartbeats =
        static_cast<Index>(progress->events_emitted());
    obs::metrics().counter("campaign.progress.heartbeats")
        .increment(report.progress_heartbeats);
  }

  result.samples = Matrix(static_cast<Index>(survivors.size()),
                          samples.cols());
  for (std::size_t r = 0; r < survivors.size(); ++r) {
    const std::span<const Real> src = samples.row(survivors[r]);
    std::copy(src.begin(), src.end(),
              result.samples.row(static_cast<Index>(r)).begin());
  }
  result.values = std::move(values);
  result.sample_indices = std::move(survivors);
  return result;
}

}  // namespace

Real CampaignReport::success_fraction() const {
  if (attempted == 0) return 0;
  return static_cast<Real>(succeeded) / static_cast<Real>(attempted);
}

Index CampaignReport::error_count(ErrorCode code) const {
  return error_histogram[static_cast<std::size_t>(code)];
}

bool CampaignReport::fit_allowed() const {
  return attempted > 0 && success_fraction() >= min_success_fraction;
}

std::string CampaignReport::summary() const {
  std::ostringstream os;
  os << "campaign: " << attempted << " attempted, " << succeeded
     << " succeeded (" << recovered << " recovered on retry), "
     << quarantined.size() << " quarantined, " << total_retries
     << " retries; success fraction "
     << (attempted > 0 ? success_fraction() : Real{0}) << " (threshold "
     << min_success_fraction << ")";
  if (truncated) os << "\nrun TRUNCATED (time budget or cancellation)";
  if (resumed_samples > 0)
    os << "\nresumed " << resumed_samples << " samples from checkpoint";
  if (workers > 1 || workers_quarantined > 0 || worker_infra_failures > 0) {
    os << "\nexecution: " << workers << " workers";
    if (tasks_stolen > 0) os << ", " << tasks_stolen << " tasks stolen";
    if (worker_infra_failures > 0)
      os << ", " << worker_infra_failures << " infra fault(s) absorbed";
    if (workers_quarantined > 0)
      os << ", " << workers_quarantined << " worker(s) retired";
  }
  if (resources.valid) {
    os << "\nresources: max RSS " << resources.max_rss_kb << " KiB, "
       << resources.minor_faults << '/' << resources.major_faults
       << " minor/major faults, " << resources.voluntary_ctx_switches << '/'
       << resources.involuntary_ctx_switches
       << " voluntary/involuntary switches";
  }
  if (shards_merged > 0) {
    os << "\nshards: " << shards_merged << " merged";
    if (shards_recovered > 0) os << ", " << shards_recovered << " recovered";
    if (shard_duplicate_rows > 0)
      os << ", " << shard_duplicate_rows
         << " duplicate row(s), last write won";
  }
  if (checkpoint_records > 0 || checkpoint_failed) {
    os << "\ncheckpoint: " << checkpoint_records << " records, "
       << checkpoint_flushes << " flushes, " << checkpoint_rewrites
       << " rewrites" << (checkpoint_failed ? " (FAILED, disabled)" : "");
  }
  bool any_errors = false;
  for (Index count : error_histogram) any_errors = any_errors || count > 0;
  if (any_errors) {
    os << "\nfailed attempts by code:";
    for (int c = 0; c < kNumErrorCodes; ++c) {
      const Index count = error_histogram[static_cast<std::size_t>(c)];
      if (count == 0) continue;
      os << ' ' << error_code_name(static_cast<ErrorCode>(c)) << '=' << count;
    }
  }
  if (!quarantined.empty()) {
    os << "\nquarantined samples:";
    for (const QuarantinedSample& q : quarantined)
      os << ' ' << q.sample << " [" << error_code_name(q.code) << ']';
  }
  return os.str();
}

obs::JsonValue CampaignReport::to_json() const {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("attempted", static_cast<std::int64_t>(attempted));
  doc.set("succeeded", static_cast<std::int64_t>(succeeded));
  doc.set("recovered", static_cast<std::int64_t>(recovered));
  doc.set("total_retries", static_cast<std::int64_t>(total_retries));
  doc.set("success_fraction", static_cast<double>(success_fraction()));
  doc.set("min_success_fraction", static_cast<double>(min_success_fraction));
  doc.set("fit_allowed", fit_allowed());
  doc.set("truncated", truncated);
  obs::JsonValue checkpoint = obs::JsonValue::object();
  checkpoint.set("records", static_cast<std::int64_t>(checkpoint_records));
  checkpoint.set("flushes", static_cast<std::int64_t>(checkpoint_flushes));
  checkpoint.set("rewrites", static_cast<std::int64_t>(checkpoint_rewrites));
  checkpoint.set("resumed_samples",
                 static_cast<std::int64_t>(resumed_samples));
  checkpoint.set("failed", checkpoint_failed);
  checkpoint.set("shards_merged", static_cast<std::int64_t>(shards_merged));
  checkpoint.set("shards_recovered",
                 static_cast<std::int64_t>(shards_recovered));
  checkpoint.set("shard_duplicate_rows",
                 static_cast<std::int64_t>(shard_duplicate_rows));
  doc.set("checkpoint", std::move(checkpoint));
  obs::JsonValue execution = obs::JsonValue::object();
  execution.set("workers", static_cast<std::int64_t>(workers));
  execution.set("workers_quarantined",
                static_cast<std::int64_t>(workers_quarantined));
  execution.set("worker_infra_failures",
                static_cast<std::int64_t>(worker_infra_failures));
  execution.set("tasks_stolen", static_cast<std::int64_t>(tasks_stolen));
  execution.set("pool_queue_highwater",
                static_cast<std::int64_t>(pool_queue_highwater));
  execution.set("pool_backpressure_stalls",
                static_cast<std::int64_t>(pool_backpressure_stalls));
  execution.set("pool_busy_seconds", pool_busy_seconds);
  execution.set("pool_idle_seconds", pool_idle_seconds);
  execution.set("progress_heartbeats",
                static_cast<std::int64_t>(progress_heartbeats));
  execution.set("resources", obs::resource_json(resources));
  doc.set("execution", std::move(execution));
  obs::JsonValue errors = obs::JsonValue::object();
  for (int c = 0; c < kNumErrorCodes; ++c) {
    errors.set(error_code_name(static_cast<ErrorCode>(c)),
               static_cast<std::int64_t>(
                   error_histogram[static_cast<std::size_t>(c)]));
  }
  doc.set("failed_attempts_by_code", std::move(errors));
  obs::JsonValue quarantine = obs::JsonValue::array();
  for (const QuarantinedSample& q : quarantined) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("sample", static_cast<std::int64_t>(q.sample));
    entry.set("code", error_code_name(q.code));
    entry.set("reason", q.reason);
    quarantine.push_back(std::move(entry));
  }
  doc.set("quarantined", std::move(quarantine));
  return doc;
}

CampaignResult run_campaign(const Matrix& samples,
                            const SampleEvaluator& evaluate,
                            const CampaignOptions& options) {
  return run_rows(samples, evaluate, options, nullptr, nullptr);
}

CampaignResult resume_campaign(const Matrix& samples,
                               const SampleEvaluator& evaluate,
                               const CampaignOptions& options) {
  RSM_CHECK_MSG(options.checkpoint.enabled(),
                "resume_campaign needs CheckpointOptions.path");
  RSM_TRACE_SPAN("campaign.resume");
  // Merge the base log with any shards a crashed parallel run left behind.
  // Torn trailing records are the expected crash artifact everywhere;
  // mid-stream damage is salvaged in shards and fatal in the base (which is
  // only ever written atomically).
  io::ShardMergeOutcome merge;
  const io::CheckpointData data =
      io::load_sharded_checkpoint(options.checkpoint.path, &merge);

  const io::CheckpointHeader expected = make_header(samples, options);
  if (data.header.sample_matrix_hash != expected.sample_matrix_hash ||
      data.header.total_rows != expected.total_rows) {
    throw IoError(
        "checkpoint '" + options.checkpoint.path +
            "' belongs to a different sample matrix; refusing to resume "
            "(resumed runs must be bit-identical to uninterrupted ones)",
        "checkpoint");
  }
  if (data.header.config_hash != expected.config_hash) {
    throw IoError(
        "checkpoint '" + options.checkpoint.path +
            "' was written under a different campaign configuration "
            "(attempt budget / fault plan); refusing to resume",
        "checkpoint");
  }
  if (data.records.size() > static_cast<std::size_t>(samples.rows())) {
    throw IoError("checkpoint '" + options.checkpoint.path +
                      "' holds more records than the campaign has rows",
                  "checkpoint");
  }
  RSM_INFO("campaign: resuming from checkpoint '"
           << options.checkpoint.path << "' with " << data.records.size()
           << " durable rows (" << merge.shards_merged << " shard(s) merged"
           << (data.truncated_tail ? ", torn tail dropped" : "")
           << (data.salvaged_corruption ? ", corruption salvaged" : "")
           << ')');
  return run_rows(samples, evaluate, options, &data, &merge);
}

BuildReport fit_campaign(const CampaignResult& result,
                         std::shared_ptr<const BasisDictionary> dictionary,
                         const BuildOptions& build_options) {
  if (!result.report.fit_allowed()) {
    throw Error("campaign success fraction below fitting threshold:\n" +
                result.report.summary());
  }
  RSM_INFO("campaign: fitting on " << result.samples.rows() << '/'
                                   << result.report.attempted
                                   << " surviving samples");
  return build_model(std::move(dictionary), result.samples, result.values,
                     build_options);
}

}  // namespace rsm
