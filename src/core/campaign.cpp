#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace rsm {

Real CampaignReport::success_fraction() const {
  if (attempted == 0) return 0;
  return static_cast<Real>(succeeded) / static_cast<Real>(attempted);
}

Index CampaignReport::error_count(ErrorCode code) const {
  return error_histogram[static_cast<std::size_t>(code)];
}

bool CampaignReport::fit_allowed() const {
  return attempted > 0 && success_fraction() >= min_success_fraction;
}

std::string CampaignReport::summary() const {
  std::ostringstream os;
  os << "campaign: " << attempted << " attempted, " << succeeded
     << " succeeded (" << recovered << " recovered on retry), "
     << quarantined.size() << " quarantined, " << total_retries
     << " retries; success fraction "
     << (attempted > 0 ? success_fraction() : Real{0}) << " (threshold "
     << min_success_fraction << ")";
  bool any_errors = false;
  for (Index count : error_histogram) any_errors = any_errors || count > 0;
  if (any_errors) {
    os << "\nfailed attempts by code:";
    for (int c = 0; c < kNumErrorCodes; ++c) {
      const Index count = error_histogram[static_cast<std::size_t>(c)];
      if (count == 0) continue;
      os << ' ' << error_code_name(static_cast<ErrorCode>(c)) << '=' << count;
    }
  }
  if (!quarantined.empty()) {
    os << "\nquarantined samples:";
    for (const QuarantinedSample& q : quarantined)
      os << ' ' << q.sample << " [" << error_code_name(q.code) << ']';
  }
  return os.str();
}

obs::JsonValue CampaignReport::to_json() const {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("attempted", static_cast<std::int64_t>(attempted));
  doc.set("succeeded", static_cast<std::int64_t>(succeeded));
  doc.set("recovered", static_cast<std::int64_t>(recovered));
  doc.set("total_retries", static_cast<std::int64_t>(total_retries));
  doc.set("success_fraction", static_cast<double>(success_fraction()));
  doc.set("min_success_fraction", static_cast<double>(min_success_fraction));
  doc.set("fit_allowed", fit_allowed());
  obs::JsonValue errors = obs::JsonValue::object();
  for (int c = 0; c < kNumErrorCodes; ++c) {
    errors.set(error_code_name(static_cast<ErrorCode>(c)),
               static_cast<std::int64_t>(
                   error_histogram[static_cast<std::size_t>(c)]));
  }
  doc.set("failed_attempts_by_code", std::move(errors));
  obs::JsonValue quarantine = obs::JsonValue::array();
  for (const QuarantinedSample& q : quarantined) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("sample", static_cast<std::int64_t>(q.sample));
    entry.set("code", error_code_name(q.code));
    entry.set("reason", q.reason);
    quarantine.push_back(std::move(entry));
  }
  doc.set("quarantined", std::move(quarantine));
  return doc;
}

CampaignResult run_campaign(const Matrix& samples,
                            const SampleEvaluator& evaluate,
                            const CampaignOptions& options) {
  RSM_TRACE_SPAN("campaign.run");
  RSM_CHECK_MSG(samples.rows() > 0, "campaign needs at least one sample");
  RSM_CHECK_MSG(options.max_attempts >= 1,
                "campaign needs a positive attempt budget");
  RSM_CHECK(static_cast<bool>(evaluate));

  const Index num_samples = samples.rows();
  CampaignResult result;
  CampaignReport& report = result.report;
  report.attempted = num_samples;
  report.min_success_fraction = options.min_success_fraction;

  std::vector<Real> values;
  std::vector<Index> survivors;
  values.reserve(static_cast<std::size_t>(num_samples));
  survivors.reserve(static_cast<std::size_t>(num_samples));

  for (Index k = 0; k < num_samples; ++k) {
    ErrorCode last_code = ErrorCode::kUnclassified;
    std::string last_reason;
    bool ok = false;
    int attempts_used = 0;
    for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
      if (attempt > 0) ++report.total_retries;
      attempts_used = attempt + 1;
      try {
        options.fault_injector.throw_if_faulted(k, attempt);
        const Real value = evaluate(samples.row(k), attempt);
        if (!std::isfinite(value)) {
          throw NumericalDomainError("evaluator returned a non-finite value",
                                     "campaign", k);
        }
        ok = true;
        ++report.succeeded;
        if (attempt > 0) ++report.recovered;
        values.push_back(value);
        survivors.push_back(k);
        break;
      } catch (const std::exception& e) {
        last_code = classify_error(e);
        last_reason = e.what();
        ++report.error_histogram[static_cast<std::size_t>(last_code)];
        RSM_DEBUG("campaign: sample " << k << " attempt " << attempt
                                      << " failed: " << e.what());
      }
    }
    if (!ok) {
      RSM_WARN("campaign: quarantining sample "
               << k << " after " << options.max_attempts << " attempts ["
               << error_code_name(last_code) << "]");
      report.quarantined.push_back({k, last_code, std::move(last_reason)});
    }
    if (obs::telemetry_enabled()) {
      obs::emit(obs::CampaignSampleEvent{
          .sample = k,
          .attempts = attempts_used,
          .succeeded = ok,
          .recovered = ok && attempts_used > 1,
          .code = ok ? ErrorCode::kOk : last_code});
    }
  }

  obs::metrics().counter("campaign.samples.attempted").increment(num_samples);
  obs::metrics().counter("campaign.samples.succeeded")
      .increment(report.succeeded);
  obs::metrics().counter("campaign.samples.quarantined")
      .increment(static_cast<std::int64_t>(report.quarantined.size()));
  obs::metrics().counter("campaign.retries").increment(report.total_retries);

  result.samples = Matrix(static_cast<Index>(survivors.size()),
                          samples.cols());
  for (std::size_t r = 0; r < survivors.size(); ++r) {
    const std::span<const Real> src = samples.row(survivors[r]);
    std::copy(src.begin(), src.end(),
              result.samples.row(static_cast<Index>(r)).begin());
  }
  result.values = std::move(values);
  result.sample_indices = std::move(survivors);
  return result;
}

BuildReport fit_campaign(const CampaignResult& result,
                         std::shared_ptr<const BasisDictionary> dictionary,
                         const BuildOptions& build_options) {
  if (!result.report.fit_allowed()) {
    throw Error("campaign success fraction below fitting threshold:\n" +
                result.report.summary());
  }
  RSM_INFO("campaign: fitting on " << result.samples.rows() << '/'
                                   << result.report.attempted
                                   << " surviving samples");
  return build_model(std::move(dictionary), result.samples, result.values,
                     build_options);
}

}  // namespace rsm
