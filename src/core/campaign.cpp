#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace rsm {
namespace {

std::string bounded_reason(std::string reason) {
  if (reason.size() > kMaxQuarantineReasonLength)
    reason.resize(kMaxQuarantineReasonLength);
  return reason;
}

io::CheckpointHeader make_header(const Matrix& samples,
                                 const CampaignOptions& options) {
  io::CheckpointHeader header;
  header.sample_matrix_hash = io::matrix_fingerprint(samples);
  header.config_hash = io::fault_plan_fingerprint(options.fault_injector,
                                                  options.max_attempts);
  header.total_rows = static_cast<std::uint64_t>(samples.rows());
  return header;
}

/// Replays durable checkpoint rows into the report/survivor state, exactly
/// as the original run recorded them.
void replay_records(const std::vector<io::CheckpointRecord>& records,
                    CampaignReport& report, std::vector<Real>& values,
                    std::vector<Index>& survivors) {
  for (const io::CheckpointRecord& record : records) {
    ++report.attempted;
    report.total_retries += record.attempts - 1;
    if (record.type == io::CheckpointRecord::Type::kSample) {
      ++report.succeeded;
      if (record.attempts > 1) ++report.recovered;
      values.push_back(record.value);
      survivors.push_back(record.sample);
    } else {
      // The per-attempt codes of the original failed attempts are not
      // logged; attribute all of them to the final classification.
      report.error_histogram[static_cast<std::size_t>(record.code)] +=
          record.attempts;
      report.quarantined.push_back(
          {record.sample, record.code, record.reason});
    }
  }
  report.resumed_samples = static_cast<Index>(records.size());
}

/// The shared engine behind run_campaign (resumed == nullptr) and
/// resume_campaign (resumed == the loaded, verified checkpoint).
CampaignResult run_rows(const Matrix& samples, const SampleEvaluator& evaluate,
                        const CampaignOptions& options,
                        const io::CheckpointData* resumed) {
  RSM_TRACE_SPAN("campaign.run");
  RSM_CHECK_MSG(samples.rows() > 0, "campaign needs at least one sample");
  RSM_CHECK_MSG(options.max_attempts >= 1,
                "campaign needs a positive attempt budget");
  RSM_CHECK(static_cast<bool>(evaluate));

  const Index num_samples = samples.rows();
  CampaignResult result;
  CampaignReport& report = result.report;
  report.min_success_fraction = options.min_success_fraction;

  std::vector<Real> values;
  std::vector<Index> survivors;
  values.reserve(static_cast<std::size_t>(num_samples));
  survivors.reserve(static_cast<std::size_t>(num_samples));

  Index start_row = 0;
  if (resumed != nullptr) {
    replay_records(resumed->records, report, values, survivors);
    start_row = static_cast<Index>(resumed->records.size());
    obs::metrics().counter("campaign.samples.resumed")
        .increment(report.resumed_samples);
  }

  // Durable log. Construction rewrites the file atomically (fresh runs get
  // an empty log, resumes a clean base without the torn tail); a failure
  // here — or an append failure the writer cannot self-heal — records an
  // I/O error and the campaign continues without durability.
  std::unique_ptr<io::CheckpointWriter> writer;
  auto sync_checkpoint_counters = [&] {
    if (writer == nullptr) return;
    report.checkpoint_records = writer->records_appended();
    report.checkpoint_flushes = writer->flushes();
    report.checkpoint_rewrites = writer->rewrites();
  };
  auto on_checkpoint_failure = [&](const IoError& e) {
    RSM_WARN("campaign: checkpointing disabled after I/O failure: "
             << e.what());
    ++report.error_histogram[static_cast<std::size_t>(ErrorCode::kIoError)];
    report.checkpoint_failed = true;
    sync_checkpoint_counters();
    writer.reset();
    obs::metrics().counter("campaign.checkpoint.failures").increment();
  };
  if (options.checkpoint.enabled()) {
    try {
      writer = std::make_unique<io::CheckpointWriter>(
          options.checkpoint, make_header(samples, options),
          resumed != nullptr ? resumed->records
                             : std::vector<io::CheckpointRecord>{});
    } catch (const IoError& e) {
      on_checkpoint_failure(e);
    }
  }
  auto checkpoint_append = [&](const io::CheckpointRecord& record) {
    if (writer == nullptr) return;
    try {
      writer->append(record);
    } catch (const IoError& e) {
      on_checkpoint_failure(e);
    }
  };

  const Deadline global_deadline =
      options.time_budget_seconds > 0
          ? Deadline::after_seconds(options.time_budget_seconds)
          : Deadline::unlimited();
  auto globally_stopped = [&] {
    return options.cancel.cancelled() || global_deadline.expired();
  };

  for (Index k = start_row; k < num_samples; ++k) {
    if (globally_stopped()) {
      report.truncated = true;
      break;
    }
    ErrorCode last_code = ErrorCode::kUnclassified;
    std::string last_reason;
    bool ok = false;
    bool interrupted = false;
    int attempts_used = 0;
    Real value = 0;
    for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
      if (attempt > 0) ++report.total_retries;
      attempts_used = attempt + 1;
      // Each attempt runs under its own watchdog; the effective deadline is
      // the sooner of the watchdog and the global budget, and cooperative
      // check sites (DC Newton, transient stepper, greedy solver loops)
      // observe it ambiently without evaluator plumbing.
      const Deadline attempt_deadline = Deadline::sooner(
          options.sample_deadline_seconds > 0
              ? Deadline::after_seconds(options.sample_deadline_seconds)
              : Deadline::unlimited(),
          global_deadline);
      ScopedRunControl scope({options.cancel, attempt_deadline});
      try {
        options.fault_injector.throw_if_faulted(k, attempt);
        value = evaluate(samples.row(k), attempt);
        if (!std::isfinite(value)) {
          throw NumericalDomainError("evaluator returned a non-finite value",
                                     "campaign", k);
        }
        ok = true;
        break;
      } catch (const std::exception& e) {
        last_code = classify_error(e);
        last_reason = e.what();
        if (globally_stopped()) {
          // The stop was the campaign's, not the sample's: leave the row
          // unevaluated (a resume will redo it) instead of quarantining.
          if (attempt > 0) --report.total_retries;
          interrupted = true;
          break;
        }
        ++report.error_histogram[static_cast<std::size_t>(last_code)];
        if (last_code == ErrorCode::kDeadlineExceeded) {
          obs::metrics().counter("campaign.deadline_trips").increment();
        }
        RSM_DEBUG("campaign: sample " << k << " attempt " << attempt
                                      << " failed: " << e.what());
      }
    }
    if (interrupted) {
      report.truncated = true;
      break;
    }
    ++report.attempted;
    if (ok) {
      ++report.succeeded;
      if (attempts_used > 1) ++report.recovered;
      values.push_back(value);
      survivors.push_back(k);
      io::CheckpointRecord record;
      record.type = io::CheckpointRecord::Type::kSample;
      record.sample = k;
      record.attempts = attempts_used;
      record.value = value;
      checkpoint_append(record);
    } else {
      RSM_WARN("campaign: quarantining sample "
               << k << " after " << options.max_attempts << " attempts ["
               << error_code_name(last_code) << "]");
      last_reason = bounded_reason(std::move(last_reason));
      report.quarantined.push_back({k, last_code, last_reason});
      io::CheckpointRecord record;
      record.type = io::CheckpointRecord::Type::kQuarantine;
      record.sample = k;
      record.attempts = attempts_used;
      record.code = last_code;
      record.reason = std::move(last_reason);
      checkpoint_append(record);
    }
    if (obs::telemetry_enabled()) {
      obs::emit(obs::CampaignSampleEvent{
          .sample = k,
          .attempts = attempts_used,
          .succeeded = ok,
          .recovered = ok && attempts_used > 1,
          .code = ok ? ErrorCode::kOk : last_code});
    }
  }

  // Graceful shutdown: everything evaluated so far becomes durable now,
  // whatever the flush cadence was.
  if (writer != nullptr) {
    try {
      writer->flush();
    } catch (const IoError& e) {
      on_checkpoint_failure(e);
    }
  }
  sync_checkpoint_counters();
  if (report.truncated) {
    obs::metrics().counter("campaign.truncated_runs").increment();
    RSM_WARN("campaign: truncated after "
             << report.attempted << '/' << num_samples << " samples ("
             << (options.cancel.cancelled() ? "cancellation requested"
                                            : "time budget exhausted")
             << "); survivors are durable and fit-worthy");
  }

  obs::metrics().counter("campaign.samples.attempted")
      .increment(report.attempted);
  obs::metrics().counter("campaign.samples.succeeded")
      .increment(report.succeeded);
  obs::metrics().counter("campaign.samples.quarantined")
      .increment(static_cast<std::int64_t>(report.quarantined.size()));
  obs::metrics().counter("campaign.retries").increment(report.total_retries);

  result.samples = Matrix(static_cast<Index>(survivors.size()),
                          samples.cols());
  for (std::size_t r = 0; r < survivors.size(); ++r) {
    const std::span<const Real> src = samples.row(survivors[r]);
    std::copy(src.begin(), src.end(),
              result.samples.row(static_cast<Index>(r)).begin());
  }
  result.values = std::move(values);
  result.sample_indices = std::move(survivors);
  return result;
}

}  // namespace

Real CampaignReport::success_fraction() const {
  if (attempted == 0) return 0;
  return static_cast<Real>(succeeded) / static_cast<Real>(attempted);
}

Index CampaignReport::error_count(ErrorCode code) const {
  return error_histogram[static_cast<std::size_t>(code)];
}

bool CampaignReport::fit_allowed() const {
  return attempted > 0 && success_fraction() >= min_success_fraction;
}

std::string CampaignReport::summary() const {
  std::ostringstream os;
  os << "campaign: " << attempted << " attempted, " << succeeded
     << " succeeded (" << recovered << " recovered on retry), "
     << quarantined.size() << " quarantined, " << total_retries
     << " retries; success fraction "
     << (attempted > 0 ? success_fraction() : Real{0}) << " (threshold "
     << min_success_fraction << ")";
  if (truncated) os << "\nrun TRUNCATED (time budget or cancellation)";
  if (resumed_samples > 0)
    os << "\nresumed " << resumed_samples << " samples from checkpoint";
  if (checkpoint_records > 0 || checkpoint_failed) {
    os << "\ncheckpoint: " << checkpoint_records << " records, "
       << checkpoint_flushes << " flushes, " << checkpoint_rewrites
       << " rewrites" << (checkpoint_failed ? " (FAILED, disabled)" : "");
  }
  bool any_errors = false;
  for (Index count : error_histogram) any_errors = any_errors || count > 0;
  if (any_errors) {
    os << "\nfailed attempts by code:";
    for (int c = 0; c < kNumErrorCodes; ++c) {
      const Index count = error_histogram[static_cast<std::size_t>(c)];
      if (count == 0) continue;
      os << ' ' << error_code_name(static_cast<ErrorCode>(c)) << '=' << count;
    }
  }
  if (!quarantined.empty()) {
    os << "\nquarantined samples:";
    for (const QuarantinedSample& q : quarantined)
      os << ' ' << q.sample << " [" << error_code_name(q.code) << ']';
  }
  return os.str();
}

obs::JsonValue CampaignReport::to_json() const {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("attempted", static_cast<std::int64_t>(attempted));
  doc.set("succeeded", static_cast<std::int64_t>(succeeded));
  doc.set("recovered", static_cast<std::int64_t>(recovered));
  doc.set("total_retries", static_cast<std::int64_t>(total_retries));
  doc.set("success_fraction", static_cast<double>(success_fraction()));
  doc.set("min_success_fraction", static_cast<double>(min_success_fraction));
  doc.set("fit_allowed", fit_allowed());
  doc.set("truncated", truncated);
  obs::JsonValue checkpoint = obs::JsonValue::object();
  checkpoint.set("records", static_cast<std::int64_t>(checkpoint_records));
  checkpoint.set("flushes", static_cast<std::int64_t>(checkpoint_flushes));
  checkpoint.set("rewrites", static_cast<std::int64_t>(checkpoint_rewrites));
  checkpoint.set("resumed_samples",
                 static_cast<std::int64_t>(resumed_samples));
  checkpoint.set("failed", checkpoint_failed);
  doc.set("checkpoint", std::move(checkpoint));
  obs::JsonValue errors = obs::JsonValue::object();
  for (int c = 0; c < kNumErrorCodes; ++c) {
    errors.set(error_code_name(static_cast<ErrorCode>(c)),
               static_cast<std::int64_t>(
                   error_histogram[static_cast<std::size_t>(c)]));
  }
  doc.set("failed_attempts_by_code", std::move(errors));
  obs::JsonValue quarantine = obs::JsonValue::array();
  for (const QuarantinedSample& q : quarantined) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("sample", static_cast<std::int64_t>(q.sample));
    entry.set("code", error_code_name(q.code));
    entry.set("reason", q.reason);
    quarantine.push_back(std::move(entry));
  }
  doc.set("quarantined", std::move(quarantine));
  return doc;
}

CampaignResult run_campaign(const Matrix& samples,
                            const SampleEvaluator& evaluate,
                            const CampaignOptions& options) {
  return run_rows(samples, evaluate, options, nullptr);
}

CampaignResult resume_campaign(const Matrix& samples,
                               const SampleEvaluator& evaluate,
                               const CampaignOptions& options) {
  RSM_CHECK_MSG(options.checkpoint.enabled(),
                "resume_campaign needs CheckpointOptions.path");
  RSM_TRACE_SPAN("campaign.resume");
  // The torn trailing record an interrupted append leaves behind is the
  // expected crash artifact; anything else invalid is a hard reject.
  const io::CheckpointData data =
      io::load_checkpoint(options.checkpoint.path, io::LoadMode::kRecoverTail);

  const io::CheckpointHeader expected = make_header(samples, options);
  if (data.header.sample_matrix_hash != expected.sample_matrix_hash ||
      data.header.total_rows != expected.total_rows) {
    throw IoError(
        "checkpoint '" + options.checkpoint.path +
            "' belongs to a different sample matrix; refusing to resume "
            "(resumed runs must be bit-identical to uninterrupted ones)",
        "checkpoint");
  }
  if (data.header.config_hash != expected.config_hash) {
    throw IoError(
        "checkpoint '" + options.checkpoint.path +
            "' was written under a different campaign configuration "
            "(attempt budget / fault plan); refusing to resume",
        "checkpoint");
  }
  if (data.records.size() > static_cast<std::size_t>(samples.rows())) {
    throw IoError("checkpoint '" + options.checkpoint.path +
                      "' holds more records than the campaign has rows",
                  "checkpoint");
  }
  // run_campaign writes exactly one record per row, in row order; anything
  // else means the log was tampered with or mixed between runs.
  for (std::size_t r = 0; r < data.records.size(); ++r) {
    if (data.records[r].sample != static_cast<Index>(r)) {
      throw IoError("checkpoint '" + options.checkpoint.path +
                        "' records are not in row order; refusing to resume",
                    "checkpoint");
    }
  }
  RSM_INFO("campaign: resuming from checkpoint '"
           << options.checkpoint.path << "' with " << data.records.size()
           << " durable rows" << (data.truncated_tail ? " (torn tail dropped)"
                                                      : ""));
  return run_rows(samples, evaluate, options, &data);
}

BuildReport fit_campaign(const CampaignResult& result,
                         std::shared_ptr<const BasisDictionary> dictionary,
                         const BuildOptions& build_options) {
  if (!result.report.fit_allowed()) {
    throw Error("campaign success fraction below fitting threshold:\n" +
                result.report.summary());
  }
  RSM_INFO("campaign: fitting on " << result.samples.rows() << '/'
                                   << result.report.attempted
                                   << " surviving samples");
  return build_model(std::move(dictionary), result.samples, result.values,
                     build_options);
}

}  // namespace rsm
