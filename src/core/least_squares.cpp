#include "core/least_squares.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "util/errors.hpp"
#include "util/log.hpp"

namespace rsm {
namespace {

bool all_finite(const std::vector<Real>& v) {
  for (Real x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

std::vector<Real> LeastSquaresFitter::fit(const Matrix& g,
                                          std::span<const Real> f) const {
  RSM_CHECK(static_cast<Index>(f.size()) == g.rows());
  if (options_.ridge == 0 && !options_.use_normal_equations) {
    RSM_CHECK_MSG(g.rows() >= g.cols(),
                  "least squares is under-determined: K=" << g.rows()
                      << " < M=" << g.cols()
                      << " (use a sparse solver instead)");
    // Plain Householder QR first; a rank-deficient design (duplicate or
    // degenerate columns) falls back to the rank-revealing pivoted
    // factorization instead of aborting the fit.
    try {
      std::vector<Real> x = least_squares_solve(g, f);
      if (all_finite(x)) return x;
      RSM_WARN("least squares: non-finite QR solution, "
               "falling back to pivoted QR");
    } catch (const SingularMatrixError& e) {
      RSM_WARN("least squares: " << e.what()
                                 << "; falling back to pivoted QR");
    }
    return least_squares_solve_pivoted(g, f);
  }

  RSM_CHECK_MSG(options_.ridge > 0 || g.rows() >= g.cols(),
                "normal equations under-determined without ridge");
  Matrix gtg = gram(g);
  std::vector<Real> gtf(static_cast<std::size_t>(g.cols()));
  gemv_transposed(g, f, gtf);

  // The normal equations square the condition number, so Cholesky can hit a
  // non-positive pivot on designs QR still handles. Escalate the ridge a few
  // times (restores positive definiteness), then fall back to pivoted QR on
  // the original system.
  Real ridge = options_.ridge;
  for (int attempt = 0; attempt < 3; ++attempt) {
    Matrix damped = gtg;
    for (Index i = 0; i < damped.rows(); ++i) damped(i, i) += ridge;
    try {
      return cholesky_solve(damped, gtf);
    } catch (const SingularMatrixError& e) {
      ridge = ridge > 0 ? ridge * 100 : Real{1e-10};
      RSM_WARN("least squares: " << e.what() << "; retrying with ridge "
                                 << ridge);
    }
  }
  if (g.rows() >= g.cols()) {
    RSM_WARN("least squares: normal equations unsalvageable, "
             "falling back to pivoted QR");
    return least_squares_solve_pivoted(g, f);
  }
  throw NumericalDomainError(
      "normal-equation solve failed and the system is under-determined; "
      "no QR fallback possible");
}

}  // namespace rsm
