#include "core/least_squares.hpp"

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"

namespace rsm {

std::vector<Real> LeastSquaresFitter::fit(const Matrix& g,
                                          std::span<const Real> f) const {
  RSM_CHECK(static_cast<Index>(f.size()) == g.rows());
  if (options_.ridge == 0 && !options_.use_normal_equations) {
    RSM_CHECK_MSG(g.rows() >= g.cols(),
                  "least squares is under-determined: K=" << g.rows()
                      << " < M=" << g.cols()
                      << " (use a sparse solver instead)");
    return least_squares_solve(g, f);
  }

  RSM_CHECK_MSG(options_.ridge > 0 || g.rows() >= g.cols(),
                "normal equations under-determined without ridge");
  Matrix gtg = gram(g);
  for (Index i = 0; i < gtg.rows(); ++i) gtg(i, i) += options_.ridge;
  std::vector<Real> gtf(static_cast<std::size_t>(g.cols()));
  gemv_transposed(g, f, gtf);
  return cholesky_solve(gtg, gtf);
}

}  // namespace rsm
