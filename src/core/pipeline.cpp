#include "core/pipeline.hpp"

#include <algorithm>

#include "core/lar.hpp"
#include "core/least_squares.hpp"
#include "core/metrics.hpp"
#include "core/omp.hpp"
#include "core/star.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace rsm {

const char* method_name(Method method) {
  switch (method) {
    case Method::kLeastSquares: return "LS";
    case Method::kStar: return "STAR";
    case Method::kLar: return "LAR";
    case Method::kOmp: return "OMP";
  }
  return "?";
}

std::unique_ptr<PathSolver> make_path_solver(Method method) {
  switch (method) {
    case Method::kStar: return std::make_unique<StarSolver>();
    case Method::kLar: return std::make_unique<LarSolver>();
    case Method::kOmp: return std::make_unique<OmpSolver>();
    case Method::kLeastSquares:
      break;
  }
  throw Error("least squares is not a path solver; call build_model instead");
}

BuildReport build_model(std::shared_ptr<const BasisDictionary> dictionary,
                        const Matrix& samples, std::span<const Real> values,
                        const BuildOptions& options) {
  RSM_CHECK(dictionary != nullptr);
  RSM_CHECK(samples.cols() == dictionary->num_variables());
  WallTimer timer;
  Matrix design;
  {
    RSM_TRACE_SPAN("pipeline.design_matrix");
    design = dictionary->design_matrix(samples);
  }
  BuildReport report =
      build_model_from_design(std::move(dictionary), design, values, options);
  report.fit_seconds = timer.seconds();  // include design evaluation
  return report;
}

BuildReport build_model_from_design(
    std::shared_ptr<const BasisDictionary> dictionary, const Matrix& design,
    std::span<const Real> values, const BuildOptions& options) {
  RSM_TRACE_SPAN("pipeline.fit");
  RSM_CHECK(dictionary != nullptr);
  RSM_CHECK(design.cols() == dictionary->size());
  RSM_CHECK(static_cast<Index>(values.size()) == design.rows());

  WallTimer timer;
  BuildReport report;
  report.method = options.method;

  if (options.method == Method::kLeastSquares) {
    RSM_TRACE_SPAN("pipeline.least_squares");
    LeastSquaresFitter::Options ls_opt;
    ls_opt.ridge = options.ridge;
    const std::vector<Real> dense =
        LeastSquaresFitter(ls_opt).fit(design, values);
    report.model = SparseModel::from_dense(dictionary, dense,
                                           options.coefficient_threshold);
  } else {
    const std::unique_ptr<PathSolver> solver = make_path_solver(options.method);
    Index lambda = options.max_lambda;
    if (!options.skip_cross_validation) {
      RSM_TRACE_SPAN("pipeline.cross_validation");
      CrossValidator::Options cv_opt;
      cv_opt.num_folds = options.cv_folds;
      cv_opt.seed = options.cv_seed;
      report.cv = CrossValidator(cv_opt).run(*solver, design, values,
                                             options.max_lambda);
      lambda = report.cv.best_lambda;
    }
    // Final fit on all training data at the chosen lambda.
    RSM_TRACE_SPAN("pipeline.final_fit");
    const SolverPath path = solver->fit_path(design, values, lambda);
    RSM_CHECK_MSG(path.num_steps() > 0, "solver returned an empty path");
    const Index t = std::min<Index>(lambda, path.num_steps()) - 1;
    const std::vector<Real> dense =
        path.dense_coefficients(t, dictionary->size());
    report.model = SparseModel::from_dense(dictionary, dense,
                                           options.coefficient_threshold);
  }

  report.lambda = report.model.num_terms();
  report.fit_seconds = timer.seconds();

  // Training error for the report (design matrix already in hand).
  std::vector<Real> pred(static_cast<std::size_t>(design.rows()), Real{0});
  for (const ModelTerm& term : report.model.terms())
    for (Index k = 0; k < design.rows(); ++k)
      pred[static_cast<std::size_t>(k)] +=
          term.coefficient * design(k, term.basis_index);
  report.training_error = relative_rms_error(pred, values);

  obs::metrics().counter("pipeline.models_built").increment();
  const std::string per_method_counter =
      std::string("pipeline.models_built.") + method_name(options.method);
  obs::metrics()
      .counter(per_method_counter)  // rsm-lint-allow(metric-name-literal)
      .increment();
  obs::metrics()
      .histogram("pipeline.fit_seconds",
                 {1e-3, 1e-2, 0.1, 0.5, 1, 5, 30, 120, 600})
      .observe(report.fit_seconds);
  obs::metrics().gauge("pipeline.last_lambda").set(
      static_cast<double>(report.lambda));
  return report;
}

Real validate_model(const SparseModel& model, const Matrix& test_samples,
                    std::span<const Real> test_values) {
  const std::vector<Real> pred = model.predict_all(test_samples);
  return relative_rms_error(pred, test_values);
}

SparseModel refit_model(const SparseModel& model, const Matrix& samples,
                        std::span<const Real> values) {
  const BasisDictionary& dict = model.dictionary();
  RSM_CHECK(samples.cols() == dict.num_variables());
  RSM_CHECK(static_cast<Index>(values.size()) == samples.rows());
  const Index p = model.num_terms();
  if (p == 0) return model;
  RSM_CHECK_MSG(samples.rows() >= p,
                "refit needs at least as many samples as model terms");

  Matrix g_support(samples.rows(), p);
  for (Index j = 0; j < p; ++j) {
    const Index basis = model.terms()[static_cast<std::size_t>(j)].basis_index;
    g_support.set_col(j, dict.evaluate_column(basis, samples));
  }
  const std::vector<Real> coef = LeastSquaresFitter().fit(g_support, values);
  std::vector<ModelTerm> terms;
  terms.reserve(static_cast<std::size_t>(p));
  for (Index j = 0; j < p; ++j)
    terms.push_back({model.terms()[static_cast<std::size_t>(j)].basis_index,
                     coef[static_cast<std::size_t>(j)]});
  return SparseModel(model.dictionary_ptr(), std::move(terms));
}

}  // namespace rsm
