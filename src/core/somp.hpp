// Simultaneous orthogonal matching pursuit (S-OMP).
//
// Extension feature: the OpAmp's four metrics (gain, bandwidth, power,
// offset) are driven by an overlapping handful of device-level variations.
// S-OMP fits all responses at once, selecting at every iteration the basis
// vector with the largest *joint* correlation energy across responses, then
// re-solving each response's least-squares coefficients over the shared
// support. Compared to running OMP per response it
//   * amortizes the selection scans across responses, and
//   * yields one common support — smaller total model storage and a clean
//     answer to "which variations matter for this circuit at all?".
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/common.hpp"

namespace rsm {

struct SompResult {
  /// Shared support, in selection order.
  std::vector<Index> support;

  /// coefficients[r] aligns with `support` for response r.
  std::vector<std::vector<Real>> coefficients;

  /// Residual 2-norm per response after the final step.
  std::vector<Real> residual_norms;
};

class SompSolver {
 public:
  struct Options {
    /// Joint selection score: sum over responses of the squared normalized
    /// correlation. Stop early when the best score falls below this times
    /// the first step's best score (0 = never stop early).
    Real score_tolerance = 0;

    Real dependence_tolerance = 1e-10;
  };

  SompSolver() = default;
  explicit SompSolver(const Options& options) : options_(options) {}

  /// Fits all columns of `responses` (K x R) against the shared design
  /// matrix `g` (K x M) with a common support of up to `max_terms` columns.
  [[nodiscard]] SompResult fit(const Matrix& g, const Matrix& responses,
                               Index max_terms) const;

 private:
  Options options_;
};

}  // namespace rsm
