#include "core/lar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/cancellation.hpp"

namespace rsm {
namespace {

/// Incrementally grown Cholesky of the Gram matrix of a set of unit-norm
/// columns. Supports append (O(p^2)) and remove (rebuild, O(p^3), rare —
/// only on LASSO drops).
class ActiveGramCholesky {
 public:
  explicit ActiveGramCholesky(Index max_size) : l_(max_size, max_size) {}

  [[nodiscard]] Index size() const { return p_; }

  /// Appends a column with the given cross products g = X_A' x_new and
  /// squared norm. Returns false if the new column is numerically in the
  /// span of the active set.
  [[nodiscard]] bool append(std::span<const Real> cross, Real squared_norm) {
    RSM_CHECK(static_cast<Index>(cross.size()) == p_);
    // Solve L l12 = cross.
    std::vector<Real> l12(static_cast<std::size_t>(p_));
    for (Index i = 0; i < p_; ++i) {
      Real s = cross[static_cast<std::size_t>(i)];
      for (Index k = 0; k < i; ++k) s -= l_(i, k) * l12[static_cast<std::size_t>(k)];
      l12[static_cast<std::size_t>(i)] = s / l_(i, i);
    }
    Real d = squared_norm;
    for (Real v : l12) d -= v * v;
    if (d <= Real{1e-12} * squared_norm) return false;
    for (Index i = 0; i < p_; ++i) l_(p_, i) = l12[static_cast<std::size_t>(i)];
    l_(p_, p_) = std::sqrt(d);
    ++p_;
    return true;
  }

  /// Rebuilds from an explicit Gram matrix after a drop.
  void rebuild(const Matrix& gram) {
    RSM_CHECK(gram.rows() == gram.cols());
    p_ = 0;
    for (Index j = 0; j < gram.rows(); ++j) {
      std::vector<Real> cross(static_cast<std::size_t>(p_));
      for (Index i = 0; i < p_; ++i) cross[static_cast<std::size_t>(i)] = gram(j, i);
      RSM_CHECK_MSG(append(cross, gram(j, j)),
                    "active set became singular after LASSO drop");
    }
  }

  /// Solves (X_A' X_A) v = rhs.
  [[nodiscard]] std::vector<Real> solve(std::span<const Real> rhs) const {
    RSM_CHECK(static_cast<Index>(rhs.size()) == p_);
    std::vector<Real> v(rhs.begin(), rhs.end());
    for (Index i = 0; i < p_; ++i) {
      Real s = v[static_cast<std::size_t>(i)];
      for (Index k = 0; k < i; ++k) s -= l_(i, k) * v[static_cast<std::size_t>(k)];
      v[static_cast<std::size_t>(i)] = s / l_(i, i);
    }
    for (Index i = p_ - 1; i >= 0; --i) {
      Real s = v[static_cast<std::size_t>(i)];
      for (Index k = i + 1; k < p_; ++k)
        s -= l_(k, i) * v[static_cast<std::size_t>(k)];
      v[static_cast<std::size_t>(i)] = s / l_(i, i);
    }
    return v;
  }

 private:
  Index p_ = 0;
  Matrix l_;
};

}  // namespace

SolverPath LarSolver::fit_path(const Matrix& g, std::span<const Real> f,
                               Index max_steps) const {
  RSM_TRACE_SPAN("lar.fit");
  const Index num_samples = g.rows();
  const Index num_columns = g.cols();
  RSM_CHECK(static_cast<Index>(f.size()) == num_samples);
  RSM_CHECK(max_steps > 0);
  max_steps = std::min(max_steps, std::min(num_samples - 1, num_columns));

  // Normalize columns to unit 2-norm. Zero columns are excluded outright.
  Matrix x = g;
  std::vector<Real> scale(static_cast<std::size_t>(num_columns), Real{0});
  std::vector<bool> usable(static_cast<std::size_t>(num_columns), false);
  for (Index j = 0; j < num_columns; ++j) {
    std::vector<Real> col = x.col(j);
    const Real norm = nrm2(col);
    if (norm <= Real{1e-300}) continue;
    scale[static_cast<std::size_t>(j)] = norm;
    usable[static_cast<std::size_t>(j)] = true;
    const Real inv = Real{1} / norm;
    for (Real& v : col) v *= inv;
    x.set_col(j, col);
  }

  SolverPath path;
  path.active_sets = {};  // filled per step (drops break prefix structure)

  std::vector<Real> mu(static_cast<std::size_t>(num_samples), Real{0});
  std::vector<Real> residual(f.begin(), f.end());
  std::vector<Real> c(static_cast<std::size_t>(num_columns));
  std::vector<Real> a(static_cast<std::size_t>(num_columns));
  std::vector<Real> u(static_cast<std::size_t>(num_samples));

  std::vector<Index> active;
  std::vector<Real> signs;
  std::vector<Real> beta;  // coefficients in normalized space, active order
  std::vector<bool> in_active(static_cast<std::size_t>(num_columns), false);
  ActiveGramCholesky chol(std::min(num_samples, max_steps + 1));

  gemv_transposed(x, residual, c);
  const Real c0 = max_abs(c);
  if (c0 <= Real{0}) return path;

  bool just_dropped = false;
  // Each loop iteration performs one LAR event (add or drop) plus a move.
  for (Index event = 0; event < 4 * max_steps + 8; ++event) {
    RSM_TRACE_SPAN("lar.step");
    check_cooperative_stop("lar.step");
    if (static_cast<Index>(active.size()) >= max_steps && !just_dropped) break;

    gemv_transposed(x, residual, c);

    if (!just_dropped) {
      // Admit the most correlated inactive column.
      Index best = -1;
      Real best_val = options_.correlation_tolerance * c0;
      for (Index j = 0; j < num_columns; ++j) {
        if (in_active[static_cast<std::size_t>(j)] ||
            !usable[static_cast<std::size_t>(j)])
          continue;
        const Real v = std::abs(c[static_cast<std::size_t>(j)]);
        if (v > best_val) {
          best_val = v;
          best = j;
        }
      }
      if (best < 0) break;  // correlations exhausted

      // Cross products with current active columns.
      std::vector<Real> cross(active.size());
      const std::vector<Real> new_col = x.col(best);
      for (std::size_t i = 0; i < active.size(); ++i)
        cross[i] = dot(x.col(active[i]), new_col);
      if (!chol.append(cross, Real{1})) {
        usable[static_cast<std::size_t>(best)] = false;  // collinear; skip
        continue;
      }
      active.push_back(best);
      in_active[static_cast<std::size_t>(best)] = true;
      signs.push_back(c[static_cast<std::size_t>(best)] >= 0 ? Real{1}
                                                             : Real{-1});
      beta.push_back(0);
    }
    just_dropped = false;

    // Equiangular direction: v = Gram^{-1} s;  A = 1/sqrt(s'v);  the move in
    // coefficient space is d = A v, in sample space u = X_A d.
    const std::vector<Real> v = chol.solve(signs);
    Real s_dot_v = 0;
    for (std::size_t i = 0; i < signs.size(); ++i) s_dot_v += signs[i] * v[i];
    RSM_CHECK_MSG(s_dot_v > 0, "LAR: non-positive equiangular normalization");
    const Real a_norm = Real{1} / std::sqrt(s_dot_v);
    std::vector<Real> d(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) d[i] = a_norm * v[i];

    std::fill(u.begin(), u.end(), Real{0});
    for (std::size_t i = 0; i < active.size(); ++i)
      axpy(d[i], x.col(active[i]), u);
    gemv_transposed(x, u, a);

    // Current common correlation magnitude of the active set.
    Real cmax = 0;
    for (Index j : active)
      cmax = std::max(cmax, std::abs(c[static_cast<std::size_t>(j)]));
    if (cmax <= options_.correlation_tolerance * c0) break;

    // Step length to the next tie (Efron et al., eq. 2.13).
    Real gamma = cmax / a_norm;  // full LS step if nothing ties
    for (Index j = 0; j < num_columns; ++j) {
      if (in_active[static_cast<std::size_t>(j)] ||
          !usable[static_cast<std::size_t>(j)])
        continue;
      const Real cj = c[static_cast<std::size_t>(j)];
      const Real aj = a[static_cast<std::size_t>(j)];
      const Real d1 = a_norm - aj;
      const Real d2 = a_norm + aj;
      if (d1 > Real{1e-14}) {
        const Real t = (cmax - cj) / d1;
        if (t > Real{1e-14} && t < gamma) gamma = t;
      }
      if (d2 > Real{1e-14}) {
        const Real t = (cmax + cj) / d2;
        if (t > Real{1e-14} && t < gamma) gamma = t;
      }
    }

    // LASSO modification: clip at the first zero crossing of an active
    // coefficient and drop that variable.
    Index drop = -1;
    if (options_.lasso) {
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (d[i] == Real{0}) continue;
        const Real t = -beta[i] / d[i];
        if (t > Real{1e-14} && t < gamma) {
          gamma = t;
          drop = static_cast<Index>(i);
        }
      }
    }

    for (std::size_t i = 0; i < active.size(); ++i) beta[i] += gamma * d[i];
    axpy(gamma, u, mu);
    residual = vsub(f, mu);

    if (drop >= 0) {
      const Index col = active[static_cast<std::size_t>(drop)];
      in_active[static_cast<std::size_t>(col)] = false;
      active.erase(active.begin() + drop);
      signs.erase(signs.begin() + drop);
      beta.erase(beta.begin() + drop);
      // Rebuild the active Cholesky from the reduced Gram matrix.
      Matrix gram(static_cast<Index>(active.size()),
                  static_cast<Index>(active.size()));
      for (std::size_t i = 0; i < active.size(); ++i)
        for (std::size_t j = i; j < active.size(); ++j) {
          const Real val = dot(x.col(active[i]), x.col(active[j]));
          gram(static_cast<Index>(i), static_cast<Index>(j)) = val;
          gram(static_cast<Index>(j), static_cast<Index>(i)) = val;
        }
      chol.rebuild(gram);
      just_dropped = true;
    }

    // Record the step: active set + de-normalized coefficients.
    path.active_sets.push_back(active);
    std::vector<Real> denorm(active.size());
    for (std::size_t i = 0; i < active.size(); ++i)
      denorm[i] = beta[i] / scale[static_cast<std::size_t>(active[i])];
    path.coefficients.push_back(std::move(denorm));
    path.selection_order.push_back(active.empty() ? -1 : active.back());
    path.residual_norms.push_back(nrm2(residual));

    if (obs::telemetry_enabled()) {
      obs::emit(obs::SolverIterationEvent{
          .solver = "LAR",
          .step = static_cast<Index>(path.coefficients.size()) - 1,
          .selected = path.selection_order.back(),
          .max_correlation = cmax,
          .residual_norm = path.residual_norms.back(),
          .active_count = static_cast<Index>(active.size())});
    }

    if (gamma >= cmax / a_norm - Real{1e-14} && drop < 0) {
      // Took the full least-squares step: correlations are (numerically)
      // zero, the path is complete.
      break;
    }
  }
  return path;
}

}  // namespace rsm
