// Fault-tolerant simulation campaign runner.
//
// The paper fits sparse models from a small, expensive set of K
// transistor-level simulations — so a production flow can afford neither to
// waste samples nor to let one pathological sample (a DC operating point no
// homotopy rescues, a singular MNA matrix) abort the whole run. The
// campaign layer sits between sampling and fitting:
//
//   * every sample is evaluated through a type-erased SampleEvaluator; the
//     escalation argument lets circuit benches harden their solver options
//     per retry (spice::escalated);
//   * failures are classified by the structured error taxonomy
//     (util/errors.hpp) and retried up to a per-sample budget;
//   * samples that keep failing are *quarantined* — recorded with their
//     final error code and excluded from the fit — instead of aborting;
//   * the CampaignReport counts attempted / succeeded / retried-recovered /
//     quarantined samples and a per-ErrorCode histogram;
//   * fitting proceeds only when the success fraction clears a configurable
//     threshold, otherwise fit_campaign fails fast with the report.
//
// A deterministic FaultInjector (util/fault_injection.hpp) can be planted
// in the options to force singular solves / Newton stalls at hash-chosen
// sample indices, making the retry and quarantine machinery testable
// end-to-end in CI.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "linalg/matrix.hpp"
#include "obs/json.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace rsm {

/// Evaluates one variation sample (a row of the sample matrix) to a scalar
/// performance. `escalation` is the 0-based attempt index; implementations
/// map it to progressively hardened solver options. Failures are reported
/// by throwing (ideally a StructuredError subclass).
using SampleEvaluator =
    std::function<Real(std::span<const Real> sample, int escalation)>;

struct CampaignOptions {
  /// Attempts per sample (>= 1); attempt i runs at escalation level i.
  int max_attempts = 3;

  /// Fitting proceeds when succeeded/attempted clears this fraction.
  Real min_success_fraction = 0.9;

  /// Deterministic fault injection (default-constructed = disabled).
  FaultInjector fault_injector;
};

/// One permanently failed sample with its final classification.
struct QuarantinedSample {
  Index sample = -1;
  ErrorCode code = ErrorCode::kUnclassified;
  std::string reason;
};

struct CampaignReport {
  Index attempted = 0;
  Index succeeded = 0;

  /// Succeeded, but only after at least one failed attempt.
  Index recovered = 0;

  /// Extra attempts spent beyond the first, over all samples.
  int total_retries = 0;

  std::vector<QuarantinedSample> quarantined;

  /// Failed attempts by ErrorCode (indexed by static_cast<int>(code)).
  std::array<Index, kNumErrorCodes> error_histogram{};

  /// Threshold copied from CampaignOptions for the fit gate.
  Real min_success_fraction = 0;

  [[nodiscard]] Real success_fraction() const;
  [[nodiscard]] Index error_count(ErrorCode code) const;
  [[nodiscard]] bool fit_allowed() const;

  /// Human-readable multi-line summary (counts, histogram, quarantine).
  [[nodiscard]] std::string summary() const;

  /// Machine-readable form of the same report, suitable for embedding in a
  /// bench report (obs/report.hpp) or dumping alongside campaign logs.
  [[nodiscard]] obs::JsonValue to_json() const;
};

struct CampaignResult {
  CampaignReport report;

  /// Surviving samples, compacted (succeeded x N), aligned with `values`.
  Matrix samples;
  std::vector<Real> values;

  /// Original row index of each surviving row.
  std::vector<Index> sample_indices;
};

/// Runs every row of `samples` through `evaluate` with retry, escalation,
/// and quarantine. Never throws on per-sample failures; only on misuse
/// (empty sample set, non-positive attempt budget).
[[nodiscard]] CampaignResult run_campaign(const Matrix& samples,
                                          const SampleEvaluator& evaluate,
                                          const CampaignOptions& options = {});

/// The fit gate: builds a sparse model from the campaign survivors when the
/// success fraction clears the report's threshold, and throws an Error
/// carrying the report summary otherwise (fail fast with diagnostics).
[[nodiscard]] BuildReport fit_campaign(
    const CampaignResult& result,
    std::shared_ptr<const BasisDictionary> dictionary,
    const BuildOptions& build_options = {});

}  // namespace rsm
