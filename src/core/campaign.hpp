// Fault-tolerant, durable simulation campaign runner.
//
// The paper fits sparse models from a small, expensive set of K
// transistor-level simulations — so a production flow can afford neither to
// waste samples nor to let one pathological sample (a DC operating point no
// homotopy rescues, a singular MNA matrix) abort the whole run. The
// campaign layer sits between sampling and fitting:
//
//   * every sample is evaluated through a type-erased SampleEvaluator; the
//     escalation argument lets circuit benches harden their solver options
//     per retry (spice::escalated);
//   * failures are classified by the structured error taxonomy
//     (util/errors.hpp) and retried up to a per-sample budget;
//   * samples that keep failing are *quarantined* — recorded with their
//     final error code and excluded from the fit — instead of aborting;
//   * the CampaignReport counts attempted / succeeded / retried-recovered /
//     quarantined samples and a per-ErrorCode histogram;
//   * fitting proceeds only when the success fraction clears a configurable
//     threshold, otherwise fit_campaign fails fast with the report.
//
// On top of the per-sample layer sits process-level durability
// (io/checkpoint.hpp + util/cancellation.hpp):
//
//   * with CheckpointOptions set, every completed or quarantined row is
//     appended to a CRC-guarded log the moment it finishes, and
//     resume_campaign replays that log — after verifying the sample-matrix
//     and fault-plan fingerprints — and continues from the first
//     unevaluated row. A resumed run is bit-identical to an uninterrupted
//     one in samples, values, sample_indices, and therefore in every model
//     fitted from them;
//   * a per-sample wall-clock watchdog and a global campaign time budget
//     are enforced cooperatively: each attempt runs under a ScopedRunControl
//     that the DC Newton loop, the transient stepper, and the greedy solver
//     iterations poll. A watchdog trip quarantines the sample as
//     kDeadlineExceeded; an exhausted global budget (or a cancellation
//     request, e.g. SIGINT via util/signals.hpp) flushes the checkpoint and
//     returns best-so-far with report.truncated set;
//   * checkpoint I/O failures never abort the campaign: the writer first
//     recovers by rewriting the log atomically, and if storage stays broken
//     the failure is recorded (kIoError + checkpoint_failed) and the run
//     continues without durability.
//
// With num_workers > 1 (or RSM_THREADS set) the rows fan out across a
// work-stealing ThreadPool (util/thread_pool.hpp) while every contract
// above holds. Each row's retry ladder is a pure function of the row index
// — fault injection, escalation, and classification never depend on worker
// identity or interleaving — and results land in per-row outcome slots
// that are folded in row order afterwards, so the report, survivors, and
// values are bit-identical for any worker count. Durability shards: worker
// k appends to `<checkpoint>.shard<k>.log`, and on completion (or graceful
// truncation) the shards are compacted back into the single row-sorted
// base log — byte-identical to what a serial run writes. A SIGKILL leaves
// base + shards behind; resume_campaign merges them (salvaging damaged
// shards per io/checkpoint.hpp) and re-evaluates only the lost rows.
// Worker-level infrastructure faults (WorkerFaultInjector) requeue the
// row, are charged to the executing worker, and retire workers that absorb
// too many — the pool degrades gracefully to fewer workers, never past the
// last one.
//
// A deterministic FaultInjector (util/fault_injection.hpp) can be planted
// in the options to force singular solves / Newton stalls at hash-chosen
// sample indices — and an FsFaultInjector under the checkpoint writers —
// making every recovery path testable end-to-end in CI.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "io/checkpoint.hpp"
#include "linalg/matrix.hpp"
#include "obs/json.hpp"
#include "obs/resource.hpp"
#include "util/cancellation.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace rsm {

/// Evaluates one variation sample (a row of the sample matrix) to a scalar
/// performance. `escalation` is the 0-based attempt index; implementations
/// map it to progressively hardened solver options. Failures are reported
/// by throwing (ideally a StructuredError subclass). Evaluators are run
/// under an ambient ScopedRunControl, so any cooperative check site inside
/// them (spice solvers, greedy fits) honors the campaign's deadlines.
using SampleEvaluator =
    std::function<Real(std::span<const Real> sample, int escalation)>;

struct CampaignOptions {
  /// Attempts per sample (>= 1); attempt i runs at escalation level i.
  int max_attempts = 3;

  /// Fitting proceeds when succeeded/attempted clears this fraction.
  Real min_success_fraction = 0.9;

  /// Deterministic fault injection (default-constructed = disabled).
  FaultInjector fault_injector;

  /// Durable per-row checkpointing (disabled while `path` is empty).
  io::CheckpointOptions checkpoint;

  /// External cancellation (default token is never cancelled). Checked
  /// between samples and inside every cooperative solver loop.
  CancellationToken cancel;

  /// Wall-clock watchdog per attempt [s]; 0 disables. A sample whose every
  /// attempt trips it is quarantined as kDeadlineExceeded.
  double sample_deadline_seconds = 0;

  /// Global campaign time budget [s]; 0 disables. On expiry the campaign
  /// flushes its checkpoint and returns best-so-far, report.truncated set.
  double time_budget_seconds = 0;

  /// Worker count for the parallel executor. >= 1 is taken literally; 0
  /// consults the RSM_THREADS environment variable and defaults to 1
  /// (serial) when unset. Results are bit-identical for any value; the
  /// count is therefore excluded from the checkpoint config hash, so a
  /// crashed 8-worker run may be resumed serially and vice versa.
  int num_workers = 0;

  /// Worker-level infrastructure fault injection (parallel executor only;
  /// default-constructed = disabled). Also excluded from the config hash:
  /// infrastructure faults never change row outcomes.
  WorkerFaultInjector worker_faults;

  /// A worker that absorbs this many injected infrastructure faults is
  /// retired (graceful degradation); the pool never retires its last
  /// active worker.
  int worker_quarantine_threshold = 1;

  /// Live progress heartbeats: while non-empty, JSONL events
  /// (obs/progress.hpp) are appended to this path roughly every
  /// progress_interval_seconds, plus one final summary event. Heartbeat
  /// I/O failures never abort the campaign. Disabled while empty.
  std::string progress_path;

  /// Minimum spacing between heartbeats [s]; <= 0 emits after every row
  /// (tests only — keep >= 0.1 on real campaigns).
  double progress_interval_seconds = 1.0;
};

/// Longest quarantine reason retained in reports and checkpoints, so a
/// pathological campaign cannot grow either without limit.
inline constexpr std::size_t kMaxQuarantineReasonLength = io::kMaxReasonLength;

/// One permanently failed sample with its final classification.
struct QuarantinedSample {
  Index sample = -1;
  ErrorCode code = ErrorCode::kUnclassified;
  std::string reason;  // clamped to kMaxQuarantineReasonLength
};

struct CampaignReport {
  /// Rows actually evaluated (replayed rows included). Equals the sample
  /// count on a complete run; fewer when the run was truncated.
  Index attempted = 0;
  Index succeeded = 0;

  /// Succeeded, but only after at least one failed attempt.
  Index recovered = 0;

  /// Extra attempts spent beyond the first, over all samples.
  int total_retries = 0;

  std::vector<QuarantinedSample> quarantined;

  /// Failed attempts by ErrorCode (indexed by static_cast<int>(code)).
  /// Checkpoint I/O failures are recorded here under kIoError.
  std::array<Index, kNumErrorCodes> error_histogram{};

  /// Threshold copied from CampaignOptions for the fit gate.
  Real min_success_fraction = 0;

  /// The run stopped before its last row: global time budget exhausted or
  /// cancellation requested. The surviving prefix is still fit-worthy.
  bool truncated = false;

  /// Rows replayed from a checkpoint by resume_campaign.
  Index resumed_samples = 0;

  /// Durability counters (all zero when checkpointing is disabled).
  Index checkpoint_records = 0;  // records appended this run
  Index checkpoint_flushes = 0;  // fsync batches
  Index checkpoint_rewrites = 0; // atomic self-heals after a faulted append

  /// Checkpointing was disabled mid-run after unrecoverable I/O failures;
  /// already-durable records were preserved, later rows are not logged.
  bool checkpoint_failed = false;

  /// Execution-side accounting (never part of the scientific result — the
  /// byte-identical-resume contract covers every field above this block;
  /// these describe how the work was scheduled, not what it computed).
  int workers = 1;                  // resolved worker count this run
  int workers_quarantined = 0;      // retired after infrastructure faults
  Index worker_infra_failures = 0;  // injected worker faults absorbed
  Index tasks_stolen = 0;           // pool work-stealing events

  /// Pool telemetry (zeros on serial runs).
  Index pool_queue_highwater = 0;       // max tasks simultaneously queued
  Index pool_backpressure_stalls = 0;   // submit() sleeps on full queues
  double pool_busy_seconds = 0;         // inside tasks, summed over workers
  double pool_idle_seconds = 0;         // between tasks, summed over workers

  /// Heartbeats written this run (0 while progress_path is empty).
  Index progress_heartbeats = 0;

  /// Process resource usage over this run (counters are deltas, RSS fields
  /// end-of-run values — see obs/resource.hpp).
  obs::ResourceUsage resources;

  /// Shard-merge accounting from resume (zero on fresh runs).
  int shards_merged = 0;        // shard files whose records were absorbed
  int shards_recovered = 0;     // torn tails cut + mid-stream salvages
  Index shard_duplicate_rows = 0;  // duplicate row records; last write won

  [[nodiscard]] Real success_fraction() const;
  [[nodiscard]] Index error_count(ErrorCode code) const;
  [[nodiscard]] bool fit_allowed() const;

  /// Human-readable multi-line summary (counts, histogram, quarantine).
  [[nodiscard]] std::string summary() const;

  /// Machine-readable form of the same report, suitable for embedding in a
  /// bench report (obs/report.hpp) or dumping alongside campaign logs.
  [[nodiscard]] obs::JsonValue to_json() const;
};

struct CampaignResult {
  CampaignReport report;

  /// Surviving samples, compacted (succeeded x N), aligned with `values`.
  Matrix samples;
  std::vector<Real> values;

  /// Original row index of each surviving row.
  std::vector<Index> sample_indices;
};

/// Runs every row of `samples` through `evaluate` with retry, escalation,
/// quarantine, and (when configured) durable checkpointing and deadline
/// enforcement. Never throws on per-sample or checkpoint-I/O failures; only
/// on misuse (empty sample set, non-positive attempt budget).
[[nodiscard]] CampaignResult run_campaign(const Matrix& samples,
                                          const SampleEvaluator& evaluate,
                                          const CampaignOptions& options = {});

/// Resumes an interrupted campaign from options.checkpoint.path: merges the
/// base log and any checkpoint shards a crashed (possibly parallel) run
/// left behind (tolerating torn trailing records and salvaging damaged
/// shards), verifies the sample-matrix and configuration fingerprints,
/// rewrites the log to a clean row-sorted base, replays the durable rows,
/// and evaluates only the missing ones. Throws IoError when no usable
/// checkpoint exists, the base log is corrupt, or the checkpoint belongs to
/// a different campaign.
[[nodiscard]] CampaignResult resume_campaign(const Matrix& samples,
                                             const SampleEvaluator& evaluate,
                                             const CampaignOptions& options);

/// The fit gate: builds a sparse model from the campaign survivors when the
/// success fraction clears the report's threshold, and throws an Error
/// carrying the report summary otherwise (fail fast with diagnostics).
[[nodiscard]] BuildReport fit_campaign(
    const CampaignResult& result,
    std::shared_ptr<const BasisDictionary> dictionary,
    const BuildOptions& build_options = {});

}  // namespace rsm
