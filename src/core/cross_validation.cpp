#include "core/cross_validation.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/metrics.hpp"
#include "linalg/blas.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace rsm {

CrossValidator::CrossValidator(const Options& options) : options_(options) {
  RSM_CHECK_MSG(options.num_folds >= 2, "cross-validation needs >= 2 folds");
}

CrossValidationResult CrossValidator::run(const PathSolver& solver,
                                          const Matrix& g,
                                          std::span<const Real> f,
                                          Index max_lambda) const {
  RSM_TRACE_SPAN("cv.run");
  const Index num_samples = g.rows();
  const Index num_columns = g.cols();
  RSM_CHECK(static_cast<Index>(f.size()) == num_samples);
  const int q = options_.num_folds;
  RSM_CHECK_MSG(num_samples >= 2 * q,
                "too few samples (" << num_samples << ") for " << q
                                    << "-fold cross-validation");

  // Random fold assignment (shuffled round-robin keeps folds balanced).
  std::vector<Index> perm(static_cast<std::size_t>(num_samples));
  std::iota(perm.begin(), perm.end(), Index{0});
  Rng rng(options_.seed);
  rng.shuffle(perm);

  CrossValidationResult result;
  result.fold_curves.resize(static_cast<std::size_t>(q));

  for (int fold = 0; fold < q; ++fold) {
    RSM_TRACE_SPAN("cv.fold");
    // Split rows.
    std::vector<Index> train_rows, test_rows;
    for (Index i = 0; i < num_samples; ++i) {
      const Index row = perm[static_cast<std::size_t>(i)];
      if (static_cast<int>(i % q) == fold) {
        test_rows.push_back(row);
      } else {
        train_rows.push_back(row);
      }
    }

    Matrix g_train(static_cast<Index>(train_rows.size()), num_columns);
    std::vector<Real> f_train(train_rows.size());
    for (std::size_t r = 0; r < train_rows.size(); ++r) {
      std::copy(g.row(train_rows[r]).begin(), g.row(train_rows[r]).end(),
                g_train.row(static_cast<Index>(r)).begin());
      f_train[r] = f[static_cast<std::size_t>(train_rows[r])];
    }
    Matrix g_test(static_cast<Index>(test_rows.size()), num_columns);
    std::vector<Real> f_test(test_rows.size());
    for (std::size_t r = 0; r < test_rows.size(); ++r) {
      std::copy(g.row(test_rows[r]).begin(), g.row(test_rows[r]).end(),
                g_test.row(static_cast<Index>(r)).begin());
      f_test[r] = f[static_cast<std::size_t>(test_rows[r])];
    }

    // One path fit per fold; evaluate every lambda on the held-out fold. A
    // degenerate fold (rank-collapsed training block, a solver that cannot
    // make progress) is skipped with a warning — losing one of Q curves
    // barely moves the averaged eps(lambda), aborting loses the campaign.
    SolverPath path;
    try {
      path = solver.fit_path(g_train, f_train, max_lambda);
    } catch (const Error& e) {
      // Only *numerical* failures are a property of the fold; a deadline or
      // cancellation unwind is a property of the run and must propagate —
      // treating it as a degenerate fold would silently bias the curve.
      if (const auto* s = dynamic_cast<const StructuredError*>(&e)) {
        if (s->code() == ErrorCode::kDeadlineExceeded ||
            s->code() == ErrorCode::kIoError) {
          throw;
        }
      }
      RSM_WARN("cross-validation: skipping degenerate fold " << fold << ": "
                                                             << e.what());
      ++result.skipped_folds;
      if (obs::telemetry_enabled()) {
        obs::emit(obs::CvFoldEvent{.solver = solver.name(),
                                   .fold = fold,
                                   .skipped = true});
      }
      continue;
    }
    std::vector<Real>& curve =
        result.fold_curves[static_cast<std::size_t>(fold)];
    curve.reserve(static_cast<std::size_t>(path.num_steps()));
    std::vector<Real> pred(test_rows.size());
    for (Index t = 0; t < path.num_steps(); ++t) {
      const std::vector<Index> sup = path.support(t);
      const std::vector<Real>& coef =
          path.coefficients[static_cast<std::size_t>(t)];
      std::fill(pred.begin(), pred.end(), Real{0});
      for (std::size_t s = 0; s < sup.size(); ++s) {
        for (std::size_t r = 0; r < test_rows.size(); ++r)
          pred[r] += coef[s] * g_test(static_cast<Index>(r), sup[s]);
      }
      curve.push_back(relative_rms_error(pred, f_test));
    }

    if (obs::telemetry_enabled() && !curve.empty()) {
      const auto fold_best = std::min_element(curve.begin(), curve.end());
      obs::emit(obs::CvFoldEvent{
          .solver = solver.name(),
          .fold = fold,
          .path_steps = path.num_steps(),
          .best_lambda = static_cast<Index>(fold_best - curve.begin()) + 1,
          .best_rmse = *fold_best,
          .skipped = false});
    }
  }

  // Average the surviving fold curves over their common length.
  const int used_folds = q - result.skipped_folds;
  RSM_CHECK_MSG(used_folds > 0,
                "every cross-validation fold was degenerate; cannot select "
                "lambda");
  std::size_t common = std::numeric_limits<std::size_t>::max();
  for (const auto& curve : result.fold_curves)
    if (!curve.empty()) common = std::min(common, curve.size());
  RSM_CHECK_MSG(common > 0 && common != std::numeric_limits<std::size_t>::max(),
                "solver produced an empty path in cross-validation");

  result.error_curve.assign(common, Real{0});
  for (const auto& curve : result.fold_curves) {
    if (curve.empty()) continue;
    for (std::size_t t = 0; t < common; ++t)
      result.error_curve[t] += curve[t];
  }
  for (Real& e : result.error_curve) e /= static_cast<Real>(used_folds);

  const auto best = std::min_element(result.error_curve.begin(),
                                     result.error_curve.end());
  result.best_lambda =
      static_cast<Index>(best - result.error_curve.begin()) + 1;
  result.best_error = *best;
  return result;
}

}  // namespace rsm
