#include "core/yield.hpp"

#include <cmath>

namespace rsm {

Real normal_cdf(Real x) { return Real{0.5} * std::erfc(-x / std::sqrt(Real{2})); }

YieldResult estimate_yield(const SparseModel& model, const Specification& spec,
                           Index num_samples, Rng& rng) {
  const SparseModel* models[] = {&model};
  const Specification specs[] = {spec};
  return estimate_joint_yield(models, specs, num_samples, rng);
}

YieldResult estimate_joint_yield(std::span<const SparseModel* const> models,
                                 std::span<const Specification> specs,
                                 Index num_samples, Rng& rng) {
  RSM_CHECK(!models.empty());
  RSM_CHECK(models.size() == specs.size());
  RSM_CHECK(num_samples > 0);
  const Index n = models.front()->dictionary().num_variables();
  for (const SparseModel* m : models) {
    RSM_CHECK(m != nullptr);
    RSM_CHECK_MSG(m->dictionary().num_variables() == n,
                  "joint yield requires a shared variation space");
  }

  std::vector<Real> dy(static_cast<std::size_t>(n));
  Index failures = 0;
  for (Index s = 0; s < num_samples; ++s) {
    rng.fill_normal(dy);
    for (std::size_t i = 0; i < models.size(); ++i) {
      if (!specs[i].accepts(models[i]->predict(dy))) {
        ++failures;
        break;
      }
    }
  }

  YieldResult result;
  result.num_samples = num_samples;
  result.num_failures = failures;
  result.yield = Real{1} - static_cast<Real>(failures) /
                               static_cast<Real>(num_samples);
  result.standard_error = std::sqrt(
      std::max(result.yield * (1 - result.yield), Real{0}) /
      static_cast<Real>(num_samples));
  return result;
}

DistributionEstimate estimate_distribution(
    const SparseModel& model, Index num_samples, Rng& rng,
    std::span<const Real> quantile_levels) {
  RSM_CHECK(num_samples > 1);
  const Index n = model.dictionary().num_variables();
  std::vector<Real> values(static_cast<std::size_t>(num_samples));
  std::vector<Real> dy(static_cast<std::size_t>(n));
  for (Index s = 0; s < num_samples; ++s) {
    rng.fill_normal(dy);
    values[static_cast<std::size_t>(s)] = model.predict(dy);
  }
  DistributionEstimate est;
  est.summary = summarize(values);
  est.quantile_levels.assign(quantile_levels.begin(), quantile_levels.end());
  est.quantile_values.reserve(quantile_levels.size());
  for (Real q : quantile_levels)
    est.quantile_values.push_back(quantile(values, q));
  return est;
}

TailProbability estimate_tail_probability(const SparseModel& model,
                                          Real threshold, bool upper_tail,
                                          Index num_samples, Rng& rng) {
  RSM_CHECK(num_samples > 1);
  const BasisDictionary& dict = model.dictionary();
  const Index n = dict.num_variables();

  // Shift direction: linear coefficients (signed toward the tail).
  std::vector<Real> direction(static_cast<std::size_t>(n), Real{0});
  for (const ModelTerm& t : model.terms()) {
    const MultiIndex& mi = dict.index(t.basis_index);
    if (mi.total_degree() == 1)
      direction[static_cast<std::size_t>(mi.terms()[0].variable)] +=
          t.coefficient;
  }
  Real dir_norm = 0;
  for (Real v : direction) dir_norm += v * v;
  dir_norm = std::sqrt(dir_norm);
  RSM_CHECK_MSG(dir_norm > 0,
                "tail estimation needs linear terms to pick a direction");
  for (Real& v : direction) v *= (upper_tail ? 1 : -1) / dir_norm;

  // Shift magnitude: smallest s in [0, 12] with f(s * direction) past the
  // threshold (bisection after bracketing); fall back to the bracket edge.
  const auto crosses = [&](Real s) {
    std::vector<Real> point(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i)
      point[static_cast<std::size_t>(i)] =
          s * direction[static_cast<std::size_t>(i)];
    const Real value = model.predict(point);
    return upper_tail ? value >= threshold : value <= threshold;
  };
  Real lo = 0, hi = 12;
  Real shift = hi;
  if (crosses(0)) {
    shift = 0;  // threshold is not in the tail at all
  } else if (!crosses(hi)) {
    shift = hi;  // very deep tail; sample from the far bracket edge
  } else {
    for (int i = 0; i < 60; ++i) {
      const Real mid = (lo + hi) / 2;
      (crosses(mid) ? hi : lo) = mid;
    }
    shift = hi;
  }

  // Importance sampling with mean mu = shift * direction:
  //   weight(x) = exp(-mu'x + |mu|^2 / 2).
  std::vector<Real> mu(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i)
    mu[static_cast<std::size_t>(i)] =
        shift * direction[static_cast<std::size_t>(i)];
  const Real mu_sq = shift * shift;

  Real sum_w = 0, sum_w2 = 0;
  std::vector<Real> x(static_cast<std::size_t>(n));
  for (Index s = 0; s < num_samples; ++s) {
    rng.fill_normal(x);
    Real mu_dot_x = 0;
    for (Index i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] += mu[static_cast<std::size_t>(i)];
      mu_dot_x +=
          mu[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
    }
    const Real value = model.predict(x);
    const bool fail = upper_tail ? value > threshold : value < threshold;
    if (!fail) continue;
    const Real w = std::exp(-mu_dot_x + mu_sq / 2);
    sum_w += w;
    sum_w2 += w * w;
  }
  TailProbability out;
  out.num_samples = num_samples;
  out.shift_magnitude = shift;
  out.probability = sum_w / static_cast<Real>(num_samples);
  const Real mean_w2 = sum_w2 / static_cast<Real>(num_samples);
  out.standard_error = std::sqrt(
      std::max(mean_w2 - out.probability * out.probability, Real{0}) /
      static_cast<Real>(num_samples));
  return out;
}

Real analytic_linear_yield(const SparseModel& model,
                           const Specification& spec) {
  for (const ModelTerm& t : model.terms()) {
    RSM_CHECK_MSG(model.dictionary().index(t.basis_index).total_degree() <= 1,
                  "analytic_linear_yield requires a purely linear model");
  }
  const Real mean = model.analytic_mean();
  const Real sigma = std::sqrt(model.analytic_variance());
  if (sigma == 0) return spec.accepts(mean) ? Real{1} : Real{0};
  const Real hi = std::isinf(spec.upper)
                      ? Real{1}
                      : normal_cdf((spec.upper - mean) / sigma);
  const Real lo = std::isinf(spec.lower)
                      ? Real{0}
                      : normal_cdf((spec.lower - mean) / sigma);
  return std::max(hi - lo, Real{0});
}

}  // namespace rsm
