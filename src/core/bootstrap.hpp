// Bootstrap confidence intervals for modeling-error estimates.
//
// A testing-set error like "4.09%" (Table IV) is itself a random quantity of
// the finite testing set. Resampling the (prediction, truth) pairs with
// replacement gives a distribution-free confidence interval — the honest
// error bar to put on every number the benches print, and the tool for
// judging whether two methods actually differ (e.g. STAR's 6.34% vs LAR's
// 4.94%) or are within testing noise.
#pragma once

#include <span>
#include <vector>

#include "core/model.hpp"
#include "stats/rng.hpp"
#include "util/common.hpp"

namespace rsm {

struct BootstrapInterval {
  Real estimate = 0;  // error on the full testing set
  Real lower = 0;     // percentile CI bounds
  Real upper = 0;
  Real standard_error = 0;  // stddev of the bootstrap replicates
  Index num_replicates = 0;
};

/// CI for the relative RMS error of predictions vs actuals, by percentile
/// bootstrap over the sample pairs. `confidence` in (0, 1), e.g. 0.95.
[[nodiscard]] BootstrapInterval bootstrap_error_interval(
    std::span<const Real> predicted, std::span<const Real> actual,
    Index num_replicates, Real confidence, Rng& rng);

/// Convenience: evaluates `model` on the testing set first.
[[nodiscard]] BootstrapInterval bootstrap_model_error(
    const SparseModel& model, const Matrix& test_samples,
    std::span<const Real> test_values, Index num_replicates, Real confidence,
    Rng& rng);

}  // namespace rsm
