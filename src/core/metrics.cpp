#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"

namespace rsm {
namespace {

Real rms(std::span<const Real> x) {
  RSM_CHECK(!x.empty());
  Real s = 0;
  for (Real v : x) s += v * v;
  return std::sqrt(s / static_cast<Real>(x.size()));
}

Real rms_diff(std::span<const Real> a, std::span<const Real> b) {
  RSM_CHECK(a.size() == b.size() && !a.empty());
  Real s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Real d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<Real>(a.size()));
}

}  // namespace

Real relative_rms_error(std::span<const Real> predicted,
                        std::span<const Real> actual) {
  const Real sd = stddev(actual);
  RSM_CHECK_MSG(sd > 0, "actual values are constant; relative error undefined");
  return rms_diff(predicted, actual) / sd;
}

Real rms_error_over_norm(std::span<const Real> predicted,
                         std::span<const Real> actual) {
  const Real denom = rms(actual);
  RSM_CHECK_MSG(denom > 0, "actual values are all zero");
  return rms_diff(predicted, actual) / denom;
}

Real max_relative_error(std::span<const Real> predicted,
                        std::span<const Real> actual) {
  RSM_CHECK(predicted.size() == actual.size() && !predicted.empty());
  const Real sd = stddev(actual);
  RSM_CHECK_MSG(sd > 0, "actual values are constant; relative error undefined");
  Real m = 0;
  for (std::size_t i = 0; i < actual.size(); ++i)
    m = std::max(m, std::abs(predicted[i] - actual[i]));
  return m / sd;
}

Real r_squared(std::span<const Real> predicted, std::span<const Real> actual) {
  RSM_CHECK(predicted.size() == actual.size() && actual.size() >= 2);
  const Real m = mean(actual);
  Real ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - m) * (actual[i] - m);
  }
  RSM_CHECK(ss_tot > 0);
  return 1 - ss_res / ss_tot;
}

}  // namespace rsm
