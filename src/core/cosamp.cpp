#include "core/cosamp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace rsm {
namespace {

/// Indices of the `count` largest |values|.
std::vector<Index> top_indices(std::span<const Real> values, Index count) {
  std::vector<Index> order(values.size());
  std::iota(order.begin(), order.end(), Index{0});
  count = std::min<Index>(count, static_cast<Index>(values.size()));
  std::partial_sort(order.begin(), order.begin() + count, order.end(),
                    [&](Index a, Index b) {
                      return std::abs(values[static_cast<std::size_t>(a)]) >
                             std::abs(values[static_cast<std::size_t>(b)]);
                    });
  order.resize(static_cast<std::size_t>(count));
  return order;
}

/// LS fit of f on the columns `support` of g; returns coefficients aligned
/// with `support`. Rank-deficient supports fall back to a tiny ridge.
std::vector<Real> ls_on_support(const Matrix& g, std::span<const Real> f,
                                std::span<const Index> support) {
  Matrix g_sup(g.rows(), static_cast<Index>(support.size()));
  for (std::size_t j = 0; j < support.size(); ++j)
    g_sup.set_col(static_cast<Index>(j), g.col(support[j]));
  QrFactorization qr(g_sup);
  if (!qr.rank_deficient()) return qr.solve(f);
  // Degenerate candidate set (duplicated columns): ridge-regularized
  // normal equations keep the iteration moving.
  Matrix gram_m = gram(g_sup);
  for (Index i = 0; i < gram_m.rows(); ++i)
    gram_m(i, i) += 1e-10 * static_cast<Real>(g.rows());
  std::vector<Real> gtf(support.size());
  gemv_transposed(g_sup, f, gtf);
  return QrFactorization(gram_m).solve(gtf);
}

}  // namespace

SolverPath CosampSolver::fit_at_sparsity(const Matrix& g,
                                         std::span<const Real> f,
                                         Index sparsity) const {
  RSM_TRACE_SPAN("cosamp.fit");
  const Index k = g.rows();
  const Index m = g.cols();
  RSM_CHECK(static_cast<Index>(f.size()) == k);
  RSM_CHECK(sparsity > 0);
  sparsity = std::min(sparsity, std::min(k / 2, m));

  std::vector<Real> residual(f.begin(), f.end());
  std::vector<Real> corr(static_cast<std::size_t>(m));
  std::vector<Index> support;
  std::vector<Real> coef;
  Real prev_res_norm = nrm2(f);

  for (int it = 0; it < options_.max_iterations; ++it) {
    RSM_TRACE_SPAN("cosamp.iteration");
    // Identify: up to 2s largest proxy correlations, merged with the
    // current support — capped so the merged candidate set stays solvable
    // by LS (at most k columns).
    gemv_transposed(g, residual, corr);
    const Index proposal_size =
        std::min<Index>(2 * sparsity,
                        k - static_cast<Index>(support.size()));
    if (proposal_size <= 0) break;
    const std::vector<Index> proposal = top_indices(corr, proposal_size);
    std::set<Index> merged(support.begin(), support.end());
    merged.insert(proposal.begin(), proposal.end());
    const std::vector<Index> candidates(merged.begin(), merged.end());
    if (candidates.empty()) break;

    // Estimate: LS on the merged support; prune to the s largest.
    const std::vector<Real> b = ls_on_support(g, f, candidates);
    const std::vector<Index> keep = top_indices(b, sparsity);
    std::vector<Index> new_support;
    for (Index pos : keep)
      new_support.push_back(candidates[static_cast<std::size_t>(pos)]);
    std::sort(new_support.begin(), new_support.end());

    // Re-fit on the pruned support and update the residual.
    coef = ls_on_support(g, f, new_support);
    residual.assign(f.begin(), f.end());
    for (std::size_t j = 0; j < new_support.size(); ++j)
      axpy(-coef[j], g.col(new_support[j]), residual);
    support = std::move(new_support);

    const Real res_norm = nrm2(residual);
    if (obs::telemetry_enabled()) {
      // CoSaMP reselects a whole support per iteration, so `selected` is
      // meaningless; report the proxy's strongest correlation instead.
      obs::emit(obs::SolverIterationEvent{
          .solver = "CoSaMP",
          .step = static_cast<Index>(it),
          .selected = -1,
          .max_correlation = max_abs(corr),
          .residual_norm = res_norm,
          .active_count = static_cast<Index>(support.size())});
    }
    if (res_norm >= prev_res_norm * (1 - options_.stall_tolerance)) break;
    prev_res_norm = res_norm;
  }

  SolverPath path;
  path.active_sets.push_back(support);
  path.coefficients.push_back(coef);
  path.selection_order.push_back(support.empty() ? -1 : support.back());
  path.residual_norms.push_back(nrm2(residual));
  return path;
}

SolverPath CosampSolver::fit_path(const Matrix& g, std::span<const Real> f,
                                  Index max_steps) const {
  RSM_CHECK(max_steps > 0);
  SolverPath path;
  for (Index s = 1; s <= max_steps; ++s) {
    SolverPath one = fit_at_sparsity(g, f, s);
    if (one.num_steps() == 0) break;
    path.active_sets.push_back(std::move(one.active_sets[0]));
    path.coefficients.push_back(std::move(one.coefficients[0]));
    path.selection_order.push_back(one.selection_order[0]);
    path.residual_norms.push_back(one.residual_norms[0]);
  }
  return path;
}

}  // namespace rsm
