// Worst-case corner search on a fitted model.
//
// Classic worst-case analysis (the paper's ref [6] problem): find the
// variation point within a given sigma radius that extremizes a
// performance. On the model this is a smooth small-dimensional
// optimization — projected gradient ascent on the sphere ||dY|| <= radius,
// costing microseconds instead of a simulator-in-the-loop search. The
// returned corner can then be handed back to the real simulator for one
// confirming run.
#pragma once

#include <vector>

#include "core/model.hpp"
#include "util/common.hpp"

namespace rsm {

struct WorstCaseResult {
  std::vector<Real> corner;   // the extremizing dY (||corner|| <= radius)
  Real value = 0;             // model value at the corner
  Real sigma_distance = 0;    // ||corner||
  int iterations = 0;
  bool converged = false;
};

struct WorstCaseOptions {
  Real radius = 3.0;          // sigma ball to search
  bool maximize = true;       // false: find the minimum instead
  int max_iterations = 500;
  Real step = 0.25;           // initial gradient step (adapted downward)
  Real tolerance = 1e-9;      // stop when the value improves less than this
};

/// Projected gradient ascent/descent from the origin (plus a gradient-sized
/// kick to escape a flat start). For linear models the result is exact:
/// corner = +/- radius * a / ||a||.
[[nodiscard]] WorstCaseResult find_worst_case(
    const SparseModel& model, const WorstCaseOptions& options = {});

}  // namespace rsm
