// Common solver interface: every sparse method emits a *path* of nested (or
// breakpoint) models, one per sparsity level lambda.
//
// Cross-validation (Section IV-C) needs the modeling error as a 1-D function
// of lambda; emitting the whole path in one fit makes the Q-fold CV cost
// Q * (one path fit) instead of Q * lambda_max separate fits.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/common.hpp"

namespace rsm {

/// The sequence of models produced by one solver run.
///
/// Step t (0-based) uses `active[s]` for s <= t with coefficients
/// `coefficients[t]` (same length as the active prefix). For OMP/STAR the
/// active sets are nested by construction; for LAR each step is a breakpoint
/// of the piecewise-linear coefficient path (and with the LASSO modification
/// a variable can leave, recorded via `active_sets` overriding the prefix).
struct SolverPath {
  /// Column indices in order of first selection (OMP/STAR: the prefix of
  /// length t+1 is step t's support).
  std::vector<Index> selection_order;

  /// coefficients[t][s] multiplies column support(t)[s].
  std::vector<std::vector<Real>> coefficients;

  /// Non-empty only when supports are not prefixes of selection_order
  /// (LASSO drops); active_sets[t] then lists step t's support explicitly.
  std::vector<std::vector<Index>> active_sets;

  /// Residual 2-norm after each step (diagnostic).
  std::vector<Real> residual_norms;

  [[nodiscard]] Index num_steps() const {
    return static_cast<Index>(coefficients.size());
  }

  /// Support of step t (indices into the design-matrix columns).
  [[nodiscard]] std::vector<Index> support(Index t) const;

  /// Dense coefficient vector (length num_columns) of step t.
  [[nodiscard]] std::vector<Real> dense_coefficients(Index t,
                                                     Index num_columns) const;
};

/// Abstract path-emitting sparse solver over a materialized design matrix.
class PathSolver {
 public:
  virtual ~PathSolver() = default;

  /// Fits up to `max_steps` steps of the path for min ||G a - F||_2 with the
  /// method's sparsity heuristic. F.size() == G.rows().
  [[nodiscard]] virtual SolverPath fit_path(const Matrix& g,
                                            std::span<const Real> f,
                                            Index max_steps) const = 0;

  /// Method name for reports ("OMP", "STAR", "LAR", ...).
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace rsm
