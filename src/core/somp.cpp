#include "core/somp.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/incremental_qr.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace rsm {

SompResult SompSolver::fit(const Matrix& g, const Matrix& responses,
                           Index max_terms) const {
  RSM_TRACE_SPAN("somp.fit");
  const Index k = g.rows();
  const Index m = g.cols();
  const Index num_responses = responses.cols();
  RSM_CHECK(responses.rows() == k);
  RSM_CHECK(max_terms > 0 && num_responses > 0);
  max_terms = std::min(max_terms, std::min(k, m));

  // Normalize each response by its 2-norm so large-magnitude metrics do not
  // dominate the joint score.
  std::vector<std::vector<Real>> residuals(
      static_cast<std::size_t>(num_responses));
  std::vector<Real> response_scale(static_cast<std::size_t>(num_responses));
  for (Index r = 0; r < num_responses; ++r) {
    residuals[static_cast<std::size_t>(r)] = responses.col(r);
    response_scale[static_cast<std::size_t>(r)] = std::max(
        nrm2(residuals[static_cast<std::size_t>(r)]), Real{1e-300});
  }

  IncrementalQr qr(k, max_terms);
  std::vector<bool> selected(static_cast<std::size_t>(m), false);
  SompResult result;
  Real first_best_score = -1;

  for (Index step = 0; step < max_terms; ++step) {
    RSM_TRACE_SPAN("somp.iteration");
    // Joint score per column: sum_r (G_j' res_r / ||f_r||)^2. Response
    // normalization keeps large-magnitude metrics from dominating; columns
    // are NOT norm-normalized, matching the paper's inner-product criterion
    // (eq. 14) — so with a single response the selection sequence is
    // exactly OMP's.
    Index best = -1;
    Real best_score = -1;
    for (Index j = 0; j < m; ++j) {
      if (selected[static_cast<std::size_t>(j)]) continue;
      const std::vector<Real> col = g.col(j);
      Real score = 0;
      for (Index r = 0; r < num_responses; ++r) {
        const Real c = dot(col, residuals[static_cast<std::size_t>(r)]) /
                       response_scale[static_cast<std::size_t>(r)];
        score += c * c;
      }
      if (score > best_score) {
        best_score = score;
        best = j;
      }
    }
    if (best < 0) break;
    if (first_best_score < 0) first_best_score = best_score;
    if (options_.score_tolerance > 0 &&
        best_score < options_.score_tolerance * first_best_score) {
      break;
    }

    if (!qr.append_column(g.col(best), options_.dependence_tolerance)) {
      selected[static_cast<std::size_t>(best)] = true;
      --step;
      continue;
    }
    selected[static_cast<std::size_t>(best)] = true;
    result.support.push_back(best);

    // Re-fit every response on the shared support; update residuals.
    for (Index r = 0; r < num_responses; ++r)
      residuals[static_cast<std::size_t>(r)] = qr.residual(responses.col(r));

    if (obs::telemetry_enabled()) {
      // Joint residual norm across the (normalized) responses.
      Real joint = 0;
      for (Index r = 0; r < num_responses; ++r) {
        const Real norm = nrm2(residuals[static_cast<std::size_t>(r)]) /
                          response_scale[static_cast<std::size_t>(r)];
        joint += norm * norm;
      }
      obs::emit(obs::SolverIterationEvent{
          .solver = "SOMP",
          .step = step,
          .selected = best,
          .max_correlation = std::sqrt(best_score),
          .residual_norm = std::sqrt(joint),
          .active_count = static_cast<Index>(result.support.size())});
    }
  }

  result.coefficients.resize(static_cast<std::size_t>(num_responses));
  result.residual_norms.resize(static_cast<std::size_t>(num_responses));
  for (Index r = 0; r < num_responses; ++r) {
    result.coefficients[static_cast<std::size_t>(r)] =
        qr.solve(responses.col(r));
    result.residual_norms[static_cast<std::size_t>(r)] =
        nrm2(residuals[static_cast<std::size_t>(r)]);
  }
  return result;
}

}  // namespace rsm
