// Global sensitivity analysis (Sobol indices) from sparse Hermite models.
//
// Because the basis is orthonormal under the sampling distribution, the
// model's variance decomposes exactly over its terms (Parseval): the Sobol
// index machinery that normally needs heavy double-loop Monte Carlo is a
// bookkeeping pass over the sparse coefficients. This turns a fitted model
// into an attribution report: how much of the performance variability each
// variation variable explains, alone and in interactions — e.g. "the input
// pair's Vth mismatch owns 80% of the offset variance".
#pragma once

#include <vector>

#include "core/model.hpp"
#include "util/common.hpp"

namespace rsm {

struct SobolIndices {
  /// first_order[v]: fraction of variance from terms involving ONLY
  /// variable v (main effect).
  std::vector<Real> first_order;

  /// total_effect[v]: fraction of variance from every term that involves
  /// variable v at all (main effect + its share of interactions).
  std::vector<Real> total_effect;

  /// Fraction of variance in pure-interaction terms (>= 2 variables).
  Real interaction_fraction = 0;

  /// Model variance the fractions refer to.
  Real variance = 0;
};

/// Exact Sobol decomposition of a sparse Hermite model under dY ~ N(0, I).
/// Both index vectors have dictionary().num_variables() entries; for a
/// model with no variance all fractions are zero.
[[nodiscard]] SobolIndices sobol_indices(const SparseModel& model);

/// Convenience: variables ranked by total effect, descending. Ties break by
/// variable index. Only variables with a non-zero total effect appear.
[[nodiscard]] std::vector<Index> rank_variables_by_sensitivity(
    const SparseModel& model);

}  // namespace rsm
