#include "core/omp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/incremental_qr.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/cancellation.hpp"

namespace rsm {

SolverPath OmpSolver::fit_path(const Matrix& g, std::span<const Real> f,
                               Index max_steps) const {
  return fit_path(MaterializedSource(g), f, max_steps);
}

SolverPath OmpSolver::fit_path(const ColumnSource& source,
                               std::span<const Real> f,
                               Index max_steps) const {
  RSM_TRACE_SPAN("omp.fit");
  const Index num_samples = source.rows();
  const Index num_columns = source.num_columns();
  RSM_CHECK(static_cast<Index>(f.size()) == num_samples);
  RSM_CHECK(max_steps > 0);
  max_steps = std::min(max_steps, std::min(num_samples, num_columns));

  SolverPath path;
  path.selection_order.reserve(static_cast<std::size_t>(max_steps));
  path.coefficients.reserve(static_cast<std::size_t>(max_steps));
  path.residual_norms.reserve(static_cast<std::size_t>(max_steps));

  IncrementalQr qr(num_samples, max_steps);
  std::vector<Real> residual(f.begin(), f.end());
  std::vector<Real> correlations(static_cast<std::size_t>(num_columns));
  std::vector<Real> column(static_cast<std::size_t>(num_samples));
  std::vector<bool> selected(static_cast<std::size_t>(num_columns), false);
  const Real f_norm = std::max(nrm2(f), Real{1e-300});

  for (Index step = 0; step < max_steps; ++step) {
    RSM_TRACE_SPAN("omp.iteration");
    check_cooperative_stop("omp.iteration");
    // Step 3: xi_m = G_m' * Res for all m (the paper's 1/K factor is a
    // monotone scaling that does not affect the argmax).
    source.correlate(residual, correlations);

    // Step 4: pick the most correlated not-yet-selected column.
    Index best = -1;
    Real best_val = -1;
    for (Index m = 0; m < num_columns; ++m) {
      if (selected[static_cast<std::size_t>(m)]) continue;
      const Real a = std::abs(correlations[static_cast<std::size_t>(m)]);
      if (a > best_val) {
        best_val = a;
        best = m;
      }
    }
    if (best < 0) break;  // everything selected

    // Step 5-6: grow the QR with the new column; if it is numerically
    // dependent on the active set, mark it and try the next candidate.
    source.column(best, column);
    if (!qr.append_column(column, options_.dependence_tolerance)) {
      selected[static_cast<std::size_t>(best)] = true;
      --step;  // retry this step with the next-best column
      continue;
    }
    selected[static_cast<std::size_t>(best)] = true;
    path.selection_order.push_back(best);

    // Step 6: least-squares coefficients of the whole active set. A column
    // that passed the dependence screen can still poison the triangular
    // solve (near-zero R diagonal -> non-finite coefficients); evict it and
    // retry the step with the next-best candidate instead of emitting a
    // garbage model.
    std::vector<Real> coefficients = qr.solve(f);
    bool finite = true;
    for (Real c : coefficients) {
      if (!std::isfinite(c)) {
        finite = false;
        break;
      }
    }
    if (!finite) {
      qr.remove_column(qr.size() - 1);
      path.selection_order.pop_back();
      --step;  // retry this step with the next-best column
      continue;
    }
    path.coefficients.push_back(std::move(coefficients));

    // Step 7: residual via projection (equals F - G_active * coeffs).
    residual = qr.residual(f);
    const Real res_norm = nrm2(residual);
    path.residual_norms.push_back(res_norm);

    if (obs::telemetry_enabled()) {
      obs::emit(obs::SolverIterationEvent{
          .solver = "OMP",
          .step = step,
          .selected = best,
          .max_correlation = best_val,
          .residual_norm = res_norm,
          .active_count = static_cast<Index>(path.selection_order.size())});
    }

    if (options_.residual_tolerance > 0 &&
        res_norm <= options_.residual_tolerance * f_norm) {
      break;
    }
  }
  return path;
}

}  // namespace rsm
