// Q-fold cross-validation for choosing lambda (Section IV-C, Fig. 2).
//
// The data set is partitioned into Q groups; each run trains a full solver
// path on Q-1 groups and evaluates the error curve eps_q(lambda) on the held
// out group. The averaged curve eps(lambda) is minimized to select lambda*,
// and the final model is refit on all samples at lambda*.
#pragma once

#include <span>
#include <vector>

#include "core/solver_path.hpp"
#include "stats/rng.hpp"
#include "util/common.hpp"

namespace rsm {

struct CrossValidationResult {
  /// eps(lambda) averaged over folds; index t = lambda of t+1 terms.
  std::vector<Real> error_curve;

  /// argmin of error_curve + 1 (number of selected terms).
  Index best_lambda = 0;

  /// error_curve value at the optimum.
  Real best_error = 0;

  /// Per-fold curves (diagnostic; rows = folds). A skipped fold leaves an
  /// empty curve at its position.
  std::vector<std::vector<Real>> fold_curves;

  /// Folds whose path fit failed (degenerate training block) and were
  /// excluded from the averaged curve rather than aborting the CV run.
  int skipped_folds = 0;
};

class CrossValidator {
 public:
  struct Options {
    int num_folds = 4;      // Q; the paper's Fig. 2 uses 4
    std::uint64_t seed = 7; // fold-assignment shuffle seed
  };

  CrossValidator() = default;
  explicit CrossValidator(const Options& options);

  /// Runs Q-fold CV of `solver` on (g, f), with paths up to `max_lambda`
  /// terms, scoring with relative_rms_error on the held-out fold.
  [[nodiscard]] CrossValidationResult run(const PathSolver& solver,
                                          const Matrix& g,
                                          std::span<const Real> f,
                                          Index max_lambda) const;

 private:
  Options options_;
};

}  // namespace rsm
