#include "core/stagewise.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/vector_ops.hpp"

namespace rsm {

SolverPath StagewiseSolver::fit_path(const Matrix& g, std::span<const Real> f,
                                     Index max_steps) const {
  const Index k = g.rows();
  const Index m = g.cols();
  RSM_CHECK(static_cast<Index>(f.size()) == k);
  RSM_CHECK(max_steps > 0);
  RSM_CHECK(options_.epsilon > 0 && options_.steps_per_record > 0);

  std::vector<Real> col_sq(static_cast<std::size_t>(m));
  for (Index j = 0; j < m; ++j) {
    Real s = 0;
    for (Index r = 0; r < k; ++r) s += g(r, j) * g(r, j);
    col_sq[static_cast<std::size_t>(j)] = s;
  }

  std::vector<Real> beta(static_cast<std::size_t>(m), Real{0});
  std::vector<Real> residual(f.begin(), f.end());
  std::vector<Real> corr(static_cast<std::size_t>(m));

  // Absolute nudge: epsilon * (projection coefficient of the best column at
  // the start). Scales the path to the data.
  gemv_transposed(g, residual, corr);
  Real max_proj = 0;
  for (Index j = 0; j < m; ++j) {
    if (col_sq[static_cast<std::size_t>(j)] <= 0) continue;
    max_proj = std::max(max_proj,
                        std::abs(corr[static_cast<std::size_t>(j)]) /
                            col_sq[static_cast<std::size_t>(j)]);
  }
  SolverPath path;
  if (max_proj <= 0) return path;
  const Real nudge = options_.epsilon * max_proj;

  for (Index rec = 0; rec < max_steps; ++rec) {
    for (Index micro = 0; micro < options_.steps_per_record; ++micro) {
      gemv_transposed(g, residual, corr);
      Index best = -1;
      Real best_val = 0;
      for (Index j = 0; j < m; ++j) {
        if (col_sq[static_cast<std::size_t>(j)] <= 0) continue;
        const Real v = std::abs(corr[static_cast<std::size_t>(j)]);
        if (v > best_val) {
          best_val = v;
          best = j;
        }
      }
      if (best < 0 || best_val <= Real{1e-14}) break;
      const Real sign =
          corr[static_cast<std::size_t>(best)] >= 0 ? Real{1} : Real{-1};
      // Don't overshoot the residual's projection on the column.
      const Real proj = std::abs(corr[static_cast<std::size_t>(best)]) /
                        col_sq[static_cast<std::size_t>(best)];
      const Real step = sign * std::min(nudge, proj);
      beta[static_cast<std::size_t>(best)] += step;
      for (Index r = 0; r < k; ++r)
        residual[static_cast<std::size_t>(r)] -= step * g(r, best);
    }

    std::vector<Index> active;
    std::vector<Real> coef;
    for (Index j = 0; j < m; ++j) {
      if (beta[static_cast<std::size_t>(j)] != 0) {
        active.push_back(j);
        coef.push_back(beta[static_cast<std::size_t>(j)]);
      }
    }
    path.active_sets.push_back(active);
    path.coefficients.push_back(std::move(coef));
    path.selection_order.push_back(active.empty() ? -1 : active.back());
    path.residual_norms.push_back(nrm2(residual));
  }
  return path;
}

}  // namespace rsm
