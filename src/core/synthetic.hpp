// Synthetic sparse ground truth for tests and ablation benches.
//
// Generates a function that is *exactly* a sparse linear combination of
// dictionary terms — so recovery experiments have a known answer: which
// bases matter, with which coefficients. This is the controlled counterpart
// of the circuit workloads, where sparsity is physical but the truth is
// unknown.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "basis/dictionary.hpp"
#include "core/model.hpp"
#include "stats/rng.hpp"
#include "util/common.hpp"

namespace rsm {

struct SyntheticOptions {
  /// Number of non-zero coefficients (the paper's P).
  Index num_active = 10;

  /// Always include the constant basis among the active terms.
  bool include_constant = true;

  /// Coefficient magnitudes decay geometrically from `largest` by `decay`
  /// per term (decay = 1 gives equal magnitudes); signs are random.
  Real largest_coefficient = 1.0;
  Real decay = 0.85;

  /// Standard deviation of additive Gaussian observation noise.
  Real noise_stddev = 0;
};

/// A sparse ground-truth function over a dictionary.
class SyntheticSparseFunction {
 public:
  SyntheticSparseFunction(std::shared_ptr<const BasisDictionary> dictionary,
                          const SyntheticOptions& options, Rng& rng);

  /// Noise-free value at a sample point.
  [[nodiscard]] Real evaluate(std::span<const Real> sample) const;

  /// Observed (noisy) values at each row of `samples`.
  [[nodiscard]] std::vector<Real> observe(const Matrix& samples,
                                          Rng& rng) const;

  /// The true model (exact terms and coefficients).
  [[nodiscard]] const SparseModel& truth() const { return truth_; }

  /// Indices of the active dictionary columns, descending |coefficient|.
  [[nodiscard]] std::vector<Index> active_indices() const;

 private:
  SparseModel truth_;
  Real noise_stddev_;
};

}  // namespace rsm
