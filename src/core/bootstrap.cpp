#include "core/bootstrap.hpp"

#include <algorithm>
#include <cmath>

#include "core/metrics.hpp"
#include "stats/descriptive.hpp"

namespace rsm {

BootstrapInterval bootstrap_error_interval(std::span<const Real> predicted,
                                           std::span<const Real> actual,
                                           Index num_replicates,
                                           Real confidence, Rng& rng) {
  RSM_CHECK(predicted.size() == actual.size());
  RSM_CHECK(predicted.size() >= 3);
  RSM_CHECK(num_replicates >= 10);
  RSM_CHECK(confidence > 0 && confidence < 1);

  BootstrapInterval out;
  out.estimate = relative_rms_error(predicted, actual);
  out.num_replicates = num_replicates;

  const Index n = static_cast<Index>(actual.size());
  std::vector<Real> rep_pred(static_cast<std::size_t>(n));
  std::vector<Real> rep_actual(static_cast<std::size_t>(n));
  std::vector<Real> replicates;
  replicates.reserve(static_cast<std::size_t>(num_replicates));
  for (Index r = 0; r < num_replicates; ++r) {
    for (Index i = 0; i < n; ++i) {
      const Index pick = rng.uniform_index(n);
      rep_pred[static_cast<std::size_t>(i)] =
          predicted[static_cast<std::size_t>(pick)];
      rep_actual[static_cast<std::size_t>(i)] =
          actual[static_cast<std::size_t>(pick)];
    }
    // A pathological resample can be constant; skip it (rare for real data).
    if (stddev(rep_actual) <= 0) {
      --r;
      continue;
    }
    replicates.push_back(relative_rms_error(rep_pred, rep_actual));
  }

  std::sort(replicates.begin(), replicates.end());
  const Real alpha = (1 - confidence) / 2;
  out.lower = quantile(replicates, alpha);
  out.upper = quantile(replicates, 1 - alpha);
  out.standard_error = stddev(replicates);
  return out;
}

BootstrapInterval bootstrap_model_error(const SparseModel& model,
                                        const Matrix& test_samples,
                                        std::span<const Real> test_values,
                                        Index num_replicates, Real confidence,
                                        Rng& rng) {
  const std::vector<Real> pred = model.predict_all(test_samples);
  return bootstrap_error_interval(pred, test_values, num_replicates,
                                  confidence, rng);
}

}  // namespace rsm
