// High-level modeling pipeline: the library's main entry point.
//
//   auto dict = std::make_shared<BasisDictionary>(
//       BasisDictionary::quadratic(num_variables));
//   BuildOptions opt;                  // OMP + 4-fold CV by default
//   BuildReport report = build_model(dict, train_samples, train_values, opt);
//   Real prediction = report.model.predict(some_dY);
//
// The pipeline evaluates the dictionary on the training samples, fits the
// requested method (with Q-fold cross-validation selecting lambda for the
// sparse methods), and refits the final model on all training data.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/cross_validation.hpp"
#include "core/model.hpp"
#include "core/solver_path.hpp"
#include "util/common.hpp"

namespace rsm {

/// The four modeling techniques compared throughout the paper's Section V.
enum class Method {
  kLeastSquares,  // traditional over-determined LS fitting [21]
  kStar,          // statistical regression, DAC'08 [1]
  kLar,           // least angle regression, DAC'09 [2]
  kOmp,           // orthogonal matching pursuit (this paper)
};

[[nodiscard]] const char* method_name(Method method);

/// Factory for the sparse path solvers (throws for kLeastSquares, which is
/// not a path method).
[[nodiscard]] std::unique_ptr<PathSolver> make_path_solver(Method method);

struct BuildOptions {
  Method method = Method::kOmp;

  /// Upper bound on selected terms for the sparse methods; CV picks the
  /// actual lambda <= this.
  Index max_lambda = 100;

  /// Q-fold cross-validation configuration.
  int cv_folds = 4;
  std::uint64_t cv_seed = 7;

  /// Skip CV and use exactly max_lambda terms (faster; for experiments
  /// where lambda is known).
  bool skip_cross_validation = false;

  /// Ridge strength for the LS baseline (0 = plain LS).
  Real ridge = 0;

  /// Drop fitted terms with |coefficient| below this in the final model.
  Real coefficient_threshold = 0;
};

struct BuildReport {
  SparseModel model;
  Method method = Method::kOmp;

  /// Number of active terms in the final model.
  Index lambda = 0;

  /// CV diagnostics (empty when CV was skipped or method is LS).
  CrossValidationResult cv;

  /// Wall-clock fitting cost in seconds (everything after simulation:
  /// design-matrix evaluation + CV + final fit), the paper's "fitting cost".
  double fit_seconds = 0;

  /// Training-set relative RMS error of the final model.
  Real training_error = 0;
};

/// Fits a model of `values` (size K) sampled at `samples` (K x N) over the
/// dictionary. N must equal dictionary->num_variables().
[[nodiscard]] BuildReport build_model(
    std::shared_ptr<const BasisDictionary> dictionary, const Matrix& samples,
    std::span<const Real> values, const BuildOptions& options = {});

/// Same, but with a pre-evaluated design matrix G (K x dictionary->size()).
/// Benchmarks comparing several methods on identical data use this to share
/// the design-matrix evaluation.
[[nodiscard]] BuildReport build_model_from_design(
    std::shared_ptr<const BasisDictionary> dictionary, const Matrix& design,
    std::span<const Real> values, const BuildOptions& options = {});

/// Relative RMS error of `model` on an independent testing set.
[[nodiscard]] Real validate_model(const SparseModel& model,
                                  const Matrix& test_samples,
                                  std::span<const Real> test_values);

/// De-biases a sparse model: keeps its support, re-solves the coefficients
/// by unpenalized least squares on (samples, values). A no-op for OMP
/// output (Algorithm 1's Step 6 is already an LS re-fit), but removes the
/// L1 shrinkage from LAR/LASSO models — the standard "relaxed lasso" move.
[[nodiscard]] SparseModel refit_model(const SparseModel& model,
                                      const Matrix& samples,
                                      std::span<const Real> values);

}  // namespace rsm
