#include "core/solver_path.hpp"

namespace rsm {

std::vector<Index> SolverPath::support(Index t) const {
  RSM_CHECK(t >= 0 && t < num_steps());
  if (!active_sets.empty()) {
    RSM_CHECK(static_cast<Index>(active_sets.size()) == num_steps());
    return active_sets[static_cast<std::size_t>(t)];
  }
  const auto count = coefficients[static_cast<std::size_t>(t)].size();
  RSM_CHECK(count <= selection_order.size());
  return {selection_order.begin(),
          selection_order.begin() + static_cast<std::ptrdiff_t>(count)};
}

std::vector<Real> SolverPath::dense_coefficients(Index t,
                                                 Index num_columns) const {
  std::vector<Real> dense(static_cast<std::size_t>(num_columns), Real{0});
  const std::vector<Index> sup = support(t);
  const std::vector<Real>& coef = coefficients[static_cast<std::size_t>(t)];
  RSM_CHECK(sup.size() == coef.size());
  for (std::size_t s = 0; s < sup.size(); ++s) {
    RSM_CHECK(sup[s] >= 0 && sup[s] < num_columns);
    // Accumulate (not assign): STAR may select the same column twice and
    // its per-step contributions add up.
    dense[static_cast<std::size_t>(sup[s])] += coef[s];
  }
  return dense;
}

}  // namespace rsm
