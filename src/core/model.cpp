#include "core/model.hpp"

#include "basis/hermite.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <limits>
#include <sstream>

namespace rsm {

SparseModel::SparseModel(std::shared_ptr<const BasisDictionary> dictionary,
                         std::vector<ModelTerm> terms)
    : dictionary_(std::move(dictionary)) {
  RSM_CHECK(dictionary_ != nullptr);
  terms_.reserve(terms.size());
  for (const ModelTerm& t : terms) {
    RSM_CHECK_MSG(t.basis_index >= 0 && t.basis_index < dictionary_->size(),
                  "model term index " << t.basis_index
                                      << " outside dictionary of size "
                                      << dictionary_->size());
    if (t.coefficient != Real{0}) terms_.push_back(t);
  }
}

SparseModel SparseModel::from_dense(
    std::shared_ptr<const BasisDictionary> dictionary,
    std::span<const Real> coefficients, Real threshold) {
  RSM_CHECK(dictionary != nullptr);
  RSM_CHECK(static_cast<Index>(coefficients.size()) == dictionary->size());
  std::vector<ModelTerm> terms;
  for (Index m = 0; m < dictionary->size(); ++m) {
    const Real c = coefficients[static_cast<std::size_t>(m)];
    if (std::abs(c) > threshold) terms.push_back({m, c});
  }
  return SparseModel(std::move(dictionary), std::move(terms));
}

const BasisDictionary& SparseModel::dictionary() const {
  RSM_CHECK(dictionary_ != nullptr);
  return *dictionary_;
}

Real SparseModel::predict(std::span<const Real> sample) const {
  Real sum = 0;
  for (const ModelTerm& t : terms_)
    sum += t.coefficient * dictionary().evaluate(t.basis_index, sample);
  return sum;
}

std::vector<Real> SparseModel::gradient(std::span<const Real> sample) const {
  const Index n = dictionary().num_variables();
  RSM_CHECK(static_cast<Index>(sample.size()) == n);
  std::vector<Real> grad(static_cast<std::size_t>(n), Real{0});
  for (const ModelTerm& t : terms_) {
    const MultiIndex& mi = dictionary().index(t.basis_index);
    const auto& terms = mi.terms();
    // d/d y_v of prod_i g_{o_i}(y_{v_i}): differentiate one factor, keep
    // the others.
    for (std::size_t d = 0; d < terms.size(); ++d) {
      Real partial = t.coefficient *
                     hermite_normalized_derivative(
                         terms[d].order,
                         sample[static_cast<std::size_t>(terms[d].variable)]);
      if (partial == Real{0}) continue;
      for (std::size_t o = 0; o < terms.size(); ++o) {
        if (o == d) continue;
        partial *= hermite_normalized(
            terms[o].order,
            sample[static_cast<std::size_t>(terms[o].variable)]);
      }
      grad[static_cast<std::size_t>(terms[d].variable)] += partial;
    }
  }
  return grad;
}

std::vector<Real> SparseModel::predict_all(const Matrix& samples) const {
  std::vector<Real> out(static_cast<std::size_t>(samples.rows()));
  for (Index k = 0; k < samples.rows(); ++k)
    out[static_cast<std::size_t>(k)] = predict(samples.row(k));
  return out;
}

Real SparseModel::analytic_mean() const {
  for (const ModelTerm& t : terms_)
    if (dictionary().index(t.basis_index).is_constant()) return t.coefficient;
  return 0;
}

Real SparseModel::analytic_variance() const {
  Real var = 0;
  for (const ModelTerm& t : terms_)
    if (!dictionary().index(t.basis_index).is_constant())
      var += t.coefficient * t.coefficient;
  return var;
}

namespace {

/// E[g_i g_j g_k] for three multi-indices: product over every variable of
/// the 1-D triple-product coefficient (order 0 where a variable is absent).
Real triple_expectation(const MultiIndex& i, const MultiIndex& j,
                        const MultiIndex& k) {
  // Three-way sorted merge over the variables of the three indices.
  const auto& ti = i.terms();
  const auto& tj = j.terms();
  const auto& tk = k.terms();
  std::size_t pi = 0, pj = 0, pk = 0;
  Real product = 1;
  while (pi < ti.size() || pj < tj.size() || pk < tk.size()) {
    Index v = std::numeric_limits<Index>::max();
    if (pi < ti.size()) v = std::min(v, ti[pi].variable);
    if (pj < tj.size()) v = std::min(v, tj[pj].variable);
    if (pk < tk.size()) v = std::min(v, tk[pk].variable);
    int a = 0, b = 0, c = 0;
    if (pi < ti.size() && ti[pi].variable == v) a = ti[pi++].order;
    if (pj < tj.size() && tj[pj].variable == v) b = tj[pj++].order;
    if (pk < tk.size() && tk[pk].variable == v) c = tk[pk++].order;
    product *= hermite_triple_product(a, b, c);
    if (product == Real{0}) return 0;
  }
  return product;
}

}  // namespace

Real SparseModel::analytic_third_moment() const {
  // Only non-constant terms contribute to central moments.
  std::vector<const ModelTerm*> active;
  for (const ModelTerm& t : terms_)
    if (!dictionary().index(t.basis_index).is_constant())
      active.push_back(&t);

  Real mu3 = 0;
  for (const ModelTerm* a : active) {
    const MultiIndex& ia = dictionary().index(a->basis_index);
    for (const ModelTerm* b : active) {
      const MultiIndex& ib = dictionary().index(b->basis_index);
      for (const ModelTerm* c : active) {
        mu3 += a->coefficient * b->coefficient * c->coefficient *
               triple_expectation(ia, ib, dictionary().index(c->basis_index));
      }
    }
  }
  return mu3;
}

Real SparseModel::analytic_skewness() const {
  const Real var = analytic_variance();
  if (var <= 0) return 0;
  return analytic_third_moment() / std::pow(var, Real{1.5});
}

std::string SparseModel::to_string(Index max_terms) const {
  std::vector<ModelTerm> sorted = terms_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ModelTerm& a, const ModelTerm& b) {
              return std::abs(a.coefficient) > std::abs(b.coefficient);
            });
  std::ostringstream os;
  os << "SparseModel with " << terms_.size() << " terms:\n";
  const Index show = std::min<Index>(max_terms, num_terms());
  for (Index i = 0; i < show; ++i) {
    const ModelTerm& t = sorted[static_cast<std::size_t>(i)];
    os << "  " << t.coefficient << " * "
       << dictionary().index(t.basis_index).to_string() << "\n";
  }
  if (show < num_terms()) os << "  ... (" << num_terms() - show << " more)\n";
  return os.str();
}

void SparseModel::save(std::ostream& out) const {
  out.precision(17);
  out << "sparse_model v1\n" << terms_.size() << "\n";
  for (const ModelTerm& t : terms_)
    out << t.basis_index << " " << t.coefficient << "\n";
}

SparseModel SparseModel::load(
    std::istream& in, std::shared_ptr<const BasisDictionary> dictionary) {
  std::string tag, version;
  in >> tag >> version;
  RSM_CHECK_MSG(tag == "sparse_model" && version == "v1",
                "unrecognized model file header");
  std::size_t count = 0;
  in >> count;
  std::vector<ModelTerm> terms(count);
  for (ModelTerm& t : terms) in >> t.basis_index >> t.coefficient;
  RSM_CHECK_MSG(static_cast<bool>(in), "truncated model file");
  return SparseModel(std::move(dictionary), std::move(terms));
}

}  // namespace rsm
