#include "core/model.hpp"

#include "basis/hermite.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <limits>
#include <sstream>
#include <utility>

namespace rsm {

SparseModel::SparseModel(std::shared_ptr<const BasisDictionary> dictionary,
                         std::vector<ModelTerm> terms)
    : dictionary_(std::move(dictionary)) {
  RSM_CHECK(dictionary_ != nullptr);
  terms_.reserve(terms.size());
  for (const ModelTerm& t : terms) {
    RSM_CHECK_MSG(t.basis_index >= 0 && t.basis_index < dictionary_->size(),
                  "model term index " << t.basis_index
                                      << " outside dictionary of size "
                                      << dictionary_->size());
    if (t.coefficient != Real{0}) terms_.push_back(t);
  }
  build_plan();
}

void SparseModel::build_plan() {
  plan_vars_.clear();
  plan_var_max_order_.clear();
  plan_var_offset_.clear();
  plan_table_size_ = 0;
  plan_factors_.clear();
  plan_term_begin_.clear();
  if (terms_.empty()) return;

  // Active variable set with per-variable max order: collect every factor
  // occurrence, sort by variable, coalesce.
  std::vector<std::pair<Index, int>> occurrences;
  for (const ModelTerm& t : terms_)
    for (const IndexTerm& f : dictionary().index(t.basis_index).terms())
      occurrences.emplace_back(f.variable, f.order);
  std::sort(occurrences.begin(), occurrences.end());
  for (const auto& [variable, order] : occurrences) {
    if (plan_vars_.empty() || plan_vars_.back() != variable) {
      plan_vars_.push_back(variable);
      plan_var_max_order_.push_back(order);
    } else {
      plan_var_max_order_.back() = std::max(plan_var_max_order_.back(), order);
    }
  }
  plan_var_offset_.reserve(plan_vars_.size());
  for (const int max_order : plan_var_max_order_) {
    plan_var_offset_.push_back(plan_table_size_);
    plan_table_size_ += static_cast<std::size_t>(max_order + 1);
  }

  // Flattened factor list, term-major, preserving each multi-index's own
  // factor order (the scalar product order — bit-identity depends on it).
  plan_term_begin_.reserve(terms_.size() + 1);
  for (const ModelTerm& t : terms_) {
    plan_term_begin_.push_back(plan_factors_.size());
    for (const IndexTerm& f : dictionary().index(t.basis_index).terms()) {
      const auto slot_it =
          std::lower_bound(plan_vars_.begin(), plan_vars_.end(), f.variable);
      plan_factors_.push_back(
          {static_cast<std::uint32_t>(slot_it - plan_vars_.begin()), f.order});
    }
  }
  plan_term_begin_.push_back(plan_factors_.size());
}

SparseModel SparseModel::from_dense(
    std::shared_ptr<const BasisDictionary> dictionary,
    std::span<const Real> coefficients, Real threshold) {
  RSM_CHECK(dictionary != nullptr);
  RSM_CHECK(static_cast<Index>(coefficients.size()) == dictionary->size());
  std::vector<ModelTerm> terms;
  for (Index m = 0; m < dictionary->size(); ++m) {
    const Real c = coefficients[static_cast<std::size_t>(m)];
    if (std::abs(c) > threshold) terms.push_back({m, c});
  }
  return SparseModel(std::move(dictionary), std::move(terms));
}

const BasisDictionary& SparseModel::dictionary() const {
  RSM_CHECK(dictionary_ != nullptr);
  return *dictionary_;
}

Real SparseModel::predict(std::span<const Real> sample) const {
  if (terms_.empty()) return 0;
  RSM_CHECK(static_cast<Index>(sample.size()) == dictionary().num_variables());
  // Memoize g_0..g_max once per active variable (several terms usually share
  // factors), then each term is a product of table lookups. The table rows
  // come from hermite_normalized_all, which runs the identical recurrence
  // hermite_normalized runs per call, so results are bit-identical to the
  // former per-term evaluation.
  thread_local std::vector<Real> table;
  if (table.size() < plan_table_size_) table.resize(plan_table_size_);
  for (std::size_t s = 0; s < plan_vars_.size(); ++s) {
    const int max_order = plan_var_max_order_[s];
    hermite_normalized_all(
        max_order, sample[static_cast<std::size_t>(plan_vars_[s])],
        std::span<Real>(table.data() + plan_var_offset_[s],
                        static_cast<std::size_t>(max_order + 1)));
  }
  Real sum = 0;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    Real product = 1;
    for (std::size_t f = plan_term_begin_[i]; f < plan_term_begin_[i + 1];
         ++f) {
      const PlanFactor& pf = plan_factors_[f];
      product *=
          table[plan_var_offset_[pf.slot] + static_cast<std::size_t>(pf.order)];
    }
    sum += terms_[i].coefficient * product;
  }
  return sum;
}

namespace {

/// Samples per batched-evaluation block: large enough to amortize the
/// column fills and keep the per-term inner loops vectorizable, small
/// enough that the whole order table stays cache-resident.
constexpr std::size_t kEvalBlock = 64;

}  // namespace

void SparseModel::predict_batch(const Matrix& samples,
                                std::span<Real> out) const {
  RSM_CHECK(static_cast<Index>(out.size()) == samples.rows());
  if (terms_.empty()) {
    std::fill(out.begin(), out.end(), Real{0});
    return;
  }
  RSM_CHECK(samples.cols() == dictionary().num_variables());
  predict_batch(
      std::span<const Real>(samples.data(),
                            static_cast<std::size_t>(samples.size())),
      samples.rows(), out);
}

void SparseModel::predict_batch(std::span<const Real> samples, Index rows,
                                std::span<Real> out) const {
  RSM_CHECK(static_cast<Index>(out.size()) == rows);
  std::fill(out.begin(), out.end(), Real{0});
  if (terms_.empty()) return;
  const Index cols = dictionary().num_variables();
  RSM_CHECK(static_cast<Index>(samples.size()) == rows * cols);
  const Real* data = samples.data();

  // Column layout: for active-variable slot s, orders 1..max_order occupy
  // kEvalBlock-wide columns starting at (plan_var_offset_[s] - s). Order 0
  // is never materialized — multi-index factors always have order >= 1 and
  // the recurrence only needs the constant 1 at its first step.
  const std::size_t num_slots = plan_vars_.size();
  thread_local std::vector<Real> table;
  const std::size_t needed = (plan_table_size_ - num_slots) * kEvalBlock;
  if (table.size() < needed) table.resize(needed);
  Real* tab = table.data();
  const auto column = [&](const PlanFactor& pf) {
    return tab + (plan_var_offset_[pf.slot] - pf.slot +
                  static_cast<std::size_t>(pf.order - 1)) *
                     kEvalBlock;
  };

  for (Index r0 = 0; r0 < rows; r0 += static_cast<Index>(kEvalBlock)) {
    const std::size_t bsz = std::min(
        kEvalBlock, static_cast<std::size_t>(rows - r0));
    // Fill the order columns by the vector form of the same normalized
    // recurrence hermite_normalized_all runs per sample — elementwise the
    // arithmetic is identical, so every table entry is bit-identical to the
    // scalar path's.
    const Real* block = data + static_cast<std::size_t>(r0 * cols);
    for (std::size_t s = 0; s < num_slots; ++s) {
      const std::size_t v = static_cast<std::size_t>(plan_vars_[s]);
      Real* g1 = tab + (plan_var_offset_[s] - s) * kEvalBlock;
      for (std::size_t b = 0; b < bsz; ++b)
        g1[b] = block[b * static_cast<std::size_t>(cols) + v];
      for (int k = 1; k < plan_var_max_order_[s]; ++k) {
        const Real sk = std::sqrt(static_cast<Real>(k));
        const Real sk1 = std::sqrt(static_cast<Real>(k + 1));
        Real* gk = g1 + static_cast<std::size_t>(k - 1) * kEvalBlock;
        Real* gn = gk + kEvalBlock;
        if (k == 1) {
          for (std::size_t b = 0; b < bsz; ++b)
            gn[b] = (g1[b] * gk[b] - sk * Real{1}) / sk1;
        } else {
          const Real* gp = gk - kEvalBlock;
          for (std::size_t b = 0; b < bsz; ++b)
            gn[b] = (g1[b] * gk[b] - sk * gp[b]) / sk1;
        }
      }
    }
    // Accumulate terms in declaration order with the scalar product order.
    // The 0- and 1-factor fast paths are exact rewrites: c * 1 == c and
    // 1 * g == g bit-exactly in IEEE arithmetic.
    Real* acc = out.data() + r0;
    Real prod[kEvalBlock];
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      const Real c = terms_[i].coefficient;
      const std::size_t f0 = plan_term_begin_[i];
      const std::size_t f1 = plan_term_begin_[i + 1];
      if (f1 == f0) {
        for (std::size_t b = 0; b < bsz; ++b) acc[b] += c;
      } else if (f1 == f0 + 1) {
        const Real* g = column(plan_factors_[f0]);
        for (std::size_t b = 0; b < bsz; ++b) acc[b] += c * g[b];
      } else {
        const Real* g = column(plan_factors_[f0]);
        for (std::size_t b = 0; b < bsz; ++b) prod[b] = g[b];
        for (std::size_t f = f0 + 1; f < f1; ++f) {
          const Real* gf = column(plan_factors_[f]);
          for (std::size_t b = 0; b < bsz; ++b) prod[b] *= gf[b];
        }
        for (std::size_t b = 0; b < bsz; ++b) acc[b] += c * prod[b];
      }
    }
  }
}

Matrix SparseModel::gradient_batch(const Matrix& samples) const {
  const Index n = dictionary().num_variables();
  RSM_CHECK(samples.cols() == n);
  Matrix grad(samples.rows(), n);
  if (terms_.empty()) return grad;

  const std::size_t num_slots = plan_vars_.size();
  thread_local std::vector<Real> table;
  const std::size_t needed = (plan_table_size_ - num_slots) * kEvalBlock;
  if (table.size() < needed) table.resize(needed);
  Real* tab = table.data();
  const auto column = [&](const PlanFactor& pf) {
    return tab + (plan_var_offset_[pf.slot] - pf.slot +
                  static_cast<std::size_t>(pf.order - 1)) *
                     kEvalBlock;
  };

  const Index rows = samples.rows();
  for (Index r0 = 0; r0 < rows; r0 += static_cast<Index>(kEvalBlock)) {
    const std::size_t bsz = std::min(
        kEvalBlock, static_cast<std::size_t>(rows - r0));
    for (std::size_t s = 0; s < num_slots; ++s) {
      const Index v = plan_vars_[s];
      Real* g1 = tab + (plan_var_offset_[s] - s) * kEvalBlock;
      for (std::size_t b = 0; b < bsz; ++b)
        g1[b] = samples(r0 + static_cast<Index>(b), v);
      for (int k = 1; k < plan_var_max_order_[s]; ++k) {
        const Real sk = std::sqrt(static_cast<Real>(k));
        const Real sk1 = std::sqrt(static_cast<Real>(k + 1));
        Real* gk = g1 + static_cast<std::size_t>(k - 1) * kEvalBlock;
        Real* gn = gk + kEvalBlock;
        if (k == 1) {
          for (std::size_t b = 0; b < bsz; ++b)
            gn[b] = (g1[b] * gk[b] - sk * Real{1}) / sk1;
        } else {
          const Real* gp = gk - kEvalBlock;
          for (std::size_t b = 0; b < bsz; ++b)
            gn[b] = (g1[b] * gk[b] - sk * gp[b]) / sk1;
        }
      }
    }
    // Mirror the scalar gradient exactly: per term, differentiate one factor
    // (sqrt(o) g_{o-1}, where g_0 == 1 needs no column), keep the others in
    // their stored order, skip when the derivative factor is exactly zero.
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      const Real c = terms_[i].coefficient;
      const std::size_t f0 = plan_term_begin_[i];
      const std::size_t f1 = plan_term_begin_[i + 1];
      for (std::size_t d = f0; d < f1; ++d) {
        const PlanFactor& pd = plan_factors_[d];
        const Real sq = std::sqrt(static_cast<Real>(pd.order));
        const Real* gm1 =
            pd.order >= 2
                ? column({pd.slot, pd.order - 1})
                : nullptr;
        const Index var_d = plan_vars_[pd.slot];
        for (std::size_t b = 0; b < bsz; ++b) {
          const Real der = pd.order == 1 ? sq : sq * gm1[b];
          Real partial = c * der;
          if (partial == Real{0}) continue;
          for (std::size_t o = f0; o < f1; ++o) {
            if (o == d) continue;
            partial *= column(plan_factors_[o])[b];
          }
          grad(r0 + static_cast<Index>(b), var_d) += partial;
        }
      }
    }
  }
  return grad;
}

std::vector<Real> SparseModel::gradient(std::span<const Real> sample) const {
  const Index n = dictionary().num_variables();
  RSM_CHECK(static_cast<Index>(sample.size()) == n);
  std::vector<Real> grad(static_cast<std::size_t>(n), Real{0});
  for (const ModelTerm& t : terms_) {
    const MultiIndex& mi = dictionary().index(t.basis_index);
    const auto& terms = mi.terms();
    // d/d y_v of prod_i g_{o_i}(y_{v_i}): differentiate one factor, keep
    // the others.
    for (std::size_t d = 0; d < terms.size(); ++d) {
      Real partial = t.coefficient *
                     hermite_normalized_derivative(
                         terms[d].order,
                         sample[static_cast<std::size_t>(terms[d].variable)]);
      if (partial == Real{0}) continue;
      for (std::size_t o = 0; o < terms.size(); ++o) {
        if (o == d) continue;
        partial *= hermite_normalized(
            terms[o].order,
            sample[static_cast<std::size_t>(terms[o].variable)]);
      }
      grad[static_cast<std::size_t>(terms[d].variable)] += partial;
    }
  }
  return grad;
}

std::vector<Real> SparseModel::predict_all(const Matrix& samples) const {
  // Delegates to the batched engine; bit-identical to per-row predict.
  std::vector<Real> out(static_cast<std::size_t>(samples.rows()));
  predict_batch(samples, out);
  return out;
}

Real SparseModel::analytic_mean() const {
  for (const ModelTerm& t : terms_)
    if (dictionary().index(t.basis_index).is_constant()) return t.coefficient;
  return 0;
}

Real SparseModel::analytic_variance() const {
  Real var = 0;
  for (const ModelTerm& t : terms_)
    if (!dictionary().index(t.basis_index).is_constant())
      var += t.coefficient * t.coefficient;
  return var;
}

namespace {

/// E[g_i g_j g_k] for three multi-indices: product over every variable of
/// the 1-D triple-product coefficient (order 0 where a variable is absent).
Real triple_expectation(const MultiIndex& i, const MultiIndex& j,
                        const MultiIndex& k) {
  // Three-way sorted merge over the variables of the three indices.
  const auto& ti = i.terms();
  const auto& tj = j.terms();
  const auto& tk = k.terms();
  std::size_t pi = 0, pj = 0, pk = 0;
  Real product = 1;
  while (pi < ti.size() || pj < tj.size() || pk < tk.size()) {
    Index v = std::numeric_limits<Index>::max();
    if (pi < ti.size()) v = std::min(v, ti[pi].variable);
    if (pj < tj.size()) v = std::min(v, tj[pj].variable);
    if (pk < tk.size()) v = std::min(v, tk[pk].variable);
    int a = 0, b = 0, c = 0;
    if (pi < ti.size() && ti[pi].variable == v) a = ti[pi++].order;
    if (pj < tj.size() && tj[pj].variable == v) b = tj[pj++].order;
    if (pk < tk.size() && tk[pk].variable == v) c = tk[pk++].order;
    product *= hermite_triple_product(a, b, c);
    if (product == Real{0}) return 0;
  }
  return product;
}

}  // namespace

Real SparseModel::analytic_third_moment() const {
  // Only non-constant terms contribute to central moments.
  std::vector<const ModelTerm*> active;
  for (const ModelTerm& t : terms_)
    if (!dictionary().index(t.basis_index).is_constant())
      active.push_back(&t);

  Real mu3 = 0;
  for (const ModelTerm* a : active) {
    const MultiIndex& ia = dictionary().index(a->basis_index);
    for (const ModelTerm* b : active) {
      const MultiIndex& ib = dictionary().index(b->basis_index);
      for (const ModelTerm* c : active) {
        mu3 += a->coefficient * b->coefficient * c->coefficient *
               triple_expectation(ia, ib, dictionary().index(c->basis_index));
      }
    }
  }
  return mu3;
}

Real SparseModel::analytic_skewness() const {
  const Real var = analytic_variance();
  if (var <= 0) return 0;
  return analytic_third_moment() / std::pow(var, Real{1.5});
}

std::string SparseModel::to_string(Index max_terms) const {
  std::vector<ModelTerm> sorted = terms_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ModelTerm& a, const ModelTerm& b) {
              return std::abs(a.coefficient) > std::abs(b.coefficient);
            });
  std::ostringstream os;
  os << "SparseModel with " << terms_.size() << " terms:\n";
  const Index show = std::min<Index>(max_terms, num_terms());
  for (Index i = 0; i < show; ++i) {
    const ModelTerm& t = sorted[static_cast<std::size_t>(i)];
    os << "  " << t.coefficient << " * "
       << dictionary().index(t.basis_index).to_string() << "\n";
  }
  if (show < num_terms()) os << "  ... (" << num_terms() - show << " more)\n";
  return os.str();
}

void SparseModel::save(std::ostream& out) const {
  out.precision(17);
  out << "sparse_model v1\n" << terms_.size() << "\n";
  for (const ModelTerm& t : terms_)
    out << t.basis_index << " " << t.coefficient << "\n";
}

SparseModel SparseModel::load(
    std::istream& in, std::shared_ptr<const BasisDictionary> dictionary) {
  std::string tag, version;
  in >> tag >> version;
  RSM_CHECK_MSG(tag == "sparse_model" && version == "v1",
                "unrecognized model file header");
  std::size_t count = 0;
  in >> count;
  std::vector<ModelTerm> terms(count);
  for (ModelTerm& t : terms) in >> t.basis_index >> t.coefficient;
  RSM_CHECK_MSG(static_cast<bool>(in), "truncated model file");
  return SparseModel(std::move(dictionary), std::move(terms));
}

}  // namespace rsm
