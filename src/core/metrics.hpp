// Modeling-error metrics.
//
// The paper reports "modeling error" percentages measured on an independent
// testing set. The headline metric here normalizes the RMS prediction error
// by the standard deviation of the true values: it measures how much of the
// performance *variability* — the quantity response-surface models exist to
// capture — is left unexplained. (Normalizing by ||f||_2 would let the large
// constant nominal value of, e.g., gain mask an entirely wrong variation
// model.)
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace rsm {

/// sqrt(mean((pred - actual)^2)) / std(actual). 0 = perfect; 1 ~ no better
/// than predicting the mean.
[[nodiscard]] Real relative_rms_error(std::span<const Real> predicted,
                                      std::span<const Real> actual);

/// sqrt(mean((pred - actual)^2)) / sqrt(mean(actual^2)): error relative to
/// signal magnitude (secondary metric).
[[nodiscard]] Real rms_error_over_norm(std::span<const Real> predicted,
                                       std::span<const Real> actual);

/// max |pred - actual| / std(actual).
[[nodiscard]] Real max_relative_error(std::span<const Real> predicted,
                                      std::span<const Real> actual);

/// Coefficient of determination 1 - SS_res / SS_tot.
[[nodiscard]] Real r_squared(std::span<const Real> predicted,
                             std::span<const Real> actual);

}  // namespace rsm
