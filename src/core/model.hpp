// Sparse response-surface model: the deliverable of the whole pipeline.
//
// Holds the selected basis functions with their coefficients and predicts
// f(dY) by evaluating only those functions — O(lambda) per prediction
// instead of O(M), which is the practical payoff of sparsity at use time
// (e.g., a 21 311-term dictionary reduced to 36 active terms, Fig. 6).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "basis/dictionary.hpp"
#include "util/common.hpp"

namespace rsm {

/// One active model term: dictionary column + fitted coefficient.
struct ModelTerm {
  Index basis_index = 0;
  Real coefficient = 0;
};

class SparseModel {
 public:
  SparseModel() = default;

  /// Terms must reference valid dictionary columns; zero-coefficient terms
  /// are dropped.
  SparseModel(std::shared_ptr<const BasisDictionary> dictionary,
              std::vector<ModelTerm> terms);

  /// Builds from a dense coefficient vector (length = dictionary size),
  /// keeping entries with |coef| > threshold.
  [[nodiscard]] static SparseModel from_dense(
      std::shared_ptr<const BasisDictionary> dictionary,
      std::span<const Real> coefficients, Real threshold = 0);

  [[nodiscard]] const BasisDictionary& dictionary() const;

  /// The shared ownership handle (null for a default-constructed model);
  /// lets derived models (e.g. refit_model) share the same dictionary.
  [[nodiscard]] const std::shared_ptr<const BasisDictionary>& dictionary_ptr()
      const {
    return dictionary_;
  }
  [[nodiscard]] const std::vector<ModelTerm>& terms() const { return terms_; }
  [[nodiscard]] Index num_terms() const {
    return static_cast<Index>(terms_.size());
  }

  /// f(dY) for one sample (size = dictionary().num_variables()).
  [[nodiscard]] Real predict(std::span<const Real> sample) const;

  /// Analytic gradient df/d(dY) at a sample point, via the Hermite
  /// derivative identity g_n' = sqrt(n) g_{n-1}. O(lambda * terms-per-index)
  /// — the sensitivity vector behind worst-case corner search.
  [[nodiscard]] std::vector<Real> gradient(std::span<const Real> sample) const;

  /// Predictions for each row of `samples`.
  [[nodiscard]] std::vector<Real> predict_all(const Matrix& samples) const;

  /// Predictions for each row of `samples` (K x num_variables), written into
  /// `out` (size K). Evaluates the Hermite recurrence across contiguous
  /// sample blocks — one memoized order column per (active variable, order)
  /// instead of per-sample recursion — while executing the exact elementwise
  /// arithmetic of `predict` in the same order, so results are bit-identical
  /// to the scalar path. This is the serving-layer fast path.
  void predict_batch(const Matrix& samples, std::span<Real> out) const;

  /// Same engine over a raw row-major block of `rows` samples (size
  /// rows * num_variables) — lets callers evaluate sub-ranges of a larger
  /// buffer (e.g. the server splitting one request across pool workers)
  /// without copying into a Matrix.
  void predict_batch(std::span<const Real> samples, Index rows,
                     std::span<Real> out) const;

  /// Gradients for each row of `samples`: returns a K x num_variables
  /// matrix whose row k is `gradient(samples.row(k))`, bit-identical to the
  /// scalar path (same per-factor product order, same skip-on-zero rule).
  [[nodiscard]] Matrix gradient_batch(const Matrix& samples) const;

  /// Analytic mean of the model under dY ~ N(0, I): the coefficient of the
  /// constant basis function (orthonormality kills every other term).
  [[nodiscard]] Real analytic_mean() const;

  /// Analytic variance under dY ~ N(0, I): sum of squared non-constant
  /// coefficients (Parseval over the orthonormal basis).
  [[nodiscard]] Real analytic_variance() const;

  /// Analytic third central moment under dY ~ N(0, I), via Hermite
  /// linearization coefficients: sum over term triples of
  /// a_i a_j a_k * prod_v E[g_{oi(v)} g_{oj(v)} g_{ok(v)}].
  /// O(lambda^3 * variables-per-term) — fine for sparse models.
  [[nodiscard]] Real analytic_third_moment() const;

  /// Standardized skewness mu3 / sigma^3 (0 for linear models — they are
  /// exactly Gaussian; nonzero only with quadratic/higher terms).
  [[nodiscard]] Real analytic_skewness() const;

  /// Human-readable listing, largest |coefficient| first.
  [[nodiscard]] std::string to_string(Index max_terms = 20) const;

  /// Text serialization (stable across platforms).
  void save(std::ostream& out) const;

  /// Loads a model saved with `save`; the dictionary must match the one the
  /// model was built with (indices are dictionary positions).
  [[nodiscard]] static SparseModel load(
      std::istream& in, std::shared_ptr<const BasisDictionary> dictionary);

 private:
  // One factor of a model term in the packed evaluation plan. `slot` indexes
  // the model's active-variable list (much shorter than the dictionary's
  // variable count for sparse models), `order` is the Hermite order (always
  // >= 1 — multi-indices store nonzero orders only).
  struct PlanFactor {
    std::uint32_t slot = 0;
    std::int32_t order = 0;
  };

  /// Derives the packed evaluation plan from terms_: the sorted active
  /// variable set, per-variable max orders and memo-table offsets, and a
  /// flattened per-term factor list. Called from the constructor so every
  /// model (fit, loaded, refit) carries its plan.
  void build_plan();

  std::shared_ptr<const BasisDictionary> dictionary_;
  std::vector<ModelTerm> terms_;

  // Packed evaluation plan (derived from terms_; see build_plan).
  std::vector<Index> plan_vars_;             // active variables, ascending
  std::vector<int> plan_var_max_order_;      // per active variable
  std::vector<std::size_t> plan_var_offset_; // order-0 offset into the table
  std::size_t plan_table_size_ = 0;          // sum of (max_order + 1)
  std::vector<PlanFactor> plan_factors_;     // factors, term-major
  std::vector<std::size_t> plan_term_begin_; // terms_.size() + 1 offsets
};

}  // namespace rsm
