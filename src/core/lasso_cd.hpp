// LASSO by cyclic coordinate descent.
//
// The paper relaxes the L0 constraint of eq. (11) to an L1 constraint and
// solves it with LAR; coordinate descent is the other standard solver for
// the same convex program,
//   min_a  (1/2K) ||G a - F||_2^2 + mu ||a||_1,
// and serves here as an independent cross-check of the LAR path (at matched
// mu the two must agree) and as a warm-startable solver for the bench
// ablations. Emits a SolverPath over a geometric grid of mu values so the
// cross-validation machinery applies unchanged.
#pragma once

#include "core/solver_path.hpp"

namespace rsm {

class LassoCdSolver final : public PathSolver {
 public:
  struct Options {
    /// Grid: mu_t = mu_max * ratio^t, t = 0..num_values-1, where mu_max is
    /// the smallest mu with an all-zero solution. num_values is clamped to
    /// the caller's max_steps.
    Real grid_ratio = 0.85;

    /// Convergence: stop a mu-point when no coefficient moves more than
    /// this fraction of the largest coefficient magnitude.
    Real tolerance = 1e-8;

    int max_sweeps_per_mu = 1000;
  };

  LassoCdSolver() = default;
  explicit LassoCdSolver(const Options& options) : options_(options) {}

  /// Path step t holds the active set and coefficients at grid point mu_t
  /// (warm-started from mu_{t-1}).
  [[nodiscard]] SolverPath fit_path(const Matrix& g, std::span<const Real> f,
                                    Index max_steps) const override;

  /// Single solve at an explicit penalty; returns the dense coefficients.
  [[nodiscard]] std::vector<Real> fit_at(const Matrix& g,
                                         std::span<const Real> f,
                                         Real mu) const;

  [[nodiscard]] const char* name() const override { return "LASSO-CD"; }

 private:
  Options options_;
};

}  // namespace rsm
