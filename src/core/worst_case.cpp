#include "core/worst_case.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"

namespace rsm {
namespace {

/// Projects x onto the ball ||x|| <= radius.
void project(std::vector<Real>& x, Real radius) {
  const Real norm = nrm2(x);
  if (norm <= radius || norm == 0) return;
  const Real scale = radius / norm;
  for (Real& v : x) v *= scale;
}

}  // namespace

namespace {

/// One projected-ascent run from `start`; returns (corner, value, iters).
WorstCaseResult ascend_from(const SparseModel& model,
                            const WorstCaseOptions& options,
                            std::vector<Real> start) {
  const Real sign = options.maximize ? Real{1} : Real{-1};
  WorstCaseResult result;
  project(start, options.radius);
  result.corner = std::move(start);
  Real best = model.predict(result.corner);
  Real step = options.step;
  for (int it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    const std::vector<Real> grad = model.gradient(result.corner);
    std::vector<Real> trial = result.corner;
    axpy(sign * step, grad, trial);
    project(trial, options.radius);
    const Real value = model.predict(trial);
    if (sign * (value - best) > 0) {
      const bool tiny = sign * (value - best) < options.tolerance *
                                                    (std::abs(best) + 1);
      result.corner = std::move(trial);
      best = value;
      step = std::min(step * Real{1.2}, options.step * 4);
      if (tiny) {
        result.converged = true;
        break;
      }
    } else {
      step /= 2;
      if (step < Real{1e-12}) {
        result.converged = true;
        break;
      }
    }
  }
  result.value = best;
  result.sigma_distance = nrm2(result.corner);
  return result;
}

}  // namespace

WorstCaseResult find_worst_case(const SparseModel& model,
                                const WorstCaseOptions& options) {
  RSM_CHECK(options.radius > 0 && options.max_iterations > 0 &&
            options.step > 0);
  const Index n = model.dictionary().num_variables();
  const Real sign = options.maximize ? Real{1} : Real{-1};

  // The sphere-constrained problem is nonconvex for quadratic models, so a
  // single ascent can land on a local optimum. Multi-start from:
  //   - the origin kicked along its gradient (exact for linear models),
  //   - +/- radius along each variable axis the model actually uses.
  std::vector<std::vector<Real>> starts;
  {
    std::vector<Real> origin(static_cast<std::size_t>(n), Real{0});
    std::vector<Real> grad = model.gradient(origin);
    if (max_abs(grad) == 0) {
      for (Index i = 0; i < n; ++i)
        grad[static_cast<std::size_t>(i)] =
            (i % 2 == 0 ? Real{1} : Real{-1}) /
            std::sqrt(static_cast<Real>(n));
    }
    axpy(sign * options.step, grad, origin);
    starts.push_back(std::move(origin));
  }
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  for (const ModelTerm& t : model.terms())
    for (const IndexTerm& it : model.dictionary().index(t.basis_index).terms())
      used[static_cast<std::size_t>(it.variable)] = true;
  Index axis_starts = 0;
  for (Index v = 0; v < n && axis_starts < 64; ++v) {
    if (!used[static_cast<std::size_t>(v)]) continue;
    for (Real dir : {Real{1}, Real{-1}}) {
      std::vector<Real> s(static_cast<std::size_t>(n), Real{0});
      s[static_cast<std::size_t>(v)] = dir * options.radius;
      starts.push_back(std::move(s));
    }
    ++axis_starts;
  }

  WorstCaseResult best;
  bool first = true;
  for (std::vector<Real>& start : starts) {
    WorstCaseResult r = ascend_from(model, options, std::move(start));
    if (first || sign * (r.value - best.value) > 0) {
      best = std::move(r);
      first = false;
    }
  }
  return best;
}

}  // namespace rsm
