#include "core/column_source.hpp"

#include <algorithm>

#include "basis/hermite.hpp"
#include "linalg/blas.hpp"
#include "linalg/vector_ops.hpp"

namespace rsm {

void MaterializedSource::correlate(std::span<const Real> x,
                                   std::span<Real> out) const {
  gemv_transposed(*g_, x, out);
}

void MaterializedSource::column(Index j, std::span<Real> out) const {
  RSM_CHECK(static_cast<Index>(out.size()) == g_->rows());
  for (Index r = 0; r < g_->rows(); ++r)
    out[static_cast<std::size_t>(r)] = (*g_)(r, j);
}

DictionarySource::DictionarySource(
    std::shared_ptr<const BasisDictionary> dictionary, const Matrix& samples)
    : dictionary_(std::move(dictionary)), samples_(&samples) {
  RSM_CHECK(dictionary_ != nullptr);
  RSM_CHECK(samples.cols() == dictionary_->num_variables());
}

void DictionarySource::correlate(std::span<const Real> x,
                                 std::span<Real> out) const {
  const Index k = rows();
  const Index m = num_columns();
  RSM_CHECK(static_cast<Index>(x.size()) == k);
  RSM_CHECK(static_cast<Index>(out.size()) == m);
  const int max_order = dictionary_->max_order();
  const Index n = dictionary_->num_variables();

  std::fill(out.begin(), out.end(), Real{0});
  // Row-at-a-time accumulation: for each sample row build the per-variable
  // Hermite table once (O(N * order)), then add x[k] * g_m(sample) into
  // every slot. Memory: one table, no K x M block at all.
  std::vector<Real> table(static_cast<std::size_t>(n * (max_order + 1)));
  std::vector<Real> orders(static_cast<std::size_t>(max_order + 1));
  for (Index r = 0; r < k; ++r) {
    const Real weight = x[static_cast<std::size_t>(r)];
    if (weight == Real{0}) continue;
    std::span<const Real> sample = samples_->row(r);
    for (Index v = 0; v < n; ++v) {
      hermite_normalized_all(max_order, sample[static_cast<std::size_t>(v)],
                             orders);
      std::copy(orders.begin(), orders.end(),
                table.begin() + v * (max_order + 1));
    }
    for (Index j = 0; j < m; ++j) {
      Real product = 1;
      for (const IndexTerm& t : dictionary_->index(j).terms())
        product *= table[static_cast<std::size_t>(
            t.variable * (max_order + 1) + t.order)];
      out[static_cast<std::size_t>(j)] += weight * product;
    }
  }
}

void DictionarySource::column(Index j, std::span<Real> out) const {
  RSM_CHECK(static_cast<Index>(out.size()) == rows());
  for (Index r = 0; r < rows(); ++r)
    out[static_cast<std::size_t>(r)] =
        dictionary_->evaluate(j, samples_->row(r));
}

}  // namespace rsm
