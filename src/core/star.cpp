#include "core/star.hpp"

#include <cmath>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/cancellation.hpp"

namespace rsm {

SolverPath StarSolver::fit_path(const Matrix& g, std::span<const Real> f,
                                Index max_steps) const {
  RSM_TRACE_SPAN("star.fit");
  const Index num_samples = g.rows();
  const Index num_columns = g.cols();
  RSM_CHECK(static_cast<Index>(f.size()) == num_samples);
  RSM_CHECK(max_steps > 0);

  SolverPath path;
  std::vector<Real> residual(f.begin(), f.end());
  std::vector<Real> correlations(static_cast<std::size_t>(num_columns));

  // Running per-column coefficient accumulator (duplicated selections add).
  std::vector<Real> step_coefficients;  // aligned with selection_order

  for (Index step = 0; step < max_steps; ++step) {
    RSM_TRACE_SPAN("star.iteration");
    check_cooperative_stop("star.iteration");
    gemv_transposed(g, residual, correlations);
    const Index best = argmax_abs(correlations);
    if (best < 0) break;

    // Coefficient = inner-product estimate (eq. (14)/(18)): the projection
    // of the residual on the column, normalized by the column's squared
    // norm. With orthonormal basis functions ||G_m||^2 ~= K, so this matches
    // the paper's 1/K scaling while staying exact for finite samples.
    const std::vector<Real> column = g.col(best);
    const Real denom = dot(column, column);
    if (denom <= Real{0}) break;
    const Real alpha = correlations[static_cast<std::size_t>(best)] / denom;

    path.selection_order.push_back(best);
    step_coefficients.push_back(alpha);
    path.coefficients.push_back(step_coefficients);

    axpy(-alpha, column, residual);
    path.residual_norms.push_back(nrm2(residual));

    if (obs::telemetry_enabled()) {
      obs::emit(obs::SolverIterationEvent{
          .solver = "STAR",
          .step = step,
          .selected = best,
          .max_correlation =
              std::abs(correlations[static_cast<std::size_t>(best)]),
          .residual_norm = path.residual_norms.back(),
          .active_count = static_cast<Index>(path.selection_order.size())});
    }
  }
  return path;
}

}  // namespace rsm
