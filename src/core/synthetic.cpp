#include "core/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rsm {

SyntheticSparseFunction::SyntheticSparseFunction(
    std::shared_ptr<const BasisDictionary> dictionary,
    const SyntheticOptions& options, Rng& rng)
    : noise_stddev_(options.noise_stddev) {
  RSM_CHECK(dictionary != nullptr);
  RSM_CHECK(options.num_active > 0 &&
            options.num_active <= dictionary->size());
  RSM_CHECK(options.largest_coefficient > 0 && options.decay > 0 &&
            options.decay <= 1);

  // Draw distinct active indices.
  std::unordered_set<Index> chosen;
  std::vector<Index> order;
  if (options.include_constant) {
    // Column of the constant basis (index 0 in every generator we ship, but
    // search defensively).
    for (Index m = 0; m < dictionary->size(); ++m) {
      if (dictionary->index(m).is_constant()) {
        chosen.insert(m);
        order.push_back(m);
        break;
      }
    }
  }
  while (static_cast<Index>(order.size()) < options.num_active) {
    const Index m = rng.uniform_index(dictionary->size());
    if (chosen.insert(m).second) order.push_back(m);
  }

  std::vector<ModelTerm> terms;
  Real magnitude = options.largest_coefficient;
  for (Index m : order) {
    const Real sign = rng.uniform() < Real{0.5} ? Real{-1} : Real{1};
    terms.push_back({m, sign * magnitude});
    magnitude *= options.decay;
  }
  truth_ = SparseModel(std::move(dictionary), std::move(terms));
}

Real SyntheticSparseFunction::evaluate(std::span<const Real> sample) const {
  return truth_.predict(sample);
}

std::vector<Real> SyntheticSparseFunction::observe(const Matrix& samples,
                                                   Rng& rng) const {
  std::vector<Real> values = truth_.predict_all(samples);
  if (noise_stddev_ > 0)
    for (Real& v : values) v += rng.normal(0, noise_stddev_);
  return values;
}

std::vector<Index> SyntheticSparseFunction::active_indices() const {
  std::vector<ModelTerm> sorted = truth_.terms();
  std::sort(sorted.begin(), sorted.end(),
            [](const ModelTerm& a, const ModelTerm& b) {
              return std::abs(a.coefficient) > std::abs(b.coefficient);
            });
  std::vector<Index> out;
  out.reserve(sorted.size());
  for (const ModelTerm& t : sorted) out.push_back(t.basis_index);
  return out;
}

}  // namespace rsm
