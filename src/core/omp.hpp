// Orthogonal matching pursuit — Algorithm 1 of the paper.
//
// Per iteration: (3) correlate the residual with every column, (4-5) select
// the most correlated column, (6) re-solve the least-squares coefficients of
// the whole active set, (7) update the residual. The re-solve is implemented
// with an incrementally grown thin QR (see linalg/incremental_qr.hpp), which
// is numerically identical to re-fitting from scratch but O(lambda) cheaper.
#pragma once

#include "core/column_source.hpp"
#include "core/solver_path.hpp"

namespace rsm {

class OmpSolver final : public PathSolver {
 public:
  struct Options {
    /// Stop when the residual norm falls below this fraction of ||F||_2
    /// (0 disables early stopping; cross-validation then picks lambda).
    Real residual_tolerance = 0;

    /// Columns whose orthogonalized remainder is below this (relative)
    /// threshold are skipped as numerically dependent on the active set.
    Real dependence_tolerance = 1e-10;
  };

  OmpSolver() = default;
  explicit OmpSolver(const Options& options) : options_(options) {}

  [[nodiscard]] SolverPath fit_path(const Matrix& g, std::span<const Real> f,
                                    Index max_steps) const override;

  /// Streaming variant: runs against any ColumnSource (e.g. a lazily
  /// evaluated dictionary for M ~ 10^6, where G never materializes). The
  /// matrix overload above delegates here through MaterializedSource.
  [[nodiscard]] SolverPath fit_path(const ColumnSource& source,
                                    std::span<const Real> f,
                                    Index max_steps) const;

  [[nodiscard]] const char* name() const override { return "OMP"; }

 private:
  Options options_;
};

}  // namespace rsm
