// Streaming access to design-matrix columns.
//
// The paper targets up to 10^6 model coefficients; at K = 10^3 samples a
// materialized design matrix would be 8 GB. A ColumnSource abstracts "the
// K x M matrix G" behind two operations — correlate a residual against every
// column, and fetch one column — so OMP can run against a dictionary that is
// evaluated lazily, block by block, in O(K * block) memory.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "basis/dictionary.hpp"
#include "linalg/matrix.hpp"
#include "util/common.hpp"

namespace rsm {

class ColumnSource {
 public:
  virtual ~ColumnSource() = default;

  [[nodiscard]] virtual Index rows() const = 0;
  [[nodiscard]] virtual Index num_columns() const = 0;

  /// out[j] = G_j' x for every column j. out.size() == num_columns().
  virtual void correlate(std::span<const Real> x, std::span<Real> out) const = 0;

  /// Materializes column j. out.size() == rows().
  virtual void column(Index j, std::span<Real> out) const = 0;
};

/// Wraps an explicit matrix (the fast path used by the benches).
class MaterializedSource final : public ColumnSource {
 public:
  explicit MaterializedSource(const Matrix& g) : g_(&g) {}

  [[nodiscard]] Index rows() const override { return g_->rows(); }
  [[nodiscard]] Index num_columns() const override { return g_->cols(); }
  void correlate(std::span<const Real> x, std::span<Real> out) const override;
  void column(Index j, std::span<Real> out) const override;

 private:
  const Matrix* g_;
};

/// Evaluates dictionary columns on demand: the correlation scan walks the
/// samples row by row with a per-row Hermite factor table, so memory stays
/// O(N * max_order) regardless of M — this is what makes M ~ 10^6 feasible.
class DictionarySource final : public ColumnSource {
 public:
  /// `samples` is the K x N sample matrix (kept by reference; caller owns).
  DictionarySource(std::shared_ptr<const BasisDictionary> dictionary,
                   const Matrix& samples);

  [[nodiscard]] Index rows() const override { return samples_->rows(); }
  [[nodiscard]] Index num_columns() const override {
    return dictionary_->size();
  }
  void correlate(std::span<const Real> x, std::span<Real> out) const override;
  void column(Index j, std::span<Real> out) const override;

 private:
  std::shared_ptr<const BasisDictionary> dictionary_;
  const Matrix* samples_;
};

}  // namespace rsm
