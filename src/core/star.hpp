// STAR — statistical regression baseline from DAC 2008 [1].
//
// Identical selection criterion to OMP, but Step 6 is replaced: the
// coefficient of the selected basis vector is set directly to the
// inner-product estimate xi_s = G_s' Res / K (eq. (18)) instead of
// re-solving least squares over the active set. Because the residual is not
// orthogonalized against earlier selections, STAR may re-select a column to
// refine its coefficient; contributions accumulate. This is the ablation the
// paper uses to show why OMP's re-fit matters (Table II: 1.5-5x error gap).
#pragma once

#include "core/solver_path.hpp"

namespace rsm {

class StarSolver final : public PathSolver {
 public:
  [[nodiscard]] SolverPath fit_path(const Matrix& g, std::span<const Real> f,
                                    Index max_steps) const override;

  [[nodiscard]] const char* name() const override { return "STAR"; }
};

}  // namespace rsm
