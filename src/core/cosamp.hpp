// CoSaMP — compressive sampling matching pursuit (Needell & Tropp 2009).
//
// The other canonical greedy L0 heuristic from the compressed-sensing
// literature the paper builds on: instead of growing the support one column
// per iteration (OMP), CoSaMP proposes 2s candidates per iteration, solves
// LS on the merged support, and prunes back to the s largest coefficients —
// so early mistakes can be *undone*, which OMP's nested path cannot do.
// Included to round out the solver family and as an ablation point: on the
// well-conditioned random designs here the two are nearly equivalent, with
// CoSaMP occasionally recovering from a wrong early pick.
#pragma once

#include "core/solver_path.hpp"

namespace rsm {

class CosampSolver final : public PathSolver {
 public:
  struct Options {
    /// Stop when the residual improves by less than this factor between
    /// iterations (the support has stabilized).
    Real stall_tolerance = 1e-7;

    /// Hard cap on refinement iterations per sparsity level.
    int max_iterations = 30;
  };

  CosampSolver() = default;
  explicit CosampSolver(const Options& options) : options_(options) {}

  /// Path semantics differ from OMP's: step t is the *converged* CoSaMP
  /// solution at sparsity s = t + 1 (supports are not nested between steps;
  /// active_sets is always populated).
  [[nodiscard]] SolverPath fit_path(const Matrix& g, std::span<const Real> f,
                                    Index max_steps) const override;

  /// Single solve at a fixed sparsity (the usual way CoSaMP is run).
  [[nodiscard]] SolverPath fit_at_sparsity(const Matrix& g,
                                           std::span<const Real> f,
                                           Index sparsity) const;

  [[nodiscard]] const char* name() const override { return "CoSaMP"; }

 private:
  Options options_;
};

}  // namespace rsm
