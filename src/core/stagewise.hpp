// Incremental forward stagewise regression (epsilon-stagewise).
//
// The third member of the family Efron et al. unify with LAR and LASSO:
// at each micro-step, nudge the coefficient of the most-correlated column by
// +/- epsilon. As epsilon -> 0 its solution path converges to the LAR/LASSO
// path; at finite epsilon it is the cheapest-per-step (if slowest-overall)
// of the sparse solvers. Included for completeness of the solver family and
// as a cross-check of the LAR implementation.
#pragma once

#include "core/solver_path.hpp"

namespace rsm {

class StagewiseSolver final : public PathSolver {
 public:
  struct Options {
    /// Step size as a fraction of the initial max |correlation| / ||col||^2.
    Real epsilon = 0.01;

    /// Micro-steps folded into one recorded path step (recording every
    /// epsilon-nudge would make the CV curves needlessly long).
    Index steps_per_record = 50;
  };

  StagewiseSolver() = default;
  explicit StagewiseSolver(const Options& options) : options_(options) {}

  [[nodiscard]] SolverPath fit_path(const Matrix& g, std::span<const Real> f,
                                    Index max_steps) const override;

  [[nodiscard]] const char* name() const override { return "Stagewise"; }

 private:
  Options options_;
};

}  // namespace rsm
