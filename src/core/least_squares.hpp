// Traditional least-squares fitting baseline [21].
//
// Solves the over-determined system of eq. (6) — which requires K >= M
// training samples, the very cost the paper's sparse methods eliminate.
// Offered in two flavors: Householder QR (numerically robust, O(K M^2)) and
// normal equations with Cholesky (~2x faster, fine for the well-conditioned
// random design matrices here). An optional ridge term stabilizes K ~ M.
#pragma once

#include <span>
#include <vector>

#include "core/solver_path.hpp"
#include "linalg/matrix.hpp"
#include "util/common.hpp"

namespace rsm {

class LeastSquaresFitter {
 public:
  struct Options {
    /// Use A'A Cholesky instead of QR (faster, slightly less robust).
    bool use_normal_equations = false;

    /// Tikhonov regularization strength (0 = plain least squares).
    Real ridge = 0;
  };

  LeastSquaresFitter() = default;
  explicit LeastSquaresFitter(const Options& options) : options_(options) {}

  /// Dense coefficient vector minimizing ||G a - F||_2 (+ ridge).
  /// Requires G.rows() >= G.cols() when ridge == 0.
  [[nodiscard]] std::vector<Real> fit(const Matrix& g,
                                      std::span<const Real> f) const;

 private:
  Options options_;
};

}  // namespace rsm
