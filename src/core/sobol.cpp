#include "core/sobol.hpp"

#include <algorithm>
#include <numeric>

namespace rsm {

SobolIndices sobol_indices(const SparseModel& model) {
  const BasisDictionary& dict = model.dictionary();
  const Index n = dict.num_variables();
  SobolIndices out;
  out.first_order.assign(static_cast<std::size_t>(n), Real{0});
  out.total_effect.assign(static_cast<std::size_t>(n), Real{0});
  out.variance = model.analytic_variance();
  if (out.variance <= 0) return out;

  for (const ModelTerm& t : model.terms()) {
    const MultiIndex& mi = dict.index(t.basis_index);
    if (mi.is_constant()) continue;
    const Real contribution = t.coefficient * t.coefficient / out.variance;
    const auto& terms = mi.terms();
    if (terms.size() == 1) {
      out.first_order[static_cast<std::size_t>(terms[0].variable)] +=
          contribution;
    } else {
      out.interaction_fraction += contribution;
    }
    for (const IndexTerm& it : terms)
      out.total_effect[static_cast<std::size_t>(it.variable)] += contribution;
  }
  return out;
}

std::vector<Index> rank_variables_by_sensitivity(const SparseModel& model) {
  const SobolIndices idx = sobol_indices(model);
  std::vector<Index> order(idx.total_effect.size());
  std::iota(order.begin(), order.end(), Index{0});
  std::stable_sort(order.begin(), order.end(), [&](Index a, Index b) {
    return idx.total_effect[static_cast<std::size_t>(a)] >
           idx.total_effect[static_cast<std::size_t>(b)];
  });
  while (!order.empty() &&
         idx.total_effect[static_cast<std::size_t>(order.back())] <= 0)
    order.pop_back();
  return order;
}

}  // namespace rsm
