// Parametric yield estimation from fitted response-surface models.
//
// The paper's motivation (Section I): once models are extracted, performance
// distributions and parametric yield can be predicted by cheap Monte Carlo
// on the model — microseconds per sample — instead of transistor-level
// simulation. This module closes that loop: specs, per-metric and joint
// yield with binomial confidence intervals, and model-based distribution
// summaries.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "util/common.hpp"

namespace rsm {

/// Acceptance window for one performance metric.
struct Specification {
  Real lower = -std::numeric_limits<Real>::infinity();
  Real upper = std::numeric_limits<Real>::infinity();

  [[nodiscard]] bool accepts(Real value) const {
    return value >= lower && value <= upper;
  }
};

struct YieldResult {
  Real yield = 0;          // fraction of passing samples
  Real standard_error = 0; // binomial: sqrt(y (1-y) / n)
  Index num_samples = 0;
  Index num_failures = 0;
};

/// Monte Carlo yield of a single metric against its spec.
[[nodiscard]] YieldResult estimate_yield(const SparseModel& model,
                                         const Specification& spec,
                                         Index num_samples, Rng& rng);

/// Joint yield across several metrics sharing the same variation space:
/// every model must pass its spec on the same dY draw. All models must have
/// the same number of variables.
[[nodiscard]] YieldResult estimate_joint_yield(
    std::span<const SparseModel* const> models,
    std::span<const Specification> specs, Index num_samples, Rng& rng);

/// Model-predicted performance distribution: summary statistics plus chosen
/// quantiles from `num_samples` model evaluations.
struct DistributionEstimate {
  Summary summary;
  std::vector<Real> quantile_levels;
  std::vector<Real> quantile_values;
};

inline constexpr Real kDefaultQuantiles[] = {0.001, 0.01, 0.5, 0.99, 0.999};

[[nodiscard]] DistributionEstimate estimate_distribution(
    const SparseModel& model, Index num_samples, Rng& rng,
    std::span<const Real> quantile_levels = kDefaultQuantiles);

/// For a *linear* model: the exact analytic yield under dY ~ N(0, I)
/// (the model value is normal with the model's analytic mean/variance).
/// Throws if the model has nonlinear terms.
[[nodiscard]] Real analytic_linear_yield(const SparseModel& model,
                                         const Specification& spec);

/// Standard normal CDF (exposed for tests and for analytic_linear_yield).
[[nodiscard]] Real normal_cdf(Real x);

/// High-sigma tail probability P(f(dY) > threshold) (or < with
/// `upper_tail = false`) by mean-shift importance sampling on the model.
///
/// Plain Monte Carlo needs ~100/p samples to see a p-probability event —
/// hopeless at the 4-6 sigma failure rates SRAM cells are designed to
/// (e.g. p ~ 1e-8). Shifting the sampling mean to the failure boundary and
/// re-weighting by the likelihood ratio exp(-mu'x + |mu|^2/2) makes the
/// estimator's relative error nearly flat in sigma. The shift direction is
/// the model's linear-coefficient vector (exact for linear models, a good
/// ascent direction otherwise); its magnitude is set by bisection so the
/// shifted mean sits on the failure boundary.
struct TailProbability {
  Real probability = 0;
  Real standard_error = 0;  // of the IS estimator
  Index num_samples = 0;
  Real shift_magnitude = 0;  // |mu| actually used [sigma]
};

[[nodiscard]] TailProbability estimate_tail_probability(
    const SparseModel& model, Real threshold, bool upper_tail,
    Index num_samples, Rng& rng);

}  // namespace rsm
