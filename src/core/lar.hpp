// Least angle regression (Efron, Hastie, Johnstone, Tibshirani 2004) — the
// solver contributed by the DAC 2009 paper [2].
//
// LAR relaxes the L0 constraint of eq. (11) to an L1 constraint and traces
// the whole regularization path: starting from alpha = 0 it moves the
// coefficients of the currently most-correlated ("least angle") set along
// the equiangular direction until an inactive column ties, then admits it.
// With the LASSO modification enabled, a coefficient hitting zero leaves the
// active set, making the path exactly the LASSO solution path.
//
// Implementation notes:
//  - columns are normalized to unit 2-norm internally; reported
//    coefficients are de-normalized back to design-matrix scale;
//  - the active-set Gram matrix keeps an incrementally grown Cholesky
//    factor (O(p^2) per added column, rebuild on LASSO drop);
//  - per step the dominant cost is two K x M correlations (c = G'r and
//    a = G'u), about twice OMP's one — visible in the paper's fitting-cost
//    rows (Tables I/III/IV: LAR fitting time ~2x OMP).
#pragma once

#include "core/solver_path.hpp"

namespace rsm {

class LarSolver final : public PathSolver {
 public:
  struct Options {
    /// Apply the LASSO modification (drop variables whose coefficient
    /// crosses zero). Off = pure LAR, as used in the paper.
    bool lasso = false;

    /// Stop when the maximal absolute correlation falls below this times
    /// its initial value.
    Real correlation_tolerance = 1e-12;
  };

  LarSolver() = default;
  explicit LarSolver(const Options& options) : options_(options) {}

  [[nodiscard]] SolverPath fit_path(const Matrix& g, std::span<const Real> f,
                                    Index max_steps) const override;

  [[nodiscard]] const char* name() const override { return "LAR"; }

 private:
  Options options_;
};

}  // namespace rsm
