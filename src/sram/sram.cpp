#include "sram/sram.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "spice/mosfet.hpp"

namespace rsm::sram {
namespace {

using spice::kSubthresholdSlope;
using spice::kThermalVoltage;

/// Saturation drain current of a square-law device (the only operating
/// region the timing stages use).
Real sat_current(Real kp, Real w_over_l, Real vgs, Real vth) {
  const Real vov = vgs - vth;
  if (vov <= 0) return 0;
  return Real{0.5} * kp * w_over_l * vov * vov;
}

/// Subthreshold leakage of one cell at gate bias 0.
Real cell_leakage(Real kp, Real w_over_l, Real vth) {
  const Real n_vt = kSubthresholdSlope * kThermalVoltage;
  const Real i_spec = kp * w_over_l * n_vt * n_vt / 2;
  return i_spec * std::exp(-vth / n_vt);
}

}  // namespace

SramVariableMap::SramVariableMap(const SramConfig& config)
    : num_globals(6),
      num_driver_vars(2 * config.driver_stages),
      num_replica_vars(2 * config.replica_cells),
      num_sense_vars(6),
      num_misc_vars(2),
      num_cells(config.rows * config.cols),
      rows_(config.rows),
      cols_(config.cols),
      driver_stages_(config.driver_stages),
      replica_cells_(config.replica_cells) {
  RSM_CHECK(rows_ > 1 && cols_ > 0 && driver_stages_ > 0 &&
            replica_cells_ > 0);
}

Index SramVariableMap::total() const {
  return num_globals + num_driver_vars + num_replica_vars + num_sense_vars +
         num_misc_vars + num_cells;
}

Index SramVariableMap::global(Index g) const {
  RSM_CHECK(g >= 0 && g < num_globals);
  return g;
}

Index SramVariableMap::driver(Index stage, Index p) const {
  RSM_CHECK(stage >= 0 && stage < driver_stages_ && (p == 0 || p == 1));
  return num_globals + 2 * stage + p;
}

Index SramVariableMap::replica(Index cell, Index p) const {
  RSM_CHECK(cell >= 0 && cell < replica_cells_ && (p == 0 || p == 1));
  return num_globals + num_driver_vars + 2 * cell + p;
}

Index SramVariableMap::sense(Index p) const {
  RSM_CHECK(p >= 0 && p < num_sense_vars);
  return num_globals + num_driver_vars + num_replica_vars + p;
}

Index SramVariableMap::misc(Index p) const {
  RSM_CHECK(p >= 0 && p < num_misc_vars);
  return num_globals + num_driver_vars + num_replica_vars + num_sense_vars + p;
}

Index SramVariableMap::cell(Index row, Index col) const {
  RSM_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  return num_globals + num_driver_vars + num_replica_vars + num_sense_vars +
         num_misc_vars + row * cols_ + col;
}

SramWorkload::SramWorkload(const SramConfig& config)
    : config_(config), map_(config) {
  const std::vector<Real> zeros(static_cast<std::size_t>(map_.total()),
                                Real{0});
  nominal_ = evaluate(zeros);
}

Real SramWorkload::evaluate(std::span<const Real> dy) const {
  return evaluate_metrics(dy).delay;
}

SramWorkload::Metrics SramWorkload::evaluate_metrics(
    std::span<const Real> dy) const {
  RSM_CHECK(static_cast<Index>(dy.size()) == map_.total());
  const circuits::Process65& p = config_.process;
  const SramVariableMap& vm = map_;
  const auto at = [&](Index i) { return dy[static_cast<std::size_t>(i)]; };

  // Globals: threshold / strength / geometry / supply shifts.
  const Real g_vth = at(vm.global(0)) * p.sigma_vth_global;
  const Real g_kp = at(vm.global(1)) * p.sigma_kp_global;
  const Real g_len = at(vm.global(2)) * p.sigma_len_global;
  const Real g_vdd = at(vm.global(3)) * Real{0.01} * p.vdd;   // supply noise
  const Real g_cap = at(vm.global(4)) * Real{0.02};           // BEOL caps
  const Real g_res = at(vm.global(5)) * Real{0.05};           // grid/wire R

  const Real kp_eff = p.kp_nmos * (1 + g_kp);
  const Real wol_cell = Real{2.0} / (1 + g_len);    // cell composite W/L
  const Real wol_driver = Real{40.0} / (1 + g_len); // driver W/L

  // --- Supply droop from total array leakage. Every cell participates:
  // this is the mechanism that gives all 21k variables a (tiny) nonzero
  // delay sensitivity.
  Real i_leak_total = 0;
  for (Index r = 0; r < config_.rows; ++r) {
    for (Index c = 0; c < config_.cols; ++c) {
      const Real vth_cell =
          p.vt0_nmos + g_vth + at(vm.cell(r, c)) * config_.sigma_cell_vth;
      i_leak_total += cell_leakage(kp_eff, wol_cell, vth_cell);
    }
  }
  const Real vdd_eff = p.vdd + g_vdd -
                       config_.r_grid * (1 + g_res) * i_leak_total;
  RSM_CHECK_MSG(vdd_eff > Real{0.8},
                "supply collapsed (vdd_eff=" << vdd_eff << " V)");

  // --- Word-line driver chain: per stage t = 0.69 * C * V / I_drive.
  Real t_wl = 0;
  const Real c_stage = config_.c_stage * (1 + g_cap);
  for (Index s = 0; s < config_.driver_stages; ++s) {
    const Real vth_drv =
        p.vt0_nmos + g_vth + at(vm.driver(s, 0)) * Real{0.008};
    const Real kp_drv = kp_eff * (1 + at(vm.driver(s, 1)) * p.sigma_kp_local);
    const Real i_drive = sat_current(kp_drv, wol_driver, vdd_eff, vth_drv);
    RSM_CHECK_MSG(i_drive > 0, "driver stage " << s << " off");
    t_wl += Real{0.69} * c_stage * vdd_eff / i_drive;
  }

  // --- Replica column: self-timed sense trigger. The replica discharge
  // current is the sum over replica cells (parallel pull-down mimicking the
  // mean cell), fired when the replica bit-line swings by vdd/2.
  Real i_replica = 0;
  for (Index c = 0; c < config_.replica_cells; ++c) {
    const Real vth_rep =
        p.vt0_nmos + g_vth + at(vm.replica(c, 0)) * config_.sigma_cell_vth;
    const Real kp_rep =
        kp_eff * (1 + at(vm.replica(c, 1)) * p.sigma_kp_local);
    i_replica += sat_current(kp_rep, wol_cell, vdd_eff, vth_rep);
  }
  i_replica /= static_cast<Real>(config_.replica_cells);
  RSM_CHECK_MSG(i_replica > 0, "replica column off");
  const Real c_replica = config_.c_replica * (1 + g_cap);
  const Real t_fire = c_replica * (vdd_eff / 2) / i_replica;

  // --- Accessed cell develops the bit-line differential during t_fire.
  // Bit-line leakage of the unaccessed cells in the same column opposes it.
  const Real vth_acc =
      p.vt0_nmos + g_vth + at(vm.cell(0, 0)) * config_.sigma_cell_vth;
  const Real i_cell = sat_current(kp_eff, wol_cell, vdd_eff, vth_acc);
  RSM_CHECK_MSG(i_cell > 0, "accessed cell off (vth=" << vth_acc << ")");
  Real i_bl_leak = 0;
  for (Index r = 1; r < config_.rows; ++r) {
    const Real vth_cell =
        p.vt0_nmos + g_vth + at(vm.cell(r, 0)) * config_.sigma_cell_vth;
    i_bl_leak += cell_leakage(kp_eff, wol_cell, vth_cell);
  }
  const Real c_bl = config_.c_bitline * (1 + g_cap);
  const Real dv_bl = (i_cell - i_bl_leak) * t_fire / c_bl;

  // --- Sense amplifier: regenerative resolution from the net input
  // (bit-line differential minus input-referred offset).
  const Real v_os = at(vm.sense(0)) * config_.sigma_sa_offset +
                    (at(vm.sense(1)) - at(vm.sense(2))) *
                        config_.sigma_sa_offset / 2;
  const Real gm_scale = 1 + at(vm.sense(3)) * p.sigma_kp_local +
                        at(vm.sense(4)) * p.sigma_kp_local / 2;
  const Real tau_sa = config_.sense_tau / std::max(gm_scale, Real{0.5}) *
                      (1 + at(vm.sense(5)) * Real{0.01});
  const Real dv_net = dv_bl - v_os;
  RSM_CHECK_MSG(dv_net > Real{1e-4},
                "read failure: sense input " << dv_net << " V");
  const Real t_sa = tau_sa * std::log(config_.sense_swing / dv_net);

  // --- Column mux RC (misc periphery).
  const Real t_mux = Real{8e-12} * (1 + at(vm.misc(0)) * Real{0.05}) *
                     (1 + g_res) *
                     (1 + at(vm.misc(1)) * Real{0.03} + g_cap);

  Metrics out;
  out.delay = t_wl + t_fire + std::max(t_sa, Real{0}) + t_mux;
  out.margin = dv_net;
  return out;
}

}  // namespace rsm::sram
