// SRAM read-path timing workload (paper Fig. 5): cell array, replica path
// for self-timing, and sense amplifier.
//
// The metric is the read delay from word-line activation to the sense-amp
// output. The path is modeled stage by stage on top of the level-1 device
// equations (full MNA over a 21k-cell array would be pointless — the RSM
// algorithms only see (dY, delay) pairs):
//
//   t_read = t_wl + t_fire + t_sa + t_mux
//   t_wl    word-line driver chain: 8 inverter stages, each k*C*V/I_drive
//   t_fire  replica-column discharge that triggers sensing (self-timing)
//   t_sa    sense-amp resolution: tau * ln(Vswing / (dV_bl - V_os)), where
//           dV_bl = (I_cell - I_bl_leak) * t_fire / C_bl is the bit-line
//           differential developed while the replica runs
//   t_mux   column mux RC
//
// Sparsity structure (why this reproduces Fig. 6):
//   - ~40 variables matter strongly: accessed cell, replica cells, driver
//     chain, sense amp, globals;
//   - the other cells of the accessed column enter weakly through bit-line
//     leakage (subthreshold sum);
//   - every remaining cell enters only through the supply droop
//     VDD_eff = VDD - R_grid * I_leak_total — individually negligible.
//
// Default geometry: 128 rows x 166 columns = 21 248 cells + 62 periphery
// variables = 21 310 independent variables, the paper's exact count.
#pragma once

#include <span>

#include "circuits/process.hpp"
#include "util/common.hpp"

namespace rsm::sram {

struct SramConfig {
  circuits::Process65 process;

  Index rows = 128;
  Index cols = 166;

  Index driver_stages = 8;    // word-line driver inverter chain
  Index replica_cells = 16;   // replica column height

  Real c_bitline = 120e-15;       // bit-line capacitance [F]
  Real c_replica = 30e-15;        // replica bit-line capacitance [F]
  Real c_stage = 10e-15;          // driver stage load [F]
  Real r_grid = 40.0;             // supply-grid resistance [Ohm]
  Real sense_swing = 0.6;         // required SA output swing [V]
  Real sense_tau = 25e-12;        // nominal SA regeneration tau [s]
  Real sigma_cell_vth = 0.025;    // per-cell composite Vth mismatch [V]
  Real sigma_sa_offset = 0.004;   // SA input-referred offset sigma [V]
};

/// Variable-layout accessors (all offsets into the dY vector).
struct SramVariableMap {
  explicit SramVariableMap(const SramConfig& config);

  Index num_globals;          // 6
  Index num_driver_vars;      // 2 per stage
  Index num_replica_vars;     // 2 per replica cell
  Index num_sense_vars;       // 6
  Index num_misc_vars;        // 2
  Index num_cells;            // rows * cols

  [[nodiscard]] Index total() const;

  [[nodiscard]] Index global(Index g) const;            // g in [0, 6)
  [[nodiscard]] Index driver(Index stage, Index p) const;  // p in {0,1}
  [[nodiscard]] Index replica(Index cell, Index p) const;
  [[nodiscard]] Index sense(Index p) const;
  [[nodiscard]] Index misc(Index p) const;
  /// Cell variable; the accessed cell is (row 0, col 0).
  [[nodiscard]] Index cell(Index row, Index col) const;

 private:
  Index rows_, cols_, driver_stages_, replica_cells_;
};

class SramWorkload {
 public:
  explicit SramWorkload(const SramConfig& config = {});

  [[nodiscard]] Index num_variables() const { return map_.total(); }
  [[nodiscard]] const SramConfig& config() const { return config_; }
  [[nodiscard]] const SramVariableMap& variable_map() const { return map_; }

  /// Read delay [s] for one variation sample (dy.size() == num_variables()).
  [[nodiscard]] Real evaluate(std::span<const Real> dy) const;

  /// Both metrics of one sample: delay plus the read margin — the net
  /// sense-amp input (bit-line differential at fire time minus the SA
  /// offset) [V]. Margin <= 0 would be a functional read failure; its
  /// lower tail is what high-sigma analysis chases.
  struct Metrics {
    Real delay = 0;   // [s]
    Real margin = 0;  // [V]
  };
  [[nodiscard]] Metrics evaluate_metrics(std::span<const Real> dy) const;

  /// Delay of the all-zeros sample.
  [[nodiscard]] Real nominal() const { return nominal_; }

 private:
  SramConfig config_;
  SramVariableMap map_;
  Real nominal_ = 0;
};

}  // namespace rsm::sram
