// Umbrella header: the library's public API in one include.
//
//   #include "rsm.hpp"
//
// Pulls in the modeling core (solvers, cross-validation, models, yield,
// sensitivity), the basis and statistics layers, and the circuit-simulation
// substrate with its workloads. Individual headers remain includable for
// finer-grained dependencies.
#pragma once

// Core: sparse response-surface modeling.
#include "core/bootstrap.hpp"
#include "core/column_source.hpp"
#include "core/cosamp.hpp"
#include "core/cross_validation.hpp"
#include "core/lar.hpp"
#include "core/lasso_cd.hpp"
#include "core/least_squares.hpp"
#include "core/metrics.hpp"
#include "core/model.hpp"
#include "core/omp.hpp"
#include "core/pipeline.hpp"
#include "core/sobol.hpp"
#include "core/solver_path.hpp"
#include "core/somp.hpp"
#include "core/stagewise.hpp"
#include "core/star.hpp"
#include "core/synthetic.hpp"
#include "core/worst_case.hpp"
#include "core/yield.hpp"

// Hermite basis dictionaries.
#include "basis/dictionary.hpp"
#include "basis/hermite.hpp"
#include "basis/multi_index.hpp"
#include "basis/quadrature.hpp"

// Statistics: RNG, sampling, PCA.
#include "stats/covariance.hpp"
#include "stats/descriptive.hpp"
#include "stats/lhs.hpp"
#include "stats/pca.hpp"
#include "stats/rng.hpp"

// Circuit simulation substrate and workloads.
#include "circuits/corners.hpp"
#include "circuits/opamp.hpp"
#include "circuits/process.hpp"
#include "circuits/ring_oscillator.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/mosfet.hpp"
#include "spice/netlist.hpp"
#include "spice/parser.hpp"
#include "spice/transient.hpp"
#include "sram/sram.hpp"

// Linear algebra (exposed for power users extending the solvers).
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/incremental_qr.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/vector_ops.hpp"

// Utilities.
#include "util/cli.hpp"
#include "util/common.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
