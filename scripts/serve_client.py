#!/usr/bin/env python3
"""Reference client for the model_server binary protocol.

Speaks the length-prefixed frame format of src/serve/protocol.hpp over an
AF_UNIX stream socket:

  frame   = u32 magic "RSF1" | u8 type | u32 payload_len | payload
            | u32 crc32(everything before the crc)
  payload = little-endian scalars; strings are u32 length + bytes; Real is
            the IEEE-754 binary64 bit pattern as u64.

Subcommands mirror the server's request set (list_models, eval, eval_batch,
yield, worst_case, reload), plus three CI helpers:

  malformed — sends a deliberately corrupted frame and asserts the server
              answers a clean protocol-error frame and closes the
              connection (no crash, no hang);
  smoke     — the serve-smoke CI sequence: list_models, eval, eval_batch,
              yield, worst_case, then the malformed-frame check, asserting
              sane values throughout. Exits nonzero on the first failure.
  hammer    — the serve-chaos overload sequence: blasts a burst of eval
              frames past the server's admission budget without reading,
              asserts at least one structured `overloaded` shed and at
              least one success, then retries every shed frame with
              exponential backoff and asserts all retries land.

Requests shed with an `overloaded` error frame are retryable by contract:
the frame carries a u32 retry-after hint (milliseconds) after the message,
and `Client.request` honors it with exponential backoff up to --max-retries
attempts within the --deadline budget (0 disables retries).

Examples:
  serve_client.py --socket /tmp/rsm.sock list_models
  serve_client.py --socket /tmp/rsm.sock eval --model sram_delay --point 0,0,1.5
  serve_client.py --socket /tmp/rsm.sock yield --model sram_delay --upper 3
  serve_client.py --socket /tmp/rsm.sock smoke --model sram_delay
"""

from __future__ import annotations

import argparse
import json
import socket
import struct
import sys
import time
import zlib

MAGIC = 0x31465352  # "RSF1" little-endian
HEADER = struct.Struct("<IBI")  # magic, type, payload_len

# Request types. RELOAD is 8: 6|64 would collide with the error frame (70)
# and 7|64 with 71, so the request space skips to the next clean pair.
EVAL, EVAL_BATCH, YIELD, WORST_CASE, LIST_MODELS = 1, 2, 3, 4, 5
RELOAD = 8
# Response types (request | 64) and the error frame.
RESPONSE_BIT = 64
ERROR_RESPONSE = 70

# Mirrors rsm::ErrorCode in src/util/errors.hpp — same order, same names
# (the error frame carries the enum value as a u8 index into this list).
# rsm-lint's error-code-coverage rule cross-checks it against the C++ enum.
ERROR_CODE_NAMES = [
    "ok", "singular-matrix", "no-convergence", "numerical-domain",
    "unclassified", "deadline-exceeded", "io-error", "protocol-error",
    "version-mismatch", "overloaded", "connection-timeout",
]


def encode_frame(msg_type: int, payload: bytes) -> bytes:
    head = HEADER.pack(MAGIC, msg_type, len(payload))
    body = head + payload
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)


def put_bytes(s: str) -> bytes:
    raw = s.encode()
    return struct.pack("<I", len(raw)) + raw


def put_real(x: float) -> bytes:
    return struct.pack("<d", x)


class Reader:
    """Bounds-checked little-endian payload reader."""

    def __init__(self, data: bytes):
        self.data, self.pos = data, 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ValueError(
                f"truncated payload at byte {self.pos} of {len(self.data)}")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def real(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def string(self) -> str:
        return self.take(self.u32()).decode()


class Client:
    def __init__(self, path: str, timeout: float,
                 max_retries: int = 0, deadline: float = 0.0,
                 backoff_base: float = 0.01):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(path)
        self.max_retries = max_retries
        self.deadline = time.monotonic() + deadline if deadline > 0 else None
        self.backoff_base = backoff_base
        self.retries_used = 0

    def close(self) -> None:
        self.sock.close()

    def send_raw(self, data: bytes) -> None:
        self.sock.sendall(data)

    def recv_frame(self) -> tuple[int, bytes]:
        """Receives one frame; returns (type, payload)."""
        head = self._recv_exact(HEADER.size)
        magic, msg_type, length = HEADER.unpack(head)
        if magic != MAGIC:
            raise ValueError(f"bad response magic {magic:#x}")
        rest = self._recv_exact(length + 4)
        payload, (crc,) = rest[:length], struct.unpack("<I", rest[length:])
        if zlib.crc32(head + payload) & 0xFFFFFFFF != crc:
            raise ValueError("response CRC mismatch")
        return msg_type, payload

    def _recv_exact(self, n: int) -> bytes:
        chunks = b""
        while len(chunks) < n:
            chunk = self.sock.recv(n - len(chunks))
            if not chunk:
                raise ConnectionError(
                    f"connection closed after {len(chunks)} of {n} bytes")
            chunks += chunk
        return chunks

    def request(self, msg_type: int, payload: bytes) -> bytes:
        """Sends one request; returns the response payload. An `overloaded`
        error frame is retried with exponential backoff (honoring the
        server's retry-after hint) up to max_retries times within the
        deadline; every other error frame raises ServerError immediately."""
        attempt = 0
        while True:
            try:
                return self.request_once(msg_type, payload)
            except ServerError as err:
                if err.code_name != "overloaded" or attempt >= self.max_retries:
                    raise
                delay = self.backoff_base * (2 ** attempt)
                if err.retry_after_ms is not None:
                    delay = max(delay, err.retry_after_ms / 1000.0)
                if self.deadline is not None and \
                        time.monotonic() + delay > self.deadline:
                    raise
                time.sleep(delay)
                attempt += 1
                self.retries_used += 1

    def request_once(self, msg_type: int, payload: bytes) -> bytes:
        """One send/receive round trip, no retries."""
        self.send_raw(encode_frame(msg_type, payload))
        resp_type, resp = self.recv_frame()
        if resp_type == ERROR_RESPONSE:
            raise parse_server_error(resp)
        if resp_type != (msg_type | RESPONSE_BIT):
            raise ValueError(f"unexpected response type {resp_type}")
        return resp


class ServerError(Exception):
    def __init__(self, code_name: str, message: str,
                 retry_after_ms: int | None = None):
        super().__init__(f"[{code_name}] {message}")
        self.code_name = code_name
        self.retry_after_ms = retry_after_ms


def parse_server_error(payload: bytes) -> ServerError:
    """Decodes an error frame: u8 code, string message, and — only on
    `overloaded` frames — a trailing u32 retry-after hint in ms."""
    reader = Reader(payload)
    code, message = reader.u8(), reader.string()
    name = (ERROR_CODE_NAMES[code]
            if code < len(ERROR_CODE_NAMES) else f"code-{code}")
    retry_after_ms = None
    if name == "overloaded" and reader.pos + 4 <= len(reader.data):
        retry_after_ms = reader.u32()
    return ServerError(name, message, retry_after_ms)


def parse_point(text: str) -> list[float]:
    return [float(v) for v in text.split(",") if v.strip() != ""]


def model_header(args: argparse.Namespace) -> bytes:
    return put_bytes(args.model) + struct.pack("<I", args.version)


def do_list_models(client: Client, args: argparse.Namespace) -> dict:
    reader = Reader(client.request(LIST_MODELS, b""))
    models = []
    for _ in range(reader.u32()):
        models.append({
            "name": reader.string(),
            "version": reader.u32(),
            "fingerprint": f"{reader.u64():016x}",
            "num_variables": reader.u32(),
            "num_terms": reader.u32(),
        })
    return {"models": models}


def do_eval(client: Client, args: argparse.Namespace) -> dict:
    point = parse_point(args.point)
    payload = model_header(args) + struct.pack("<I", len(point))
    for x in point:
        payload += put_real(x)
    reader = Reader(client.request(EVAL, payload))
    return {"value": reader.real()}


def do_eval_batch(client: Client, args: argparse.Namespace) -> dict:
    rows = [parse_point(r) for r in args.rows.split(";") if r.strip()]
    cols = len(rows[0]) if rows else 0
    payload = model_header(args) + struct.pack("<II", len(rows), cols)
    for row in rows:
        if len(row) != cols:
            raise SystemExit("eval_batch rows must have equal length")
        for x in row:
            payload += put_real(x)
    reader = Reader(client.request(EVAL_BATCH, payload))
    count = reader.u32()
    return {"values": [reader.real() for _ in range(count)]}


def do_yield(client: Client, args: argparse.Namespace) -> dict:
    payload = (model_header(args) + put_real(args.lower) + put_real(args.upper)
               + struct.pack("<QQ", args.num_samples, args.seed))
    reader = Reader(client.request(YIELD, payload))
    return {
        "yield": reader.real(),
        "standard_error": reader.real(),
        "num_samples": reader.u64(),
        "num_failures": reader.u64(),
    }


def do_worst_case(client: Client, args: argparse.Namespace) -> dict:
    payload = (model_header(args) + put_real(args.radius)
               + struct.pack("<B", 0 if args.minimize else 1))
    reader = Reader(client.request(WORST_CASE, payload))
    result = {
        "value": reader.real(),
        "sigma_distance": reader.real(),
        "iterations": reader.u32(),
        "converged": bool(reader.u8()),
    }
    n = reader.u32()
    corner = [reader.real() for _ in range(n)]
    if args.show_corner:
        result["corner"] = corner
    return result


def do_malformed(client: Client, args: argparse.Namespace) -> dict:
    """Corrupts one byte of a valid frame; the server must answer a
    protocol-error frame and close the connection."""
    frame = bytearray(encode_frame(LIST_MODELS, b""))
    frame[-1] ^= 0xFF  # flip a CRC byte: a complete frame that cannot verify
    client.send_raw(bytes(frame))
    resp_type, payload = client.recv_frame()
    if resp_type != ERROR_RESPONSE:
        raise SystemExit(f"expected error frame, got type {resp_type}")
    reader = Reader(payload)
    code, message = reader.u8(), reader.string()
    if ERROR_CODE_NAMES[code] != "protocol-error":
        raise SystemExit(f"expected protocol-error, got code {code}")
    # After a framing error the server closes the stream; a subsequent read
    # must see EOF rather than hang or crash the server.
    try:
        extra = client.sock.recv(1)
    except (ConnectionError, OSError):
        extra = b""
    if extra:
        raise SystemExit("server kept the connection open after framing error")
    return {"error_code": "protocol-error", "message": message,
            "connection_closed": True}


def do_smoke(client: Client, args: argparse.Namespace) -> dict:
    """End-to-end serve-smoke sequence used by CI."""
    listing = do_list_models(client, args)["models"]
    assert listing, "registry served no models"
    target = next((m for m in listing if m["name"] == args.model), None)
    assert target is not None, f"model {args.model!r} not served"
    n = target["num_variables"]

    args.point = ",".join(["0"] * n)
    nominal = do_eval(client, args)["value"]
    assert nominal == nominal, "eval returned NaN"  # noqa: PLR0124

    args.rows = ";".join([args.point, ",".join(["0.5"] * n)])
    batch = do_eval_batch(client, args)["values"]
    assert len(batch) == 2, f"expected 2 batch values, got {len(batch)}"
    assert batch[0] == nominal, "batch row 0 disagrees with scalar eval"

    yres = do_yield(client, args)
    assert 0.0 <= yres["yield"] <= 1.0, f"yield out of range: {yres}"
    assert yres["num_samples"] == args.num_samples

    wres = do_worst_case(client, args)
    assert wres["sigma_distance"] <= args.radius + 1e-9, wres

    # Unknown model must earn a structured error, not a dead connection.
    saved, args.model = args.model, "no-such-model"
    try:
        do_eval(client, args)
        raise SystemExit("eval of unknown model unexpectedly succeeded")
    except ServerError as err:
        assert err.code_name == "io-error", err
    args.model = saved

    # Framing corruption closes this connection, so use a fresh one.
    mal_client = Client(args.socket, args.timeout)
    try:
        malformed = do_malformed(mal_client, args)
    finally:
        mal_client.close()

    # The server must still answer on a fresh connection afterwards.
    post = do_list_models(Client(args.socket, args.timeout), args)["models"]
    assert len(post) == len(listing), "listing changed after malformed frame"

    return {
        "models": len(listing),
        "nominal_value": nominal,
        "batch_matches_scalar": True,
        "yield": yres["yield"],
        "worst_case_value": wres["value"],
        "unknown_model_error": "io-error",
        "malformed_frame": malformed,
        "ok": True,
    }


def do_reload(client: Client, args: argparse.Namespace) -> dict:
    """Asks the server to re-resolve every cached model against the registry
    and swap in the new versions (corrupt versions are skipped: the server
    keeps serving the last-good model and counts the failure)."""
    reader = Reader(client.request(RELOAD, b""))
    return {"reloaded": reader.u32(), "failed": reader.u32()}


def do_hammer(client: Client, args: argparse.Namespace) -> dict:
    """Overload smoke for the serve-chaos CI job: send a burst of eval
    frames in one write without reading any response, so the server's
    admission control must shed; then prove every shed request succeeds on
    retry with backoff while the connection stays healthy."""
    listing = do_list_models(client, args)["models"]
    target = next((m for m in listing if m["name"] == args.model), None)
    assert target is not None, f"model {args.model!r} not served"
    n = target["num_variables"]

    point_payload = (model_header(args) + struct.pack("<I", n)
                     + b"".join(put_real(0.0) for _ in range(n)))
    frame = encode_frame(EVAL, point_payload)

    client.send_raw(frame * args.burst)
    ok = shed = 0
    shed_hint = None
    for _ in range(args.burst):
        resp_type, payload = client.recv_frame()
        if resp_type == EVAL | RESPONSE_BIT:
            ok += 1
        elif resp_type == ERROR_RESPONSE:
            err = parse_server_error(payload)
            assert err.code_name == "overloaded", \
                f"burst earned unexpected error {err}"
            shed = shed + 1
            shed_hint = err.retry_after_ms
        else:
            raise SystemExit(f"unexpected response type {resp_type}")
    assert ok + shed == args.burst, "response accounting is off"
    assert ok >= 1, "a burst must not starve every request"
    assert shed >= 1, (
        f"burst of {args.burst} never tripped admission control — "
        "is the server running with a small enough budget?")
    if shed_hint is not None:
        assert shed_hint > 0, "overloaded frame carried a zero retry hint"

    # Every shed request must land on retry: pace them one at a time so
    # admission recovers between attempts.
    retried = 0
    for _ in range(shed):
        Reader(client.request(EVAL, point_payload)).real()
        retried += 1

    # The connection survived the whole episode — prove it is still in
    # frame sync with a final structured request.
    assert do_list_models(client, args)["models"], "listing died after burst"
    return {
        "burst": args.burst,
        "ok": ok,
        "shed": shed,
        "retried": retried,
        "retries_used": client.retries_used,
        "retry_after_ms": shed_hint,
    }


COMMANDS = {
    "list_models": do_list_models,
    "eval": do_eval,
    "eval_batch": do_eval_batch,
    "yield": do_yield,
    "worst_case": do_worst_case,
    "reload": do_reload,
    "malformed": do_malformed,
    "smoke": do_smoke,
    "hammer": do_hammer,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("command", choices=sorted(COMMANDS))
    parser.add_argument("--socket", required=True,
                        help="AF_UNIX socket path the server listens on")
    parser.add_argument("--model", default="sram_delay")
    parser.add_argument("--version", type=int, default=0,
                        help="model version; 0 = latest")
    parser.add_argument("--point", default="0",
                        help="comma-separated coordinates for eval")
    parser.add_argument("--rows", default="0",
                        help="semicolon-separated rows for eval_batch")
    parser.add_argument("--lower", type=float, default=float("-inf"))
    parser.add_argument("--upper", type=float, default=3.0)
    parser.add_argument("--num-samples", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--radius", type=float, default=3.0)
    parser.add_argument("--minimize", action="store_true")
    parser.add_argument("--show-corner", action="store_true")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="socket timeout in seconds")
    parser.add_argument("--max-retries", type=int, default=4,
                        help="retries for overloaded requests (0 disables)")
    parser.add_argument("--deadline", type=float, default=0.0,
                        help="overall retry budget in seconds (0 = none)")
    parser.add_argument("--burst", type=int, default=64,
                        help="frames the hammer command sends in one write")
    args = parser.parse_args()

    client = Client(args.socket, args.timeout, max_retries=args.max_retries,
                    deadline=args.deadline)
    try:
        result = COMMANDS[args.command](client, args)
    except ServerError as err:
        print(json.dumps({"error": str(err)}, indent=2))
        return 1
    finally:
        client.close()
    print(json.dumps(result, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
