#!/usr/bin/env python3
"""Diff two BENCH_*.json reports (or a history directory) and flag
regressions — the bench-regression gate.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [options]
  bench_compare.py --history DIR CURRENT.json [options]

With --history, DIR is scanned for *.json reports whose "tool" matches
CURRENT's; the newest (by modification time) becomes the baseline, so a
directory of dated reports works as a rolling trajectory.

What is compared — every numeric/boolean leaf under the reports' "results"
subtree (dotted paths, e.g. results.methods.OMP.test_error), which is the
deterministic, tool-specific science. Scheduling noise is excluded: paths
through ".execution." or ".checkpoint." are skipped outright.

Metric classes and their gates:
  * integers and booleans — exact match (counts are deterministic);
  * floats — relative tolerance --rel-tol (default 1e-6; the benches are
    seeded, so identical code must reproduce identical numbers);
  * time-like metrics (name contains "seconds"/"_ms"/"_us"/"time", a rate
    or speedup key like "per_second"/"speedup"/"throughput", or a
    paper-cost key) — informational by default because wall-clock is not
    comparable across machines; --gate-times turns them into a gate that
    fails when current/baseline exceeds --time-tol (default 1.5; faster is
    never a failure).

Per-metric overrides: --tol results.methods.OMP.test_error=0.1 (repeatable;
the value is a relative tolerance for that one metric, and also applies to
time-like metrics when gated).

A metric present in the baseline but missing from current fails the gate
(silently dropping a number is how regressions hide); new metrics are
reported but pass. Exit status: 0 = pass, 1 = regression/missing metric,
2 = usage or unreadable input.
"""

import argparse
import json
import math
import os
import re
import sys

SKIP_PATH_RE = re.compile(r"\.(execution|checkpoint)(\.|\[|$)")
# Machine-dependent performance metrics: durations plus anything derived
# from them (rates, speedups). Informational unless --gate-times. The
# lookahead keeps deterministic *event counters* like server.timed_out out
# of the time-like class — they count deadline expiries, not durations.
TIME_KEY_RE = re.compile(
    r"(seconds|_ms\b|_us\b|time(?!d_out)|per_second\b|speedup|throughput|"
    r"cost_hours|sim_hours)", re.IGNORECASE)


def flatten(node, path, out):
    """results subtree -> {dotted path: scalar} for numeric/bool leaves."""
    if isinstance(node, dict):
        for key, value in node.items():
            flatten(value, f"{path}.{key}", out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            flatten(value, f"{path}[{i}]", out)
    elif isinstance(node, bool) or isinstance(node, (int, float)):
        if not SKIP_PATH_RE.search(path):
            out[path] = node
    # strings / nulls are not comparable metrics


def load_report(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if "results" not in doc or "tool" not in doc:
        raise ValueError(f"{path}: not a BENCH report (no tool/results)")
    metrics = {}
    flatten(doc["results"], "results", metrics)
    return doc["tool"], metrics


def pick_history_baseline(directory, tool):
    candidates = []
    for name in os.listdir(directory):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if doc.get("tool") == tool:
            candidates.append((os.path.getmtime(path), path))
    if not candidates:
        raise ValueError(
            f"{directory}: no baseline report for tool '{tool}'")
    return max(candidates)[1]


def is_time_metric(path):
    return TIME_KEY_RE.search(path) is not None


def classify(baseline, current, path, args, overrides):
    """-> (status, detail). status in OK / INFO / REGRESSED."""
    tol = overrides.get(path)
    if is_time_metric(path):
        if not args.gate_times and tol is None:
            ratio = (current / baseline) if baseline else math.inf
            return "INFO", f"x{ratio:.2f} (time metric, not gated)"
        limit = 1.0 + tol if tol is not None else args.time_tol
        if baseline <= 0:
            return "OK", "baseline <= 0, skipped"
        ratio = current / baseline
        if ratio > limit:
            return "REGRESSED", f"x{ratio:.2f} > limit x{limit:.2f}"
        return "OK", f"x{ratio:.2f} <= limit x{limit:.2f}"
    if isinstance(baseline, bool) or isinstance(current, bool):
        if bool(baseline) != bool(current):
            return "REGRESSED", f"{baseline} -> {current}"
        return "OK", "equal"
    if isinstance(baseline, int) and isinstance(current, int) and tol is None:
        if baseline != current:
            return "REGRESSED", f"{baseline} -> {current} (exact int metric)"
        return "OK", "equal"
    rel = tol if tol is not None else args.rel_tol
    scale = max(abs(baseline), abs(current), 1e-300)
    err = abs(current - baseline) / scale
    if err > rel:
        return "REGRESSED", f"rel diff {err:.3g} > tol {rel:.3g}"
    return "OK", f"rel diff {err:.3g} <= tol {rel:.3g}"


def compare(baseline_metrics, current_metrics, args, overrides):
    rows = []          # (status, path, detail)
    regressions = 0
    for path in sorted(set(baseline_metrics) | set(current_metrics)):
        if path not in current_metrics:
            rows.append(("MISSING", path, "present in baseline only"))
            regressions += 1
            continue
        if path not in baseline_metrics:
            rows.append(("NEW", path, "present in current only"))
            continue
        status, detail = classify(baseline_metrics[path],
                                  current_metrics[path], path, args,
                                  overrides)
        if status == "REGRESSED":
            regressions += 1
        rows.append((status, path, detail))
    return rows, regressions


def parse_overrides(items):
    overrides = {}
    for item in items:
        if "=" not in item:
            raise ValueError(f"--tol wants key=value, got {item!r}")
        key, value = item.split("=", 1)
        overrides[key] = float(value)
    return overrides


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json reports and flag regressions.")
    parser.add_argument("baseline",
                        help="baseline report, or (with --history) ignored")
    parser.add_argument("current", help="current report to gate")
    parser.add_argument("--history", metavar="DIR",
                        help="pick the newest matching report in DIR as the "
                             "baseline instead of the positional one")
    parser.add_argument("--rel-tol", type=float, default=1e-6,
                        help="relative tolerance for float metrics "
                             "(default %(default)s)")
    parser.add_argument("--time-tol", type=float, default=1.5,
                        help="current/baseline ratio limit for time metrics "
                             "under --gate-times (default %(default)s)")
    parser.add_argument("--gate-times", action="store_true",
                        help="gate time-like metrics too (same-machine "
                             "comparisons only)")
    parser.add_argument("--tol", action="append", default=[],
                        metavar="PATH=REL",
                        help="per-metric relative tolerance override "
                             "(repeatable)")
    parser.add_argument("--quiet", action="store_true",
                        help="print only non-OK rows and the verdict")
    args = parser.parse_args(argv[1:])

    try:
        overrides = parse_overrides(args.tol)
        current_tool, current_metrics = load_report(args.current)
        baseline_path = args.baseline
        if args.history:
            baseline_path = pick_history_baseline(args.history, current_tool)
        baseline_tool, baseline_metrics = load_report(baseline_path)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"bench_compare: {error}", file=sys.stderr)
        return 2
    if baseline_tool != current_tool:
        print(f"bench_compare: tool mismatch: baseline '{baseline_tool}' "
              f"vs current '{current_tool}'", file=sys.stderr)
        return 2

    rows, regressions = compare(baseline_metrics, current_metrics, args,
                                overrides)
    width = max((len(path) for _, path, _ in rows), default=0)
    for status, path, detail in rows:
        if args.quiet and status == "OK":
            continue
        print(f"{status:9s} {path:{width}s}  {detail}")
    verdict = "FAIL" if regressions else "PASS"
    print(f"{verdict}: {current_tool}: {len(rows)} metric(s) compared "
          f"against {baseline_path}, {regressions} regression(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
