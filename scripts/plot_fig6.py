#!/usr/bin/env python3
"""Plot the Fig. 6 reproduction from fig6_sparsity's CSV output.

  build/bench/fig6_sparsity --csv fig6.csv
  python3 scripts/plot_fig6.py fig6.csv [fig6.png]

Coefficient magnitude vs rank on a log axis — the cliff that shows only a
few dozen of the 21 311 candidate coefficients are non-zero.
"""
import csv
import sys

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:
    sys.exit("matplotlib is required: pip install matplotlib")


def main() -> None:
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    path = sys.argv[1]
    out = sys.argv[2] if len(sys.argv) > 2 else "fig6.png"

    ranks, mags = [], []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            ranks.append(int(row["rank"]))
            mags.append(float(row["abs_coefficient_seconds"]) * 1e12)

    fig, ax = plt.subplots(figsize=(8, 5))
    ax.semilogy(ranks, mags, "C0o-", markersize=4)
    ax.set_xlabel("coefficient rank")
    ax.set_ylabel("|coefficient| (ps per sigma)")
    ax.set_title(
        f"Fig. 6 reproduction: {len(ranks)} non-zero of 21 311 candidate "
        "coefficients (SRAM read delay)"
    )
    ax.grid(True, which="both", alpha=0.3)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
