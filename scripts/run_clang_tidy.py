#!/usr/bin/env python3
"""Run clang-tidy over compile_commands.json and diff against a baseline.

CI (and local users) should fail only on *new* findings, not on the
pre-existing set that is being burned down — so findings are normalized to
(file, check, message) triples (line numbers go stale on every edit and are
deliberately excluded), compared against the committed baseline
`.clang-tidy-baseline.json`, and only the difference fails the run.

Exit status:
  0  no new findings (stale baseline entries are reported informationally)
  1  new findings not present in the baseline
  2  usage / environment error — including a compile_commands.json older
     than some CMakeLists.txt (a stale database silently skips new TUs;
     re-run cmake, or pass --allow-stale-compdb to proceed anyway)
  0  clang-tidy not installed (warn only); use --require-clang-tidy to make
     that case fail with status 2 instead (the CI lint job does).

Typical use:
  scripts/run_clang_tidy.py                        # uses ./compile_commands.json
  scripts/run_clang_tidy.py -p build               # explicit build dir
  scripts/run_clang_tidy.py --update-baseline      # rewrite the baseline
  scripts/run_clang_tidy.py --filter src/          # lint a subtree only
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / ".clang-tidy-baseline.json"

# clang-tidy diagnostic line: <file>:<line>:<col>: warning: <msg> [<check>]
DIAG_RE = re.compile(
    r"^(?P<file>[^:\n]+):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+(?P<message>.*?)\s+\[(?P<check>[\w.,-]+)\]\s*$",
    re.MULTILINE)


def normalize(path_str):
    """Repo-relative posix path (so the baseline is machine-independent)."""
    try:
        return Path(path_str).resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return Path(path_str).as_posix()


def finding_key(file, check, message):
    return f"{file} :: {check} :: {message}"


def load_compdb(build_path):
    compdb = build_path / "compile_commands.json"
    if not compdb.exists():
        print(f"run-clang-tidy: {compdb} not found — configure with cmake "
              f"first (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)",
              file=sys.stderr)
        sys.exit(2)
    return json.loads(compdb.read_text(encoding="utf-8")), compdb


def check_compdb_freshness(compdb, allow_stale):
    """Fails loudly when any CMakeLists.txt postdates compile_commands.json.

    A stale database means clang-tidy lints a build graph that no longer
    exists — new TUs are silently skipped and removed flags linger — and the
    run's "clean" verdict is meaningless. Better exit 2 with instructions
    than quietly diff against the wrong tree.
    """
    compdb_real = compdb.resolve()  # the root symlink points into build/
    try:
        compdb_mtime = compdb_real.stat().st_mtime
    except OSError as err:
        print(f"run-clang-tidy: cannot stat {compdb_real}: {err}",
              file=sys.stderr)
        sys.exit(2)
    stale_against = []
    for lists in REPO_ROOT.rglob("CMakeLists.txt"):
        rel = lists.relative_to(REPO_ROOT).as_posix()
        # Build trees hold CMake's own generated CMakeLists copies.
        if rel.startswith("build") or "/CMakeFiles/" in rel:
            continue
        if lists.stat().st_mtime > compdb_mtime:
            stale_against.append(rel)
    if not stale_against:
        return
    listing = "\n".join(f"  newer: {p}" for p in sorted(stale_against))
    message = (
        f"run-clang-tidy: {compdb} is STALE — CMakeLists.txt files have "
        f"changed since it was generated:\n{listing}\n"
        f"re-run cmake (cmake -B {compdb_real.parent.name or 'build'} -S .) "
        f"so the database matches the build graph, or pass "
        f"--allow-stale-compdb to lint against the old graph anyway")
    if allow_stale:
        print(message.replace("STALE", "stale (--allow-stale-compdb)",
                              1))
        return
    print(message, file=sys.stderr)
    sys.exit(2)


def run_one(tidy, compdb_dir, source):
    proc = subprocess.run(
        [tidy, "-p", str(compdb_dir), "--quiet", str(source)],
        capture_output=True, text=True, check=False)
    findings = set()
    for m in DIAG_RE.finditer(proc.stdout):
        file = normalize(m.group("file"))
        # Only report findings inside the repo (not system/third-party
        # headers dragged in by a TU).
        if file.startswith(".."):
            continue
        findings.add(finding_key(file, m.group("check"), m.group("message")))
    return source, findings


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-p", "--build-path", default=None,
                        help="directory containing compile_commands.json "
                             "(default: repo root, then build/)")
    parser.add_argument("--filter", default="src/",
                        help="only lint TUs whose repo-relative path starts "
                             "with this prefix (default: src/; '' = all)")
    parser.add_argument("--baseline", default=str(BASELINE_PATH))
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current findings")
    parser.add_argument("--require-clang-tidy", action="store_true",
                        help="fail (exit 2) when clang-tidy is missing "
                             "instead of warning")
    parser.add_argument("--allow-stale-compdb", action="store_true",
                        help="proceed (with a warning) when "
                             "compile_commands.json is older than a "
                             "CMakeLists.txt instead of exiting 2")
    parser.add_argument("-j", "--jobs", type=int,
                        default=multiprocessing.cpu_count())
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary to use")
    args = parser.parse_args(argv)

    tidy = args.clang_tidy or shutil.which("clang-tidy")
    if tidy is None or shutil.which(tidy) is None and not Path(tidy).exists():
        msg = "run-clang-tidy: clang-tidy not found on PATH"
        if args.require_clang_tidy:
            print(msg, file=sys.stderr)
            return 2
        print(f"{msg}; skipping (install clang-tidy or pass --clang-tidy)")
        return 0

    if args.build_path:
        build_path = Path(args.build_path)
    elif (REPO_ROOT / "compile_commands.json").exists():
        build_path = REPO_ROOT
    else:
        build_path = REPO_ROOT / "build"
    entries, compdb = load_compdb(build_path)
    check_compdb_freshness(compdb, args.allow_stale_compdb)

    sources = []
    for entry in entries:
        rel = normalize(entry["file"])
        if args.filter and not rel.startswith(args.filter):
            continue
        sources.append(entry["file"])
    sources = sorted(set(sources))
    if not sources:
        print(f"run-clang-tidy: no TUs match filter '{args.filter}' in "
              f"{compdb}", file=sys.stderr)
        return 2

    print(f"run-clang-tidy: {len(sources)} TUs, -j{args.jobs}, "
          f"baseline {Path(args.baseline).name}")
    current = set()
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for source, findings in pool.map(
                lambda s: run_one(tidy, compdb.parent, s), sources):
            current |= findings

    baseline_file = Path(args.baseline)
    if args.update_baseline:
        baseline_file.write_text(
            json.dumps({"findings": sorted(current)}, indent=2) + "\n",
            encoding="utf-8")
        print(f"run-clang-tidy: baseline updated with "
              f"{len(current)} finding(s)")
        return 0

    baseline = set()
    if baseline_file.exists():
        baseline = set(
            json.loads(baseline_file.read_text(encoding="utf-8"))
            .get("findings", []))

    new = sorted(current - baseline)
    fixed = sorted(baseline - current)
    if fixed:
        print(f"run-clang-tidy: {len(fixed)} baseline finding(s) no longer "
              f"fire — run --update-baseline to shrink the baseline:")
        for f in fixed:
            print(f"  stale: {f}")
    if new:
        print(f"run-clang-tidy: {len(new)} NEW finding(s) not in baseline:",
              file=sys.stderr)
        for f in new:
            print(f"  new: {f}", file=sys.stderr)
        print("fix them (preferred) or run --update-baseline and justify "
              "the additions in review", file=sys.stderr)
        return 1
    print(f"run-clang-tidy: clean ({len(current)} finding(s), all baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
