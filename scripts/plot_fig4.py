#!/usr/bin/env python3
"""Plot the Fig. 4 reproduction from fig4_linear_error's CSV output.

  build/bench/fig4_linear_error --csv fig4.csv
  python3 scripts/plot_fig4.py fig4.csv [fig4.png]

One panel per metric, error (log scale) vs training samples, one line per
method — the layout of the paper's Fig. 4(a-d).
"""
import csv
import sys
from collections import defaultdict

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:
    sys.exit("matplotlib is required: pip install matplotlib")


def main() -> None:
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    path = sys.argv[1]
    out = sys.argv[2] if len(sys.argv) > 2 else "fig4.png"

    series = defaultdict(list)  # (metric, method) -> [(k, error)]
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            series[(row["metric"], row["method"])].append(
                (int(row["num_samples"]), float(row["error"]))
            )

    metrics = sorted({m for m, _ in series})
    methods = ["LS", "STAR", "LAR", "OMP"]
    styles = {"LS": "k--s", "STAR": "C1-^", "LAR": "C2-v", "OMP": "C0-o"}

    fig, axes = plt.subplots(2, 2, figsize=(10, 7), sharex=True)
    for ax, metric in zip(axes.flat, metrics):
        for method in methods:
            pts = sorted(series.get((metric, method), []))
            if not pts:
                continue
            ax.semilogy(
                [k for k, _ in pts],
                [100 * e for _, e in pts],
                styles.get(method, "-"),
                label=method,
            )
        ax.set_title(metric)
        ax.set_xlabel("training samples K")
        ax.set_ylabel("modeling error (%)")
        ax.grid(True, which="both", alpha=0.3)
        ax.legend()
    fig.suptitle("Fig. 4 reproduction: linear modeling error vs samples")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
