#!/usr/bin/env python3
"""Validate BENCH_<name>.json reports emitted by the bench binaries.

Checks (stdlib only, exit status 0 = all files valid):
  * schema_version in {1, 2} and every top-level key of that version
    present (v2 adds the "resources" block — older v1 reports, e.g. the
    committed BENCH_campaign_parallel.json baseline, stay valid);
  * the span tree is well-formed (recursive field/type checks, min <= max,
    children are trees);
  * metrics arrays carry the expected sample shapes;
  * telemetry is either null or {records, dropped} with per-type field
    checks on every record;
  * per-solver residual norms in solver_iteration records are monotonically
    non-increasing in step order;
  * when results.methods.OMP.fit_seconds is present, the "omp.fit" span
    subtree accounts for >= 90% of it (the ISSUE acceptance criterion);
  * every embedded campaign report (an object carrying "attempted" and
    "failed_attempts_by_code", wherever it sits under results) is
    internally consistent: durability fields present and typed, error
    histogram covers the full taxonomy (including "deadline-exceeded" and
    "io-error"), quarantine reasons bounded to 256 bytes, counts add up;
  * the parallel-executor "execution" object (when present): workers >= 1,
    scheduling counters non-negative, and workers_quarantined < workers
    (the pool never retires its last worker); likewise the optional
    checkpoint shard-merge counters, the pool-telemetry fields
    (pool_queue_highwater, pool_backpressure_stalls, busy/idle seconds,
    progress_heartbeats), and the nested resource-usage block;
  * tool == "model_serve" reports (bench/model_serve.cpp): the registry
    round-trip block must attest bit-identical predict AND gradient, the
    scalar block must carry a positive throughput, the batch sweep must be
    a non-empty map of positive-integer batch sizes each with rows /
    checksum / evals_per_second / speedup_vs_scalar, and the protocol
    counters must show every attempted frame round-tripped and every
    corrupted frame rejected;
  * tool == "model_server" reports (examples/model_server.cpp --report):
    serving counters present, non-negative, and internally consistent
    (evals <= requests served).

Usage: check_bench_json.py BENCH_a.json [BENCH_b.json ...]
"""

import json
import sys

SUPPORTED_SCHEMA_VERSIONS = (1, 2)
TOP_LEVEL_KEYS = (
    "schema_version", "tool", "generated_unix_ms", "tracing", "spans",
    "metrics", "telemetry", "results",
)
V2_TOP_LEVEL_KEYS = TOP_LEVEL_KEYS + ("resources",)
RESOURCE_INT_KEYS = (
    "max_rss_kb", "current_rss_kb", "minor_faults", "major_faults",
    "voluntary_ctx_switches", "involuntary_ctx_switches",
)
RESOURCE_FLOAT_KEYS = ("user_cpu_seconds", "system_cpu_seconds")
SPAN_KEYS = (
    "name", "count", "total_seconds", "min_seconds", "max_seconds",
    "cpu_seconds", "children",
)
RECORD_FIELDS = {
    "solver_iteration": {
        "solver": str, "step": int, "selected": int,
        "max_correlation": (int, float, type(None)),
        "residual_norm": (int, float, type(None)), "active_count": int,
    },
    "cv_fold": {
        "solver": str, "fold": int, "path_steps": int, "best_lambda": int,
        "best_rmse": (int, float, type(None)), "skipped": bool,
    },
    "campaign_sample": {
        "sample": int, "attempts": int, "succeeded": bool,
        "recovered": bool, "error_code": str,
    },
}


ERROR_CODE_NAMES = (
    "ok", "singular-matrix", "no-convergence", "numerical-domain",
    "unclassified", "deadline-exceeded", "io-error", "protocol-error",
    "version-mismatch", "overloaded", "connection-timeout",
)
MAX_QUARANTINE_REASON = 256
CAMPAIGN_CHECKPOINT_COUNTERS = (
    "records", "flushes", "rewrites", "resumed_samples",
)


class ValidationError(Exception):
    pass


def fail(path, message):
    raise ValidationError(f"{path}: {message}")


def check_number(doc_path, node, key):
    value = node.get(key)
    # Non-finite doubles serialize as null; accept that.
    if value is not None and not isinstance(value, (int, float)):
        fail(doc_path, f"'{key}' must be a number or null, got {value!r}")


def check_span(doc_path, node, depth=0):
    if depth > 200:
        fail(doc_path, "span tree deeper than 200 levels")
    if not isinstance(node, dict):
        fail(doc_path, f"span node must be an object, got {type(node).__name__}")
    for key in SPAN_KEYS:
        if key not in node:
            fail(doc_path, f"span node missing '{key}'")
    if not isinstance(node["name"], str):
        fail(doc_path, "span 'name' must be a string")
    if not isinstance(node["count"], int) or node["count"] < 0:
        fail(doc_path, f"span '{node['name']}' has bad count {node['count']!r}")
    for key in ("total_seconds", "min_seconds", "max_seconds", "cpu_seconds"):
        check_number(doc_path, node, key)
    if node["count"] > 0 and None not in (node["min_seconds"], node["max_seconds"]):
        if node["min_seconds"] > node["max_seconds"]:
            fail(doc_path, f"span '{node['name']}': min > max")
    if not isinstance(node["children"], list):
        fail(doc_path, f"span '{node['name']}': children must be an array")
    for child in node["children"]:
        check_span(doc_path, child, depth + 1)


def check_metrics(doc_path, metrics):
    if not isinstance(metrics, dict):
        fail(doc_path, "'metrics' must be an object")
    for kind in ("counters", "gauges", "histograms"):
        samples = metrics.get(kind)
        if not isinstance(samples, list):
            fail(doc_path, f"metrics.{kind} must be an array")
        for sample in samples:
            if not isinstance(sample.get("name"), str):
                fail(doc_path, f"metrics.{kind} entry without a string name")
            if kind == "histograms":
                bounds = sample.get("upper_bounds")
                counts = sample.get("bucket_counts")
                if not isinstance(bounds, list) or not isinstance(counts, list):
                    fail(doc_path, f"histogram '{sample['name']}' malformed")
                if len(counts) != len(bounds) + 1:
                    fail(doc_path,
                         f"histogram '{sample['name']}': {len(counts)} buckets "
                         f"for {len(bounds)} bounds (want bounds+1)")
                if sum(counts) != sample.get("count"):
                    fail(doc_path,
                         f"histogram '{sample['name']}': bucket sum "
                         f"{sum(counts)} != count {sample.get('count')}")
            else:
                check_number(doc_path, sample, "value")


def check_telemetry(doc_path, telemetry):
    if telemetry is None:
        return []
    if not isinstance(telemetry, dict):
        fail(doc_path, "'telemetry' must be null or an object")
    records = telemetry.get("records")
    if not isinstance(records, list):
        fail(doc_path, "telemetry.records must be an array")
    if not isinstance(telemetry.get("dropped"), int):
        fail(doc_path, "telemetry.dropped must be an integer")
    for i, record in enumerate(records):
        rtype = record.get("type")
        fields = RECORD_FIELDS.get(rtype)
        if fields is None:
            fail(doc_path, f"record {i}: unknown type {rtype!r}")
        for field, expected in fields.items():
            if field not in record:
                fail(doc_path, f"record {i} ({rtype}): missing '{field}'")
            value = record[field]
            if not isinstance(value, expected) or isinstance(value, bool) != (
                    expected is bool):
                fail(doc_path,
                     f"record {i} ({rtype}): '{field}' has bad value {value!r}")
    return records


def check_residual_monotonicity(doc_path, records):
    """Within each uninterrupted per-solver fit, residuals must not grow."""
    previous = {}  # solver -> (step, residual_norm)
    for record in records:
        if record.get("type") != "solver_iteration":
            continue
        solver = record["solver"]
        step, norm = record["step"], record["residual_norm"]
        if norm is None:
            continue
        last = previous.get(solver)
        # step resets to 0 at the start of each new fit.
        if last is not None and step == last[0] + 1 and norm > last[1] + 1e-9:
            fail(doc_path,
                 f"{solver} residual rose at step {step}: "
                 f"{last[1]} -> {norm}")
        previous[solver] = (step, norm)


def total_named(node, name):
    """Sum of total_seconds over every span named `name` (like
    SpanStats::total_named: subtrees under a matching node are not
    double-counted because a span cannot nest inside itself except as a
    recursion chain, which the total already includes)."""
    if node.get("name") == name:
        return node.get("total_seconds") or 0.0
    return sum(total_named(child, name)
               for child in node.get("children", []))


def check_omp_fit_coverage(doc_path, doc):
    methods = doc.get("results", {}).get("methods")
    if not isinstance(methods, dict):
        return None
    fit_seconds = methods.get("OMP", {}).get("fit_seconds")
    if not isinstance(fit_seconds, (int, float)) or fit_seconds <= 0:
        return None
    if not doc["tracing"]["compiled"] or not doc["tracing"]["enabled"]:
        return None
    covered = total_named(doc["spans"], "omp.fit")
    if covered == 0.0:
        fail(doc_path, "results report OMP fit_seconds but no 'omp.fit' span")
    ratio = covered / fit_seconds
    if ratio < 0.90:
        fail(doc_path,
             f"'omp.fit' spans cover only {ratio:.1%} of OMP fit_seconds "
             f"({covered:.4f}s of {fit_seconds:.4f}s)")
    return ratio


def check_resources(doc_path, where, resources):
    """Validates a resource-usage block (schema v2; obs/resource.hpp).
    Used both for the top-level "resources" sample and for the delta nested
    in a campaign report's execution object."""
    def bad(message):
        fail(doc_path, f"resources at {where}: {message}")

    if not isinstance(resources, dict):
        bad("must be an object")
    if not isinstance(resources.get("valid"), bool):
        bad("'valid' must be a boolean")
    for key in RESOURCE_INT_KEYS:
        value = resources.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            bad(f"'{key}' must be a non-negative integer, got {value!r}")
    for key in RESOURCE_FLOAT_KEYS:
        value = resources.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value < 0:
            bad(f"'{key}' must be a non-negative number, got {value!r}")
    # No current_rss <= max_rss cross-check: ru_maxrss is updated lazily by
    # the kernel and can trail /proc/self/statm by a page or two.


def is_campaign_report(node):
    return (isinstance(node, dict) and "attempted" in node
            and "failed_attempts_by_code" in node)


def check_campaign_report(doc_path, where, report):
    def bad(message):
        fail(doc_path, f"campaign report at {where}: {message}")

    for key in ("attempted", "succeeded", "recovered", "total_retries"):
        if not isinstance(report.get(key), int) or report[key] < 0:
            bad(f"'{key}' must be a non-negative integer")
    for key in ("fit_allowed", "truncated"):
        if not isinstance(report.get(key), bool):
            bad(f"'{key}' must be a boolean")
    for key in ("success_fraction", "min_success_fraction"):
        if not isinstance(report.get(key), (int, float)):
            bad(f"'{key}' must be a number")
    if report["succeeded"] > report["attempted"]:
        bad(f"succeeded {report['succeeded']} > attempted "
            f"{report['attempted']}")

    checkpoint = report.get("checkpoint")
    if not isinstance(checkpoint, dict):
        bad("'checkpoint' must be an object")
    for key in CAMPAIGN_CHECKPOINT_COUNTERS:
        if not isinstance(checkpoint.get(key), int) or checkpoint[key] < 0:
            bad(f"checkpoint.{key} must be a non-negative integer")
    if not isinstance(checkpoint.get("failed"), bool):
        bad("checkpoint.failed must be a boolean")
    # Shard-merge counters (emitted since the parallel executor landed);
    # optional so pre-shard reports stay valid.
    for key in ("shards_merged", "shards_recovered", "shard_duplicate_rows"):
        if key in checkpoint and (not isinstance(checkpoint[key], int)
                                  or checkpoint[key] < 0):
            bad(f"checkpoint.{key} must be a non-negative integer")

    execution = report.get("execution")
    if execution is not None:
        if not isinstance(execution, dict):
            bad("'execution' must be an object")
        if not isinstance(execution.get("workers"), int) or \
                execution["workers"] < 1:
            bad("execution.workers must be an integer >= 1")
        for key in ("workers_quarantined", "worker_infra_failures",
                    "tasks_stolen"):
            if not isinstance(execution.get(key), int) or execution[key] < 0:
                bad(f"execution.{key} must be a non-negative integer")
        if execution["workers_quarantined"] >= execution["workers"]:
            bad("execution.workers_quarantined must leave at least one "
                "active worker (the pool never retires the last one)")
        # Pool-telemetry and heartbeat fields (emitted since schema v2);
        # optional so v1-era reports stay valid.
        for key in ("pool_queue_highwater", "pool_backpressure_stalls",
                    "progress_heartbeats"):
            if key in execution and (not isinstance(execution[key], int)
                                     or execution[key] < 0):
                bad(f"execution.{key} must be a non-negative integer")
        for key in ("pool_busy_seconds", "pool_idle_seconds"):
            if key in execution and (
                    not isinstance(execution[key], (int, float))
                    or isinstance(execution[key], bool)
                    or execution[key] < 0):
                bad(f"execution.{key} must be a non-negative number")
        if "resources" in execution:
            check_resources(doc_path, f"{where}.execution.resources",
                            execution["resources"])

    histogram = report.get("failed_attempts_by_code")
    if not isinstance(histogram, dict):
        bad("'failed_attempts_by_code' must be an object")
    for name in ERROR_CODE_NAMES:
        if not isinstance(histogram.get(name), int) or histogram[name] < 0:
            bad(f"failed_attempts_by_code missing/invalid '{name}'")
    for name in histogram:
        if name not in ERROR_CODE_NAMES:
            bad(f"failed_attempts_by_code has unknown code '{name}'")

    quarantined = report.get("quarantined")
    if not isinstance(quarantined, list):
        bad("'quarantined' must be an array")
    if len(quarantined) > report["attempted"]:
        bad(f"{len(quarantined)} quarantined > {report['attempted']} "
            "attempted")
    for i, entry in enumerate(quarantined):
        if not isinstance(entry.get("sample"), int) or entry["sample"] < 0:
            bad(f"quarantined[{i}].sample must be a non-negative integer")
        if entry.get("code") not in ERROR_CODE_NAMES or entry["code"] == "ok":
            bad(f"quarantined[{i}].code is {entry.get('code')!r}")
        reason = entry.get("reason")
        if not isinstance(reason, str):
            bad(f"quarantined[{i}].reason must be a string")
        if len(reason.encode("utf-8")) > MAX_QUARANTINE_REASON:
            bad(f"quarantined[{i}].reason exceeds {MAX_QUARANTINE_REASON} "
                "bytes")


def _require_int(doc_path, where, node, key, minimum=0):
    value = node.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or \
            value < minimum:
        fail(doc_path, f"{where}: '{key}' must be an integer >= {minimum}, "
                       f"got {value!r}")
    return value


def _require_number(doc_path, where, node, key, minimum=None):
    value = node.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(doc_path, f"{where}: '{key}' must be a number, got {value!r}")
    if minimum is not None and value < minimum:
        fail(doc_path, f"{where}: '{key}' must be >= {minimum}, got {value!r}")
    return value


def check_model_serve_results(doc_path, results):
    """Shape of bench/model_serve.cpp reports: fit provenance, the
    bit-identical registry round trip, scalar/batched throughput, and the
    wire-protocol robustness counters."""
    for key in ("variables", "coefficients", "training_samples", "lambda"):
        _require_int(doc_path, "results", results, key, minimum=1)
    _require_number(doc_path, "results", results, "test_error", minimum=0)

    round_trip = results.get("round_trip")
    if not isinstance(round_trip, dict):
        fail(doc_path, "results.round_trip must be an object")
    _require_int(doc_path, "round_trip", round_trip, "probes", minimum=1)
    _require_int(doc_path, "round_trip", round_trip, "version", minimum=1)
    for key in ("predict_identical", "gradient_identical"):
        if round_trip.get(key) is not True:
            fail(doc_path,
                 f"round_trip.{key} must be true: the registry must "
                 "reproduce the fitted model bit for bit")
    fingerprint = round_trip.get("dictionary_fingerprint")
    if not isinstance(fingerprint, str) or len(fingerprint) != 16 or \
            any(c not in "0123456789abcdef" for c in fingerprint):
        fail(doc_path, "round_trip.dictionary_fingerprint must be 16 lowercase"
                       f" hex digits, got {fingerprint!r}")

    scalar = results.get("scalar")
    if not isinstance(scalar, dict):
        fail(doc_path, "results.scalar must be an object")
    _require_int(doc_path, "scalar", scalar, "evals", minimum=1)
    _require_number(doc_path, "scalar", scalar, "checksum")
    _require_number(doc_path, "scalar", scalar, "seconds", minimum=0)
    _require_number(doc_path, "scalar", scalar, "evals_per_second", minimum=0)

    batch = results.get("batch")
    if not isinstance(batch, dict) or not batch:
        fail(doc_path, "results.batch must be a non-empty object keyed by "
                       "batch size")
    for size, entry in batch.items():
        where = f"batch[{size}]"
        if not size.isdigit() or int(size) < 1:
            fail(doc_path, f"{where}: key must be a positive integer string")
        if not isinstance(entry, dict):
            fail(doc_path, f"{where}: must be an object")
        _require_int(doc_path, where, entry, "rows", minimum=1)
        _require_number(doc_path, where, entry, "checksum")
        _require_number(doc_path, where, entry, "evals_per_second", minimum=0)
        _require_number(doc_path, where, entry, "speedup_vs_scalar",
                        minimum=0)

    protocol = results.get("protocol")
    if not isinstance(protocol, dict):
        fail(doc_path, "results.protocol must be an object")
    attempted = _require_int(doc_path, "protocol", protocol,
                             "frames_attempted", minimum=1)
    for key in ("frames_round_tripped", "corrupted_frames_rejected"):
        if _require_int(doc_path, "protocol", protocol, key) != attempted:
            fail(doc_path,
                 f"protocol.{key} is {protocol[key]} but {attempted} frames "
                 "were attempted: the wire layer must round-trip every good "
                 "frame and reject every corrupted one")

    check_server_counters(doc_path, "server", results.get("server"))


def check_server_counters(doc_path, where, server):
    """The overload/deadline/reload counter block shared by the model_serve
    bench (`results.server`) and the model_server report (`results`): every
    extracted frame is either admitted or shed, and the reload counters are
    present even when zero so regressions cannot hide as missing keys."""
    if not isinstance(server, dict):
        fail(doc_path, f"results.{where} must be an object"
             if where != "results" else "results must be an object")
    for key in ("accepted", "shed", "timed_out", "idle_closed",
                "reloads", "reload_failures"):
        _require_int(doc_path, where, server, key, minimum=0)
    requests = _require_int(doc_path, where, server, "requests", minimum=0)
    if server["accepted"] + server["shed"] != requests:
        fail(doc_path,
             f"{where}: accepted {server['accepted']} + shed "
             f"{server['shed']} != requests {requests}: admission control "
             "must account for every extracted frame")


def check_model_server_results(doc_path, results):
    """Shape of examples/model_server.cpp --report output."""
    for key in ("connections", "requests", "evals", "batch_rows",
                "protocol_errors", "request_errors"):
        _require_int(doc_path, "results", results, key)
    if not isinstance(results.get("signal_cancelled"), bool):
        fail(doc_path, "results.signal_cancelled must be a boolean")
    if results["evals"] > results["requests"]:
        fail(doc_path, f"results.evals {results['evals']} > requests "
                       f"{results['requests']}: every eval is one request")
    check_server_counters(doc_path, "results", results)


def find_campaign_reports(node, where="results"):
    """Campaign reports may be embedded anywhere under results (e.g.
    clean_report / faulted_report in campaign_overhead, results.campaign in
    durable_campaign); walk the whole value."""
    if is_campaign_report(node):
        yield where, node
        return
    if isinstance(node, dict):
        for key, value in node.items():
            yield from find_campaign_reports(value, f"{where}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from find_campaign_reports(value, f"{where}[{i}]")


def check_file(doc_path):
    with open(doc_path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema_version") not in SUPPORTED_SCHEMA_VERSIONS:
        fail(doc_path,
             f"schema_version {doc.get('schema_version')!r} not in "
             f"{SUPPORTED_SCHEMA_VERSIONS}")
    required = (V2_TOP_LEVEL_KEYS if doc["schema_version"] >= 2
                else TOP_LEVEL_KEYS)
    for key in required:
        if key not in doc:
            fail(doc_path, f"missing top-level key '{key}'")
    if not isinstance(doc["tool"], str) or not doc["tool"]:
        fail(doc_path, "'tool' must be a non-empty string")
    if not isinstance(doc["generated_unix_ms"], int) or doc["generated_unix_ms"] <= 0:
        fail(doc_path, "'generated_unix_ms' must be a positive integer")
    tracing = doc["tracing"]
    if not isinstance(tracing, dict) or not all(
            isinstance(tracing.get(k), bool) for k in ("compiled", "enabled")):
        fail(doc_path, "'tracing' must be {compiled: bool, enabled: bool}")
    if not isinstance(doc["results"], dict):
        fail(doc_path, "'results' must be an object")

    check_span(doc_path, doc["spans"])
    if doc["schema_version"] >= 2:
        check_resources(doc_path, "top-level", doc["resources"])
    check_metrics(doc_path, doc["metrics"])
    records = check_telemetry(doc_path, doc["telemetry"])
    check_residual_monotonicity(doc_path, records)
    ratio = check_omp_fit_coverage(doc_path, doc)
    campaign_reports = list(find_campaign_reports(doc["results"]))
    for where, report in campaign_reports:
        check_campaign_report(doc_path, where, report)
    if doc["tool"] == "model_serve":
        check_model_serve_results(doc_path, doc["results"])
    elif doc["tool"] == "model_server":
        check_model_server_results(doc_path, doc["results"])

    detail = f"{len(records)} telemetry records"
    if ratio is not None:
        detail += f", omp.fit covers {ratio:.1%} of OMP fit_seconds"
    if campaign_reports:
        detail += f", {len(campaign_reports)} campaign report(s)"
    print(f"OK {doc_path}: tool={doc['tool']}, {detail}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for doc_path in argv[1:]:
        try:
            check_file(doc_path)
        except (ValidationError, OSError, json.JSONDecodeError, KeyError,
                TypeError) as error:
            print(f"FAIL {doc_path}: {error}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
