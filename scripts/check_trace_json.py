#!/usr/bin/env python3
"""Validate Chrome-trace JSON exported via RSM_TRACE_EXPORT.

Structural checks (stdlib only, exit 0 = all files valid):
  * the document loads and carries displayTimeUnit / otherData /
    traceEvents, with traceEvents a list;
  * every event is a complete ("X") or metadata ("M") event — the exporter
    never emits unmatched B/E pairs;
  * X events carry name/cat/pid/tid, numeric non-negative ts/dur, and args
    with a non-negative integer count plus numeric min_ms/max_ms/cpu_ms;
  * every X event's tid has a matching thread_name metadata event, and a
    process_name metadata event exists;
  * per tid, events form a valid nesting: sorted by ts, each event lies
    within [ts, ts+dur] of every enclosing event (the exporter lays spans
    out synthetically, so overlap without containment is a bug);
  * with --expect-span NAME (repeatable), an X event of that name exists —
    CI asserts the campaign spans made it into the artifact.

Usage: check_trace_json.py trace.json [more.json ...] [--expect-span NAME]
"""

import argparse
import json
import sys


class ValidationError(Exception):
    pass


def fail(path, message):
    raise ValidationError(f"{path}: {message}")


def check_number(path, event, key, minimum=None):
    value = event.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(path, f"event {event.get('name')!r}: '{key}' must be a number, "
                   f"got {value!r}")
    if minimum is not None and value < minimum:
        fail(path, f"event {event.get('name')!r}: '{key}' = {value} < "
                   f"{minimum}")
    return value


def check_x_event(path, event):
    for key in ("name", "cat"):
        if not isinstance(event.get(key), str) or not event[key]:
            fail(path, f"X event missing string '{key}': {event!r}")
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            fail(path, f"X event {event['name']!r}: '{key}' must be an int")
    check_number(path, event, "ts", minimum=0)
    check_number(path, event, "dur", minimum=0)
    args = event.get("args")
    if not isinstance(args, dict):
        fail(path, f"X event {event['name']!r}: 'args' must be an object")
    count = args.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        fail(path, f"X event {event['name']!r}: args.count must be a "
                   f"non-negative integer")
    for key in ("min_ms", "max_ms", "cpu_ms"):
        check_number(path, args, key)


def check_nesting(path, tid, events):
    """Synthetic timelines must nest: sort by (ts, -dur); every event must
    lie inside the still-open enclosing events."""
    stack = []  # (ts, end)
    slack = 1e-3  # µs; double rounding across depth
    for event in sorted(events, key=lambda e: (e["ts"], -e["dur"])):
        start, end = event["ts"], event["ts"] + event["dur"]
        while stack and start >= stack[-1][1] - slack:
            stack.pop()
        if stack and end > stack[-1][1] + slack:
            fail(path,
                 f"tid {tid}: event {event['name']!r} [{start}, {end}] "
                 f"overlaps its enclosing span without nesting "
                 f"(encloser ends at {stack[-1][1]})")
        stack.append((start, end))


def check_file(path, expected_spans):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    for key in ("displayTimeUnit", "otherData", "traceEvents"):
        if key not in doc:
            fail(path, f"missing top-level key '{key}'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(path, "'traceEvents' must be an array")

    named_threads = set()
    has_process_name = False
    by_tid = {}
    x_names = set()
    for event in events:
        if not isinstance(event, dict):
            fail(path, f"event must be an object, got {event!r}")
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") == "process_name":
                has_process_name = True
            elif event.get("name") == "thread_name":
                named_threads.add(event.get("tid"))
        elif phase == "X":
            check_x_event(path, event)
            by_tid.setdefault(event["tid"], []).append(event)
            x_names.add(event["name"])
        else:
            fail(path, f"unexpected phase {phase!r} (exporter emits only "
                       f"complete X and metadata M events)")
    if not has_process_name:
        fail(path, "no process_name metadata event")
    for tid, tid_events in by_tid.items():
        if tid not in named_threads:
            fail(path, f"tid {tid} has X events but no thread_name metadata")
        check_nesting(path, tid, tid_events)
    for name in expected_spans:
        if name not in x_names:
            fail(path, f"expected span {name!r} not present "
                       f"(have: {sorted(x_names)})")
    print(f"OK {path}: {sum(len(v) for v in by_tid.values())} span event(s) "
          f"across {len(by_tid)} thread(s)")


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate RSM_TRACE_EXPORT Chrome-trace JSON.")
    parser.add_argument("files", nargs="+", help="trace files to validate")
    parser.add_argument("--expect-span", action="append", default=[],
                        metavar="NAME",
                        help="require an X event with this name (repeatable)")
    args = parser.parse_args(argv[1:])
    status = 0
    for path in args.files:
        try:
            check_file(path, args.expect_span)
        except (ValidationError, OSError, json.JSONDecodeError, KeyError,
                TypeError) as error:
            print(f"FAIL {path}: {error}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
