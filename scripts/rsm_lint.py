#!/usr/bin/env python3
"""rsm-lint: project-specific invariant checker for the sparse-RSM tree.

The campaign/observability/durability layers rely on invariants that the
type system cannot express and unit tests only probe pointwise — this
linter enforces them mechanically (stdlib only, no libclang):

  error-code-coverage   every ErrorCode enumerator is named in
                        error_code_name() and mirrored in the campaign
                        failure-histogram schema (check_bench_json.py);
                        kNumErrorCodes equals the enumerator count; the
                        serving client's ERROR_CODE_NAMES list
                        (serve_client.py) matches the enum in order,
                        since it indexes by the wire u8 code.
  macro-side-effects    RSM_DCHECK / RSM_TRACE_SPAN arguments must be
                        side-effect-free: both compile out (NDEBUG,
                        -DRSM_TRACING=OFF), so a ++/assignment/mutating
                        call inside one silently changes release behavior.
  unseeded-rng          no rand()/srand()/std::random_device outside the
                        seeded RNG factory (src/stats/rng.*) — determinism
                        is the paper's whole point.
  throw-taxonomy        src/ may only throw rsm::Error and its
                        StructuredError subclasses; a bare std:: throw
                        bypasses the campaign retry/quarantine taxonomy.
  include-cpp           no #include of a .cpp file.
  header-hygiene        every src/ header starts with #pragma once; with
                        --emit-header-hygiene the linter also generates
                        one TU per public header so the build proves each
                        header is self-sufficient.
  banned-functions      strcpy/strcat/sprintf/vsprintf/gets/atoi/atol/
                        atof are banned in favor of bounded/checked
                        alternatives (snprintf, std::from_chars, the
                        util/ parsers).
  span-name-literal     RSM_TRACE_SPAN takes a string literal: the span
                        tree stores the char* and compares by pointer, so
                        a dynamic name is a lifetime bug (trace.hpp).
  metric-name-literal   metrics().counter/gauge/histogram names must start
                        with a string literal: dashboards, check_bench_json
                        and bench_compare.py key on stable metric names, so
                        a fully dynamic name silently drops out of every
                        comparison (suffix concatenation onto a literal
                        prefix is fine).
  no-raw-thread         no std::thread/std::jthread/std::async outside
                        src/util/ — all parallelism goes through
                        rsm::ThreadPool so worker retirement, exception
                        backstops, queue draining, and cooperative
                        shutdown hold everywhere (std::this_thread is
                        fine: sleeping/yielding is not spawning).
  no-naked-mutex        no std::mutex/std::shared_mutex/std::lock_guard/
                        std::unique_lock/std::condition_variable & co
                        outside src/util/sync.* — locking goes through
                        rsm::Mutex + MutexLock/ReaderLock/CondVar so
                        every lock carries Clang Thread Safety
                        annotations and a deadlock-detection rank
                        (util/sync.hpp; ranks in docs/static-analysis.md).

Usage:
  rsm_lint.py                          # lint the whole tree, exit 0/1
  rsm_lint.py --list-rules
  rsm_lint.py --only macro-side-effects,unseeded-rng
  rsm_lint.py --disable banned-functions
  rsm_lint.py path/to/file.cpp ...     # lint specific files
  rsm_lint.py --emit-header-hygiene OUTDIR   # also generate hygiene TUs

Per-line suppression: append a comment `rsm-lint-allow(<rule>)`.
Fixture trees used to test the linter itself live under tests/lint/fixtures
and are skipped unless named explicitly on the command line.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "tests", "bench", "examples")
CXX_SUFFIXES = {".cpp", ".hpp"}
FIXTURE_MARKER = "lint/fixtures"

ALLOW_RE = re.compile(r"rsm-lint-allow\(([a-z0-9-]+)\)")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based; 0 = whole file
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else str(self.path)
        return f"{where}: [{self.rule}] {self.message}"


class SourceFile:
    """One scanned file with comment/string-stripped views for matching."""

    def __init__(self, path, root):
        self.path = path
        self.rel = path.relative_to(root).as_posix() if root in path.parents or path == root else path.as_posix()
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.lines = self.text.splitlines()
        self.code_lines = _strip_comments_and_strings(self.text).splitlines()

    def allowed(self, line_no, rule):
        if 1 <= line_no <= len(self.lines):
            for m in ALLOW_RE.finditer(self.lines[line_no - 1]):
                if m.group(1) == rule:
                    return True
        return False


def _strip_comments_and_strings(text):
    """Replaces comment and string/char-literal contents with spaces,
    preserving line structure and the enclosing quote characters."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def _extract_macro_args(code_text, macro):
    """Yields (line_no, argument-text) for each `macro(...)` invocation,
    balancing parentheses (arguments may span lines)."""
    for m in re.finditer(rf"\b{macro}\s*\(", code_text):
        # Skip the macro's own #define.
        line_start = code_text.rfind("\n", 0, m.start()) + 1
        if code_text[line_start:m.start()].lstrip().startswith("#"):
            continue
        depth, i = 1, m.end()
        while i < len(code_text) and depth > 0:
            if code_text[i] == "(":
                depth += 1
            elif code_text[i] == ")":
                depth -= 1
            i += 1
        line_no = code_text.count("\n", 0, m.start()) + 1
        yield line_no, code_text[m.end():i - 1]


# --------------------------------------------------------------------------
# Rules. Each is a function (files, repo_root) -> [Finding].

SIDE_EFFECT_MACROS = ("RSM_DCHECK", "RSM_TRACE_SPAN")
# Assignment that is not ==, !=, <=, >=, or part of a lambda capture init.
ASSIGN_RE = re.compile(r"(?<![=!<>+\-*/%&|^])=(?![=])")
COMPOUND_ASSIGN_RE = re.compile(r"(\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=)")
INCDEC_RE = re.compile(r"(\+\+|--)")
MUTATING_CALL_RE = re.compile(
    r"\.\s*(push_back|pop_back|emplace\w*|insert|erase|clear|reset|resize|"
    r"assign|swap|store|fetch_add|fetch_sub|exchange|request_cancel|"
    r"increment|observe|set)\s*\(")


def rule_macro_side_effects(files, _root):
    findings = []
    for f in files:
        code = "\n".join(f.code_lines)
        for macro in SIDE_EFFECT_MACROS:
            for line_no, arg in _extract_macro_args(code, macro):
                if f.allowed(line_no, "macro-side-effects"):
                    continue
                reason = None
                if INCDEC_RE.search(arg):
                    reason = "increment/decrement"
                elif COMPOUND_ASSIGN_RE.search(arg):
                    reason = "compound assignment"
                elif ASSIGN_RE.search(arg):
                    reason = "assignment"
                else:
                    m = MUTATING_CALL_RE.search(arg)
                    if m:
                        reason = f"mutating call .{m.group(1)}()"
                if reason:
                    findings.append(Finding(
                        "macro-side-effects", f.rel, line_no,
                        f"{macro} argument has a side effect ({reason}); "
                        f"it compiles out under NDEBUG/RSM_TRACING=OFF — "
                        f"hoist the expression to a named local"))
    return findings


RNG_RE = re.compile(r"std\s*::\s*random_device|(?<![\w:])s?rand\s*\(")
RNG_FACTORY_PATHS = ("src/stats/rng.hpp", "src/stats/rng.cpp")


def rule_unseeded_rng(files, _root):
    findings = []
    for f in files:
        if f.rel in RNG_FACTORY_PATHS:
            continue
        for i, line in enumerate(f.code_lines, 1):
            if RNG_RE.search(line) and not f.allowed(i, "unseeded-rng"):
                findings.append(Finding(
                    "unseeded-rng", f.rel, i,
                    "nondeterministic RNG source; use the seeded factories "
                    "in src/stats/rng.hpp (determinism invariant)"))
    return findings


RSM_ERROR_TYPES = (
    "Error", "StructuredError", "SingularMatrixError", "ConvergenceError",
    "NumericalDomainError", "DeadlineExceededError", "IoError",
    "ProtocolError", "VersionMismatchError",
)
THROW_RE = re.compile(r"\bthrow\b\s*([^;]*)")


def rule_throw_taxonomy(files, _root):
    allowed_heads = set(RSM_ERROR_TYPES)
    allowed_heads.update("rsm::" + t for t in RSM_ERROR_TYPES)
    findings = []
    for f in files:
        if not f.rel.startswith("src/"):
            continue
        for i, line in enumerate(f.code_lines, 1):
            for m in THROW_RE.finditer(line):
                expr = m.group(1).strip()
                if expr == "" or expr.startswith(")"):  # rethrow `throw;`
                    continue
                head = re.match(r"[A-Za-z_][\w:]*", expr)
                if head and head.group(0) in allowed_heads:
                    continue
                if f.allowed(i, "throw-taxonomy"):
                    continue
                findings.append(Finding(
                    "throw-taxonomy", f.rel, i,
                    f"src/ throws non-taxonomy type "
                    f"`{expr[:40]}`; raise rsm::Error or a StructuredError "
                    f"subclass so the campaign layer can classify it"))
    return findings


INCLUDE_CPP_RE = re.compile(r'#\s*include\s*[<"][^<">]*\.cpp[">]')


def rule_include_cpp(files, _root):
    findings = []
    for f in files:
        # Raw lines: the include path sits inside the (stripped) quotes.
        for i, line in enumerate(f.lines, 1):
            if INCLUDE_CPP_RE.search(line) and not f.allowed(i, "include-cpp"):
                findings.append(Finding(
                    "include-cpp", f.rel, i,
                    "#include of a .cpp file (ODR hazard); include the "
                    "header or add the source to the build"))
    return findings


BANNED_FUNCTIONS = {
    "strcpy": "bounded copy (snprintf / std::string)",
    "strcat": "std::string concatenation",
    "sprintf": "snprintf or std::format-style helpers",
    "vsprintf": "vsnprintf",
    "gets": "std::getline",
    "atoi": "std::from_chars or the util/ checked parsers",
    "atol": "std::from_chars or the util/ checked parsers",
    "atof": "std::from_chars or the util/ checked parsers",
}
BANNED_RE = re.compile(
    r"(?<![\w:.])(" + "|".join(BANNED_FUNCTIONS) + r")\s*\(")


def rule_banned_functions(files, _root):
    findings = []
    for f in files:
        for i, line in enumerate(f.code_lines, 1):
            for m in BANNED_RE.finditer(line):
                if f.allowed(i, "banned-functions"):
                    continue
                name = m.group(1)
                findings.append(Finding(
                    "banned-functions", f.rel, i,
                    f"banned function {name}(); use "
                    f"{BANNED_FUNCTIONS[name]}"))
    return findings


SPAN_LITERAL_RE = re.compile(r'^\s*"')


def rule_span_name_literal(files, _root):
    findings = []
    for f in files:
        code = "\n".join(f.code_lines)
        raw = f.text  # need the original to see the literal's quotes
        for m in re.finditer(r"\bRSM_TRACE_SPAN\s*\(", code):
            line_start = code.rfind("\n", 0, m.start()) + 1
            if code[line_start:m.start()].lstrip().startswith("#"):
                continue
            line_no = code.count("\n", 0, m.start()) + 1
            arg = raw[m.end():raw.find(")", m.end())]
            if not SPAN_LITERAL_RE.search(arg) and \
                    not f.allowed(line_no, "span-name-literal"):
                findings.append(Finding(
                    "span-name-literal", f.rel, line_no,
                    "RSM_TRACE_SPAN name must be a string literal (the "
                    "span tree stores the pointer; see obs/trace.hpp)"))
    return findings


METRIC_CALL_RE = re.compile(r"\.\s*(counter|gauge|histogram)\s*\(")


def rule_metric_name_literal(files, _root):
    # The stripped view preserves offsets and quote characters, so the
    # first argument's leading `"` is visible without consulting raw text.
    findings = []
    for f in files:
        code = "\n".join(f.code_lines)
        for m in METRIC_CALL_RE.finditer(code):
            line_start = code.rfind("\n", 0, m.start()) + 1
            if code[line_start:m.start()].lstrip().startswith("#"):
                continue
            if re.match(r'\s*"', code[m.end():m.end() + 160]):
                continue
            line_no = code.count("\n", 0, m.start()) + 1
            if f.allowed(line_no, "metric-name-literal"):
                continue
            findings.append(Finding(
                "metric-name-literal", f.rel, line_no,
                f"metrics().{m.group(1)}() name should start with a string "
                f"literal so dashboards and bench_compare.py see stable "
                f"keys; hoist intentionally dynamic names behind "
                f"rsm-lint-allow(metric-name-literal)"))
    return findings


# `\s*` around :: keeps `std :: thread` honest; `std::this_thread` cannot
# match because the token after :: must be thread/jthread/async itself.
RAW_THREAD_RE = re.compile(r"\bstd\s*::\s*(thread|jthread|async)\b")
THREAD_HOME_PREFIX = "src/util/"


def rule_no_raw_thread(files, _root):
    findings = []
    for f in files:
        if not f.rel.startswith("src/") or \
                f.rel.startswith(THREAD_HOME_PREFIX):
            continue
        for i, line in enumerate(f.code_lines, 1):
            m = RAW_THREAD_RE.search(line)
            if m and not f.allowed(i, "no-raw-thread"):
                findings.append(Finding(
                    "no-raw-thread", f.rel, i,
                    f"raw std::{m.group(1)} outside src/util/; route "
                    f"parallelism through rsm::ThreadPool "
                    f"(util/thread_pool.hpp) so retirement, exception "
                    f"backstops, and cooperative shutdown apply"))
    return findings


# Every raw locking vocabulary item the sync layer wraps. Matching the type
# name (not just declarations) also catches std::lock_guard<std::mutex>
# locals, member declarations, and template arguments in one pass.
NAKED_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(mutex|shared_mutex|timed_mutex|recursive_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|lock_guard|unique_lock|"
    r"shared_lock|scoped_lock|condition_variable|condition_variable_any)\b")
SYNC_HOME_PATHS = ("src/util/sync.hpp", "src/util/sync.cpp")


def rule_no_naked_mutex(files, _root):
    findings = []
    for f in files:
        if f.rel in SYNC_HOME_PATHS:
            continue
        for i, line in enumerate(f.code_lines, 1):
            m = NAKED_MUTEX_RE.search(line)
            if m and not f.allowed(i, "no-naked-mutex"):
                findings.append(Finding(
                    "no-naked-mutex", f.rel, i,
                    f"raw std::{m.group(1)} outside src/util/sync.*; use "
                    f"rsm::Mutex + MutexLock/ReaderLock/CondVar "
                    f"(util/sync.hpp) so the lock carries thread-safety "
                    f"annotations and a deadlock-detection rank"))
    return findings


PRAGMA_ONCE_RE = re.compile(r"^#\s*pragma\s+once", re.MULTILINE)


def rule_header_hygiene(files, _root):
    findings = []
    for f in files:
        if not f.rel.startswith("src/") or not f.rel.endswith(".hpp"):
            continue
        if not PRAGMA_ONCE_RE.search(f.text):
            findings.append(Finding(
                "header-hygiene", f.rel, 0,
                "src/ header lacks #pragma once"))
    return findings


ENUMERATOR_RE = re.compile(r"^\s*(k[A-Z]\w*)\s*(?:=\s*[\w:]+\s*)?,", re.MULTILINE)
NUM_CODES_RE = re.compile(r"kNumErrorCodes\s*=\s*(\d+)")
CASE_RE = re.compile(
    r"case\s+ErrorCode::(k\w+)\s*:\s*return\s*\"([^\"]*)\"")


def rule_error_code_coverage(files, root):
    findings = []
    hpp = root / "src/util/errors.hpp"
    cpp = root / "src/util/errors.cpp"
    checker = root / "scripts/check_bench_json.py"
    if not hpp.exists() or not cpp.exists():
        return findings
    hpp_text = hpp.read_text(encoding="utf-8")
    enum_match = re.search(r"enum\s+class\s+ErrorCode\s*\{(.*?)\};",
                           hpp_text, re.DOTALL)
    if not enum_match:
        findings.append(Finding("error-code-coverage", "src/util/errors.hpp",
                                0, "could not locate `enum class ErrorCode`"))
        return findings
    enumerators = ENUMERATOR_RE.findall(
        _strip_comments_and_strings(enum_match.group(1)))
    cpp_text = cpp.read_text(encoding="utf-8")
    name_map = dict(CASE_RE.findall(cpp_text))

    for enumerator in enumerators:
        if enumerator not in name_map:
            findings.append(Finding(
                "error-code-coverage", "src/util/errors.cpp", 0,
                f"ErrorCode::{enumerator} has no case in error_code_name() "
                f"— reports would print '?' for it"))
    num_match = NUM_CODES_RE.search(hpp_text)
    if not num_match:
        findings.append(Finding("error-code-coverage", "src/util/errors.hpp",
                                0, "kNumErrorCodes definition not found"))
    elif int(num_match.group(1)) != len(enumerators):
        findings.append(Finding(
            "error-code-coverage", "src/util/errors.hpp", 0,
            f"kNumErrorCodes = {num_match.group(1)} but ErrorCode has "
            f"{len(enumerators)} enumerators; the campaign failure "
            f"histogram is indexed by code and would drop the tail"))
    if checker.exists():
        checker_text = checker.read_text(encoding="utf-8")
        for enumerator, dashed in name_map.items():
            if enumerator not in enumerators:
                continue
            if dashed == "ok":
                continue  # kOk is a success marker, not a failure bucket
            if f'"{dashed}"' not in checker_text:
                findings.append(Finding(
                    "error-code-coverage", "scripts/check_bench_json.py", 0,
                    f"error code name \"{dashed}\" "
                    f"(ErrorCode::{enumerator}) missing from the campaign "
                    f"report schema's ERROR_CODE_NAMES"))

    # serve_client.py decodes error frames by *indexing* its list with the
    # u8 enum value, so unlike the schema check above the list must match
    # the C++ enum in ORDER, not just membership.
    client = root / "scripts/serve_client.py"
    if client.exists():
        client_text = client.read_text(encoding="utf-8")
        list_match = re.search(
            r"ERROR_CODE_NAMES\s*=\s*\[(.*?)\]", client_text, re.DOTALL)
        if not list_match:
            findings.append(Finding(
                "error-code-coverage", "scripts/serve_client.py", 0,
                "ERROR_CODE_NAMES list not found"))
        else:
            client_names = re.findall(r'"([^"]*)"', list_match.group(1))
            cpp_names = [name_map.get(e, "?") for e in enumerators]
            if client_names != cpp_names:
                findings.append(Finding(
                    "error-code-coverage", "scripts/serve_client.py", 0,
                    f"ERROR_CODE_NAMES {client_names} does not match the "
                    f"C++ enum order {cpp_names}; the client indexes this "
                    f"list with the wire u8 code, so order is load-bearing"))
    return findings


RULES = {
    "error-code-coverage": rule_error_code_coverage,
    "macro-side-effects": rule_macro_side_effects,
    "unseeded-rng": rule_unseeded_rng,
    "throw-taxonomy": rule_throw_taxonomy,
    "include-cpp": rule_include_cpp,
    "header-hygiene": rule_header_hygiene,
    "banned-functions": rule_banned_functions,
    "span-name-literal": rule_span_name_literal,
    "metric-name-literal": rule_metric_name_literal,
    "no-raw-thread": rule_no_raw_thread,
    "no-naked-mutex": rule_no_naked_mutex,
}


# --------------------------------------------------------------------------
# Header-hygiene TU generation: one translation unit per src/ header so the
# build proves every public header compiles in isolation.

HYGIENE_PREAMBLE = """\
// GENERATED by scripts/rsm_lint.py --emit-header-hygiene — do not edit.
// Compiling this TU proves the header is self-sufficient.
"""


def emit_header_hygiene(root, out_dir):
    out_dir.mkdir(parents=True, exist_ok=True)
    headers = sorted(
        p.relative_to(root / "src").as_posix()
        for p in (root / "src").rglob("*.hpp"))
    sources = []
    for idx, header in enumerate(headers):
        stem = re.sub(r"[^A-Za-z0-9]", "_", header)
        name = f"hh_{idx:03d}_{stem}.cpp"
        (out_dir / name).write_text(
            f'{HYGIENE_PREAMBLE}#include "{header}"\n', encoding="utf-8")
        sources.append(name)
    # Prune TUs for headers that no longer exist.
    keep = set(sources)
    for stale in out_dir.glob("hh_*.cpp"):
        if stale.name not in keep:
            stale.unlink()
    listing = "".join(f"  ${{CMAKE_CURRENT_BINARY_DIR}}/header_hygiene/{s}\n"
                      for s in sources)
    (out_dir / "headers.cmake").write_text(
        "# GENERATED by scripts/rsm_lint.py --emit-header-hygiene.\n"
        f"set(RSM_HEADER_HYGIENE_SOURCES\n{listing})\n", encoding="utf-8")
    return len(headers)


# --------------------------------------------------------------------------

def collect_files(root, explicit_paths, include_fixtures):
    paths = []
    if explicit_paths:
        for p in explicit_paths:
            path = Path(p).resolve()
            if path.is_dir():
                paths.extend(sorted(path.rglob("*")))
            else:
                paths.append(path)
    else:
        for d in SCAN_DIRS:
            base = root / d
            if base.is_dir():
                paths.extend(sorted(base.rglob("*")))
    files = []
    for path in paths:
        if path.suffix not in CXX_SUFFIXES or not path.is_file():
            continue
        rel = path.as_posix()
        if FIXTURE_MARKER in rel and not (include_fixtures or explicit_paths):
            continue
        files.append(SourceFile(path, root))
    return files


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: whole tree)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: the script's parent's parent)")
    parser.add_argument("--only", default="",
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--disable", default="",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--include-fixtures", action="store_true",
                        help="also scan tests/lint/fixtures")
    parser.add_argument("--emit-header-hygiene", metavar="OUTDIR",
                        help="write per-header compile-check TUs and a "
                             "headers.cmake listing into OUTDIR")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent

    selected = dict(RULES)
    if args.only:
        wanted = [r.strip() for r in args.only.split(",") if r.strip()]
        unknown = [r for r in wanted if r not in RULES]
        if unknown:
            print(f"rsm-lint: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        selected = {r: RULES[r] for r in wanted}
    for rule in (r.strip() for r in args.disable.split(",") if r.strip()):
        if rule not in RULES:
            print(f"rsm-lint: unknown rule: {rule}", file=sys.stderr)
            return 2
        selected.pop(rule, None)

    if args.emit_header_hygiene:
        count = emit_header_hygiene(root, Path(args.emit_header_hygiene))
        print(f"rsm-lint: emitted {count} header-hygiene TUs")

    files = collect_files(root, args.paths, args.include_fixtures)
    findings = []
    for rule_fn in selected.values():
        findings.extend(rule_fn(files, root))
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    for finding in findings:
        print(finding)
    if findings:
        print(f"rsm-lint: {len(findings)} finding(s) across "
              f"{len(selected)} rule(s)", file=sys.stderr)
        return 1
    print(f"rsm-lint: clean ({len(files)} files, {len(selected)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
