#!/usr/bin/env python3
"""Validate a campaign progress-heartbeat stream (JSONL from --progress).

Structural checks (stdlib only, exit 0 = all files valid):
  * every line parses as a JSON object carrying the full heartbeat schema
    (event/source/elapsed_seconds/total_rows/rows_done/rows_succeeded/
    rows_quarantined/rows_per_second/eta_seconds/workers/active_workers/
    worker_utilization);
  * "event" is "progress" or "summary", and the stream ends with the
    unconditional "summary" the campaign emits after its fold;
  * counts are consistent on every line: rows_done = rows_succeeded +
    rows_quarantined, 0 <= rows_done <= total_rows, and rows_done never
    decreases along the stream;
  * eta_seconds and worker_utilization are numbers or null (unknown);
  * with --expect-rows N, the final summary's rows_done equals N; with
    --expect-source NAME, every line's source equals NAME.

Usage: check_progress_jsonl.py progress.jsonl [...] [--expect-rows N]
"""

import argparse
import json
import sys

REQUIRED_KEYS = (
    "event", "source", "elapsed_seconds", "total_rows", "rows_done",
    "rows_succeeded", "rows_quarantined", "rows_per_second", "eta_seconds",
    "workers", "active_workers", "worker_utilization",
)
INT_KEYS = ("total_rows", "rows_done", "rows_succeeded", "rows_quarantined",
            "workers", "active_workers")
NULLABLE_KEYS = ("eta_seconds", "worker_utilization")


class ValidationError(Exception):
    pass


def fail(where, message):
    raise ValidationError(f"{where}: {message}")


def check_line(where, event):
    if not isinstance(event, dict):
        fail(where, f"line must be a JSON object, got {event!r}")
    for key in REQUIRED_KEYS:
        if key not in event:
            fail(where, f"missing key '{key}'")
    if event["event"] not in ("progress", "summary"):
        fail(where, f"unknown event {event['event']!r}")
    for key in INT_KEYS:
        value = event[key]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(where, f"'{key}' must be a non-negative integer, "
                        f"got {value!r}")
    for key in ("elapsed_seconds", "rows_per_second"):
        value = event[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value < 0:
            fail(where, f"'{key}' must be a non-negative number, "
                        f"got {value!r}")
    for key in NULLABLE_KEYS:
        value = event[key]
        if value is not None and (not isinstance(value, (int, float))
                                  or isinstance(value, bool)):
            fail(where, f"'{key}' must be a number or null, got {value!r}")
    if event["rows_done"] != event["rows_succeeded"] + \
            event["rows_quarantined"]:
        fail(where, f"rows_done {event['rows_done']} != succeeded "
                    f"{event['rows_succeeded']} + quarantined "
                    f"{event['rows_quarantined']}")
    if event["rows_done"] > event["total_rows"]:
        fail(where, f"rows_done {event['rows_done']} > total_rows "
                    f"{event['total_rows']}")


def check_file(path, args):
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for i, line in enumerate(handle, 1):
            if not line.strip():
                fail(f"{path}:{i}", "blank line in JSONL stream")
            events.append(json.loads(line))
            check_line(f"{path}:{i}", events[-1])
    if not events:
        fail(path, "empty stream (the first maybe_emit always writes)")
    done = [e["rows_done"] for e in events]
    if done != sorted(done):
        fail(path, f"rows_done is not monotone: {done}")
    last = events[-1]
    if last["event"] != "summary":
        fail(path, f"stream must end with the summary event, "
                   f"got {last['event']!r}")
    if args.expect_rows is not None and last["rows_done"] != args.expect_rows:
        fail(path, f"summary rows_done {last['rows_done']} != expected "
                   f"{args.expect_rows}")
    if args.expect_source is not None:
        for i, event in enumerate(events, 1):
            if event["source"] != args.expect_source:
                fail(f"{path}:{i}", f"source {event['source']!r} != "
                                    f"{args.expect_source!r}")
    print(f"OK {path}: {len(events)} event(s), final rows_done "
          f"{last['rows_done']}/{last['total_rows']}")


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate campaign progress-heartbeat JSONL streams.")
    parser.add_argument("files", nargs="+", help="JSONL streams to validate")
    parser.add_argument("--expect-rows", type=int, default=None,
                        help="require the final summary's rows_done to equal "
                             "this")
    parser.add_argument("--expect-source", default=None,
                        help="require every event's source field to equal "
                             "this")
    args = parser.parse_args(argv[1:])
    status = 0
    for path in args.files:
        try:
            check_file(path, args)
        except (ValidationError, OSError, json.JSONDecodeError, KeyError,
                TypeError) as error:
            print(f"FAIL {path}: {error}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
