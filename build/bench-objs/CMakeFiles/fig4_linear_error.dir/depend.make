# Empty dependencies file for fig4_linear_error.
# This may be replaced when dependencies are built.
