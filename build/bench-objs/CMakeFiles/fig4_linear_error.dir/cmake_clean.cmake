file(REMOVE_RECURSE
  "../bench/fig4_linear_error"
  "../bench/fig4_linear_error.pdb"
  "CMakeFiles/fig4_linear_error.dir/fig4_linear_error.cpp.o"
  "CMakeFiles/fig4_linear_error.dir/fig4_linear_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_linear_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
