file(REMOVE_RECURSE
  "../bench/table3_quadratic_cost"
  "../bench/table3_quadratic_cost.pdb"
  "CMakeFiles/table3_quadratic_cost.dir/table3_quadratic_cost.cpp.o"
  "CMakeFiles/table3_quadratic_cost.dir/table3_quadratic_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_quadratic_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
