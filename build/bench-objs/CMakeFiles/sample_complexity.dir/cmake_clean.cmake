file(REMOVE_RECURSE
  "../bench/sample_complexity"
  "../bench/sample_complexity.pdb"
  "CMakeFiles/sample_complexity.dir/sample_complexity.cpp.o"
  "CMakeFiles/sample_complexity.dir/sample_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
