# Empty compiler generated dependencies file for sample_complexity.
# This may be replaced when dependencies are built.
