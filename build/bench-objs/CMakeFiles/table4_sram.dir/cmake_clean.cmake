file(REMOVE_RECURSE
  "../bench/table4_sram"
  "../bench/table4_sram.pdb"
  "CMakeFiles/table4_sram.dir/table4_sram.cpp.o"
  "CMakeFiles/table4_sram.dir/table4_sram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
