# Empty compiler generated dependencies file for table4_sram.
# This may be replaced when dependencies are built.
