file(REMOVE_RECURSE
  "../bench/table2_quadratic_error"
  "../bench/table2_quadratic_error.pdb"
  "CMakeFiles/table2_quadratic_error.dir/table2_quadratic_error.cpp.o"
  "CMakeFiles/table2_quadratic_error.dir/table2_quadratic_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_quadratic_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
