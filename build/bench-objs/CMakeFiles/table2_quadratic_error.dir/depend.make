# Empty dependencies file for table2_quadratic_error.
# This may be replaced when dependencies are built.
