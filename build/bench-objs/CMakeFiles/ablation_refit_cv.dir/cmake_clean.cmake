file(REMOVE_RECURSE
  "../bench/ablation_refit_cv"
  "../bench/ablation_refit_cv.pdb"
  "CMakeFiles/ablation_refit_cv.dir/ablation_refit_cv.cpp.o"
  "CMakeFiles/ablation_refit_cv.dir/ablation_refit_cv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_refit_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
