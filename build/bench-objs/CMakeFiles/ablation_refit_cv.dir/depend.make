# Empty dependencies file for ablation_refit_cv.
# This may be replaced when dependencies are built.
