file(REMOVE_RECURSE
  "librsm_bench_common.a"
)
