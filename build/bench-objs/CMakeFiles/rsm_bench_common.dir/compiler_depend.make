# Empty compiler generated dependencies file for rsm_bench_common.
# This may be replaced when dependencies are built.
