
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/common.cpp" "bench-objs/CMakeFiles/rsm_bench_common.dir/common.cpp.o" "gcc" "bench-objs/CMakeFiles/rsm_bench_common.dir/common.cpp.o.d"
  "/root/repo/bench/quadratic_opamp.cpp" "bench-objs/CMakeFiles/rsm_bench_common.dir/quadratic_opamp.cpp.o" "gcc" "bench-objs/CMakeFiles/rsm_bench_common.dir/quadratic_opamp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/rsm_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/rsm_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/rsm_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/basis/CMakeFiles/rsm_basis.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rsm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rsm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
