file(REMOVE_RECURSE
  "CMakeFiles/rsm_bench_common.dir/common.cpp.o"
  "CMakeFiles/rsm_bench_common.dir/common.cpp.o.d"
  "CMakeFiles/rsm_bench_common.dir/quadratic_opamp.cpp.o"
  "CMakeFiles/rsm_bench_common.dir/quadratic_opamp.cpp.o.d"
  "librsm_bench_common.a"
  "librsm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
