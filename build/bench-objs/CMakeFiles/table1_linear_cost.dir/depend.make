# Empty dependencies file for table1_linear_cost.
# This may be replaced when dependencies are built.
