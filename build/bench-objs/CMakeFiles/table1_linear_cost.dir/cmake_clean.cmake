file(REMOVE_RECURSE
  "../bench/table1_linear_cost"
  "../bench/table1_linear_cost.pdb"
  "CMakeFiles/table1_linear_cost.dir/table1_linear_cost.cpp.o"
  "CMakeFiles/table1_linear_cost.dir/table1_linear_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_linear_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
