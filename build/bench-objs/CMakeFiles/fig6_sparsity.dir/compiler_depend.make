# Empty compiler generated dependencies file for fig6_sparsity.
# This may be replaced when dependencies are built.
