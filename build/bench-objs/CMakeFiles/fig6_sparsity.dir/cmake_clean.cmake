file(REMOVE_RECURSE
  "../bench/fig6_sparsity"
  "../bench/fig6_sparsity.pdb"
  "CMakeFiles/fig6_sparsity.dir/fig6_sparsity.cpp.o"
  "CMakeFiles/fig6_sparsity.dir/fig6_sparsity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
