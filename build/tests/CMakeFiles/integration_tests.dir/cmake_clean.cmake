file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/circuit_modeling_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/circuit_modeling_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/pca_flow_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/pca_flow_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/pipeline_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/property_sweeps_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/property_sweeps_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/recovery_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/recovery_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/sram_transient_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/sram_transient_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/umbrella_test.cpp.o"
  "CMakeFiles/integration_tests.dir/umbrella_test.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
