file(REMOVE_RECURSE
  "CMakeFiles/linalg_tests.dir/linalg/blas_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/blas_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/cholesky_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/cholesky_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/eigen_sym_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/eigen_sym_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/incremental_qr_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/incremental_qr_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/lu_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/lu_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/matrix_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/matrix_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/qr_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/qr_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/vector_ops_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/vector_ops_test.cpp.o.d"
  "linalg_tests"
  "linalg_tests.pdb"
  "linalg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
