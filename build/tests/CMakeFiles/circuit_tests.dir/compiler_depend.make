# Empty compiler generated dependencies file for circuit_tests.
# This may be replaced when dependencies are built.
