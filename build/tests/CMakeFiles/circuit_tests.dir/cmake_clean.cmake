file(REMOVE_RECURSE
  "CMakeFiles/circuit_tests.dir/circuits/corners_test.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuits/corners_test.cpp.o.d"
  "CMakeFiles/circuit_tests.dir/circuits/opamp_test.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuits/opamp_test.cpp.o.d"
  "CMakeFiles/circuit_tests.dir/circuits/ring_oscillator_test.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuits/ring_oscillator_test.cpp.o.d"
  "CMakeFiles/circuit_tests.dir/sram/sram_test.cpp.o"
  "CMakeFiles/circuit_tests.dir/sram/sram_test.cpp.o.d"
  "circuit_tests"
  "circuit_tests.pdb"
  "circuit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
