
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/bootstrap_test.cpp" "tests/CMakeFiles/core_tests.dir/core/bootstrap_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/bootstrap_test.cpp.o.d"
  "/root/repo/tests/core/column_source_test.cpp" "tests/CMakeFiles/core_tests.dir/core/column_source_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/column_source_test.cpp.o.d"
  "/root/repo/tests/core/cosamp_test.cpp" "tests/CMakeFiles/core_tests.dir/core/cosamp_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/cosamp_test.cpp.o.d"
  "/root/repo/tests/core/cross_validation_test.cpp" "tests/CMakeFiles/core_tests.dir/core/cross_validation_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/cross_validation_test.cpp.o.d"
  "/root/repo/tests/core/lar_test.cpp" "tests/CMakeFiles/core_tests.dir/core/lar_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/lar_test.cpp.o.d"
  "/root/repo/tests/core/lasso_cd_test.cpp" "tests/CMakeFiles/core_tests.dir/core/lasso_cd_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/lasso_cd_test.cpp.o.d"
  "/root/repo/tests/core/least_squares_test.cpp" "tests/CMakeFiles/core_tests.dir/core/least_squares_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/least_squares_test.cpp.o.d"
  "/root/repo/tests/core/metrics_test.cpp" "tests/CMakeFiles/core_tests.dir/core/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/metrics_test.cpp.o.d"
  "/root/repo/tests/core/model_test.cpp" "tests/CMakeFiles/core_tests.dir/core/model_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/model_test.cpp.o.d"
  "/root/repo/tests/core/moments_test.cpp" "tests/CMakeFiles/core_tests.dir/core/moments_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/moments_test.cpp.o.d"
  "/root/repo/tests/core/omp_test.cpp" "tests/CMakeFiles/core_tests.dir/core/omp_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/omp_test.cpp.o.d"
  "/root/repo/tests/core/refit_test.cpp" "tests/CMakeFiles/core_tests.dir/core/refit_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/refit_test.cpp.o.d"
  "/root/repo/tests/core/robustness_test.cpp" "tests/CMakeFiles/core_tests.dir/core/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/robustness_test.cpp.o.d"
  "/root/repo/tests/core/sobol_test.cpp" "tests/CMakeFiles/core_tests.dir/core/sobol_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/sobol_test.cpp.o.d"
  "/root/repo/tests/core/solver_path_test.cpp" "tests/CMakeFiles/core_tests.dir/core/solver_path_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/solver_path_test.cpp.o.d"
  "/root/repo/tests/core/somp_test.cpp" "tests/CMakeFiles/core_tests.dir/core/somp_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/somp_test.cpp.o.d"
  "/root/repo/tests/core/stagewise_test.cpp" "tests/CMakeFiles/core_tests.dir/core/stagewise_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/stagewise_test.cpp.o.d"
  "/root/repo/tests/core/star_test.cpp" "tests/CMakeFiles/core_tests.dir/core/star_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/star_test.cpp.o.d"
  "/root/repo/tests/core/synthetic_test.cpp" "tests/CMakeFiles/core_tests.dir/core/synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/synthetic_test.cpp.o.d"
  "/root/repo/tests/core/worst_case_test.cpp" "tests/CMakeFiles/core_tests.dir/core/worst_case_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/worst_case_test.cpp.o.d"
  "/root/repo/tests/core/yield_test.cpp" "tests/CMakeFiles/core_tests.dir/core/yield_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/yield_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/rsm_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/rsm_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/rsm_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/basis/CMakeFiles/rsm_basis.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rsm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rsm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
