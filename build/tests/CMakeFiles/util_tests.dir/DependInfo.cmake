
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/cli_test.cpp" "tests/CMakeFiles/util_tests.dir/util/cli_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/cli_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/util_tests.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/log_test.cpp" "tests/CMakeFiles/util_tests.dir/util/log_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/log_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/util_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/rsm_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/rsm_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/rsm_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/basis/CMakeFiles/rsm_basis.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rsm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rsm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
