# Empty compiler generated dependencies file for basis_tests.
# This may be replaced when dependencies are built.
