file(REMOVE_RECURSE
  "CMakeFiles/basis_tests.dir/basis/dictionary_test.cpp.o"
  "CMakeFiles/basis_tests.dir/basis/dictionary_test.cpp.o.d"
  "CMakeFiles/basis_tests.dir/basis/hermite_test.cpp.o"
  "CMakeFiles/basis_tests.dir/basis/hermite_test.cpp.o.d"
  "CMakeFiles/basis_tests.dir/basis/multi_index_test.cpp.o"
  "CMakeFiles/basis_tests.dir/basis/multi_index_test.cpp.o.d"
  "CMakeFiles/basis_tests.dir/basis/quadrature_test.cpp.o"
  "CMakeFiles/basis_tests.dir/basis/quadrature_test.cpp.o.d"
  "basis_tests"
  "basis_tests.pdb"
  "basis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
