file(REMOVE_RECURSE
  "CMakeFiles/spice_tests.dir/spice/ac_test.cpp.o"
  "CMakeFiles/spice_tests.dir/spice/ac_test.cpp.o.d"
  "CMakeFiles/spice_tests.dir/spice/dc_sweep_test.cpp.o"
  "CMakeFiles/spice_tests.dir/spice/dc_sweep_test.cpp.o.d"
  "CMakeFiles/spice_tests.dir/spice/dc_test.cpp.o"
  "CMakeFiles/spice_tests.dir/spice/dc_test.cpp.o.d"
  "CMakeFiles/spice_tests.dir/spice/mosfet_test.cpp.o"
  "CMakeFiles/spice_tests.dir/spice/mosfet_test.cpp.o.d"
  "CMakeFiles/spice_tests.dir/spice/netlist_test.cpp.o"
  "CMakeFiles/spice_tests.dir/spice/netlist_test.cpp.o.d"
  "CMakeFiles/spice_tests.dir/spice/parser_test.cpp.o"
  "CMakeFiles/spice_tests.dir/spice/parser_test.cpp.o.d"
  "CMakeFiles/spice_tests.dir/spice/topologies_test.cpp.o"
  "CMakeFiles/spice_tests.dir/spice/topologies_test.cpp.o.d"
  "CMakeFiles/spice_tests.dir/spice/transient_test.cpp.o"
  "CMakeFiles/spice_tests.dir/spice/transient_test.cpp.o.d"
  "spice_tests"
  "spice_tests.pdb"
  "spice_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
