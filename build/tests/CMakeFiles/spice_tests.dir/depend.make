# Empty dependencies file for spice_tests.
# This may be replaced when dependencies are built.
