file(REMOVE_RECURSE
  "librsm_util.a"
)
