# Empty compiler generated dependencies file for rsm_util.
# This may be replaced when dependencies are built.
