file(REMOVE_RECURSE
  "CMakeFiles/rsm_util.dir/cli.cpp.o"
  "CMakeFiles/rsm_util.dir/cli.cpp.o.d"
  "CMakeFiles/rsm_util.dir/csv.cpp.o"
  "CMakeFiles/rsm_util.dir/csv.cpp.o.d"
  "CMakeFiles/rsm_util.dir/log.cpp.o"
  "CMakeFiles/rsm_util.dir/log.cpp.o.d"
  "CMakeFiles/rsm_util.dir/table.cpp.o"
  "CMakeFiles/rsm_util.dir/table.cpp.o.d"
  "librsm_util.a"
  "librsm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
