file(REMOVE_RECURSE
  "librsm_spice.a"
)
