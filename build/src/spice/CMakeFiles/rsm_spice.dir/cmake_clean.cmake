file(REMOVE_RECURSE
  "CMakeFiles/rsm_spice.dir/ac.cpp.o"
  "CMakeFiles/rsm_spice.dir/ac.cpp.o.d"
  "CMakeFiles/rsm_spice.dir/dc.cpp.o"
  "CMakeFiles/rsm_spice.dir/dc.cpp.o.d"
  "CMakeFiles/rsm_spice.dir/mna.cpp.o"
  "CMakeFiles/rsm_spice.dir/mna.cpp.o.d"
  "CMakeFiles/rsm_spice.dir/mosfet.cpp.o"
  "CMakeFiles/rsm_spice.dir/mosfet.cpp.o.d"
  "CMakeFiles/rsm_spice.dir/netlist.cpp.o"
  "CMakeFiles/rsm_spice.dir/netlist.cpp.o.d"
  "CMakeFiles/rsm_spice.dir/parser.cpp.o"
  "CMakeFiles/rsm_spice.dir/parser.cpp.o.d"
  "CMakeFiles/rsm_spice.dir/transient.cpp.o"
  "CMakeFiles/rsm_spice.dir/transient.cpp.o.d"
  "librsm_spice.a"
  "librsm_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsm_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
