# Empty dependencies file for rsm_spice.
# This may be replaced when dependencies are built.
