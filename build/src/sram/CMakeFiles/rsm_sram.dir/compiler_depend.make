# Empty compiler generated dependencies file for rsm_sram.
# This may be replaced when dependencies are built.
