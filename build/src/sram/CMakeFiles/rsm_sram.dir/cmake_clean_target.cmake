file(REMOVE_RECURSE
  "librsm_sram.a"
)
