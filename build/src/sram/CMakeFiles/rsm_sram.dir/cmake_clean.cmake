file(REMOVE_RECURSE
  "CMakeFiles/rsm_sram.dir/sram.cpp.o"
  "CMakeFiles/rsm_sram.dir/sram.cpp.o.d"
  "librsm_sram.a"
  "librsm_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsm_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
