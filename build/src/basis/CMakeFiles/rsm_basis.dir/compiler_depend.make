# Empty compiler generated dependencies file for rsm_basis.
# This may be replaced when dependencies are built.
