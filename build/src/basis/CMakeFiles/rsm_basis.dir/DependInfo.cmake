
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/basis/dictionary.cpp" "src/basis/CMakeFiles/rsm_basis.dir/dictionary.cpp.o" "gcc" "src/basis/CMakeFiles/rsm_basis.dir/dictionary.cpp.o.d"
  "/root/repo/src/basis/hermite.cpp" "src/basis/CMakeFiles/rsm_basis.dir/hermite.cpp.o" "gcc" "src/basis/CMakeFiles/rsm_basis.dir/hermite.cpp.o.d"
  "/root/repo/src/basis/multi_index.cpp" "src/basis/CMakeFiles/rsm_basis.dir/multi_index.cpp.o" "gcc" "src/basis/CMakeFiles/rsm_basis.dir/multi_index.cpp.o.d"
  "/root/repo/src/basis/quadrature.cpp" "src/basis/CMakeFiles/rsm_basis.dir/quadrature.cpp.o" "gcc" "src/basis/CMakeFiles/rsm_basis.dir/quadrature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/rsm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
