file(REMOVE_RECURSE
  "librsm_basis.a"
)
