file(REMOVE_RECURSE
  "CMakeFiles/rsm_basis.dir/dictionary.cpp.o"
  "CMakeFiles/rsm_basis.dir/dictionary.cpp.o.d"
  "CMakeFiles/rsm_basis.dir/hermite.cpp.o"
  "CMakeFiles/rsm_basis.dir/hermite.cpp.o.d"
  "CMakeFiles/rsm_basis.dir/multi_index.cpp.o"
  "CMakeFiles/rsm_basis.dir/multi_index.cpp.o.d"
  "CMakeFiles/rsm_basis.dir/quadrature.cpp.o"
  "CMakeFiles/rsm_basis.dir/quadrature.cpp.o.d"
  "librsm_basis.a"
  "librsm_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsm_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
