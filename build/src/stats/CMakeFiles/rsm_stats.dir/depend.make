# Empty dependencies file for rsm_stats.
# This may be replaced when dependencies are built.
