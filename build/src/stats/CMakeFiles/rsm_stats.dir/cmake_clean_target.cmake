file(REMOVE_RECURSE
  "librsm_stats.a"
)
