file(REMOVE_RECURSE
  "CMakeFiles/rsm_stats.dir/covariance.cpp.o"
  "CMakeFiles/rsm_stats.dir/covariance.cpp.o.d"
  "CMakeFiles/rsm_stats.dir/descriptive.cpp.o"
  "CMakeFiles/rsm_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/rsm_stats.dir/lhs.cpp.o"
  "CMakeFiles/rsm_stats.dir/lhs.cpp.o.d"
  "CMakeFiles/rsm_stats.dir/pca.cpp.o"
  "CMakeFiles/rsm_stats.dir/pca.cpp.o.d"
  "CMakeFiles/rsm_stats.dir/rng.cpp.o"
  "CMakeFiles/rsm_stats.dir/rng.cpp.o.d"
  "librsm_stats.a"
  "librsm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
