
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bootstrap.cpp" "src/core/CMakeFiles/rsm_core.dir/bootstrap.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/bootstrap.cpp.o.d"
  "/root/repo/src/core/column_source.cpp" "src/core/CMakeFiles/rsm_core.dir/column_source.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/column_source.cpp.o.d"
  "/root/repo/src/core/cosamp.cpp" "src/core/CMakeFiles/rsm_core.dir/cosamp.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/cosamp.cpp.o.d"
  "/root/repo/src/core/cross_validation.cpp" "src/core/CMakeFiles/rsm_core.dir/cross_validation.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/cross_validation.cpp.o.d"
  "/root/repo/src/core/lar.cpp" "src/core/CMakeFiles/rsm_core.dir/lar.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/lar.cpp.o.d"
  "/root/repo/src/core/lasso_cd.cpp" "src/core/CMakeFiles/rsm_core.dir/lasso_cd.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/lasso_cd.cpp.o.d"
  "/root/repo/src/core/least_squares.cpp" "src/core/CMakeFiles/rsm_core.dir/least_squares.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/least_squares.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/rsm_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/rsm_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/model.cpp.o.d"
  "/root/repo/src/core/omp.cpp" "src/core/CMakeFiles/rsm_core.dir/omp.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/omp.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/rsm_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/sobol.cpp" "src/core/CMakeFiles/rsm_core.dir/sobol.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/sobol.cpp.o.d"
  "/root/repo/src/core/solver_path.cpp" "src/core/CMakeFiles/rsm_core.dir/solver_path.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/solver_path.cpp.o.d"
  "/root/repo/src/core/somp.cpp" "src/core/CMakeFiles/rsm_core.dir/somp.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/somp.cpp.o.d"
  "/root/repo/src/core/stagewise.cpp" "src/core/CMakeFiles/rsm_core.dir/stagewise.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/stagewise.cpp.o.d"
  "/root/repo/src/core/star.cpp" "src/core/CMakeFiles/rsm_core.dir/star.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/star.cpp.o.d"
  "/root/repo/src/core/synthetic.cpp" "src/core/CMakeFiles/rsm_core.dir/synthetic.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/synthetic.cpp.o.d"
  "/root/repo/src/core/worst_case.cpp" "src/core/CMakeFiles/rsm_core.dir/worst_case.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/worst_case.cpp.o.d"
  "/root/repo/src/core/yield.cpp" "src/core/CMakeFiles/rsm_core.dir/yield.cpp.o" "gcc" "src/core/CMakeFiles/rsm_core.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/basis/CMakeFiles/rsm_basis.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rsm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rsm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
