# Empty compiler generated dependencies file for rsm_core.
# This may be replaced when dependencies are built.
