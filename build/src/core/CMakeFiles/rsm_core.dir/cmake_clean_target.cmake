file(REMOVE_RECURSE
  "librsm_core.a"
)
