# Empty dependencies file for rsm_circuits.
# This may be replaced when dependencies are built.
