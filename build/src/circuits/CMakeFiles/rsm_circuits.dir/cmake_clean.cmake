file(REMOVE_RECURSE
  "CMakeFiles/rsm_circuits.dir/corners.cpp.o"
  "CMakeFiles/rsm_circuits.dir/corners.cpp.o.d"
  "CMakeFiles/rsm_circuits.dir/opamp.cpp.o"
  "CMakeFiles/rsm_circuits.dir/opamp.cpp.o.d"
  "CMakeFiles/rsm_circuits.dir/process.cpp.o"
  "CMakeFiles/rsm_circuits.dir/process.cpp.o.d"
  "CMakeFiles/rsm_circuits.dir/ring_oscillator.cpp.o"
  "CMakeFiles/rsm_circuits.dir/ring_oscillator.cpp.o.d"
  "librsm_circuits.a"
  "librsm_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsm_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
