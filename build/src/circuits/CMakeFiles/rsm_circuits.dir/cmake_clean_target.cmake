file(REMOVE_RECURSE
  "librsm_circuits.a"
)
