# Empty compiler generated dependencies file for rsm_circuits.
# This may be replaced when dependencies are built.
