
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/corners.cpp" "src/circuits/CMakeFiles/rsm_circuits.dir/corners.cpp.o" "gcc" "src/circuits/CMakeFiles/rsm_circuits.dir/corners.cpp.o.d"
  "/root/repo/src/circuits/opamp.cpp" "src/circuits/CMakeFiles/rsm_circuits.dir/opamp.cpp.o" "gcc" "src/circuits/CMakeFiles/rsm_circuits.dir/opamp.cpp.o.d"
  "/root/repo/src/circuits/process.cpp" "src/circuits/CMakeFiles/rsm_circuits.dir/process.cpp.o" "gcc" "src/circuits/CMakeFiles/rsm_circuits.dir/process.cpp.o.d"
  "/root/repo/src/circuits/ring_oscillator.cpp" "src/circuits/CMakeFiles/rsm_circuits.dir/ring_oscillator.cpp.o" "gcc" "src/circuits/CMakeFiles/rsm_circuits.dir/ring_oscillator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/rsm_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rsm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rsm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
