file(REMOVE_RECURSE
  "librsm_linalg.a"
)
