file(REMOVE_RECURSE
  "CMakeFiles/rsm_linalg.dir/blas.cpp.o"
  "CMakeFiles/rsm_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/rsm_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/rsm_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/rsm_linalg.dir/eigen_sym.cpp.o"
  "CMakeFiles/rsm_linalg.dir/eigen_sym.cpp.o.d"
  "CMakeFiles/rsm_linalg.dir/incremental_qr.cpp.o"
  "CMakeFiles/rsm_linalg.dir/incremental_qr.cpp.o.d"
  "CMakeFiles/rsm_linalg.dir/matrix.cpp.o"
  "CMakeFiles/rsm_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/rsm_linalg.dir/qr.cpp.o"
  "CMakeFiles/rsm_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/rsm_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/rsm_linalg.dir/vector_ops.cpp.o.d"
  "librsm_linalg.a"
  "librsm_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsm_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
