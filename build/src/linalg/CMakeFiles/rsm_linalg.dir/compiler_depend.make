# Empty compiler generated dependencies file for rsm_linalg.
# This may be replaced when dependencies are built.
