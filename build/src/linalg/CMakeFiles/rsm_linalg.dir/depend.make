# Empty dependencies file for rsm_linalg.
# This may be replaced when dependencies are built.
