# Empty compiler generated dependencies file for high_sigma_sram.
# This may be replaced when dependencies are built.
