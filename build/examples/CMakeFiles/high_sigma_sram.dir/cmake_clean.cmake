file(REMOVE_RECURSE
  "CMakeFiles/high_sigma_sram.dir/high_sigma_sram.cpp.o"
  "CMakeFiles/high_sigma_sram.dir/high_sigma_sram.cpp.o.d"
  "high_sigma_sram"
  "high_sigma_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/high_sigma_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
