file(REMOVE_RECURSE
  "CMakeFiles/mini_spice.dir/mini_spice.cpp.o"
  "CMakeFiles/mini_spice.dir/mini_spice.cpp.o.d"
  "mini_spice"
  "mini_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mini_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
