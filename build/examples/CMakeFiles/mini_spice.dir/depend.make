# Empty dependencies file for mini_spice.
# This may be replaced when dependencies are built.
