file(REMOVE_RECURSE
  "CMakeFiles/opamp_modeling.dir/opamp_modeling.cpp.o"
  "CMakeFiles/opamp_modeling.dir/opamp_modeling.cpp.o.d"
  "opamp_modeling"
  "opamp_modeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opamp_modeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
