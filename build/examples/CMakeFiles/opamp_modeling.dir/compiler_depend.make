# Empty compiler generated dependencies file for opamp_modeling.
# This may be replaced when dependencies are built.
