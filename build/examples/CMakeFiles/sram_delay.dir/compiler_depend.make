# Empty compiler generated dependencies file for sram_delay.
# This may be replaced when dependencies are built.
