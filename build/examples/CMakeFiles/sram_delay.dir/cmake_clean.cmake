file(REMOVE_RECURSE
  "CMakeFiles/sram_delay.dir/sram_delay.cpp.o"
  "CMakeFiles/sram_delay.dir/sram_delay.cpp.o.d"
  "sram_delay"
  "sram_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sram_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
