#include "circuits/opamp.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace rsm::circuits {
namespace {

OpAmpConfig small_config() {
  OpAmpConfig cfg;
  cfg.num_variables = 45;  // 38 structural + a few parasitics
  return cfg;
}

class OpAmpTest : public ::testing::Test {
 protected:
  OpAmpWorkload workload_{small_config()};
};

TEST_F(OpAmpTest, NominalMetricsInDesignRange) {
  const OpAmpMetrics& m = workload_.nominal();
  EXPECT_GT(m.gain_db, 55.0);   // healthy two-stage gain
  EXPECT_LT(m.gain_db, 100.0);
  EXPECT_GT(m.bandwidth_hz, 1e3);
  EXPECT_LT(m.bandwidth_hz, 1e6);
  EXPECT_GT(m.power_w, 5e-5);
  EXPECT_LT(m.power_w, 2e-3);
  // Systematic offset of the balanced topology is ~0.
  EXPECT_LT(std::abs(m.offset_v), 2e-3);
}

TEST_F(OpAmpTest, EvaluateIsDeterministic) {
  Rng rng(1);
  const std::vector<Real> dy = rng.normal_vector(workload_.num_variables());
  const OpAmpMetrics a = workload_.evaluate(dy);
  const OpAmpMetrics b = workload_.evaluate(dy);
  EXPECT_EQ(a.gain_db, b.gain_db);
  EXPECT_EQ(a.bandwidth_hz, b.bandwidth_hz);
  EXPECT_EQ(a.power_w, b.power_w);
  EXPECT_EQ(a.offset_v, b.offset_v);
}

TEST_F(OpAmpTest, OffsetTracksInputPairMismatch) {
  // Raising Vth of M1 (variable index 6) makes M1 weaker; the input must be
  // raised on inp to rebalance -> offset magnitude ~ dVth, sign opposite
  // between M1 and M2.
  std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()), 0.0);
  dy[6] = 2.0;  // +2 sigma on M1 dVth
  const Real offset_m1 = workload_.evaluate(dy).offset_v;
  dy[6] = 0.0;
  dy[10] = 2.0;  // +2 sigma on M2 dVth
  const Real offset_m2 = workload_.evaluate(dy).offset_v;
  EXPECT_GT(std::abs(offset_m1), 1e-3);  // couple of mV at 2 sigma
  EXPECT_GT(std::abs(offset_m2), 1e-3);
  EXPECT_LT(offset_m1 * offset_m2, 0.0);  // opposite signs
  // And symmetric in magnitude.
  EXPECT_NEAR(std::abs(offset_m1), std::abs(offset_m2),
              0.3 * std::abs(offset_m1));
}

TEST_F(OpAmpTest, PowerTracksBiasStrength) {
  // Lowering M8's Vth at fixed Ibias barely changes power (current is set
  // by the source), but a global KP increase on the mirror devices also
  // leaves currents fixed; instead check power responds to Vth of M7/M5
  // mirror ratio shifts via lambda effects only weakly — so simply verify
  // power stays within a sane band under large variation.
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const std::vector<Real> dy = rng.normal_vector(workload_.num_variables());
    const Real p = workload_.evaluate(dy).power_w;
    EXPECT_GT(p, 1e-4);
    EXPECT_LT(p, 6e-4);
  }
}

TEST_F(OpAmpTest, ParasiticVariablesDoNotMoveDcMetrics) {
  // Variables >= 38 only touch capacitors/Rz: gain (low-f), power and
  // offset must be bit-identical; bandwidth must move.
  std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()), 0.0);
  const OpAmpMetrics base = workload_.evaluate(dy);
  for (Index i = 38; i < workload_.num_variables(); ++i)
    dy[static_cast<std::size_t>(i)] = 3.0;
  const OpAmpMetrics perturbed = workload_.evaluate(dy);
  // Rz sits in the DC netlist (leaking only through gmin), so DC metrics
  // move at most at the 1e-9 relative level; bandwidth moves for real.
  EXPECT_NEAR(perturbed.power_w, base.power_w, 1e-9 * base.power_w);
  EXPECT_NEAR(perturbed.offset_v, base.offset_v, 1e-9);
  EXPECT_NEAR(perturbed.gain_db, base.gain_db, 1e-6);
  EXPECT_GT(std::abs(perturbed.bandwidth_hz - base.bandwidth_hz),
            1e-4 * base.bandwidth_hz);
}

TEST_F(OpAmpTest, GlobalVthShiftsMoveMetricsSmoothly) {
  // +/- 1 sigma global NMOS Vth: metrics move but stay finite and sane.
  std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()), 0.0);
  dy[0] = 1.0;
  const OpAmpMetrics up = workload_.evaluate(dy);
  dy[0] = -1.0;
  const OpAmpMetrics down = workload_.evaluate(dy);
  EXPECT_NE(up.gain_db, down.gain_db);
  EXPECT_TRUE(std::isfinite(up.bandwidth_hz));
  EXPECT_TRUE(std::isfinite(down.bandwidth_hz));
}

TEST_F(OpAmpTest, MonteCarloDistributionsAreReasonable) {
  Rng rng(42);
  const int n = 40;
  std::vector<Real> gains, offsets;
  for (int i = 0; i < n; ++i) {
    const OpAmpMetrics m =
        workload_.evaluate(rng.normal_vector(workload_.num_variables()));
    gains.push_back(m.gain_db);
    offsets.push_back(m.offset_v);
  }
  // Gain spread: fractions of a dB to a few dB.
  EXPECT_GT(stddev(gains), 0.01);
  EXPECT_LT(stddev(gains), 5.0);
  // Offset: mV-scale spread centered near zero.
  EXPECT_GT(stddev(offsets), 5e-4);
  EXPECT_LT(stddev(offsets), 2e-2);
  EXPECT_LT(std::abs(mean(offsets)), 6e-3);
}

TEST(OpAmp, VariableCountValidation) {
  OpAmpConfig cfg;
  cfg.num_variables = 10;  // below the 38 structural minimum
  EXPECT_THROW(OpAmpWorkload{cfg}, Error);
}

TEST(OpAmp, WrongSampleSizeThrows) {
  OpAmpConfig cfg;
  cfg.num_variables = 45;
  const OpAmpWorkload w(cfg);
  EXPECT_THROW((void)w.evaluate(std::vector<Real>(10, 0.0)), Error);
}

TEST_F(OpAmpTest, StepResponseTracksInput) {
  const std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()),
                             0.0);
  const auto sr = workload_.evaluate_step_response(dy, 0.2);
  // Follower settles to cm + step/2.
  EXPECT_NEAR(sr.final_value,
              workload_.config().input_cm + 0.1, 5e-3);
  EXPECT_GT(sr.settling_time, 0.0);
  EXPECT_LT(sr.settling_time, 2e-7);
}

TEST_F(OpAmpTest, SlewRateNearTailCurrentOverCc) {
  // Classic two-stage result: SR = I_tail / Cc (slewing is limited by the
  // first stage steering its whole tail current into the Miller cap).
  const std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()),
                             0.0);
  const auto sr = workload_.evaluate_step_response(dy, 0.2);
  const Real theory =
      2 * workload_.config().ibias / workload_.config().cc;  // I_tail = 2*Ib
  EXPECT_NEAR(sr.slew_rate / theory, 1.0, 0.35);
}

TEST_F(OpAmpTest, BiggerMillerCapSlowsSlewing) {
  std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()), 0.0);
  const Real sr_nominal = workload_.evaluate_step_response(dy).slew_rate;
  circuits::OpAmpConfig big_cc = workload_.config();
  big_cc.cc *= 2;
  const circuits::OpAmpWorkload slow(big_cc);
  std::vector<Real> dy2(static_cast<std::size_t>(slow.num_variables()), 0.0);
  const Real sr_slow = slow.evaluate_step_response(dy2).slew_rate;
  EXPECT_LT(sr_slow, 0.7 * sr_nominal);
}

TEST_F(OpAmpTest, StepSizeValidation) {
  const std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()),
                             0.0);
  EXPECT_THROW((void)workload_.evaluate_step_response(dy, 0.0), Error);
  EXPECT_THROW((void)workload_.evaluate_step_response(dy, 1.0), Error);
}

TEST(OpAmp, MetricAccessors) {
  OpAmpMetrics m;
  m.gain_db = 1;
  m.bandwidth_hz = 2;
  m.power_w = 3;
  m.offset_v = 4;
  EXPECT_EQ(m.get(OpAmpMetric::kGain), 1);
  EXPECT_EQ(m.get(OpAmpMetric::kBandwidth), 2);
  EXPECT_EQ(m.get(OpAmpMetric::kPower), 3);
  EXPECT_EQ(m.get(OpAmpMetric::kOffset), 4);
  EXPECT_STREQ(opamp_metric_name(OpAmpMetric::kGain), "Gain");
  EXPECT_STREQ(opamp_metric_name(OpAmpMetric::kOffset), "Offset");
}

}  // namespace
}  // namespace rsm::circuits
