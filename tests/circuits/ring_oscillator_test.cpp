#include "circuits/ring_oscillator.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "stats/descriptive.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm::circuits {
namespace {

RingOscillatorConfig small_config() {
  RingOscillatorConfig cfg;
  cfg.num_stages = 3;
  cfg.num_variables = 16;
  return cfg;
}

class RingTest : public ::testing::Test {
 protected:
  RingOscillatorWorkload ring_{small_config()};
};

TEST_F(RingTest, NominalFrequencyInPlausibleBand) {
  // 3 stages of ~RC = 120 ps: hundreds of MHz to a few GHz.
  EXPECT_GT(ring_.nominal(), 1e8);
  EXPECT_LT(ring_.nominal(), 2e10);
}

TEST_F(RingTest, Deterministic) {
  Rng rng(1);
  const std::vector<Real> dy = rng.normal_vector(ring_.num_variables());
  EXPECT_EQ(ring_.evaluate(dy), ring_.evaluate(dy));
}

TEST_F(RingTest, WeakerDevicesSlowTheRing) {
  std::vector<Real> dy(static_cast<std::size_t>(ring_.num_variables()), 0.0);
  dy[0] = 2.0;  // +2 sigma global Vth: weaker drive
  const Real slow = ring_.evaluate(dy);
  dy[0] = -2.0;
  const Real fast = ring_.evaluate(dy);
  EXPECT_LT(slow, ring_.nominal());
  EXPECT_GT(fast, ring_.nominal());
}

TEST_F(RingTest, StrongerKpSpeedsUp) {
  std::vector<Real> dy(static_cast<std::size_t>(ring_.num_variables()), 0.0);
  dy[1] = 2.0;
  EXPECT_GT(ring_.evaluate(dy), ring_.nominal());
}

TEST_F(RingTest, MoreCapacitanceSlowsDown) {
  std::vector<Real> dy(static_cast<std::size_t>(ring_.num_variables()), 0.0);
  dy[2] = 3.0;  // +9% stage cap
  EXPECT_LT(ring_.evaluate(dy), ring_.nominal());
}

TEST(RingOscillator, MoreStagesLowerFrequency) {
  RingOscillatorConfig c3 = small_config();
  RingOscillatorConfig c7 = small_config();
  c7.num_stages = 7;
  c7.num_variables = 3 + 2 * 7;
  const RingOscillatorWorkload r3(c3), r7(c7);
  // Frequency ~ 1/(2 S t_stage): 7 stages ~ 3/7 of the 3-stage frequency.
  EXPECT_NEAR(r7.nominal() / r3.nominal(), 3.0 / 7.0, 0.15);
}

TEST(RingOscillator, ConfigValidation) {
  RingOscillatorConfig cfg;
  cfg.num_stages = 4;  // even
  EXPECT_THROW(RingOscillatorWorkload{cfg}, Error);
  cfg.num_stages = 5;
  cfg.num_variables = 5;  // too few
  EXPECT_THROW(RingOscillatorWorkload{cfg}, Error);
}

TEST(RingOscillator, SparseModelOfFrequencyValidates) {
  // End-to-end: the third workload through the modeling pipeline. The
  // frequency depends on ALL stage variables roughly equally (they average
  // around the loop) plus the globals — denser than the SRAM but still
  // low-dimensional.
  RingOscillatorConfig cfg;
  cfg.num_stages = 3;
  cfg.num_variables = 40;  // adds a parasitic tail
  const RingOscillatorWorkload ring(cfg);
  const Index n = ring.num_variables();
  Rng rng(7);
  const Index k_train = 80, k_test = 150;
  const Matrix train = monte_carlo_normal(k_train, n, rng);
  const Matrix test = monte_carlo_normal(k_test, n, rng);
  std::vector<Real> f_train(static_cast<std::size_t>(k_train));
  std::vector<Real> f_test(static_cast<std::size_t>(k_test));
  for (Index k = 0; k < k_train; ++k)
    f_train[static_cast<std::size_t>(k)] = ring.evaluate(train.row(k));
  for (Index k = 0; k < k_test; ++k)
    f_test[static_cast<std::size_t>(k)] = ring.evaluate(test.row(k));

  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  BuildOptions opt;
  opt.max_lambda = 20;
  const BuildReport report = build_model(dict, train, f_train, opt);
  EXPECT_LT(validate_model(report.model, test, f_test), 0.35);
  // The selected support includes the global Vth/KP variables (columns 1,2).
  bool has_vth = false, has_kp = false;
  for (const ModelTerm& t : report.model.terms()) {
    if (t.basis_index == 1) has_vth = true;
    if (t.basis_index == 2) has_kp = true;
  }
  EXPECT_TRUE(has_vth);
  EXPECT_TRUE(has_kp);
}

}  // namespace
}  // namespace rsm::circuits
