#include "circuits/corners.hpp"

#include <gtest/gtest.h>

#include "circuits/ring_oscillator.hpp"
#include "sram/sram.hpp"

namespace rsm::circuits {
namespace {

TEST(Corners, Names) {
  EXPECT_STREQ(corner_name(Corner::kTypical), "TT");
  EXPECT_STREQ(corner_name(Corner::kSlowSlow), "SS");
  EXPECT_STREQ(corner_name(Corner::kFastFast), "FF");
  EXPECT_STREQ(corner_name(Corner::kSlowFast), "SF");
  EXPECT_STREQ(corner_name(Corner::kFastSlow), "FS");
}

TEST(Corners, TypicalIsAllZero) {
  const std::vector<Real> dy = opamp_corner(Corner::kTypical, 20);
  for (Real v : dy) EXPECT_EQ(v, 0.0);
}

TEST(Corners, OnlyGlobalsAreSet) {
  const std::vector<Real> dy = opamp_corner(Corner::kSlowSlow, 50, 3.0);
  for (std::size_t i = 4; i < dy.size(); ++i) EXPECT_EQ(dy[i], 0.0);
  EXPECT_EQ(dy[0], 3.0);   // NMOS Vth up
  EXPECT_EQ(dy[2], -3.0);  // NMOS strength down
}

TEST(Corners, RingOscillatorOrdersFfTtSs) {
  // The canonical sanity check: frequency(FF) > frequency(TT) >
  // frequency(SS). The ring's globals are dy[0]=Vth, dy[1]=KP — use the
  // SRAM-style corner layout.
  RingOscillatorConfig cfg;
  cfg.num_stages = 3;
  cfg.num_variables = 16;
  const RingOscillatorWorkload ring(cfg);
  const Real f_tt =
      ring.evaluate(sram_corner(Corner::kTypical, ring.num_variables()));
  const Real f_ss =
      ring.evaluate(sram_corner(Corner::kSlowSlow, ring.num_variables()));
  const Real f_ff =
      ring.evaluate(sram_corner(Corner::kFastFast, ring.num_variables()));
  EXPECT_GT(f_ff, f_tt);
  EXPECT_GT(f_tt, f_ss);
  // Corner spread at 3 sigma is substantial (>5% each side).
  EXPECT_GT(f_ff / f_ss, 1.1);
}

TEST(Corners, SramSlowCornerSlowsRead) {
  sram::SramConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  const sram::SramWorkload sramw(cfg);
  const Real d_tt =
      sramw.evaluate(sram_corner(Corner::kTypical, sramw.num_variables()));
  const Real d_ss =
      sramw.evaluate(sram_corner(Corner::kSlowSlow, sramw.num_variables()));
  const Real d_ff =
      sramw.evaluate(sram_corner(Corner::kFastFast, sramw.num_variables()));
  EXPECT_GT(d_ss, d_tt);
  EXPECT_LT(d_ff, d_tt);
}

TEST(Corners, Validation) {
  EXPECT_THROW((void)opamp_corner(Corner::kTypical, 2), Error);
  EXPECT_THROW((void)sram_corner(Corner::kTypical, 1), Error);
  EXPECT_THROW((void)opamp_corner(Corner::kSlowSlow, 10, -1.0), Error);
}

}  // namespace
}  // namespace rsm::circuits
