// Durable campaign layer: crash-safe checkpointing, the resume determinism
// pin (interrupt-at-k + resume == uninterrupted, bit for bit), cooperative
// deadlines, graceful truncation, and checkpoint I/O failure resilience.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/omp.hpp"
#include "io/atomic_file.hpp"
#include "io/checkpoint.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/cancellation.hpp"
#include "util/errors.hpp"

namespace rsm {
namespace {

constexpr Index kRows = 10;
constexpr Index kCols = 3;

std::string test_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "rsm_campaign_" + name;
  std::remove(path.c_str());
  return path;
}

Matrix make_samples(std::uint64_t seed = 11) {
  Rng rng(seed);
  return monte_carlo_normal(kRows, kCols, rng);
}

/// Pure deterministic metric of one row: identical inputs give bit-identical
/// outputs, which is what the resume determinism pin measures.
Real row_metric(std::span<const Real> x) {
  Real v = 0;
  for (std::size_t j = 0; j < x.size(); ++j)
    v += static_cast<Real>(j + 1) * x[j] * x[j] + 0.25 * x[j];
  return v;
}

SampleEvaluator pure_evaluator() {
  return [](std::span<const Real> x, int) { return row_metric(x); };
}

/// Injected faults shared by the determinism tests: row-hash chosen, with
/// at least one persistent fault (quarantine path) and one transient fault
/// (retry path) among the kRows rows, so resume has to replay every record
/// type. The seed is searched deterministically at runtime.
FaultInjector::Options mixed_fault_plan() {
  for (std::uint64_t seed = 1; seed < 65536; ++seed) {
    FaultInjector::Options options{
        .fault_rate = 0.3, .persistent_fraction = 0.5, .seed = seed};
    const FaultInjector injector(options);
    bool persistent = false;
    bool transient = false;
    for (Index row = 0; row < kRows; ++row) {
      if (injector.kind(row) == FaultKind::kNone) continue;
      (injector.is_persistent(row) ? persistent : transient) = true;
    }
    if (persistent && transient) return options;
  }
  ADD_FAILURE() << "no seed mixes persistent and transient faults";
  return {};
}

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.values.size(), b.values.size());
  ASSERT_EQ(a.sample_indices, b.sample_indices);
  EXPECT_EQ(std::memcmp(a.values.data(), b.values.data(),
                        a.values.size() * sizeof(Real)),
            0);
  ASSERT_EQ(a.samples.rows(), b.samples.rows());
  ASSERT_EQ(a.samples.cols(), b.samples.cols());
  EXPECT_EQ(std::memcmp(a.samples.data(), b.samples.data(),
                        static_cast<std::size_t>(a.samples.size()) *
                            sizeof(Real)),
            0);
  EXPECT_EQ(a.report.succeeded, b.report.succeeded);
  EXPECT_EQ(a.report.quarantined.size(), b.report.quarantined.size());
}

TEST(DurableCampaignTest, FreshRunLogsOneRecordPerRowInOrder) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.checkpoint.path = test_path("fresh.ckpt");
  const CampaignResult result =
      run_campaign(samples, pure_evaluator(), options);

  EXPECT_EQ(result.report.attempted, kRows);
  EXPECT_EQ(result.report.checkpoint_records, kRows);
  EXPECT_FALSE(result.report.truncated);
  EXPECT_FALSE(result.report.checkpoint_failed);
  EXPECT_GE(result.report.checkpoint_flushes, 1);

  const io::CheckpointData data =
      io::load_checkpoint(options.checkpoint.path, io::LoadMode::kStrict);
  EXPECT_EQ(data.header.total_rows, static_cast<std::uint64_t>(kRows));
  ASSERT_EQ(data.records.size(), static_cast<std::size_t>(kRows));
  for (Index r = 0; r < kRows; ++r) {
    const io::CheckpointRecord& record =
        data.records[static_cast<std::size_t>(r)];
    EXPECT_EQ(record.sample, r);
    EXPECT_EQ(record.type, io::CheckpointRecord::Type::kSample);
    EXPECT_EQ(record.value,
              result.values[static_cast<std::size_t>(r)]);  // bit-exact
  }
}

TEST(DurableCampaignTest, ResumeAfterInterruptIsBitIdentical) {
  const Matrix samples = make_samples();

  CampaignOptions base;
  base.max_attempts = 2;
  base.min_success_fraction = 0.5;
  base.fault_injector = FaultInjector(mixed_fault_plan());
  const CampaignResult uninterrupted =
      run_campaign(samples, pure_evaluator(), base);
  ASSERT_GT(uninterrupted.report.quarantined.size(), 0u)
      << "fixture must exercise the quarantine-record replay path";

  // Interrupt while evaluating row k, for every k whose evaluator actually
  // runs (persistently-faulted rows never reach it) short of the last row.
  const FaultInjector injector(base.fault_injector.options());
  for (Index k = 0; k < kRows - 1; ++k) {
    if (injector.is_persistent(k)) continue;
    CampaignOptions options = base;
    options.checkpoint.path =
        test_path("interrupt_at_" + std::to_string(k) + ".ckpt");

    // Interrupted leg: the evaluator requests cancellation while computing
    // row k (identified via the span aliasing the sample matrix); the
    // campaign drains at the next between-sample check.
    CancellationSource source;
    options.cancel = source.token();
    const SampleEvaluator interrupting = [&](std::span<const Real> x, int) {
      if (x.data() == samples.row(k).data()) source.request_cancel();
      return row_metric(x);
    };
    const CampaignResult partial =
        run_campaign(samples, interrupting, options);
    EXPECT_TRUE(partial.report.truncated);
    EXPECT_LT(partial.report.attempted, kRows);

    // Resumed leg: same options, healthy token. Must replay the durable
    // prefix without re-evaluating it and finish bit-identically.
    CampaignOptions resume_options = base;
    resume_options.checkpoint.path = options.checkpoint.path;
    Index reevaluated = 0;
    const SampleEvaluator counting = [&](std::span<const Real> x, int) {
      ++reevaluated;
      return row_metric(x);
    };
    const CampaignResult resumed =
        resume_campaign(samples, counting, resume_options);
    EXPECT_EQ(resumed.report.resumed_samples, partial.report.attempted);
    EXPECT_FALSE(resumed.report.truncated);
    EXPECT_EQ(resumed.report.attempted, kRows);
    EXPECT_LE(reevaluated, kRows - partial.report.attempted + 1);
    expect_bit_identical(resumed, uninterrupted);

    // The acceptance pin extends to the models: identical survivor data
    // must fit to bit-identical coefficients.
    const OmpSolver solver;
    const SolverPath fit_resumed =
        solver.fit_path(resumed.samples, resumed.values, kCols);
    const SolverPath fit_base = solver.fit_path(
        uninterrupted.samples, uninterrupted.values, kCols);
    EXPECT_EQ(fit_resumed.selection_order, fit_base.selection_order);
    EXPECT_EQ(fit_resumed.coefficients, fit_base.coefficients);
  }
}

TEST(DurableCampaignTest, ResumeOfCompleteRunReevaluatesNothing) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.checkpoint.path = test_path("complete.ckpt");
  const CampaignResult full =
      run_campaign(samples, pure_evaluator(), options);

  const SampleEvaluator must_not_run = [](std::span<const Real>, int) -> Real {
    ADD_FAILURE() << "a fully-checkpointed campaign re-evaluated a row";
    return 0;
  };
  const CampaignResult resumed =
      resume_campaign(samples, must_not_run, options);
  EXPECT_EQ(resumed.report.resumed_samples, kRows);
  expect_bit_identical(resumed, full);
}

TEST(DurableCampaignTest, ResumeRecoversTornTail) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.checkpoint.path = test_path("torn.ckpt");

  CancellationSource source;
  options.cancel = source.token();
  Index evaluated = 0;
  const SampleEvaluator interrupting = [&](std::span<const Real> x, int) {
    if (evaluated++ == 5) source.request_cancel();
    return row_metric(x);
  };
  (void)run_campaign(samples, interrupting, options);

  // Simulate the crash artifact: a partial record appended after the last
  // durable one.
  std::string bytes = io::read_file_bytes(options.checkpoint.path);
  bytes.append("\x01\x14\x00\x00", 4);
  io::atomic_write_file(options.checkpoint.path, bytes);

  CampaignOptions resume_options;
  resume_options.checkpoint.path = options.checkpoint.path;
  const CampaignResult resumed =
      resume_campaign(samples, pure_evaluator(), resume_options);
  const CampaignResult reference = run_campaign(samples, pure_evaluator());
  expect_bit_identical(resumed, reference);
}

TEST(DurableCampaignTest, ResumeRejectsDifferentSampleMatrix) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.checkpoint.path = test_path("wrong_matrix.ckpt");
  (void)run_campaign(samples, pure_evaluator(), options);

  Matrix other = samples;
  other(3, 1) += 1e-9;  // any bit difference must be caught
  try {
    (void)resume_campaign(other, pure_evaluator(), options);
    FAIL() << "resume should have rejected a different matrix";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("different sample matrix"),
              std::string::npos);
  }
}

TEST(DurableCampaignTest, ResumeRejectsDifferentConfiguration) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.max_attempts = 3;
  options.checkpoint.path = test_path("wrong_config.ckpt");
  (void)run_campaign(samples, pure_evaluator(), options);

  CampaignOptions changed = options;
  changed.max_attempts = 2;  // changes the retry semantics -> different run
  try {
    (void)resume_campaign(samples, pure_evaluator(), changed);
    FAIL() << "resume should have rejected a different configuration";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("different campaign configuration"),
              std::string::npos);
  }
}

TEST(DurableCampaignTest, ResumeRejectsMissingAndCorruptCheckpoints) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.checkpoint.path = test_path("missing.ckpt");
  EXPECT_THROW((void)resume_campaign(samples, pure_evaluator(), options),
               IoError);

  // A bit flip inside a durable record is corruption, not a torn tail:
  // resume must refuse rather than silently drop data.
  (void)run_campaign(samples, pure_evaluator(), options);
  std::string bytes = io::read_file_bytes(options.checkpoint.path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 4);
  io::atomic_write_file(options.checkpoint.path, bytes);
  EXPECT_THROW((void)resume_campaign(samples, pure_evaluator(), options),
               IoError);
}

TEST(DurableCampaignTest, PerSampleWatchdogQuarantinesHungSample) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.max_attempts = 2;
  options.sample_deadline_seconds = 0.02;

  // Row 2 hangs (a Newton loop that never converges); everything else is
  // instant. The hung row's evaluator polls the ambient check site exactly
  // like the instrumented solver loops do; the evaluator's span aliases the
  // sample matrix, so the row is identified by its data pointer.
  const SampleEvaluator hang_row2 = [&](std::span<const Real> x, int) {
    if (x.data() == samples.row(2).data()) {
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        check_cooperative_stop("test.hung_sample");
      }
    }
    return row_metric(x);
  };
  const CampaignResult result = run_campaign(samples, hang_row2, options);

  EXPECT_FALSE(result.report.truncated);
  EXPECT_EQ(result.report.succeeded, kRows - 1);
  ASSERT_EQ(result.report.quarantined.size(), 1u);
  EXPECT_EQ(result.report.quarantined[0].sample, 2);
  EXPECT_EQ(result.report.quarantined[0].code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(result.report.error_count(ErrorCode::kDeadlineExceeded),
            static_cast<Index>(options.max_attempts));
}

TEST(DurableCampaignTest, GlobalBudgetReturnsBestSoFarTruncated) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.checkpoint.path = test_path("budget.ckpt");
  options.time_budget_seconds = 0.05;

  // Every sample costs ~15ms of cooperative work: the budget admits a few
  // rows, then the next check site unwinds and the campaign drains.
  const SampleEvaluator slow = [](std::span<const Real> x, int) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(15);
    while (std::chrono::steady_clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      check_cooperative_stop("test.slow_sample");
    }
    return row_metric(x);
  };
  const CampaignResult result = run_campaign(samples, slow, options);

  EXPECT_TRUE(result.report.truncated);
  EXPECT_LT(result.report.attempted, kRows);
  EXPECT_EQ(result.values.size(),
            static_cast<std::size_t>(result.report.succeeded));
  // Best-so-far survivors are durable: the checkpoint holds exactly the
  // evaluated prefix and a resume can finish the run later.
  const io::CheckpointData data = io::load_checkpoint(
      options.checkpoint.path, io::LoadMode::kStrict);
  EXPECT_EQ(data.records.size(),
            static_cast<std::size_t>(result.report.attempted));
}

TEST(DurableCampaignTest, CheckpointFailureNeverAbortsTheCampaign) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.checkpoint.path = test_path("io_dead.ckpt");
  // Every physical write faults; even the writer's recovery rewrite fails,
  // so durability is abandoned — but the science continues.
  options.checkpoint.fs_faults =
      FsFaultInjector({.fault_rate = 1.0, .seed = 5});
  const CampaignResult result =
      run_campaign(samples, pure_evaluator(), options);

  EXPECT_TRUE(result.report.checkpoint_failed);
  EXPECT_GE(result.report.error_count(ErrorCode::kIoError), 1);
  EXPECT_EQ(result.report.succeeded, kRows);
  EXPECT_FALSE(result.report.truncated);

  const CampaignResult reference = run_campaign(samples, pure_evaluator());
  expect_bit_identical(result, reference);
}

TEST(DurableCampaignTest, WriterSelfHealKeepsLogLoadable) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.checkpoint.path = test_path("self_heal.ckpt");
  // A schedule whose first fault hits an append (op >= 1), so recovery
  // rewrites (whose fresh files restart at op 0) always succeed.
  bool found = false;
  for (std::uint64_t seed = 1; seed < 65536 && !found; ++seed) {
    FsFaultInjector candidate({.fault_rate = 0.2, .seed = seed});
    for (std::uint64_t op = 0; op < static_cast<std::uint64_t>(kRows); ++op) {
      if (candidate.kind(op) != FsFaultKind::kNone) {
        if (op >= 1) {
          options.checkpoint.fs_faults = candidate;
          found = true;
        }
        break;
      }
    }
  }
  ASSERT_TRUE(found);

  const CampaignResult result =
      run_campaign(samples, pure_evaluator(), options);
  EXPECT_FALSE(result.report.checkpoint_failed);
  EXPECT_GE(result.report.checkpoint_rewrites, 1);
  const io::CheckpointData data = io::load_checkpoint(
      options.checkpoint.path, io::LoadMode::kStrict);
  EXPECT_EQ(data.records.size(), static_cast<std::size_t>(kRows));
}

TEST(DurableCampaignTest, QuarantineReasonsAreBounded) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.max_attempts = 1;
  options.min_success_fraction = 0;
  options.checkpoint.path = test_path("long_reason.ckpt");
  const SampleEvaluator always_fails =
      [](std::span<const Real>, int) -> Real {
    throw ConvergenceError(std::string(4096, 'x'), 100, "test");
  };
  const CampaignResult result =
      run_campaign(samples, always_fails, options);

  ASSERT_EQ(result.report.quarantined.size(), static_cast<std::size_t>(kRows));
  for (const QuarantinedSample& q : result.report.quarantined)
    EXPECT_LE(q.reason.size(), kMaxQuarantineReasonLength);
  const io::CheckpointData data = io::load_checkpoint(
      options.checkpoint.path, io::LoadMode::kStrict);
  for (const io::CheckpointRecord& record : data.records)
    EXPECT_LE(record.reason.size(), io::kMaxReasonLength);
}

TEST(DurableCampaignTest, ReportJsonCarriesDurabilityFields) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.checkpoint.path = test_path("json.ckpt");
  const CampaignResult result =
      run_campaign(samples, pure_evaluator(), options);

  const std::string json = result.report.to_json().dump();
  EXPECT_NE(json.find("\"truncated\":false"), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint\""), std::string::npos);
  EXPECT_NE(json.find("\"records\":10"), std::string::npos);
  EXPECT_NE(json.find("\"deadline-exceeded\""), std::string::npos);
  EXPECT_NE(json.find("\"io-error\""), std::string::npos);
}

}  // namespace
}  // namespace rsm
