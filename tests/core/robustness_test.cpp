// Failure injection and degenerate-input behaviour across the solver stack:
// the library must fail loudly (rsm::Error) or degrade gracefully — never
// crash, loop, or return silently wrong shapes.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/cross_validation.hpp"
#include "core/lar.hpp"
#include "core/lasso_cd.hpp"
#include "core/omp.hpp"
#include "core/pipeline.hpp"
#include "core/star.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

Matrix random(Index k, Index m, std::uint64_t seed) {
  Rng rng(seed);
  return monte_carlo_normal(k, m, rng);
}

TEST(Robustness, SizeMismatchThrowsEverywhere) {
  const Matrix g = random(20, 10, 1);
  const std::vector<Real> f_bad(19, 1.0);
  EXPECT_THROW((void)OmpSolver().fit_path(g, f_bad, 5), Error);
  EXPECT_THROW((void)StarSolver().fit_path(g, f_bad, 5), Error);
  EXPECT_THROW((void)LarSolver().fit_path(g, f_bad, 5), Error);
  EXPECT_THROW((void)LassoCdSolver().fit_path(g, f_bad, 5), Error);
}

TEST(Robustness, NonPositiveMaxStepsThrows) {
  const Matrix g = random(20, 10, 2);
  const std::vector<Real> f(20, 1.0);
  EXPECT_THROW((void)OmpSolver().fit_path(g, f, 0), Error);
  EXPECT_THROW((void)LarSolver().fit_path(g, f, -3), Error);
}

TEST(Robustness, AllZeroDesignMatrix) {
  const Matrix g(30, 8);  // all zeros
  Rng rng(3);
  const std::vector<Real> f = rng.normal_vector(30);
  // No usable columns: paths come back empty rather than dividing by zero.
  EXPECT_EQ(OmpSolver().fit_path(g, f, 4).num_steps(), 0);
  EXPECT_EQ(LarSolver().fit_path(g, f, 4).num_steps(), 0);
  const SolverPath star = StarSolver().fit_path(g, f, 4);
  EXPECT_EQ(star.num_steps(), 0);
}

TEST(Robustness, ConstantColumnOnlyProblemIsSolvable) {
  // Single usable direction: every solver should find it and stop.
  Matrix g(25, 3);
  for (Index r = 0; r < 25; ++r) g(r, 1) = 1.0;  // only column 1 non-zero
  std::vector<Real> f(25, 2.5);
  const SolverPath omp = OmpSolver().fit_path(g, f, 3);
  ASSERT_GE(omp.num_steps(), 1);
  EXPECT_EQ(omp.selection_order[0], 1);
  EXPECT_NEAR(omp.coefficients[0][0], 2.5, 1e-12);
  EXPECT_LT(omp.residual_norms[0], 1e-10);
}

TEST(Robustness, MoreStepsThanRankTerminatesCleanly) {
  // Rank-3 matrix disguised as 10 columns: solvers must stop at rank.
  Rng rng(4);
  const Matrix basis = random(40, 3, 5);
  Matrix g(40, 10);
  for (Index j = 0; j < 10; ++j) {
    std::vector<Real> col(40, 0.0);
    for (Index r = 0; r < 40; ++r)
      col[static_cast<std::size_t>(r)] =
          basis(r, j % 3) + 0.5 * basis(r, (j + 1) % 3);
    g.set_col(j, col);
  }
  const std::vector<Real> f = rng.normal_vector(40);
  const SolverPath omp = OmpSolver().fit_path(g, f, 10);
  EXPECT_LE(omp.num_steps(), 3);
  const SolverPath lar = LarSolver().fit_path(g, f, 10);
  EXPECT_LE(lar.num_steps(), 4);
}

TEST(Robustness, HugeValuesDoNotOverflow) {
  Rng rng(6);
  Matrix g = random(30, 12, 7);
  std::vector<Real> f = rng.normal_vector(30);
  for (Real& v : f) v *= 1e150;
  const SolverPath path = OmpSolver().fit_path(g, f, 5);
  ASSERT_GE(path.num_steps(), 1);
  for (const auto& coef : path.coefficients)
    for (Real c : coef) EXPECT_TRUE(std::isfinite(c));
}

TEST(Robustness, TinyValuesKeepPrecision) {
  Rng rng(8);
  Matrix g = random(30, 12, 9);
  std::vector<Real> alpha(12, 0.0);
  alpha[4] = 1e-150;
  std::vector<Real> f(30, 0.0);
  for (Index r = 0; r < 30; ++r) f[static_cast<std::size_t>(r)] =
      alpha[4] * g(r, 4);
  const SolverPath path = OmpSolver().fit_path(g, f, 1);
  ASSERT_EQ(path.num_steps(), 1);
  EXPECT_EQ(path.selection_order[0], 4);
  EXPECT_NEAR(path.coefficients[0][0] / 1e-150, 1.0, 1e-9);
}

TEST(Robustness, CvRejectsDegenerateLambda) {
  const Matrix g = random(40, 20, 10);
  Rng rng(11);
  const std::vector<Real> f = rng.normal_vector(40);
  EXPECT_THROW((void)CrossValidator().run(OmpSolver(), g, f, 0), Error);
}

TEST(Robustness, PipelineChecksDictionaryAgainstSamples) {
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(5));
  const Matrix samples = random(20, 7, 12);  // 7 vars vs dict's 5
  const std::vector<Real> f(20, 1.0);
  EXPECT_THROW((void)build_model(dict, samples, f), Error);
}

TEST(Robustness, PipelineNullDictionaryThrows) {
  const Matrix samples = random(10, 3, 13);
  const std::vector<Real> f(10, 1.0);
  EXPECT_THROW((void)build_model(nullptr, samples, f), Error);
}

TEST(Robustness, DuplicateRowsAreHarmless) {
  // Repeated sampling points (possible with discrete samplers) must not
  // break any factorization.
  Rng rng(14);
  Matrix g(40, 8);
  const Matrix base = random(10, 8, 15);
  for (Index r = 0; r < 40; ++r)
    for (Index c = 0; c < 8; ++c) g(r, c) = base(r % 10, c);
  std::vector<Real> f(40);
  for (Index r = 0; r < 40; ++r)
    f[static_cast<std::size_t>(r)] = base(r % 10, 0) * 2.0;
  const SolverPath path = OmpSolver().fit_path(g, f, 4);
  ASSERT_GE(path.num_steps(), 1);
  EXPECT_EQ(path.selection_order[0], 0);
  EXPECT_LT(path.residual_norms.back(), 1e-10);
}

class AllSolversDegenerate
    : public ::testing::TestWithParam<const PathSolver*> {};

// Shared instances for the parameterized sweep.
const OmpSolver kOmp;
const StarSolver kStar;
const LarSolver kLar;
const LassoCdSolver kLasso;

TEST_P(AllSolversDegenerate, SingleSampleSingleColumn) {
  Matrix g(2, 1);
  g(0, 0) = 1.0;
  g(1, 0) = 1.0;
  const std::vector<Real> f{3.0, 3.0};
  // Generous step budget: LASSO-CD interprets steps as penalty-grid points
  // and needs several to relax the shrinkage toward the exact fit.
  const SolverPath path = GetParam()->fit_path(g, f, 40);
  ASSERT_GT(path.num_steps(), 0);
  const std::vector<Real> dense =
      path.dense_coefficients(path.num_steps() - 1, 1);
  EXPECT_NEAR(dense[0], 3.0, 0.05);
}

TEST_P(AllSolversDegenerate, ZeroTarget) {
  Rng rng(16);
  const Matrix g = monte_carlo_normal(15, 6, rng);
  const std::vector<Real> f(15, 0.0);
  const SolverPath path = GetParam()->fit_path(g, f, 4);
  // Either an empty path or all-zero coefficients.
  for (Index t = 0; t < path.num_steps(); ++t)
    for (Real c : path.coefficients[static_cast<std::size_t>(t)])
      EXPECT_NEAR(c, 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Solvers, AllSolversDegenerate,
                         ::testing::Values(&kOmp, &kStar, &kLar, &kLasso));

}  // namespace
}  // namespace rsm
