#include "core/synthetic.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"
#include "stats/lhs.hpp"

namespace rsm {
namespace {

std::shared_ptr<const BasisDictionary> dict(Index n) {
  return std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
}

TEST(Synthetic, ExactSparsity) {
  Rng rng(701);
  SyntheticOptions opt;
  opt.num_active = 7;
  const SyntheticSparseFunction fn(dict(10), opt, rng);
  EXPECT_EQ(fn.truth().num_terms(), 7);
}

TEST(Synthetic, ActiveIndicesAreDistinct) {
  Rng rng(702);
  SyntheticOptions opt;
  opt.num_active = 20;
  const SyntheticSparseFunction fn(dict(15), opt, rng);
  const std::vector<Index> idx = fn.active_indices();
  const std::set<Index> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), idx.size());
}

TEST(Synthetic, IncludesConstantWhenRequested) {
  Rng rng(703);
  SyntheticOptions opt;
  opt.num_active = 3;
  opt.include_constant = true;
  const SyntheticSparseFunction fn(dict(5), opt, rng);
  bool has_constant = false;
  for (const ModelTerm& t : fn.truth().terms())
    if (fn.truth().dictionary().index(t.basis_index).is_constant())
      has_constant = true;
  EXPECT_TRUE(has_constant);
}

TEST(Synthetic, MagnitudesDecayGeometrically) {
  Rng rng(704);
  SyntheticOptions opt;
  opt.num_active = 6;
  opt.largest_coefficient = 2.0;
  opt.decay = 0.5;
  const SyntheticSparseFunction fn(dict(8), opt, rng);
  const std::vector<Index> order = fn.active_indices();
  // active_indices sorts by |coef| descending: 2, 1, 0.5, ...
  Real expected = 2.0;
  for (Index idx : order) {
    for (const ModelTerm& t : fn.truth().terms()) {
      if (t.basis_index == idx) {
        EXPECT_NEAR(std::abs(t.coefficient), expected, 1e-12);
      }
    }
    expected *= 0.5;
  }
}

TEST(Synthetic, NoiselessObservationMatchesEvaluate) {
  Rng rng(705);
  SyntheticOptions opt;
  opt.noise_stddev = 0;
  const SyntheticSparseFunction fn(dict(6), opt, rng);
  const Matrix samples = monte_carlo_normal(20, 6, rng);
  Rng noise_rng(1);
  const std::vector<Real> obs = fn.observe(samples, noise_rng);
  for (Index k = 0; k < 20; ++k)
    EXPECT_DOUBLE_EQ(obs[static_cast<std::size_t>(k)],
                     fn.evaluate(samples.row(k)));
}

TEST(Synthetic, NoiseHasRequestedScale) {
  Rng rng(706);
  SyntheticOptions opt;
  opt.noise_stddev = 0.5;
  const SyntheticSparseFunction fn(dict(6), opt, rng);
  const Matrix samples = monte_carlo_normal(20000, 6, rng);
  Rng noise_rng(2);
  const std::vector<Real> noisy = fn.observe(samples, noise_rng);
  std::vector<Real> clean(noisy.size());
  for (Index k = 0; k < samples.rows(); ++k)
    clean[static_cast<std::size_t>(k)] = fn.evaluate(samples.row(k));
  std::vector<Real> diff(noisy.size());
  for (std::size_t i = 0; i < noisy.size(); ++i) diff[i] = noisy[i] - clean[i];
  EXPECT_NEAR(stddev(diff), 0.5, 0.02);
  EXPECT_NEAR(mean(diff), 0.0, 0.02);
}

TEST(Synthetic, InvalidOptionsThrow) {
  Rng rng(707);
  SyntheticOptions opt;
  opt.num_active = 0;
  EXPECT_THROW(SyntheticSparseFunction(dict(4), opt, rng), Error);
  opt.num_active = 1000000;  // more than dictionary size
  EXPECT_THROW(SyntheticSparseFunction(dict(4), opt, rng), Error);
}

}  // namespace
}  // namespace rsm
