#include "core/least_squares.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

TEST(LeastSquares, ExactOnDeterminedSystem) {
  const Matrix a{{1, 0}, {0, 2}, {1, 1}};
  const std::vector<Real> x_true{3, -1};
  const std::vector<Real> b = a * x_true;
  const std::vector<Real> x = LeastSquaresFitter().fit(a, b);
  EXPECT_NEAR(x[0], 3, 1e-10);
  EXPECT_NEAR(x[1], -1, 1e-10);
}

TEST(LeastSquares, QrAndNormalEquationsAgree) {
  Rng rng(401);
  const Matrix a = monte_carlo_normal(100, 20, rng);
  const std::vector<Real> b = rng.normal_vector(100);
  const std::vector<Real> x_qr = LeastSquaresFitter().fit(a, b);
  LeastSquaresFitter::Options opt;
  opt.use_normal_equations = true;
  const std::vector<Real> x_ne = LeastSquaresFitter(opt).fit(a, b);
  for (Index j = 0; j < 20; ++j)
    EXPECT_NEAR(x_qr[static_cast<std::size_t>(j)],
                x_ne[static_cast<std::size_t>(j)], 1e-7);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  Rng rng(402);
  const Matrix a = monte_carlo_normal(5, 10, rng);
  const std::vector<Real> b = rng.normal_vector(5);
  EXPECT_THROW(LeastSquaresFitter().fit(a, b), Error);
}

TEST(LeastSquares, RidgeShrinksCoefficients) {
  Rng rng(403);
  const Matrix a = monte_carlo_normal(50, 10, rng);
  const std::vector<Real> b = rng.normal_vector(50);
  const std::vector<Real> plain = LeastSquaresFitter().fit(a, b);
  LeastSquaresFitter::Options opt;
  opt.ridge = 100.0;
  const std::vector<Real> ridged = LeastSquaresFitter(opt).fit(a, b);
  EXPECT_LT(nrm2(ridged), nrm2(plain));
}

TEST(LeastSquares, RidgeAllowsUnderdetermined) {
  Rng rng(404);
  const Matrix a = monte_carlo_normal(5, 10, rng);
  const std::vector<Real> b = rng.normal_vector(5);
  LeastSquaresFitter::Options opt;
  opt.ridge = 1.0;
  const std::vector<Real> x = LeastSquaresFitter(opt).fit(a, b);
  EXPECT_EQ(x.size(), 10u);
  EXPECT_TRUE(std::isfinite(nrm2(x)));
}

TEST(LeastSquares, RankDeficientFallsBackToPivotedQr) {
  // A duplicated column makes both the plain QR back-substitution and the
  // normal-equation Cholesky singular; the fitter must fall back to the
  // rank-revealing path and return a finite minimizer instead of throwing.
  Rng rng(406);
  Matrix a(30, 4);
  for (Index r = 0; r < 30; ++r) {
    a(r, 0) = rng.normal();
    a(r, 1) = rng.normal();
    a(r, 2) = rng.normal();
    a(r, 3) = a(r, 1);  // dependent column
  }
  std::vector<Real> b(30);
  for (Index r = 0; r < 30; ++r)
    b[static_cast<std::size_t>(r)] = a(r, 0) - 3.0 * a(r, 1);

  for (const bool normal_equations : {false, true}) {
    LeastSquaresFitter::Options opt;
    opt.use_normal_equations = normal_equations;
    const std::vector<Real> x = LeastSquaresFitter(opt).fit(a, b);
    ASSERT_EQ(x.size(), 4u);
    for (Real v : x) EXPECT_TRUE(std::isfinite(v));
    // b is in the column space, so the recovered fit must be exact even
    // though the coefficient split between the twin columns is not unique.
    const std::vector<Real> r = vsub(b, a * x);
    EXPECT_LT(max_abs(r), 1e-6)
        << (normal_equations ? "normal equations" : "qr") << " path";
  }
}

TEST(LeastSquares, ResidualOrthogonalToColumns) {
  Rng rng(405);
  const Matrix a = monte_carlo_normal(60, 8, rng);
  const std::vector<Real> b = rng.normal_vector(60);
  const std::vector<Real> x = LeastSquaresFitter().fit(a, b);
  const std::vector<Real> r = vsub(b, a * x);
  std::vector<Real> at_r(8);
  gemv_transposed(a, r, at_r);
  EXPECT_LT(max_abs(at_r), 1e-9);
}

}  // namespace
}  // namespace rsm
