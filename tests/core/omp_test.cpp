#include "core/omp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <variant>

#include <gtest/gtest.h>

#include "linalg/qr.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/telemetry.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

/// y = G * alpha for a dense coefficient vector.
std::vector<Real> synthesize(const Matrix& g, const std::vector<Real>& alpha) {
  std::vector<Real> y(static_cast<std::size_t>(g.rows()), 0.0);
  for (Index m = 0; m < g.cols(); ++m) {
    if (alpha[static_cast<std::size_t>(m)] == 0.0) continue;
    axpy(alpha[static_cast<std::size_t>(m)], g.col(m), y);
  }
  return y;
}

TEST(Omp, RecoversExactSparseSolutionNoiseless) {
  // K=60 samples, M=200 columns, P=5 non-zeros: OMP must find the exact
  // support and coefficients (residual -> 0).
  Rng rng(101);
  const Index k = 60, m = 200;
  const Matrix g = monte_carlo_normal(k, m, rng);
  std::vector<Real> alpha(static_cast<std::size_t>(m), 0.0);
  const std::vector<Index> support{3, 17, 42, 99, 150};
  const std::vector<Real> coeffs{2.0, -1.5, 1.0, 0.7, -0.5};
  for (std::size_t i = 0; i < support.size(); ++i)
    alpha[static_cast<std::size_t>(support[i])] = coeffs[i];
  const std::vector<Real> f = synthesize(g, alpha);

  const SolverPath path = OmpSolver().fit_path(g, f, 5);
  ASSERT_EQ(path.num_steps(), 5);
  const std::set<Index> found(path.selection_order.begin(),
                              path.selection_order.end());
  for (Index s : support) EXPECT_TRUE(found.count(s)) << "missing column " << s;

  const std::vector<Real> dense = path.dense_coefficients(4, m);
  for (Index j = 0; j < m; ++j)
    EXPECT_NEAR(dense[static_cast<std::size_t>(j)],
                alpha[static_cast<std::size_t>(j)], 1e-9);
  EXPECT_LT(path.residual_norms.back(), 1e-9);
}

TEST(Omp, SelectsLargestCoefficientFirst) {
  Rng rng(102);
  const Index k = 200, m = 50;
  const Matrix g = monte_carlo_normal(k, m, rng);
  std::vector<Real> alpha(static_cast<std::size_t>(m), 0.0);
  alpha[7] = 10.0;   // dominant
  alpha[20] = 0.5;
  const std::vector<Real> f = synthesize(g, alpha);
  const SolverPath path = OmpSolver().fit_path(g, f, 2);
  EXPECT_EQ(path.selection_order[0], 7);
}

TEST(Omp, CoefficientsMatchLeastSquaresOnSupport) {
  // Step 6 of Algorithm 1: at every step, coefficients equal the LS fit
  // restricted to the selected columns.
  Rng rng(103);
  const Index k = 80, m = 120;
  const Matrix g = monte_carlo_normal(k, m, rng);
  const std::vector<Real> f = rng.normal_vector(k);  // generic target
  const SolverPath path = OmpSolver().fit_path(g, f, 6);
  ASSERT_EQ(path.num_steps(), 6);
  for (Index t = 0; t < path.num_steps(); ++t) {
    const std::vector<Index> sup = path.support(t);
    Matrix g_sup(k, static_cast<Index>(sup.size()));
    for (std::size_t j = 0; j < sup.size(); ++j)
      g_sup.set_col(static_cast<Index>(j), g.col(sup[j]));
    const std::vector<Real> ls = QrFactorization(g_sup).solve(f);
    const std::vector<Real>& omp = path.coefficients[static_cast<std::size_t>(t)];
    for (std::size_t j = 0; j < sup.size(); ++j)
      EXPECT_NEAR(omp[j], ls[j], 1e-8) << "step " << t << " pos " << j;
  }
}

TEST(Omp, ResidualNormsDecreaseMonotonically) {
  Rng rng(104);
  const Matrix g = monte_carlo_normal(50, 100, rng);
  const std::vector<Real> f = rng.normal_vector(50);
  const SolverPath path = OmpSolver().fit_path(g, f, 20);
  for (std::size_t t = 1; t < path.residual_norms.size(); ++t)
    EXPECT_LE(path.residual_norms[t], path.residual_norms[t - 1] + 1e-12);
}

TEST(Omp, NeverSelectsSameColumnTwice) {
  Rng rng(105);
  const Matrix g = monte_carlo_normal(40, 60, rng);
  const std::vector<Real> f = rng.normal_vector(40);
  const SolverPath path = OmpSolver().fit_path(g, f, 30);
  std::set<Index> seen(path.selection_order.begin(),
                       path.selection_order.end());
  EXPECT_EQ(seen.size(), path.selection_order.size());
}

TEST(Omp, ResidualToleranceStopsEarly) {
  Rng rng(106);
  const Index k = 60, m = 100;
  const Matrix g = monte_carlo_normal(k, m, rng);
  std::vector<Real> alpha(static_cast<std::size_t>(m), 0.0);
  alpha[5] = 1.0;
  alpha[50] = 0.5;
  const std::vector<Real> f = synthesize(g, alpha);
  OmpSolver::Options opt;
  opt.residual_tolerance = 1e-8;
  const SolverPath path = OmpSolver(opt).fit_path(g, f, 50);
  EXPECT_EQ(path.num_steps(), 2);  // exact sparsity reached, stop
}

TEST(Omp, SkipsNumericallyDependentColumns) {
  // Duplicate columns: after picking one, its copy must not be selected.
  Rng rng(107);
  const Index k = 30;
  Matrix g(k, 4);
  const std::vector<Real> c0 = rng.normal_vector(k);
  g.set_col(0, c0);
  g.set_col(1, c0);  // exact duplicate
  g.set_col(2, rng.normal_vector(k));
  g.set_col(3, rng.normal_vector(k));
  const std::vector<Real> f = rng.normal_vector(k);
  const SolverPath path = OmpSolver().fit_path(g, f, 4);
  // Path has 3 independent columns at most.
  EXPECT_LE(path.num_steps(), 3);
  const std::set<Index> sel(path.selection_order.begin(),
                            path.selection_order.end());
  EXPECT_FALSE(sel.count(0) && sel.count(1));
}

TEST(Omp, MaxStepsClampedBySamples) {
  Rng rng(108);
  const Matrix g = monte_carlo_normal(10, 50, rng);
  const std::vector<Real> f = rng.normal_vector(10);
  const SolverPath path = OmpSolver().fit_path(g, f, 50);
  EXPECT_LE(path.num_steps(), 10);
}

TEST(Omp, PathSupportsAreNested) {
  Rng rng(109);
  const Matrix g = monte_carlo_normal(40, 80, rng);
  const std::vector<Real> f = rng.normal_vector(40);
  const SolverPath path = OmpSolver().fit_path(g, f, 10);
  for (Index t = 1; t < path.num_steps(); ++t) {
    const std::vector<Index> prev = path.support(t - 1);
    const std::vector<Index> cur = path.support(t);
    ASSERT_EQ(cur.size(), prev.size() + 1);
    for (std::size_t i = 0; i < prev.size(); ++i) EXPECT_EQ(cur[i], prev[i]);
  }
}

TEST(Omp, TelemetryEventsMirrorTheSolverPath) {
  // With a ring sink installed, each OMP step emits one SolverIterationEvent
  // whose fields replay the SolverPath: selection order, growing active set,
  // and monotonically non-increasing residual norms.
  Rng rng(110);
  const Matrix g = monte_carlo_normal(50, 100, rng);
  const std::vector<Real> f = rng.normal_vector(50);

  const auto ring = std::make_shared<obs::RingBufferSink>();
  obs::set_telemetry_sink(ring);
  const SolverPath path = OmpSolver().fit_path(g, f, 12);
  obs::set_telemetry_sink(nullptr);

  std::vector<obs::SolverIterationEvent> events;
  for (const obs::TelemetryRecord& record : ring->records()) {
    if (const auto* ev = std::get_if<obs::SolverIterationEvent>(&record))
      events.push_back(*ev);
  }
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(path.num_steps()));
  for (std::size_t t = 0; t < events.size(); ++t) {
    EXPECT_EQ(events[t].solver, std::string("OMP"));
    EXPECT_EQ(events[t].step, static_cast<Index>(t));
    EXPECT_EQ(events[t].selected, path.selection_order[t]);
    EXPECT_EQ(events[t].active_count, static_cast<Index>(t) + 1);
    EXPECT_DOUBLE_EQ(events[t].residual_norm, path.residual_norms[t]);
    EXPECT_GT(events[t].max_correlation, 0.0);
    if (t > 0) {
      EXPECT_LE(events[t].residual_norm,
                events[t - 1].residual_norm + 1e-12);
    }
  }
}

TEST(Omp, NoTelemetryEmittedWithoutSink) {
  // The default (null sink) configuration must leave nothing behind: install
  // a ring only AFTER the fit and confirm the fit emitted nothing.
  Rng rng(111);
  const Matrix g = monte_carlo_normal(30, 60, rng);
  const std::vector<Real> f = rng.normal_vector(30);
  (void)OmpSolver().fit_path(g, f, 5);
  const auto ring = std::make_shared<obs::RingBufferSink>();
  obs::set_telemetry_sink(ring);
  obs::set_telemetry_sink(nullptr);
  EXPECT_TRUE(ring->records().empty());
  EXPECT_EQ(ring->dropped(), 0u);
}

// Scaling sweep: recovery holds across problem sizes with K ~ 4 P log10(M).
class OmpRecovery : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OmpRecovery, SupportRecoveredAtSufficientSampling) {
  const auto [m, p] = GetParam();
  const Index k = static_cast<Index>(
      4.0 * p * std::log10(static_cast<double>(m)) + 10);
  Rng rng(static_cast<std::uint64_t>(m * 7 + p));
  const Matrix g = monte_carlo_normal(k, m, rng);
  std::vector<Real> alpha(static_cast<std::size_t>(m), 0.0);
  std::set<Index> support;
  while (static_cast<int>(support.size()) < p)
    support.insert(rng.uniform_index(m));
  for (Index s : support)
    alpha[static_cast<std::size_t>(s)] = rng.normal() >= 0 ? 1.0 : -1.0;
  const std::vector<Real> f = synthesize(g, alpha);
  const SolverPath path = OmpSolver().fit_path(g, f, p);
  const std::set<Index> found(path.selection_order.begin(),
                              path.selection_order.end());
  int hits = 0;
  for (Index s : support) hits += found.count(s) ? 1 : 0;
  EXPECT_GE(hits, p - 1) << "K=" << k;  // allow one miss at this sampling
}

INSTANTIATE_TEST_SUITE_P(Sizes, OmpRecovery,
                         ::testing::Values(std::tuple{100, 3},
                                           std::tuple{500, 5},
                                           std::tuple{2000, 8},
                                           std::tuple{5000, 10}));

}  // namespace
}  // namespace rsm
