// Fault-tolerant campaign layer: retry/escalation bookkeeping, exact
// quarantine sets under deterministic fault injection, the fit gate, and the
// ISSUE acceptance pin — a 5% fault campaign whose fitted OMP model stays
// within 10% of the fault-free run.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "basis/dictionary.hpp"
#include "core/campaign.hpp"
#include "core/pipeline.hpp"
#include "core/synthetic.hpp"
#include "obs/telemetry.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

/// Ground-truth fixture shared by the campaign tests: a sparse quadratic
/// function of 12 variables observed with mild noise, evaluated through a
/// campaign-style callback that looks up the precomputed noisy value for
/// the row being evaluated (the span aliases the sample matrix, so the row
/// index is recoverable from the data pointer).
struct SyntheticBench {
  std::shared_ptr<const BasisDictionary> dictionary;
  Matrix samples;
  std::vector<Real> values;
  std::unique_ptr<SyntheticSparseFunction> truth;

  explicit SyntheticBench(Index num_samples = 120, std::uint64_t seed = 21) {
    dictionary = std::make_shared<BasisDictionary>(
        BasisDictionary::quadratic(12));
    Rng rng(seed);
    samples = monte_carlo_normal(num_samples, 12, rng);
    SyntheticOptions options;
    options.num_active = 8;
    options.noise_stddev = 0.02;
    truth = std::make_unique<SyntheticSparseFunction>(dictionary, options,
                                                      rng);
    values = truth->observe(samples, rng);
  }

  [[nodiscard]] Index row_of(std::span<const Real> sample) const {
    const std::ptrdiff_t offset = sample.data() - samples.row(0).data();
    return static_cast<Index>(offset / samples.cols());
  }

  [[nodiscard]] SampleEvaluator evaluator() const {
    return [this](std::span<const Real> sample, int) {
      return values[static_cast<std::size_t>(row_of(sample))];
    };
  }
};

TEST(Campaign, FaultFreeRunSucceedsEverywhere) {
  const SyntheticBench bench(40);
  const CampaignResult result =
      run_campaign(bench.samples, bench.evaluator());
  const CampaignReport& report = result.report;
  EXPECT_EQ(report.attempted, 40);
  EXPECT_EQ(report.succeeded, 40);
  EXPECT_EQ(report.recovered, 0);
  EXPECT_EQ(report.total_retries, 0);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(report.success_fraction(), 1.0);
  EXPECT_TRUE(report.fit_allowed());
  for (int c = 0; c < kNumErrorCodes; ++c)
    EXPECT_EQ(report.error_count(static_cast<ErrorCode>(c)), 0);
  ASSERT_EQ(result.samples.rows(), 40);
  ASSERT_EQ(result.values.size(), 40u);
  for (Index k = 0; k < 40; ++k) {
    EXPECT_EQ(result.sample_indices[static_cast<std::size_t>(k)], k);
    EXPECT_EQ(result.values[static_cast<std::size_t>(k)],
              bench.values[static_cast<std::size_t>(k)]);
  }
}

TEST(Campaign, QuarantinesExactlyThePersistentFaults) {
  // The ISSUE acceptance scenario: ~5% injected faults, half persistent.
  // Transient faults must recover on the retry; persistent ones must land
  // in quarantine — exactly the set the injector planned, nothing else.
  const SyntheticBench bench(120);
  CampaignOptions options;
  options.max_attempts = 3;
  options.fault_injector = FaultInjector(
      {.fault_rate = 0.05, .persistent_fraction = 0.5, .seed = 99});

  // Enumerate the injector's plan up front.
  std::vector<Index> persistent;
  std::vector<Index> transient;
  Index singular_attempts = 0;
  Index stall_attempts = 0;
  for (Index k = 0; k < 120; ++k) {
    const FaultKind kind = options.fault_injector.kind(k);
    if (kind == FaultKind::kNone) continue;
    const bool sticky = options.fault_injector.is_persistent(k);
    (sticky ? persistent : transient).push_back(k);
    const Index failed_attempts = sticky ? options.max_attempts : 1;
    (kind == FaultKind::kSingularSolve ? singular_attempts : stall_attempts)
        += failed_attempts;
  }
  ASSERT_FALSE(persistent.empty()) << "seed must plant persistent faults";
  ASSERT_FALSE(transient.empty()) << "seed must plant transient faults";

  const CampaignResult result =
      run_campaign(bench.samples, bench.evaluator(), options);
  const CampaignReport& report = result.report;

  EXPECT_EQ(report.attempted, 120);
  EXPECT_EQ(report.succeeded,
            120 - static_cast<Index>(persistent.size()));
  EXPECT_EQ(report.recovered, static_cast<Index>(transient.size()));
  EXPECT_EQ(report.total_retries,
            static_cast<int>(transient.size()) +
                static_cast<int>(persistent.size()) *
                    (options.max_attempts - 1));

  // Quarantine is exactly the persistent set, in order.
  ASSERT_EQ(report.quarantined.size(), persistent.size());
  for (std::size_t i = 0; i < persistent.size(); ++i) {
    EXPECT_EQ(report.quarantined[i].sample, persistent[i]);
    EXPECT_FALSE(report.quarantined[i].reason.empty());
  }

  // Per-code histogram matches the planned fault kinds attempt-by-attempt.
  EXPECT_EQ(report.error_count(ErrorCode::kSingularMatrix),
            singular_attempts);
  EXPECT_EQ(report.error_count(ErrorCode::kNoConvergence), stall_attempts);
  EXPECT_EQ(report.error_count(ErrorCode::kNumericalDomain), 0);

  // Survivors are the complement of the quarantine, with intact values.
  ASSERT_EQ(result.samples.rows(),
            120 - static_cast<Index>(persistent.size()));
  for (std::size_t r = 0; r < result.sample_indices.size(); ++r) {
    const Index k = result.sample_indices[r];
    EXPECT_EQ(result.values[r], bench.values[static_cast<std::size_t>(k)]);
    for (Index c = 0; c < bench.samples.cols(); ++c)
      EXPECT_EQ(result.samples(static_cast<Index>(r), c),
                bench.samples(k, c));
  }

  const std::string summary = report.summary();
  EXPECT_NE(summary.find("quarantined"), std::string::npos);
  EXPECT_NE(summary.find("singular-matrix"), std::string::npos);
}

TEST(Campaign, FaultedFitMatchesFaultFreeWithinTenPercent) {
  // Regression pin for the acceptance criterion: the OMP model fitted from
  // the faulted campaign's survivors must have a CV error within 10% of the
  // fault-free run's, and validate equally well on fresh data.
  const SyntheticBench bench(120);
  BuildOptions build;
  build.method = Method::kOmp;
  build.max_lambda = 20;

  const CampaignResult clean = run_campaign(bench.samples, bench.evaluator());
  const BuildReport clean_fit =
      fit_campaign(clean, bench.dictionary, build);

  CampaignOptions faulted_options;
  faulted_options.fault_injector = FaultInjector(
      {.fault_rate = 0.05, .persistent_fraction = 0.5, .seed = 99});
  const CampaignResult faulted =
      run_campaign(bench.samples, bench.evaluator(), faulted_options);
  ASSERT_FALSE(faulted.report.quarantined.empty());
  ASSERT_TRUE(faulted.report.fit_allowed());
  const BuildReport faulted_fit =
      fit_campaign(faulted, bench.dictionary, build);

  EXPECT_GT(clean_fit.cv.best_error, 0);
  EXPECT_NEAR(faulted_fit.cv.best_error, clean_fit.cv.best_error,
              0.10 * clean_fit.cv.best_error);

  // Independent holdout: both models must generalize comparably.
  Rng rng(77);
  const Matrix test = monte_carlo_normal(400, 12, rng);
  std::vector<Real> test_values(400);
  for (Index r = 0; r < 400; ++r)
    test_values[static_cast<std::size_t>(r)] =
        bench.truth->evaluate(test.row(r));
  const Real clean_err =
      validate_model(clean_fit.model, test, test_values);
  const Real faulted_err =
      validate_model(faulted_fit.model, test, test_values);
  EXPECT_NEAR(faulted_err, clean_err, 0.10 * clean_err + 1e-3);
}

TEST(Campaign, FitGateThrowsBelowSuccessThreshold) {
  const SyntheticBench bench(30);
  CampaignOptions options;
  options.max_attempts = 2;
  options.min_success_fraction = 0.9;
  options.fault_injector = FaultInjector(
      {.fault_rate = 0.6, .persistent_fraction = 1.0, .seed = 5});

  const CampaignResult result =
      run_campaign(bench.samples, bench.evaluator(), options);
  ASSERT_LT(result.report.success_fraction(), 0.9);
  EXPECT_FALSE(result.report.fit_allowed());
  try {
    (void)fit_campaign(result, bench.dictionary);
    FAIL() << "expected the fit gate to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("success fraction"), std::string::npos);
    EXPECT_NE(what.find("quarantined"), std::string::npos);
  }
}

TEST(Campaign, RetriesRunAtEscalatedLevels) {
  // All faults transient: attempt 0 is intercepted by the injector, so every
  // sample must reach the evaluator exactly once, at escalation level 1.
  const SyntheticBench bench(25);
  CampaignOptions options;
  options.max_attempts = 3;
  options.fault_injector = FaultInjector(
      {.fault_rate = 1.0, .persistent_fraction = 0.0, .seed = 1});

  std::vector<int> seen_levels;
  const SampleEvaluator spy = [&](std::span<const Real> sample,
                                  int escalation) {
    seen_levels.push_back(escalation);
    return bench.values[static_cast<std::size_t>(bench.row_of(sample))];
  };
  const CampaignResult result =
      run_campaign(bench.samples, spy, options);
  EXPECT_EQ(result.report.succeeded, 25);
  EXPECT_EQ(result.report.recovered, 25);
  ASSERT_EQ(seen_levels.size(), 25u);
  for (int level : seen_levels) EXPECT_EQ(level, 1);
}

TEST(Campaign, NonFiniteEvaluationsAreClassifiedAndQuarantined) {
  const SyntheticBench bench(10);
  CampaignOptions options;
  options.max_attempts = 2;
  const SampleEvaluator nan_at_3 = [&](std::span<const Real> sample, int) {
    const Index k = bench.row_of(sample);
    if (k == 3) return std::nan("");
    return bench.values[static_cast<std::size_t>(k)];
  };
  const CampaignResult result =
      run_campaign(bench.samples, nan_at_3, options);
  ASSERT_EQ(result.report.quarantined.size(), 1u);
  EXPECT_EQ(result.report.quarantined[0].sample, 3);
  EXPECT_EQ(result.report.quarantined[0].code, ErrorCode::kNumericalDomain);
  EXPECT_EQ(result.report.error_count(ErrorCode::kNumericalDomain), 2);
}

TEST(Campaign, MisuseStillThrows) {
  const SyntheticBench bench(5);
  CampaignOptions bad;
  bad.max_attempts = 0;
  EXPECT_THROW((void)run_campaign(bench.samples, bench.evaluator(), bad),
               Error);
  EXPECT_THROW((void)run_campaign(Matrix(), bench.evaluator()), Error);
}

TEST(Campaign, TelemetryMirrorsFaultInjectionOutcomes) {
  // The observability acceptance pin: every sample of a fault-injected
  // campaign shows up as exactly one CampaignSampleEvent, and the events'
  // ErrorCodes match the injector's plan sample-by-sample.
  const SyntheticBench bench(120);
  CampaignOptions options;
  options.max_attempts = 3;
  options.fault_injector = FaultInjector(
      {.fault_rate = 0.05, .persistent_fraction = 0.5, .seed = 99});

  const auto ring = std::make_shared<obs::RingBufferSink>();
  obs::set_telemetry_sink(ring);
  const CampaignResult result =
      run_campaign(bench.samples, bench.evaluator(), options);
  obs::set_telemetry_sink(nullptr);

  std::vector<obs::CampaignSampleEvent> events;
  for (const obs::TelemetryRecord& record : ring->records()) {
    if (const auto* ev = std::get_if<obs::CampaignSampleEvent>(&record))
      events.push_back(*ev);
  }
  ASSERT_EQ(events.size(), 120u);

  Index quarantine_cursor = 0;
  for (Index k = 0; k < 120; ++k) {
    const obs::CampaignSampleEvent& ev = events[static_cast<std::size_t>(k)];
    EXPECT_EQ(ev.sample, k);
    const FaultKind kind = options.fault_injector.kind(k);
    const bool sticky =
        kind != FaultKind::kNone && options.fault_injector.is_persistent(k);
    if (kind == FaultKind::kNone) {
      EXPECT_TRUE(ev.succeeded);
      EXPECT_FALSE(ev.recovered);
      EXPECT_EQ(ev.attempts, 1);
      EXPECT_EQ(ev.code, ErrorCode::kOk);
    } else if (sticky) {
      // Persistent faults exhaust the budget and report the final failure's
      // classification — the same code the quarantine recorded.
      EXPECT_FALSE(ev.succeeded);
      EXPECT_EQ(ev.attempts, options.max_attempts);
      const QuarantinedSample& q = result.report.quarantined[
          static_cast<std::size_t>(quarantine_cursor++)];
      EXPECT_EQ(q.sample, k);
      EXPECT_EQ(ev.code, q.code);
      EXPECT_NE(ev.code, ErrorCode::kOk);
    } else {
      EXPECT_TRUE(ev.succeeded);
      EXPECT_TRUE(ev.recovered);
      EXPECT_EQ(ev.attempts, 2);  // one injected failure, then recovery
      EXPECT_EQ(ev.code, ErrorCode::kOk);
    }
  }
  EXPECT_EQ(quarantine_cursor,
            static_cast<Index>(result.report.quarantined.size()));
}

TEST(Campaign, ReportToJsonMirrorsCounts) {
  const SyntheticBench bench(30);
  CampaignOptions options;
  options.max_attempts = 2;
  options.fault_injector = FaultInjector(
      {.fault_rate = 0.3, .persistent_fraction = 0.5, .seed = 7});
  const CampaignResult result =
      run_campaign(bench.samples, bench.evaluator(), options);
  const CampaignReport& report = result.report;

  const obs::JsonValue doc = report.to_json();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("attempted")->as_int(), report.attempted);
  EXPECT_EQ(doc.find("succeeded")->as_int(), report.succeeded);
  EXPECT_EQ(doc.find("recovered")->as_int(), report.recovered);
  EXPECT_EQ(doc.find("total_retries")->as_int(), report.total_retries);
  EXPECT_DOUBLE_EQ(doc.find("success_fraction")->as_double(),
                   report.success_fraction());
  EXPECT_EQ(doc.find("fit_allowed")->as_bool(), report.fit_allowed());

  const obs::JsonValue* errors = doc.find("failed_attempts_by_code");
  ASSERT_NE(errors, nullptr);
  for (int c = 0; c < kNumErrorCodes; ++c) {
    const ErrorCode code = static_cast<ErrorCode>(c);
    ASSERT_NE(errors->find(error_code_name(code)), nullptr);
    EXPECT_EQ(errors->find(error_code_name(code))->as_int(),
              report.error_count(code));
  }

  const obs::JsonValue* quarantine = doc.find("quarantined");
  ASSERT_NE(quarantine, nullptr);
  ASSERT_EQ(quarantine->size(), report.quarantined.size());
  for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
    const obs::JsonValue& entry = quarantine->items()[i];
    EXPECT_EQ(entry.find("sample")->as_int(), report.quarantined[i].sample);
    EXPECT_EQ(entry.find("code")->as_string(),
              error_code_name(report.quarantined[i].code));
  }
}

}  // namespace
}  // namespace rsm
