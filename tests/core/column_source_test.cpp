#include "core/column_source.hpp"

#include <gtest/gtest.h>

#include "core/omp.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

TEST(ColumnSource, MaterializedMatchesMatrix) {
  Rng rng(901);
  const Matrix g = monte_carlo_normal(15, 8, rng);
  const MaterializedSource src(g);
  EXPECT_EQ(src.rows(), 15);
  EXPECT_EQ(src.num_columns(), 8);

  const std::vector<Real> x = rng.normal_vector(15);
  std::vector<Real> corr(8);
  src.correlate(x, corr);
  for (Index j = 0; j < 8; ++j)
    EXPECT_NEAR(corr[static_cast<std::size_t>(j)], dot(g.col(j), x), 1e-12);

  std::vector<Real> col(15);
  src.column(3, col);
  const std::vector<Real> expected = g.col(3);
  for (std::size_t i = 0; i < col.size(); ++i)
    EXPECT_EQ(col[i], expected[i]);
}

TEST(ColumnSource, DictionaryMatchesMaterializedDesign) {
  Rng rng(902);
  const Index n = 8, k = 25;
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  const Matrix samples = monte_carlo_normal(k, n, rng);
  const Matrix g = dict->design_matrix(samples);

  const DictionarySource lazy(dict, samples);
  const MaterializedSource dense(g);
  EXPECT_EQ(lazy.rows(), dense.rows());
  EXPECT_EQ(lazy.num_columns(), dense.num_columns());

  const std::vector<Real> x = rng.normal_vector(k);
  std::vector<Real> corr_lazy(static_cast<std::size_t>(dict->size()));
  std::vector<Real> corr_dense(static_cast<std::size_t>(dict->size()));
  lazy.correlate(x, corr_lazy);
  dense.correlate(x, corr_dense);
  for (std::size_t j = 0; j < corr_lazy.size(); ++j)
    EXPECT_NEAR(corr_lazy[j], corr_dense[j], 1e-10) << "col " << j;

  std::vector<Real> col_lazy(static_cast<std::size_t>(k));
  std::vector<Real> col_dense(static_cast<std::size_t>(k));
  for (Index j : {0L, 5L, dict->size() - 1}) {
    lazy.column(j, col_lazy);
    dense.column(j, col_dense);
    for (std::size_t i = 0; i < col_lazy.size(); ++i)
      EXPECT_NEAR(col_lazy[i], col_dense[i], 1e-12);
  }
}

TEST(ColumnSource, StreamingOmpMatchesMaterializedOmp) {
  Rng rng(903);
  const Index n = 10, k = 60;
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  const Matrix samples = monte_carlo_normal(k, n, rng);
  const Matrix g = dict->design_matrix(samples);
  const std::vector<Real> f = rng.normal_vector(k);

  const OmpSolver solver;
  const SolverPath dense = solver.fit_path(g, f, 10);
  const SolverPath lazy =
      solver.fit_path(DictionarySource(dict, samples), f, 10);

  ASSERT_EQ(dense.num_steps(), lazy.num_steps());
  for (Index t = 0; t < dense.num_steps(); ++t) {
    EXPECT_EQ(dense.selection_order[static_cast<std::size_t>(t)],
              lazy.selection_order[static_cast<std::size_t>(t)]);
    const auto& cd = dense.coefficients[static_cast<std::size_t>(t)];
    const auto& cl = lazy.coefficients[static_cast<std::size_t>(t)];
    for (std::size_t s = 0; s < cd.size(); ++s)
      EXPECT_NEAR(cd[s], cl[s], 1e-9);
  }
}

TEST(ColumnSource, HugeDictionaryWithoutMaterialization) {
  // The point of streaming: a dictionary whose design matrix would be
  // ~1.4 GB (K=600 x M=320k doubles) fits a sparse model in modest memory.
  Rng rng(904);
  const Index n = 800;  // quadratic M = 1 + 1600 + 319600 = 321201
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  ASSERT_GT(dict->size(), 300000);
  const Index k = 200;
  const Matrix samples = monte_carlo_normal(k, n, rng);

  // Ground truth: 3 columns of the dictionary.
  const std::vector<Index> support{1, 900, 200000};
  std::vector<Real> f(static_cast<std::size_t>(k), 0.0);
  for (Index kk = 0; kk < k; ++kk)
    for (Index s : support)
      f[static_cast<std::size_t>(kk)] +=
          2.0 * dict->evaluate(s, samples.row(kk));

  const SolverPath path =
      OmpSolver().fit_path(DictionarySource(dict, samples), f, 3);
  ASSERT_EQ(path.num_steps(), 3);
  std::set<Index> found(path.selection_order.begin(),
                        path.selection_order.end());
  for (Index s : support) EXPECT_TRUE(found.count(s)) << "missing " << s;
}

}  // namespace
}  // namespace rsm
