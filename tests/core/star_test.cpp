#include "core/star.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/omp.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

std::vector<Real> synthesize(const Matrix& g, const std::vector<Real>& alpha) {
  std::vector<Real> y(static_cast<std::size_t>(g.rows()), 0.0);
  for (Index m = 0; m < g.cols(); ++m) {
    if (alpha[static_cast<std::size_t>(m)] == 0.0) continue;
    axpy(alpha[static_cast<std::size_t>(m)], g.col(m), y);
  }
  return y;
}

TEST(Star, SelectsDominantColumnFirst) {
  Rng rng(201);
  const Matrix g = monte_carlo_normal(300, 40, rng);
  std::vector<Real> alpha(40, 0.0);
  alpha[13] = 5.0;
  alpha[25] = 0.3;
  const std::vector<Real> f = synthesize(g, alpha);
  const SolverPath path = StarSolver().fit_path(g, f, 2);
  EXPECT_EQ(path.selection_order[0], 13);
}

TEST(Star, SingleOrthogonalColumnExact) {
  // With one active column, STAR's projection coefficient is already the LS
  // solution: residual must vanish for a 1-sparse target.
  Rng rng(202);
  const Matrix g = monte_carlo_normal(100, 20, rng);
  std::vector<Real> alpha(20, 0.0);
  alpha[4] = 2.5;
  const std::vector<Real> f = synthesize(g, alpha);
  const SolverPath path = StarSolver().fit_path(g, f, 1);
  EXPECT_NEAR(path.coefficients[0][0], 2.5, 1e-9);
  EXPECT_LT(path.residual_norms[0], 1e-9);
}

TEST(Star, ResidualNormsNonIncreasing) {
  // Each step subtracts the projection on the selected column, which can
  // never increase the residual.
  Rng rng(203);
  const Matrix g = monte_carlo_normal(60, 100, rng);
  const std::vector<Real> f = rng.normal_vector(60);
  const SolverPath path = StarSolver().fit_path(g, f, 25);
  for (std::size_t t = 1; t < path.residual_norms.size(); ++t)
    EXPECT_LE(path.residual_norms[t], path.residual_norms[t - 1] + 1e-12);
}

TEST(Star, WorseThanOmpOnCorrelatedColumns) {
  // The paper's key comparison: STAR skips the re-fit (Step 6), so with
  // correlated basis vectors its residual after lambda steps is larger than
  // OMP's. Build correlated columns explicitly.
  Rng rng(204);
  const Index k = 80, m = 40;
  Matrix g = monte_carlo_normal(k, m, rng);
  // Make columns 0..9 strongly correlated with each other.
  const std::vector<Real> common = rng.normal_vector(k);
  for (Index j = 0; j < 10; ++j) {
    std::vector<Real> col = g.col(j);
    axpy(2.0, common, col);
    g.set_col(j, col);
  }
  std::vector<Real> alpha(static_cast<std::size_t>(m), 0.0);
  alpha[0] = 1.0;
  alpha[3] = -1.2;
  alpha[7] = 0.8;
  const std::vector<Real> f = synthesize(g, alpha);

  const SolverPath star = StarSolver().fit_path(g, f, 10);
  const SolverPath omp = OmpSolver().fit_path(g, f, 10);
  const Real star_res = star.residual_norms.back();
  const Real omp_res = omp.residual_norms.back();
  EXPECT_LT(omp_res, 1e-8);           // OMP nails it within 10 steps
  EXPECT_GT(star_res, 10 * omp_res);  // STAR is left with real residual
}

TEST(Star, MayReselectColumns) {
  // With correlated columns STAR revisits earlier selections to refine
  // coefficients — duplicates are legal in its selection order.
  Rng rng(205);
  const Index k = 50;
  Matrix g(k, 3);
  const std::vector<Real> base = rng.normal_vector(k);
  std::vector<Real> c1 = base;
  for (Real& v : c1) v += 0.3 * rng.normal();
  std::vector<Real> c2 = rng.normal_vector(k);
  g.set_col(0, base);
  g.set_col(1, c1);
  g.set_col(2, c2);
  std::vector<Real> f = g.col(0);
  axpy(0.9, g.col(1), f);
  const SolverPath path = StarSolver().fit_path(g, f, 12);
  std::set<Index> distinct(path.selection_order.begin(),
                           path.selection_order.end());
  EXPECT_LT(distinct.size(), path.selection_order.size());
  // Accumulated dense coefficients approximate the target loosely — STAR
  // never re-solves the joint fit, which is exactly its weakness vs OMP.
  const std::vector<Real> dense =
      path.dense_coefficients(path.num_steps() - 1, 3);
  EXPECT_NEAR(dense[0] + dense[1], 1.9, 0.3);  // joint effect captured
  EXPECT_NEAR(dense[0], 1.0, 0.5);
  EXPECT_NEAR(dense[1], 0.9, 0.5);
}

TEST(Star, DenseCoefficientsAccumulateDuplicates) {
  Rng rng(206);
  const Matrix g = monte_carlo_normal(30, 5, rng);
  const std::vector<Real> f = rng.normal_vector(30);
  const SolverPath path = StarSolver().fit_path(g, f, 15);
  // Sum of per-step contributions per column == dense vector.
  std::vector<Real> manual(5, 0.0);
  const auto& last = path.coefficients.back();
  for (std::size_t s = 0; s < last.size(); ++s)
    manual[static_cast<std::size_t>(path.selection_order[s])] += last[s];
  const std::vector<Real> dense =
      path.dense_coefficients(path.num_steps() - 1, 5);
  for (int j = 0; j < 5; ++j)
    EXPECT_NEAR(dense[static_cast<std::size_t>(j)],
                manual[static_cast<std::size_t>(j)], 1e-12);
}

}  // namespace
}  // namespace rsm
