// Parallel campaign executor: bit-identical science for any worker count,
// sharded crash-safe checkpoints (merge, salvage, duplicate tolerance),
// resume of a killed parallel run to a byte-identical final state, worker
// infrastructure faults with graceful degradation, and deadline/cancellation
// behavior under parallelism.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "io/atomic_file.hpp"
#include "io/checkpoint.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/cancellation.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/thread_pool.hpp"

namespace rsm {
namespace {

constexpr Index kRows = 12;
constexpr Index kCols = 3;

std::string test_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "rsm_parcamp_" + name;
  std::remove(path.c_str());
  (void)io::remove_shard_files(path);
  return path;
}

Matrix make_samples(std::uint64_t seed = 17) {
  Rng rng(seed);
  return monte_carlo_normal(kRows, kCols, rng);
}

Real row_metric(std::span<const Real> x) {
  Real v = 0;
  for (std::size_t j = 0; j < x.size(); ++j)
    v += static_cast<Real>(j + 1) * x[j] * x[j] + 0.25 * x[j];
  return v;
}

SampleEvaluator pure_evaluator() {
  return [](std::span<const Real> x, int) { return row_metric(x); };
}

/// Fault plan with at least one persistent (quarantine) and one transient
/// (retry) fault among the kRows rows, found deterministically.
FaultInjector::Options mixed_fault_plan() {
  for (std::uint64_t seed = 1; seed < 65536; ++seed) {
    FaultInjector::Options options{
        .fault_rate = 0.3, .persistent_fraction = 0.5, .seed = seed};
    const FaultInjector injector(options);
    bool persistent = false;
    bool transient = false;
    for (Index row = 0; row < kRows; ++row) {
      if (injector.kind(row) == FaultKind::kNone) continue;
      (injector.is_persistent(row) ? persistent : transient) = true;
    }
    if (persistent && transient) return options;
  }
  ADD_FAILURE() << "no seed mixes persistent and transient faults";
  return {};
}

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.values.size(), b.values.size());
  ASSERT_EQ(a.sample_indices, b.sample_indices);
  EXPECT_EQ(std::memcmp(a.values.data(), b.values.data(),
                        a.values.size() * sizeof(Real)),
            0);
  ASSERT_EQ(a.samples.rows(), b.samples.rows());
  EXPECT_EQ(std::memcmp(a.samples.data(), b.samples.data(),
                        static_cast<std::size_t>(a.samples.size()) *
                            sizeof(Real)),
            0);
}

/// The scientific half of a report — everything the byte-identical-resume
/// contract covers. Durability and scheduling counters legitimately differ
/// between serial/parallel/resumed runs and are zeroed out.
std::string science_json(CampaignReport report) {
  report.resumed_samples = 0;
  report.checkpoint_records = 0;
  report.checkpoint_flushes = 0;
  report.checkpoint_rewrites = 0;
  report.checkpoint_failed = false;
  report.workers = 1;
  report.workers_quarantined = 0;
  report.worker_infra_failures = 0;
  report.tasks_stolen = 0;
  report.pool_queue_highwater = 0;
  report.pool_backpressure_stalls = 0;
  report.pool_busy_seconds = 0;
  report.pool_idle_seconds = 0;
  report.progress_heartbeats = 0;
  report.resources = {};
  report.shards_merged = 0;
  report.shards_recovered = 0;
  report.shard_duplicate_rows = 0;
  return report.to_json().dump();
}

TEST(ParallelCampaignTest, ParallelMatchesSerialBitIdentical) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.max_attempts = 2;
  options.min_success_fraction = 0.5;
  options.fault_injector = FaultInjector(mixed_fault_plan());

  const CampaignResult serial =
      run_campaign(samples, pure_evaluator(), options);
  ASSERT_GT(serial.report.quarantined.size(), 0u);
  ASSERT_GT(serial.report.recovered, 0);

  for (const int workers : {2, 4, 8}) {
    CampaignOptions parallel_options = options;
    parallel_options.num_workers = workers;
    const CampaignResult parallel =
        run_campaign(samples, pure_evaluator(), parallel_options);
    EXPECT_EQ(parallel.report.workers, workers);
    expect_bit_identical(parallel, serial);
    EXPECT_EQ(science_json(parallel.report), science_json(serial.report))
        << "worker count " << workers << " changed the report";
  }
}

TEST(ParallelCampaignTest, FreshParallelRunCompactsToSerialLogBytes) {
  const Matrix samples = make_samples();
  CampaignOptions serial_options;
  serial_options.max_attempts = 2;
  serial_options.min_success_fraction = 0.5;
  serial_options.fault_injector = FaultInjector(mixed_fault_plan());
  serial_options.checkpoint.path = test_path("compact_serial.ckpt");
  (void)run_campaign(samples, pure_evaluator(), serial_options);

  CampaignOptions parallel_options = serial_options;
  parallel_options.num_workers = 4;
  parallel_options.checkpoint.path = test_path("compact_parallel.ckpt");
  const CampaignResult result =
      run_campaign(samples, pure_evaluator(), parallel_options);
  EXPECT_EQ(result.report.checkpoint_records, kRows);
  EXPECT_FALSE(result.report.checkpoint_failed);

  // A finished parallel run leaves no shards and a base log byte-identical
  // to what the serial streaming writer produced.
  EXPECT_TRUE(io::find_shard_paths(parallel_options.checkpoint.path).empty());
  EXPECT_EQ(io::read_file_bytes(parallel_options.checkpoint.path),
            io::read_file_bytes(serial_options.checkpoint.path));
}

TEST(ParallelCampaignTest, KilledParallelRunResumesByteIdentical) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.max_attempts = 2;
  options.min_success_fraction = 0.5;
  options.fault_injector = FaultInjector(mixed_fault_plan());

  // Uninterrupted serial reference with its streaming log.
  CampaignOptions reference_options = options;
  reference_options.checkpoint.path = test_path("kill_reference.ckpt");
  const CampaignResult reference =
      run_campaign(samples, pure_evaluator(), reference_options);
  const io::CheckpointData reference_log = io::load_checkpoint(
      reference_options.checkpoint.path, io::LoadMode::kStrict);
  ASSERT_EQ(reference_log.records.size(), static_cast<std::size_t>(kRows));

  // Reconstruct the exact on-disk state a SIGKILL leaves mid-flight in a
  // parallel run: a base holding only the header (written up front), plus
  // per-worker shards holding an arbitrary subset of rows — one shard with
  // a torn trailing record (killed mid-append), one row duplicated across
  // two shards (killed after the requeued row was re-checkpointed).
  const std::string path = test_path("kill_state.ckpt");
  io::CheckpointHeader header;
  header.sample_matrix_hash = io::matrix_fingerprint(samples);
  header.config_hash = io::fault_plan_fingerprint(options.fault_injector,
                                                  options.max_attempts);
  header.total_rows = static_cast<std::uint64_t>(kRows);
  io::CheckpointOptions base_options;
  base_options.path = path;
  { io::CheckpointWriter base(base_options, header); }

  const auto record_for = [&](Index row) {
    return reference_log.records[static_cast<std::size_t>(row)];
  };
  {
    io::CheckpointOptions shard0;
    shard0.path = io::shard_path(path, 0);
    io::CheckpointWriter writer(shard0, header);
    writer.append(record_for(3));
    writer.append(record_for(6));
    writer.append(record_for(1));  // the duplicate's first copy
  }
  {
    io::CheckpointOptions shard2;
    shard2.path = io::shard_path(path, 2);
    io::CheckpointWriter writer(shard2, header);
    writer.append(record_for(1));  // duplicate (identical content)
    writer.append(record_for(4));
  }
  // Shard 1 dies mid-append: valid row 2, then a torn partial record.
  {
    io::CheckpointOptions shard1;
    shard1.path = io::shard_path(path, 1);
    io::CheckpointWriter writer(shard1, header);
    writer.append(record_for(2));
  }
  std::string torn = io::read_file_bytes(io::shard_path(path, 1));
  torn.append("\x01\x40\x00\x00\x00\xde\xad", 7);
  io::atomic_write_file(io::shard_path(path, 1), torn);

  // Resume in parallel (N >= 4 per the acceptance bar); rows 0, 5, 7..11
  // are holes and must be re-evaluated, the rest replayed.
  CampaignOptions resume_options = options;
  resume_options.checkpoint.path = path;
  resume_options.num_workers = 4;
  const CampaignResult resumed =
      resume_campaign(samples, pure_evaluator(), resume_options);

  EXPECT_EQ(resumed.report.resumed_samples, 5);  // rows 1..4 and 6
  EXPECT_EQ(resumed.report.shards_merged, 3);
  EXPECT_GE(resumed.report.shards_recovered, 1);  // the torn tail
  EXPECT_EQ(resumed.report.shard_duplicate_rows, 1);
  EXPECT_FALSE(resumed.report.truncated);

  // The acceptance pin: final report and survivor data byte-identical to
  // the uninterrupted serial run, and the compacted log byte-identical to
  // the serial streaming log. No shards survive.
  expect_bit_identical(resumed, reference);
  EXPECT_EQ(science_json(resumed.report), science_json(reference.report));
  EXPECT_TRUE(io::find_shard_paths(path).empty());
  EXPECT_EQ(io::read_file_bytes(path),
            io::read_file_bytes(reference_options.checkpoint.path));
}

TEST(ParallelCampaignTest, WorkerInfraFaultsNeverChangeTheScience) {
  const Matrix samples = make_samples();
  // A worker-fault plan that hits at least three rows, found
  // deterministically (decisions are a pure hash of (seed, row)).
  WorkerFaultInjector::Options plan{.fault_rate = 0.4, .seed = 1};
  Index faulted = 0;
  for (std::uint64_t seed = 1; seed < 65536; ++seed) {
    plan.seed = seed;
    const WorkerFaultInjector injector(plan);
    faulted = 0;
    for (Index row = 0; row < kRows; ++row)
      if (injector.should_fault(row)) ++faulted;
    if (faulted >= 3) break;
  }
  ASSERT_GE(faulted, 3);

  CampaignOptions options;
  options.max_attempts = 2;
  options.min_success_fraction = 0.5;
  options.fault_injector = FaultInjector(mixed_fault_plan());
  const CampaignResult serial =
      run_campaign(samples, pure_evaluator(), options);

  CampaignOptions faulty = options;
  faulty.num_workers = 4;
  faulty.worker_faults = WorkerFaultInjector(plan);
  faulty.worker_quarantine_threshold = 1;
  const CampaignResult result =
      run_campaign(samples, pure_evaluator(), faulty);

  // Every injected infrastructure death was absorbed: the row was requeued
  // and evaluated as if nothing happened.
  EXPECT_EQ(result.report.worker_infra_failures, faulted);
  EXPECT_GE(result.report.workers_quarantined, 1);  // threshold 1, 4 workers
  EXPECT_LE(result.report.workers_quarantined, 3);  // never the last worker
  EXPECT_FALSE(result.report.truncated);
  expect_bit_identical(result, serial);
  EXPECT_EQ(science_json(result.report), science_json(serial.report));
}

TEST(ParallelCampaignTest, QuarantineNeverRetiresTheLastWorker) {
  const Matrix samples = make_samples();
  // Two workers, threshold 1, every row faults on first execution: the
  // first absorbed fault retires one worker, every later retirement is
  // refused — the pool degrades to one worker and still finishes.
  CampaignOptions options;
  options.num_workers = 2;
  options.worker_faults =
      WorkerFaultInjector({.fault_rate = 1.0, .seed = 3});
  options.worker_quarantine_threshold = 1;
  const CampaignResult result =
      run_campaign(samples, pure_evaluator(), options);

  EXPECT_EQ(result.report.worker_infra_failures, kRows);
  EXPECT_EQ(result.report.workers_quarantined, 1);
  EXPECT_EQ(result.report.succeeded, kRows);
  EXPECT_FALSE(result.report.truncated);
}

TEST(ParallelCampaignTest, HungWorkerQuarantinedWhileSiblingsFinish) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.num_workers = 4;
  options.max_attempts = 2;
  options.min_success_fraction = 0.5;
  options.sample_deadline_seconds = 0.03;

  // Row 2's evaluator hangs (cooperatively) until the per-sample watchdog
  // trips; the other rows run on sibling workers meanwhile.
  const SampleEvaluator hang_row2 = [&](std::span<const Real> x, int) {
    if (x.data() == samples.row(2).data()) {
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        check_cooperative_stop("test.parallel_hung");
      }
    }
    return row_metric(x);
  };
  const CampaignResult result = run_campaign(samples, hang_row2, options);

  EXPECT_FALSE(result.report.truncated);
  EXPECT_EQ(result.report.succeeded, kRows - 1);
  ASSERT_EQ(result.report.quarantined.size(), 1u);
  EXPECT_EQ(result.report.quarantined[0].sample, 2);
  EXPECT_EQ(result.report.quarantined[0].code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(result.report.error_count(ErrorCode::kDeadlineExceeded),
            static_cast<Index>(options.max_attempts));
}

TEST(ParallelCampaignTest, GlobalBudgetDrainsToConsistentCheckpoint) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.num_workers = 4;
  options.checkpoint.path = test_path("budget.ckpt");
  // 12 rows of >= 25 ms on 4 workers need >= 75 ms of wall clock; a 50 ms
  // budget therefore always truncates, however the scheduler interleaves.
  options.time_budget_seconds = 0.05;

  const SampleEvaluator slow = [](std::span<const Real> x, int) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(25);
    while (std::chrono::steady_clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      check_cooperative_stop("test.parallel_slow");
    }
    return row_metric(x);
  };
  const CampaignResult result = run_campaign(samples, slow, options);

  EXPECT_TRUE(result.report.truncated);
  EXPECT_LT(result.report.attempted, kRows);
  EXPECT_EQ(result.values.size(),
            static_cast<std::size_t>(result.report.succeeded));

  // Graceful truncation compacts: a strict single-log load succeeds, holds
  // exactly the evaluated rows, and no shards survive.
  const io::CheckpointData data = io::load_checkpoint(
      options.checkpoint.path, io::LoadMode::kStrict);
  EXPECT_EQ(data.records.size(),
            static_cast<std::size_t>(result.report.attempted));
  EXPECT_TRUE(io::find_shard_paths(options.checkpoint.path).empty());

  // And the truncated checkpoint resumes to the uninterrupted answer.
  CampaignOptions resume_options;
  resume_options.num_workers = 4;
  resume_options.checkpoint.path = options.checkpoint.path;
  const CampaignResult resumed =
      resume_campaign(samples, pure_evaluator(), resume_options);
  const CampaignResult reference = run_campaign(samples, pure_evaluator());
  EXPECT_FALSE(resumed.report.truncated);
  expect_bit_identical(resumed, reference);
}

TEST(ParallelCampaignTest, CancellationDrainsWorkersGracefully) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.num_workers = 4;
  options.checkpoint.path = test_path("cancel.ckpt");
  CancellationSource source;
  options.cancel = source.token();

  std::atomic<Index> evaluated{0};
  const SampleEvaluator cancelling = [&](std::span<const Real> x, int) {
    if (evaluated.fetch_add(1) == 5) source.request_cancel();
    return row_metric(x);
  };
  const CampaignResult result = run_campaign(samples, cancelling, options);

  EXPECT_TRUE(result.report.truncated);
  EXPECT_LT(result.report.attempted, kRows);
  // Consistent truncated checkpoint, no shards left behind.
  const io::CheckpointData data = io::load_checkpoint(
      options.checkpoint.path, io::LoadMode::kStrict);
  EXPECT_EQ(data.records.size(),
            static_cast<std::size_t>(result.report.attempted));
  EXPECT_TRUE(io::find_shard_paths(options.checkpoint.path).empty());
}

TEST(ParallelCampaignTest, FaultDecisionsAreIdenticalAcrossThreads) {
  // The determinism keystone: every injector decision is a pure hash of
  // (seed, row), so concurrent queries from pool workers must agree with a
  // serial sweep exactly.
  const FaultInjector injector(
      {.fault_rate = 0.5, .persistent_fraction = 0.5, .seed = 99});
  const WorkerFaultInjector worker_injector(
      {.fault_rate = 0.5, .seed = 99});
  const FsFaultInjector fs_injector({.fault_rate = 0.5, .seed = 99});

  constexpr Index kProbe = 512;
  std::vector<int> serial(kProbe);
  for (Index r = 0; r < kProbe; ++r) {
    serial[static_cast<std::size_t>(r)] =
        (static_cast<int>(injector.kind(r)) << 3) |
        (injector.is_persistent(r) ? 4 : 0) |
        (worker_injector.should_fault(r) ? 2 : 0) |
        (fs_injector.kind(static_cast<std::uint64_t>(r)) != FsFaultKind::kNone
             ? 1
             : 0);
  }
  std::vector<int> concurrent(kProbe, -1);
  {
    ThreadPool::Options pool_options;
    pool_options.num_threads = 4;
    pool_options.queue_capacity = kProbe;
    ThreadPool pool(pool_options);
    for (Index r = 0; r < kProbe; ++r) {
      pool.submit([&, r] {
        concurrent[static_cast<std::size_t>(r)] =
            (static_cast<int>(injector.kind(r)) << 3) |
            (injector.is_persistent(r) ? 4 : 0) |
            (worker_injector.should_fault(r) ? 2 : 0) |
            (fs_injector.kind(static_cast<std::uint64_t>(r)) !=
                     FsFaultKind::kNone
                 ? 1
                 : 0);
      });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(concurrent, serial);
}

TEST(ParallelCampaignTest, WorkerCountResolvesFromEnvironment) {
  const Matrix samples = make_samples();
  ::setenv("RSM_THREADS", "3", 1);
  CampaignOptions options;  // num_workers = 0 -> consult RSM_THREADS
  const CampaignResult from_env =
      run_campaign(samples, pure_evaluator(), options);
  EXPECT_EQ(from_env.report.workers, 3);
  ::unsetenv("RSM_THREADS");
  const CampaignResult serial =
      run_campaign(samples, pure_evaluator(), options);
  EXPECT_EQ(serial.report.workers, 1);
  expect_bit_identical(from_env, serial);
}

TEST(ParallelCampaignTest, ReportJsonCarriesExecutionFields) {
  const Matrix samples = make_samples();
  CampaignOptions options;
  options.num_workers = 2;
  const CampaignResult result =
      run_campaign(samples, pure_evaluator(), options);
  const std::string json = result.report.to_json().dump();
  EXPECT_NE(json.find("\"execution\""), std::string::npos);
  EXPECT_NE(json.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"shards_merged\""), std::string::npos);
}

}  // namespace
}  // namespace rsm
