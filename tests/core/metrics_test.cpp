#include "core/metrics.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace rsm {
namespace {

TEST(Metrics, PerfectPredictionIsZeroError) {
  const std::vector<Real> actual{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(relative_rms_error(actual, actual), 0.0);
  EXPECT_DOUBLE_EQ(rms_error_over_norm(actual, actual), 0.0);
  EXPECT_DOUBLE_EQ(max_relative_error(actual, actual), 0.0);
  EXPECT_DOUBLE_EQ(r_squared(actual, actual), 1.0);
}

TEST(Metrics, MeanPredictorScoresNearOne) {
  // Predicting the mean leaves exactly the variability unexplained:
  // relative RMS error = sqrt((n-1)/n) with our population-RMS numerator.
  const std::vector<Real> actual{1, 2, 3, 4, 5};
  const std::vector<Real> pred(5, 3.0);
  EXPECT_NEAR(relative_rms_error(pred, actual), std::sqrt(4.0 / 5.0), 1e-12);
  EXPECT_NEAR(r_squared(pred, actual), 0.0, 1e-12);
}

TEST(Metrics, KnownHandComputedCase) {
  const std::vector<Real> actual{0, 2};
  const std::vector<Real> pred{0, 1};
  // rms error = sqrt(0.5); std(actual) = sqrt(2).
  EXPECT_NEAR(relative_rms_error(pred, actual), std::sqrt(0.5) / std::sqrt(2.0),
              1e-12);
  // rms(actual) = sqrt(2).
  EXPECT_NEAR(rms_error_over_norm(pred, actual), std::sqrt(0.5) / std::sqrt(2.0),
              1e-12);
  EXPECT_NEAR(max_relative_error(pred, actual), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Metrics, ConstantActualThrows) {
  const std::vector<Real> actual{2, 2, 2};
  const std::vector<Real> pred{1, 2, 3};
  EXPECT_THROW((void)relative_rms_error(pred, actual), Error);
  EXPECT_THROW((void)max_relative_error(pred, actual), Error);
  EXPECT_THROW((void)r_squared(pred, actual), Error);
}

TEST(Metrics, ScaleInvariance) {
  // Relative metrics are invariant to a common scale on pred and actual.
  const std::vector<Real> actual{1, 3, 5, 2};
  const std::vector<Real> pred{1.2, 2.5, 5.5, 1.9};
  std::vector<Real> actual_scaled, pred_scaled;
  for (Real v : actual) actual_scaled.push_back(v * 1000);
  for (Real v : pred) pred_scaled.push_back(v * 1000);
  EXPECT_NEAR(relative_rms_error(pred, actual),
              relative_rms_error(pred_scaled, actual_scaled), 1e-12);
  EXPECT_NEAR(r_squared(pred, actual), r_squared(pred_scaled, actual_scaled),
              1e-12);
}

TEST(Metrics, RSquaredNegativeForTerriblePredictor) {
  const std::vector<Real> actual{1, 2, 3};
  const std::vector<Real> pred{30, -10, 5};
  EXPECT_LT(r_squared(pred, actual), 0.0);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<Real> a{1, 2, 3};
  const std::vector<Real> b{1, 2};
  EXPECT_THROW((void)relative_rms_error(b, a), Error);
}

}  // namespace
}  // namespace rsm
