#include "core/lasso_cd.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/lar.hpp"
#include "linalg/blas.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

std::vector<Real> synthesize(const Matrix& g, const std::vector<Real>& alpha) {
  std::vector<Real> y(static_cast<std::size_t>(g.rows()), 0.0);
  for (Index m = 0; m < g.cols(); ++m) {
    if (alpha[static_cast<std::size_t>(m)] == 0.0) continue;
    axpy(alpha[static_cast<std::size_t>(m)], g.col(m), y);
  }
  return y;
}

TEST(LassoCd, LargePenaltyZeroesEverything) {
  Rng rng(601);
  const Matrix g = monte_carlo_normal(40, 20, rng);
  const std::vector<Real> f = rng.normal_vector(40);
  const std::vector<Real> beta = LassoCdSolver().fit_at(g, f, 1e6);
  for (Real b : beta) EXPECT_EQ(b, 0.0);
}

TEST(LassoCd, ZeroPenaltyReachesLeastSquaresFit) {
  // mu = 0: plain coordinate descent on the quadratic, converging to an LS
  // solution (residual orthogonal to every column).
  Rng rng(602);
  const Matrix g = monte_carlo_normal(60, 10, rng);
  const std::vector<Real> f = rng.normal_vector(60);
  const std::vector<Real> beta = LassoCdSolver().fit_at(g, f, 0.0);
  std::vector<Real> residual = f;
  for (Index j = 0; j < 10; ++j)
    axpy(-beta[static_cast<std::size_t>(j)], g.col(j), residual);
  std::vector<Real> corr(10);
  gemv_transposed(g, residual, corr);
  EXPECT_LT(max_abs(corr), 1e-5);
}

TEST(LassoCd, KktConditionsHoldAtSolution) {
  // LASSO optimality: |(1/K) G_j' r| <= mu, with equality (and matching
  // sign) on the active set.
  Rng rng(603);
  const Index k = 80, m = 30;
  const Matrix g = monte_carlo_normal(k, m, rng);
  const std::vector<Real> f = rng.normal_vector(k);
  const Real mu = 0.1;
  const std::vector<Real> beta = LassoCdSolver().fit_at(g, f, mu);
  std::vector<Real> residual = f;
  for (Index j = 0; j < m; ++j)
    axpy(-beta[static_cast<std::size_t>(j)], g.col(j), residual);
  std::vector<Real> corr(static_cast<std::size_t>(m));
  gemv_transposed(g, residual, corr);
  for (Index j = 0; j < m; ++j) {
    const Real c = corr[static_cast<std::size_t>(j)] / static_cast<Real>(k);
    const Real b = beta[static_cast<std::size_t>(j)];
    if (b != 0) {
      EXPECT_NEAR(c, mu * (b > 0 ? 1.0 : -1.0), 1e-6) << "active j=" << j;
    } else {
      EXPECT_LE(std::abs(c), mu + 1e-6) << "inactive j=" << j;
    }
  }
}

TEST(LassoCd, RecoversSparseSignal) {
  Rng rng(604);
  const Index k = 100, m = 300;
  const Matrix g = monte_carlo_normal(k, m, rng);
  std::vector<Real> alpha(static_cast<std::size_t>(m), 0.0);
  const std::vector<Index> support{5, 50, 150, 250};
  for (Index s : support) alpha[static_cast<std::size_t>(s)] = 2.0;
  std::vector<Real> f = synthesize(g, alpha);
  for (Real& v : f) v += 0.01 * rng.normal();

  const SolverPath path = LassoCdSolver().fit_path(g, f, 40);
  ASSERT_GT(path.num_steps(), 0);
  // Somewhere on the path the support is exactly recovered.
  bool exact = false;
  for (Index t = 0; t < path.num_steps(); ++t) {
    const std::vector<Index> sup = path.support(t);
    if (sup.size() != support.size()) continue;
    exact = std::equal(sup.begin(), sup.end(), support.begin());
    if (exact) break;
  }
  EXPECT_TRUE(exact);
}

TEST(LassoCd, PathActiveSetGrowsWithDecreasingPenalty) {
  Rng rng(605);
  const Matrix g = monte_carlo_normal(50, 80, rng);
  const std::vector<Real> f = rng.normal_vector(50);
  const SolverPath path = LassoCdSolver().fit_path(g, f, 30);
  // Non-strictly monotone in general, but first << last.
  ASSERT_GE(path.num_steps(), 10);
  EXPECT_LT(path.support(0).size(), path.support(path.num_steps() - 1).size());
  // And residuals shrink.
  EXPECT_LT(path.residual_norms.back(), path.residual_norms.front());
}

TEST(LassoCd, AgreesWithLassoLarAtMatchedL1Norm) {
  // Both solve the same convex program; compare solutions with the same
  // ||beta||_1 (parameterizations differ). Interpolate the CD path to the
  // LAR breakpoint's L1 norm and compare fits by residual.
  Rng rng(606);
  const Index k = 60, m = 25;
  const Matrix g = monte_carlo_normal(k, m, rng);
  const std::vector<Real> f = rng.normal_vector(k);

  LarSolver::Options lar_opt;
  lar_opt.lasso = true;
  const SolverPath lar = LarSolver(lar_opt).fit_path(g, f, 8);
  ASSERT_GE(lar.num_steps(), 5);
  const Index t = 4;
  const std::vector<Real> lar_dense = lar.dense_coefficients(t, m);

  // L1 norm at the breakpoint.
  Real l1 = 0;
  for (Real b : lar_dense) l1 += std::abs(b);

  // Scan CD over mu until its solution has (approximately) that L1 norm.
  const LassoCdSolver cd;
  Real best_gap = 1e9;
  std::vector<Real> best;
  for (Real mu = 1.0; mu > 1e-4; mu *= 0.97) {
    const std::vector<Real> beta = cd.fit_at(g, f, mu);
    Real norm = 0;
    for (Real b : beta) norm += std::abs(b);
    if (std::abs(norm - l1) < best_gap) {
      best_gap = std::abs(norm - l1);
      best = beta;
    }
  }
  ASSERT_FALSE(best.empty());
  for (Index j = 0; j < m; ++j)
    EXPECT_NEAR(best[static_cast<std::size_t>(j)],
                lar_dense[static_cast<std::size_t>(j)], 0.05)
        << "j=" << j;
}

}  // namespace
}  // namespace rsm
