#include "core/yield.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

namespace rsm {
namespace {

std::shared_ptr<const BasisDictionary> dict(Index n) {
  return std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(normal_cdf(-2.0), 0.022750131948179195, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0) + normal_cdf(-3.0), 1.0, 1e-12);
}

TEST(Yield, AnalyticLinearMatchesNormalTheory) {
  // f = 1 + 2*y0: mean 1, sigma 2. Spec f <= 3 -> P(Z <= 1) = 0.8413.
  const SparseModel model(dict(3), {{0, 1.0}, {1, 2.0}});
  Specification spec;
  spec.upper = 3.0;
  EXPECT_NEAR(analytic_linear_yield(model, spec), 0.8413447460685429, 1e-9);
  // Two-sided: |f - 1| <= 2 -> P(|Z| <= 1) = 0.6827.
  spec.lower = -1.0;
  EXPECT_NEAR(analytic_linear_yield(model, spec), 0.682689492137, 1e-9);
}

TEST(Yield, AnalyticRejectsNonlinearModel) {
  const SparseModel model(dict(2), {{0, 1.0}, {3, 0.5}});  // has H2 term
  EXPECT_THROW((void)analytic_linear_yield(model, Specification{}), Error);
}

TEST(Yield, MonteCarloMatchesAnalyticOnLinearModel) {
  const SparseModel model(dict(4), {{0, 0.5}, {1, 1.0}, {2, -0.7}});
  Specification spec;
  spec.lower = -1.0;
  spec.upper = 2.0;
  const Real exact = analytic_linear_yield(model, spec);
  Rng rng(11);
  const YieldResult mc = estimate_yield(model, spec, 200000, rng);
  EXPECT_NEAR(mc.yield, exact, 4 * mc.standard_error + 1e-3);
}

TEST(Yield, DegenerateSigmaIsStep) {
  const SparseModel model(dict(2), {{0, 5.0}});  // constant model
  Specification pass;
  pass.upper = 6.0;
  EXPECT_EQ(analytic_linear_yield(model, pass), 1.0);
  Specification fail;
  fail.upper = 4.0;
  EXPECT_EQ(analytic_linear_yield(model, fail), 0.0);
}

TEST(Yield, JointYieldBelowEitherMarginal) {
  // Two independent metrics: joint = product of marginals.
  const SparseModel m1(dict(4), {{1, 1.0}});  // f1 = y0
  const SparseModel m2(dict(4), {{2, 1.0}});  // f2 = y1
  Specification spec;
  spec.upper = 0.0;  // each passes 50%
  Rng rng(12);
  const SparseModel* models[] = {&m1, &m2};
  const Specification specs[] = {spec, spec};
  const YieldResult joint = estimate_joint_yield(models, specs, 100000, rng);
  EXPECT_NEAR(joint.yield, 0.25, 0.01);
}

TEST(Yield, JointYieldOfIdenticalMetricsEqualsMarginal) {
  const SparseModel m1(dict(3), {{1, 1.0}});
  Specification spec;
  spec.upper = 1.0;
  Rng rng(13);
  const SparseModel* models[] = {&m1, &m1};
  const Specification specs[] = {spec, spec};
  const YieldResult joint = estimate_joint_yield(models, specs, 100000, rng);
  EXPECT_NEAR(joint.yield, normal_cdf(1.0), 0.01);
}

TEST(Yield, MismatchedVariableCountsThrow) {
  const SparseModel m1(dict(3), {{1, 1.0}});
  const SparseModel m2(dict(5), {{1, 1.0}});
  const SparseModel* models[] = {&m1, &m2};
  const Specification specs[] = {{}, {}};
  Rng rng(14);
  EXPECT_THROW((void)estimate_joint_yield(models, specs, 10, rng), Error);
}

TEST(Yield, DistributionEstimateMatchesAnalyticMoments) {
  const SparseModel model(dict(5),
                          {{0, 2.0}, {1, 0.5}, {3, -0.3}, {8, 0.2}});
  Rng rng(15);
  const DistributionEstimate est = estimate_distribution(model, 150000, rng);
  EXPECT_NEAR(est.summary.mean, model.analytic_mean(), 0.01);
  EXPECT_NEAR(est.summary.stddev, std::sqrt(model.analytic_variance()), 0.01);
  // Quantiles come back sorted with the levels.
  ASSERT_EQ(est.quantile_levels.size(), est.quantile_values.size());
  for (std::size_t i = 1; i < est.quantile_values.size(); ++i)
    EXPECT_LE(est.quantile_values[i - 1], est.quantile_values[i]);
}

TEST(TailProbability, MatchesAnalytic4SigmaLinearTail) {
  // f = 1 + 0.6 y0 - 0.8 y1: sigma = 1. P(f > 1 + 4) = Phi(-4) ~ 3.17e-5 —
  // invisible to plain MC at 20k samples, routine for the IS estimator.
  const SparseModel model(dict(3), {{0, 1.0}, {1, 0.6}, {2, -0.8}});
  Rng rng(21);
  const TailProbability tail =
      estimate_tail_probability(model, 5.0, /*upper_tail=*/true, 20000, rng);
  const Real exact = normal_cdf(-4.0);
  EXPECT_NEAR(tail.probability / exact, 1.0, 0.15);
  EXPECT_NEAR(tail.shift_magnitude, 4.0, 0.05);
  // The estimator is tight: relative stderr well under 10%.
  EXPECT_LT(tail.standard_error, 0.1 * tail.probability);
}

TEST(TailProbability, SixSigmaStillResolvable) {
  const SparseModel model(dict(2), {{1, 1.0}});  // f = y0
  Rng rng(22);
  const TailProbability tail =
      estimate_tail_probability(model, 6.0, true, 30000, rng);
  const Real exact = normal_cdf(-6.0);  // ~ 1e-9
  EXPECT_NEAR(tail.probability / exact, 1.0, 0.2);
}

TEST(TailProbability, LowerTailMirrorsUpper) {
  const SparseModel model(dict(2), {{1, 1.0}});
  Rng rng(23);
  const TailProbability upper =
      estimate_tail_probability(model, 3.5, true, 20000, rng);
  const TailProbability lower =
      estimate_tail_probability(model, -3.5, false, 20000, rng);
  EXPECT_NEAR(lower.probability / upper.probability, 1.0, 0.25);
}

TEST(TailProbability, NonlinearModelStillWorks) {
  // Quadratic term fattens the upper tail vs the Gaussian of its linear
  // part; the IS estimate must land above the linear-only prediction.
  auto d = dict(2);
  const SparseModel nonlinear(d, {{1, 1.0}, {3, 0.3}});  // y0 + 0.3 H2(y0)
  Rng rng(24);
  const TailProbability tail =
      estimate_tail_probability(nonlinear, 4.5, true, 40000, rng);
  EXPECT_GT(tail.probability, normal_cdf(-4.5 / std::sqrt(1.0 + 0.09)));
  EXPECT_LT(tail.probability, 1e-2);
}

TEST(TailProbability, ThresholdInsideBulkDegradesGracefully) {
  const SparseModel model(dict(2), {{1, 1.0}});
  Rng rng(25);
  // Threshold at the mean: probability ~ 0.5, shift ~ 0.
  const TailProbability tail =
      estimate_tail_probability(model, 0.0, true, 20000, rng);
  EXPECT_NEAR(tail.probability, 0.5, 0.02);
  EXPECT_NEAR(tail.shift_magnitude, 0.0, 1e-6);
}

TEST(TailProbability, NoLinearTermsThrows) {
  const SparseModel model(dict(2), {{0, 1.0}, {3, 1.0}});  // constant + H2
  Rng rng(26);
  EXPECT_THROW(
      (void)estimate_tail_probability(model, 3.0, true, 1000, rng), Error);
}

TEST(Yield, StandardErrorShrinksWithSamples) {
  const SparseModel model(dict(2), {{1, 1.0}});
  Specification spec;
  spec.upper = 0.5;
  Rng rng(16);
  const YieldResult small = estimate_yield(model, spec, 1000, rng);
  const YieldResult big = estimate_yield(model, spec, 100000, rng);
  EXPECT_GT(small.standard_error, big.standard_error * 5);
}

}  // namespace
}  // namespace rsm
