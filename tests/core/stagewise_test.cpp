#include "core/stagewise.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/lar.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

std::vector<Real> synthesize(const Matrix& g, const std::vector<Real>& alpha) {
  std::vector<Real> y(static_cast<std::size_t>(g.rows()), 0.0);
  for (Index m = 0; m < g.cols(); ++m) {
    if (alpha[static_cast<std::size_t>(m)] == 0.0) continue;
    axpy(alpha[static_cast<std::size_t>(m)], g.col(m), y);
  }
  return y;
}

TEST(Stagewise, ResidualDecreases) {
  Rng rng(701);
  const Matrix g = monte_carlo_normal(50, 60, rng);
  const std::vector<Real> f = rng.normal_vector(50);
  const SolverPath path = StagewiseSolver().fit_path(g, f, 10);
  ASSERT_GT(path.num_steps(), 1);
  for (std::size_t t = 1; t < path.residual_norms.size(); ++t)
    EXPECT_LE(path.residual_norms[t], path.residual_norms[t - 1] + 1e-12);
}

TEST(Stagewise, FindsDominantColumnFirst) {
  Rng rng(702);
  const Matrix g = monte_carlo_normal(100, 40, rng);
  std::vector<Real> alpha(40, 0.0);
  alpha[23] = 5.0;
  const std::vector<Real> f = synthesize(g, alpha);
  const SolverPath path = StagewiseSolver().fit_path(g, f, 2);
  const std::vector<Index> sup = path.support(0);
  ASSERT_FALSE(sup.empty());
  EXPECT_TRUE(std::find(sup.begin(), sup.end(), 23) != sup.end());
}

TEST(Stagewise, ConvergesToSparseTruth) {
  Rng rng(703);
  const Index k = 80, m = 150;
  const Matrix g = monte_carlo_normal(k, m, rng);
  std::vector<Real> alpha(static_cast<std::size_t>(m), 0.0);
  alpha[10] = 1.5;
  alpha[99] = -1.0;
  const std::vector<Real> f = synthesize(g, alpha);
  StagewiseSolver::Options opt;
  opt.epsilon = 0.02;
  opt.steps_per_record = 200;
  const SolverPath path = StagewiseSolver(opt).fit_path(g, f, 10);
  const std::vector<Real> dense =
      path.dense_coefficients(path.num_steps() - 1, m);
  EXPECT_NEAR(dense[10], 1.5, 0.1);
  EXPECT_NEAR(dense[99], -1.0, 0.1);
  EXPECT_LT(path.residual_norms.back(), 0.1 * nrm2(f));
}

TEST(Stagewise, SmallEpsilonApproachesLarPath) {
  // Efron et al.: as epsilon -> 0, stagewise traces the LAR path. Compare
  // the coefficient vectors at matched residual norms.
  Rng rng(704);
  const Index k = 60, m = 15;
  const Matrix g = monte_carlo_normal(k, m, rng);
  const std::vector<Real> f = rng.normal_vector(k);

  const SolverPath lar = LarSolver().fit_path(g, f, 5);
  ASSERT_GE(lar.num_steps(), 3);
  const Real target_residual = lar.residual_norms[2];
  const std::vector<Real> lar_dense = lar.dense_coefficients(2, m);

  StagewiseSolver::Options opt;
  opt.epsilon = 0.002;
  opt.steps_per_record = 25;
  const SolverPath stage = StagewiseSolver(opt).fit_path(g, f, 400);
  // Find the stagewise record closest in residual norm.
  Index best = 0;
  Real best_gap = 1e300;
  for (Index t = 0; t < stage.num_steps(); ++t) {
    const Real gap = std::abs(stage.residual_norms[static_cast<std::size_t>(t)] -
                              target_residual);
    if (gap < best_gap) {
      best_gap = gap;
      best = t;
    }
  }
  const std::vector<Real> stage_dense = stage.dense_coefficients(best, m);
  for (Index j = 0; j < m; ++j)
    EXPECT_NEAR(stage_dense[static_cast<std::size_t>(j)],
                lar_dense[static_cast<std::size_t>(j)], 0.08)
        << "j=" << j;
}

TEST(Stagewise, ZeroTargetEmptyPath) {
  Rng rng(705);
  const Matrix g = monte_carlo_normal(20, 10, rng);
  const std::vector<Real> f(20, 0.0);
  const SolverPath path = StagewiseSolver().fit_path(g, f, 5);
  EXPECT_EQ(path.num_steps(), 0);
}

TEST(Stagewise, InvalidOptionsThrow) {
  Rng rng(706);
  const Matrix g = monte_carlo_normal(10, 5, rng);
  const std::vector<Real> f = rng.normal_vector(10);
  StagewiseSolver::Options opt;
  opt.epsilon = 0;
  EXPECT_THROW((void)StagewiseSolver(opt).fit_path(g, f, 3), Error);
}

}  // namespace
}  // namespace rsm
