#include "core/bootstrap.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "stats/lhs.hpp"

namespace rsm {
namespace {

TEST(Bootstrap, IntervalCoversTheEstimate) {
  Rng rng(71);
  const Index n = 300;
  std::vector<Real> actual(static_cast<std::size_t>(n));
  std::vector<Real> pred(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    actual[static_cast<std::size_t>(i)] = rng.normal(10, 2);
    pred[static_cast<std::size_t>(i)] =
        actual[static_cast<std::size_t>(i)] + rng.normal(0, 0.3);
  }
  const BootstrapInterval ci =
      bootstrap_error_interval(pred, actual, 500, 0.95, rng);
  EXPECT_GT(ci.estimate, 0);
  EXPECT_LE(ci.lower, ci.estimate);
  EXPECT_GE(ci.upper, ci.estimate);
  EXPECT_GT(ci.standard_error, 0);
  EXPECT_EQ(ci.num_replicates, 500);
}

TEST(Bootstrap, WiderConfidenceWidensInterval) {
  Rng rng(72);
  const Index n = 200;
  std::vector<Real> actual(static_cast<std::size_t>(n));
  std::vector<Real> pred(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    actual[static_cast<std::size_t>(i)] = rng.normal();
    pred[static_cast<std::size_t>(i)] =
        0.9 * actual[static_cast<std::size_t>(i)] + rng.normal(0, 0.2);
  }
  Rng rng_a(1), rng_b(1);
  const BootstrapInterval narrow =
      bootstrap_error_interval(pred, actual, 400, 0.80, rng_a);
  const BootstrapInterval wide =
      bootstrap_error_interval(pred, actual, 400, 0.99, rng_b);
  EXPECT_LT(narrow.upper - narrow.lower, wide.upper - wide.lower);
}

TEST(Bootstrap, IntervalShrinksWithTestingSetSize) {
  const auto width_at = [](Index n) {
    Rng rng(73);
    std::vector<Real> actual(static_cast<std::size_t>(n));
    std::vector<Real> pred(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) {
      actual[static_cast<std::size_t>(i)] = rng.normal();
      pred[static_cast<std::size_t>(i)] =
          actual[static_cast<std::size_t>(i)] + rng.normal(0, 0.4);
    }
    Rng boot(5);
    const BootstrapInterval ci =
        bootstrap_error_interval(pred, actual, 400, 0.95, boot);
    return ci.upper - ci.lower;
  };
  EXPECT_LT(width_at(2000), 0.5 * width_at(80));
}

TEST(Bootstrap, CoverageOnRepeatedExperiments) {
  // True error of pred = actual + N(0, s): relative error = s / std(actual).
  // The 90% CI should cover the population value in most repetitions.
  const Real noise = 0.5;
  int covered = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    Rng rng(100 + t);
    const Index n = 400;
    std::vector<Real> actual(static_cast<std::size_t>(n));
    std::vector<Real> pred(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) {
      actual[static_cast<std::size_t>(i)] = rng.normal(0, 1);
      pred[static_cast<std::size_t>(i)] =
          actual[static_cast<std::size_t>(i)] + rng.normal(0, noise);
    }
    const BootstrapInterval ci =
        bootstrap_error_interval(pred, actual, 300, 0.90, rng);
    if (ci.lower <= noise && noise <= ci.upper) ++covered;
  }
  // Nominal coverage 90%; allow generous slack for 40 trials.
  EXPECT_GE(covered, 30);
}

TEST(Bootstrap, ModelConvenienceOverloadMatches) {
  Rng rng(74);
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(4));
  const SparseModel model(dict, {{0, 1.0}, {1, 0.5}});
  const Matrix test = monte_carlo_normal(200, 4, rng);
  std::vector<Real> values(200);
  for (Index i = 0; i < 200; ++i)
    values[static_cast<std::size_t>(i)] =
        model.predict(test.row(i)) + rng.normal(0, 0.1);
  Rng a(9), b(9);
  const BootstrapInterval direct = bootstrap_error_interval(
      model.predict_all(test), values, 200, 0.95, a);
  const BootstrapInterval conv =
      bootstrap_model_error(model, test, values, 200, 0.95, b);
  EXPECT_DOUBLE_EQ(direct.estimate, conv.estimate);
  EXPECT_DOUBLE_EQ(direct.lower, conv.lower);
}

TEST(Bootstrap, InputValidation) {
  Rng rng(75);
  const std::vector<Real> tiny{1.0, 2.0};
  EXPECT_THROW(
      (void)bootstrap_error_interval(tiny, tiny, 100, 0.95, rng), Error);
  const std::vector<Real> ok{1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW((void)bootstrap_error_interval(ok, ok, 5, 0.95, rng), Error);
  EXPECT_THROW((void)bootstrap_error_interval(ok, ok, 100, 1.5, rng), Error);
}

}  // namespace
}  // namespace rsm
