#include "core/model.hpp"

#include <cmath>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

std::shared_ptr<const BasisDictionary> quad_dict(Index n) {
  return std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
}

TEST(SparseModel, PredictMatchesManualEvaluation) {
  auto dict = quad_dict(3);
  // f = 2 + 3*y0 - 1.5*H2(y1).
  const SparseModel model(dict, {{0, 2.0}, {1, 3.0}, {5, -1.5}});
  const std::vector<Real> sample{0.5, -1.0, 2.0};
  const Real expected = 2.0 + 3.0 * 0.5 - 1.5 * ((1.0 - 1) / std::sqrt(2.0));
  EXPECT_NEAR(model.predict(sample), expected, 1e-12);
}

TEST(SparseModel, DropsZeroCoefficients) {
  auto dict = quad_dict(2);
  const SparseModel model(dict, {{0, 1.0}, {1, 0.0}, {2, 2.0}});
  EXPECT_EQ(model.num_terms(), 2);
}

TEST(SparseModel, FromDenseThreshold) {
  auto dict = quad_dict(2);
  std::vector<Real> dense(static_cast<std::size_t>(dict->size()), 0.0);
  dense[0] = 1.0;
  dense[1] = 1e-8;
  dense[3] = -0.5;
  const SparseModel model = SparseModel::from_dense(dict, dense, 1e-6);
  EXPECT_EQ(model.num_terms(), 2);
}

TEST(SparseModel, OutOfRangeIndexThrows) {
  auto dict = quad_dict(2);
  EXPECT_THROW(SparseModel(dict, {{dict->size(), 1.0}}), Error);
}

TEST(SparseModel, PredictAllMatchesLoop) {
  auto dict = quad_dict(4);
  Rng rng(601);
  const SparseModel model(dict, {{0, 1.0}, {2, -2.0}, {7, 0.5}});
  const Matrix samples = monte_carlo_normal(10, 4, rng);
  const std::vector<Real> all = model.predict_all(samples);
  for (Index k = 0; k < 10; ++k)
    EXPECT_NEAR(all[static_cast<std::size_t>(k)],
                model.predict(samples.row(k)), 1e-14);
}

TEST(SparseModel, AnalyticMeanIsConstantCoefficient) {
  auto dict = quad_dict(3);
  const SparseModel model(dict, {{0, 4.5}, {1, 2.0}, {4, 1.0}});
  EXPECT_DOUBLE_EQ(model.analytic_mean(), 4.5);
}

TEST(SparseModel, AnalyticVarianceIsParseval) {
  auto dict = quad_dict(3);
  const SparseModel model(dict, {{0, 4.5}, {1, 2.0}, {4, 1.0}});
  EXPECT_DOUBLE_EQ(model.analytic_variance(), 4.0 + 1.0);
}

TEST(SparseModel, AnalyticMomentsMatchMonteCarlo) {
  auto dict = quad_dict(4);
  const SparseModel model(dict, {{0, 1.0}, {1, 0.8}, {6, -0.6}, {9, 0.4}});
  Rng rng(602);
  const Matrix samples = monte_carlo_normal(200000, 4, rng);
  const std::vector<Real> vals = model.predict_all(samples);
  EXPECT_NEAR(mean(vals), model.analytic_mean(), 0.01);
  EXPECT_NEAR(variance(vals), model.analytic_variance(), 0.05);
}

TEST(SparseModel, SaveLoadRoundTrip) {
  auto dict = quad_dict(3);
  const SparseModel model(dict, {{0, 1.25}, {2, -3.5e-7}, {8, 42.0}});
  std::stringstream ss;
  model.save(ss);
  const SparseModel loaded = SparseModel::load(ss, dict);
  ASSERT_EQ(loaded.num_terms(), model.num_terms());
  Rng rng(603);
  const Matrix samples = monte_carlo_normal(5, 3, rng);
  for (Index k = 0; k < 5; ++k)
    EXPECT_DOUBLE_EQ(loaded.predict(samples.row(k)),
                     model.predict(samples.row(k)));
}

TEST(SparseModel, LoadRejectsGarbage) {
  auto dict = quad_dict(2);
  std::stringstream ss("not_a_model x");
  EXPECT_THROW((void)SparseModel::load(ss, dict), Error);
}

TEST(SparseModel, ToStringSortsByMagnitude) {
  auto dict = quad_dict(2);
  const SparseModel model(dict, {{1, 0.1}, {2, -5.0}, {3, 1.0}});
  const std::string s = model.to_string();
  const auto pos_big = s.find("-5");
  const auto pos_small = s.find("0.1");
  EXPECT_NE(pos_big, std::string::npos);
  EXPECT_NE(pos_small, std::string::npos);
  EXPECT_LT(pos_big, pos_small);
}

TEST(SparseModel, DefaultConstructedThrowsOnUse) {
  const SparseModel model;
  EXPECT_THROW((void)model.dictionary(), Error);
}

}  // namespace
}  // namespace rsm
