// Analytic moment extraction from sparse Hermite models (APEX-style,
// paper ref [8]): closed-form mean/variance/skewness vs quadrature and
// Monte Carlo ground truth.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "basis/hermite.hpp"
#include "basis/quadrature.hpp"
#include "core/model.hpp"
#include "stats/descriptive.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

TEST(HermiteTripleProduct, MatchesQuadratureExhaustively) {
  // All (a, b, c) with orders <= 5 against an exact Gauss-Hermite rule.
  for (int a = 0; a <= 5; ++a) {
    for (int b = 0; b <= 5; ++b) {
      for (int c = 0; c <= 5; ++c) {
        const Real exact = normal_expectation(
            [=](Real x) {
              return hermite_normalized(a, x) * hermite_normalized(b, x) *
                     hermite_normalized(c, x);
            },
            /*num_points=*/(a + b + c) / 2 + 2);
        EXPECT_NEAR(hermite_triple_product(a, b, c), exact, 1e-9)
            << "a=" << a << " b=" << b << " c=" << c;
      }
    }
  }
}

TEST(HermiteTripleProduct, KnownValues) {
  EXPECT_DOUBLE_EQ(hermite_triple_product(0, 0, 0), 1.0);
  // E[g1 g1 g0] = E[x^2] = 1.
  EXPECT_NEAR(hermite_triple_product(1, 1, 0), 1.0, 1e-12);
  // E[g1 g1 g2] = E[x^2 (x^2-1)]/sqrt(2) = sqrt(2).
  EXPECT_NEAR(hermite_triple_product(1, 1, 2), std::sqrt(2.0), 1e-12);
  // Odd total order vanishes.
  EXPECT_EQ(hermite_triple_product(1, 1, 1), 0.0);
  EXPECT_EQ(hermite_triple_product(2, 1, 0), 0.0);
  // Triangle violation vanishes: s=3 < c=4.
  EXPECT_EQ(hermite_triple_product(1, 1, 4), 0.0);
}

std::shared_ptr<const BasisDictionary> dict(Index n) {
  return std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
}

TEST(Moments, LinearModelHasZeroSkewness) {
  const SparseModel model(dict(4), {{0, 2.0}, {1, 1.5}, {3, -0.5}});
  EXPECT_NEAR(model.analytic_third_moment(), 0.0, 1e-12);
  EXPECT_NEAR(model.analytic_skewness(), 0.0, 1e-12);
}

TEST(Moments, PureSquareTermKnownSkewness) {
  // f = c * g2(y0) = c (y0^2 - 1)/sqrt(2): a scaled, centered chi-square.
  // mu3 = c^3 E[g2^3] = c^3 * 2 * sqrt(2) / ... compute via the triple
  // product: E[g2 g2 g2] = hermite_triple_product(2,2,2) = 2*sqrt(2)... and
  // skewness = mu3 / c^3 = E[g2^3] since var = c^2 -> mu3/(c^3).
  const Real c = 0.7;
  const SparseModel model(dict(3), {{4, c}});  // index 4 = H2(y0)
  const Real e_g2_cubed = hermite_triple_product(2, 2, 2);
  EXPECT_NEAR(model.analytic_third_moment(), c * c * c * e_g2_cubed, 1e-12);
  EXPECT_NEAR(model.analytic_skewness(), e_g2_cubed, 1e-12);
  // chi-square-1 skewness = sqrt(8); our variable is (chi2_1 - 1)/sqrt(2),
  // same standardized skewness.
  EXPECT_NEAR(model.analytic_skewness(), std::sqrt(8.0), 1e-12);
}

TEST(Moments, NegativeSquareCoefficientFlipsSkew) {
  const SparseModel model(dict(3), {{4, -0.7}});
  EXPECT_NEAR(model.analytic_skewness(), -std::sqrt(8.0), 1e-12);
}

TEST(Moments, MatchesMonteCarloOnMixedModel) {
  // Mixed linear + squares + cross terms over 4 variables.
  const SparseModel model(dict(4), {{0, 1.0},   // constant
                                    {1, 0.8},   // y0
                                    {3, -0.4},  // y2
                                    {5, 0.5},   // H2(y0)
                                    {7, -0.3},  // H2(y2)
                                    {9, 0.6}}); // first cross term
  Rng rng(41);
  const Matrix samples = monte_carlo_normal(400000, 4, rng);
  const std::vector<Real> values = model.predict_all(samples);

  EXPECT_NEAR(mean(values), model.analytic_mean(), 0.01);
  EXPECT_NEAR(variance(values), model.analytic_variance(), 0.02);
  EXPECT_NEAR(skewness(values), model.analytic_skewness(), 0.05);
}

TEST(Moments, CrossTermSkewContribution) {
  // f = a*y0 + b*y1 + c*y0*y1 has mu3 = 6abc (classic bilinear result);
  // verify the Hermite machinery reproduces it.
  const Real a = 0.9, b = -0.7, c = 0.4;
  auto d = dict(2);
  // quadratic(2) order: 1, y0, y1, H2(y0), H2(y1), y0y1.
  const SparseModel model(d, {{1, a}, {2, b}, {5, c}});
  EXPECT_NEAR(model.analytic_third_moment(), 6 * a * b * c, 1e-12);
}

TEST(Moments, DegenerateModelSkewnessIsZero) {
  const SparseModel constant(dict(2), {{0, 3.0}});
  EXPECT_EQ(constant.analytic_skewness(), 0.0);
}

}  // namespace
}  // namespace rsm
